#!/usr/bin/env bash
# Regenerates every table/figure of the paper's evaluation, at both
# operating points: the paper-nominal eta = 5/127 and the
# procedure-derived eta = 15/127 (see EXPERIMENTS.md).
# Usage: ./run_experiments.sh [outdir]
set -u
OUT=${1:-results}
run() {
  bin=$1; shift
  echo "=== $bin $* (WAVEKEY_BCH_T=${WAVEKEY_BCH_T:-default}) ==="
  cargo run --release -p wavekey-bench --bin "$bin" -- "$@" | tee "$DIR/$bin.txt"
}
for T in 5 15; do
  export WAVEKEY_BCH_T=$T
  DIR="$OUT/eta_t$T"
  mkdir -p "$DIR"
  run table1_environments 50
  run table2_position 200
  run exp_devices 200
  run exp_security 600 200
done
export WAVEKEY_BCH_T=5
DIR="$OUT"
mkdir -p "$DIR"
run exp_randomness 200
run fig7_nb_sweep 300 150
run exp_tau 20
run table3_latency 10
run exp_lf_pruning
run exp_ablation
run obs_report 48
