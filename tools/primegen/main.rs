//! primegen — provenance tool for the WAVEKEY-1024 fleet prime.
//!
//! The fleet group's modulus is the Crandall-form safe prime
//! `p = 2^1024 − c` with `c = 1093337`: the smallest `c ≡ 1 (mod 8)` for
//! which both `p` and `(p−1)/2` pass the deterministic 12-witness
//! Miller-Rabin test in `wavekey_crypto::bigint::is_probable_prime`.
//! The congruence `c ≡ 1 (mod 8)` forces `p ≡ 7 (mod 8)`, which makes
//! `g = 2` a quadratic residue generating the order-`(p−1)/2` subgroup —
//! the RFC 2409 MODP convention the rest of the stack assumes.
//!
//! Modes (see `tools/primegen/run.sh`):
//!
//! * default — re-verify the committed `WAVEKEY_1024_HEX` constant
//!   (sub-second): Crandall form, `c` value, `c ≡ 1 (mod 8)`, safe
//!   primality of `p` and `(p−1)/2`.
//! * `--search [k]` — redo the search from `c = 1` for `p = 2^(64k) − c`
//!   (default `k = 16`). A small-prime sieve on `p` and `(p−1)/2`
//!   discards most candidates before any Miller-Rabin work; the k = 16
//!   run reproduces `c = 1093337` in a few minutes on one core.

use wavekey_crypto::bigint::{is_probable_prime, Ubig};
use wavekey_crypto::group::WAVEKEY_1024_HEX;

/// `n / 2` via a big-endian byte shift (`Ubig` has no right shift).
fn half(n: &Ubig) -> Ubig {
    let bytes = n.to_be_bytes();
    let mut out = vec![0u8; bytes.len()];
    let mut carry = 0u8;
    for (i, b) in bytes.iter().enumerate() {
        out[i] = (b >> 1) | (carry << 7);
        carry = b & 1;
    }
    Ubig::from_be_bytes(&out)
}

/// Odd primes below `bound` by trial division (the sieve is tiny).
fn small_primes(bound: u64) -> Vec<u64> {
    let mut primes = Vec::new();
    'outer: for q in (3..bound).step_by(2) {
        for &p in &primes {
            if p * p > q {
                break;
            }
            if q % p == 0 {
                continue 'outer;
            }
        }
        primes.push(q);
    }
    primes
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = ((acc as u128 * base as u128) % m as u128) as u64;
        }
        base = ((base as u128 * base as u128) % m as u128) as u64;
        exp >>= 1;
    }
    acc
}

/// Searches upward from `c = 1` (stepping the `c ≡ 1 (mod 8)` residue
/// class) for the first safe prime `p = 2^(64k) − c`; returns `c`.
fn search(k: usize) -> u64 {
    let sieve: Vec<(u64, u64, u64)> = small_primes(20_000)
        .into_iter()
        .map(|q| (q, pow_mod(2, 64 * k as u64, q), (q + 1) / 2))
        .collect();
    let mut c: u64 = 1;
    let mut tested = 0u64;
    loop {
        // Cheap filter: p = 2^(64k) − c and (p−1)/2 must clear every
        // small prime. (p−1)/2 mod q = ((p−1) mod q) · 2^{−1} mod q.
        let clean = sieve.iter().all(|&(q, pw, inv2)| {
            let p_mod = (pw + q - c % q) % q;
            if p_mod == 0 {
                return false;
            }
            let pm1 = (pw + q - (c + 1) % q) % q;
            (pm1 as u128 * inv2 as u128) % q as u128 != 0
        });
        if clean {
            tested += 1;
            let p = Ubig::one().shl(64 * k).sub(&Ubig::from_u64(c));
            if is_probable_prime(&p) && is_probable_prime(&half(&p.sub(&Ubig::one()))) {
                println!(
                    "found: p = 2^{} - {c}  ({tested} Miller-Rabin candidates tested)",
                    64 * k
                );
                return c;
            }
        }
        c = c.checked_add(8).expect("search range exhausted");
        if c > u32::MAX as u64 {
            panic!("no Crandall-fold-compatible safe prime below c = 2^32 for k = {k}");
        }
    }
}

/// Re-verifies the committed constant end to end.
fn verify() {
    let p = Ubig::from_hex(WAVEKEY_1024_HEX);
    let c = Ubig::one().shl(1024).sub(&p);
    let c_u64 = {
        let bytes = c.to_be_bytes();
        bytes.iter().fold(0u64, |acc, &b| (acc << 8) | b as u64)
    };
    println!("p   = 2^1024 - {c_u64}");
    assert_eq!(c_u64, 1_093_337, "committed constant drifted");
    assert_eq!(c_u64 % 8, 1, "c must be 1 mod 8 so that p is 7 mod 8");
    assert!(is_probable_prime(&p), "p fails Miller-Rabin");
    let q = half(&p.sub(&Ubig::one()));
    assert!(is_probable_prime(&q), "(p-1)/2 fails Miller-Rabin");
    println!("p and (p-1)/2 both pass the deterministic 12-witness Miller-Rabin test");
    println!("p mod 8 = 7: generator 2 is a quadratic residue (MODP convention)");
    println!("WAVEKEY_1024_HEX verified");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--search") => {
            let k: usize = args.get(2).map(|s| s.parse().expect("k")).unwrap_or(16);
            let c = search(k);
            println!("smallest c = {c} with c = 1 mod 8 and 2^{} - c a safe prime", 64 * k);
        }
        _ => verify(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The search reproduces known tiny Crandall safe primes quickly:
    /// for k = 2, the first c ≡ 1 (mod 8) with 2^128 − c a safe prime.
    #[test]
    fn search_matches_direct_check_for_two_limbs() {
        let c = search(2);
        let p = Ubig::one().shl(128).sub(&Ubig::from_u64(c));
        assert!(is_probable_prime(&p));
        assert!(is_probable_prime(&half(&p.sub(&Ubig::one()))));
        assert_eq!(c % 8, 1);
    }

    #[test]
    fn half_shifts_right_by_one() {
        let n = Ubig::from_hex("1fffffffffffffffffffffffffffffff");
        assert_eq!(half(&n), Ubig::from_hex("0fffffffffffffffffffffffffffffff"));
    }
}
