#!/usr/bin/env bash
# Builds and runs the WAVEKEY-1024 provenance tool against the offline
# rig's rlibs (the cargo registry is unreachable in the dev container).
#
# Usage:
#   tools/primegen/run.sh                # verify the committed constant
#   tools/primegen/run.sh --search [k]   # redo the search (k limbs, default 16)
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/../.." && pwd)
OUT="${RIG_OUT:-$ROOT/target/offline-rig}"

"$ROOT/tools/offline_rig/build.sh" build >/dev/null

BIN="$OUT/bin/primegen"
if [[ ! -x "$BIN" || "$ROOT/tools/primegen/main.rs" -nt "$BIN" ]]; then
    echo "[primegen] compile"
    rustc --edition 2021 -C opt-level=3 -C target-cpu=native \
        --crate-name primegen "$ROOT/tools/primegen/main.rs" \
        -L "$OUT" --extern "wavekey_crypto=$OUT/libwavekey_crypto.rlib" \
        -o "$BIN"
fi
exec "$BIN" "$@"
