//! Offline stand-in for `rand` 0.8 used by the rustc rig (`tools/offline_rig`).
//!
//! The cargo registry is unreachable in this container, so workspace builds
//! cannot fetch the real `rand` crate. Unlike a toy stub, this file
//! reimplements the *exact algorithms* of rand 0.8 + rand_chacha 0.3 +
//! rand_core 0.6 for the API surface the workspace uses, so seeded test
//! outcomes in the rig match what a registry build would produce:
//!
//! * `rngs::StdRng` is ChaCha12 (rand 0.8's `StdRng` = `ChaCha12Rng`) behind
//!   a `BlockRng`-style 64-word buffer refilled four blocks at a time, with
//!   the same `next_u64` buffer-straddling and `fill_bytes` whole-word
//!   consumption rules as rand_core 0.6.
//! * `SeedableRng::seed_from_u64` expands the `u64` with PCG32 exactly as
//!   rand_core 0.6 does.
//! * `Standard` samples (`bool` sign-bit, 53-bit `f64`, direct integers) and
//!   `gen_range` (Lemire widening-multiply for integers, the `[1, 2)`
//!   mantissa trick for floats) reproduce rand 0.8's algorithms bit-for-bit.
//!
//! The ChaCha permutation core is validated against the RFC 8439 block test
//! vector (run `rustc --test` on this file; the rig build script does).

// ------------------------------------------------------------------ RngCore

/// Core RNG interface (rand_core 0.6 surface used by the workspace).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable RNG constructors (rand_core 0.6 semantics).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with PCG32 (rand_core 0.6 algorithm).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

// ---------------------------------------------------------------- ChaCha core

/// One ChaCha block: `double_rounds` column+diagonal round pairs over the
/// 16-word initial state, then the feed-forward addition (RFC 8439 layout).
fn chacha_core(initial: &[u32; 16], double_rounds: usize) -> [u32; 16] {
    #[inline(always)]
    fn qr(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }
    let mut x = *initial;
    for _ in 0..double_rounds {
        qr(&mut x, 0, 4, 8, 12);
        qr(&mut x, 1, 5, 9, 13);
        qr(&mut x, 2, 6, 10, 14);
        qr(&mut x, 3, 7, 11, 15);
        qr(&mut x, 0, 5, 10, 15);
        qr(&mut x, 1, 6, 11, 12);
        qr(&mut x, 2, 7, 8, 13);
        qr(&mut x, 3, 4, 9, 14);
    }
    for (o, i) in x.iter_mut().zip(initial.iter()) {
        *o = o.wrapping_add(*i);
    }
    x
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

// --------------------------------------------------------------------- rngs

/// RNG types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{chacha_core, RngCore, SeedableRng, CHACHA_CONSTANTS};

    /// rand 0.8's `StdRng`: ChaCha12 with a 64-bit block counter (words
    /// 12–13) and zero stream (words 14–15), buffered 4 blocks (64 u32
    /// words) at a time like rand_core's `BlockRng`.
    #[derive(Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; 64],
        /// Next unread word in `buf`; 64 means "buffer exhausted".
        index: usize,
    }

    impl std::fmt::Debug for StdRng {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("StdRng").finish_non_exhaustive()
        }
    }

    impl StdRng {
        /// Refill the 64-word buffer from four consecutive ChaCha12 blocks
        /// and position the read cursor at `reset_index`.
        fn refill(&mut self, reset_index: usize) {
            for blk in 0..4u64 {
                let ctr = self.counter.wrapping_add(blk);
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CHACHA_CONSTANTS);
                state[4..12].copy_from_slice(&self.key);
                state[12] = ctr as u32;
                state[13] = (ctr >> 32) as u32;
                // words 14-15: stream id, fixed zero for StdRng
                let out = chacha_core(&state, 6);
                self.buf[blk as usize * 16..blk as usize * 16 + 16].copy_from_slice(&out);
            }
            self.counter = self.counter.wrapping_add(4);
            self.index = reset_index;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
            }
            StdRng { key, counter: 0, buf: [0; 64], index: 64 }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 64 {
                self.refill(0);
            }
            let v = self.buf[self.index];
            self.index += 1;
            v
        }

        fn next_u64(&mut self) -> u64 {
            // BlockRng::next_u64 for u32-word results: low word first,
            // straddling a buffer refill exactly like rand_core 0.6.
            let i = self.index;
            if i < 63 {
                self.index = i + 2;
                (self.buf[i] as u64) | ((self.buf[i + 1] as u64) << 32)
            } else if i == 63 {
                let lo = self.buf[i] as u64;
                self.refill(1);
                lo | ((self.buf[0] as u64) << 32)
            } else {
                self.refill(2);
                (self.buf[0] as u64) | ((self.buf[1] as u64) << 32)
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            // BlockRng::fill_bytes via fill_via_u32_chunks: whole words are
            // consumed (a partially-used trailing word is discarded).
            let mut read = 0usize;
            while read < dest.len() {
                if self.index >= 64 {
                    self.refill(0);
                }
                let remaining = &mut dest[read..];
                let avail = &self.buf[self.index..];
                let n_bytes = remaining.len().min(avail.len() * 4);
                let n_words = (n_bytes + 3) / 4;
                for (w, word) in avail[..n_words].iter().enumerate() {
                    let b = word.to_le_bytes();
                    let lo = w * 4;
                    let hi = (lo + 4).min(n_bytes);
                    remaining[lo..hi].copy_from_slice(&b[..hi - lo]);
                }
                self.index += n_words;
                read += n_bytes;
            }
        }
    }
}

// ------------------------------------------------------------- distributions

/// Distributions (mirrors `rand::distributions`).
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T` (rand 0.8 signature).
    pub trait Distribution<T> {
        /// Sample one value using `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution for primitive types.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            // rand 0.8: sign bit of a u32 draw.
            (rng.next_u32() as i32) < 0
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53-bit precision multiply-based conversion.
            let value = rng.next_u64() >> (64 - 53);
            (1.0 / ((1u64 << 53) as f64)) * value as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            let value = rng.next_u32() >> (32 - 24);
            (1.0 / ((1u32 << 24) as f32)) * value as f32
        }
    }

    macro_rules! standard_int {
        ($($ty:ty => $method:ident),* $(,)?) => {$(
            impl Distribution<$ty> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.$method() as $ty
                }
            }
        )*};
    }
    // rand 0.8: 8/16/32-bit ints come from next_u32; 64-bit and
    // usize/isize (on 64-bit targets) from next_u64.
    standard_int!(
        u8 => next_u32, i8 => next_u32, u16 => next_u32, i16 => next_u32,
        u32 => next_u32, i32 => next_u32,
        u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64,
    );
}

// -------------------------------------------------------------- uniform/gen

/// Uniform-range sampling internals (rand 0.8 `distributions::uniform`).
pub mod uniform {
    use super::distributions::{Distribution, Standard};
    use super::Rng;

    /// Types that `Rng::gen_range` can sample uniformly.
    pub trait SampleUniform: Sized {
        /// Sample from the half-open range `[low, high)`.
        fn sample_single<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Sample from the closed range `[low, high]`.
        fn sample_single_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    macro_rules! wmul {
        ($v:expr, $range:expr, u32) => {{
            let t = ($v as u64).wrapping_mul($range as u64);
            ((t >> 32) as u32, t as u32)
        }};
        ($v:expr, $range:expr, u64) => {{
            let t = ($v as u128).wrapping_mul($range as u128);
            ((t >> 64) as u64, t as u64)
        }};
        ($v:expr, $range:expr, usize) => {{
            let t = ($v as u128).wrapping_mul($range as u128);
            ((t >> 64) as usize, t as usize)
        }};
    }

    macro_rules! uniform_int {
        ($ty:ty, $unsigned:ty, $large:tt) => {
            impl SampleUniform for $ty {
                fn sample_single<R: Rng + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    assert!(low < high, "gen_range: low >= high");
                    Self::sample_single_inclusive(low, high - 1, rng)
                }

                fn sample_single_inclusive<R: Rng + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    assert!(low <= high, "gen_range: low > high");
                    // Lemire widening-multiply rejection, exactly as rand
                    // 0.8's UniformInt::sample_single_inclusive.
                    let range =
                        (high.wrapping_sub(low) as $unsigned as $large).wrapping_add(1);
                    if range == 0 {
                        // Full type span.
                        let v: $large = Standard.sample(rng);
                        return v as $ty;
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v: $large = Standard.sample(rng);
                        let (hi, lo) = wmul!(v, range, $large);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int!(u8, u8, u32);
    uniform_int!(u16, u16, u32);
    uniform_int!(u32, u32, u32);
    uniform_int!(u64, u64, u64);
    uniform_int!(usize, usize, usize);
    uniform_int!(i8, u8, u32);
    uniform_int!(i16, u16, u32);
    uniform_int!(i32, u32, u32);
    uniform_int!(i64, u64, u64);
    uniform_int!(isize, usize, usize);

    macro_rules! uniform_float {
        ($ty:ty, $uty:ty, $bits_to_discard:expr, $fraction_bits:expr, $bias:expr) => {
            impl SampleUniform for $ty {
                fn sample_single<R: Rng + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    assert!(low < high, "gen_range: low >= high");
                    // rand 0.8 UniformFloat::sample_single: a value in
                    // [1, 2) from the raw mantissa, rescaled; rejection on
                    // the (rare) rounding up to `high`.
                    let scale = high - low;
                    loop {
                        let value: $uty = Standard.sample(rng);
                        let value1_2 = <$ty>::from_bits(
                            (value >> $bits_to_discard) | (($bias as $uty) << $fraction_bits),
                        );
                        let value0_1 = value1_2 - 1.0;
                        let res = value0_1 * scale + low;
                        if res < high {
                            return res;
                        }
                    }
                }

                fn sample_single_inclusive<R: Rng + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    // Matches rand 0.8's inclusive float sampling only in
                    // spirit (no workspace call site uses it).
                    assert!(low <= high, "gen_range: low > high");
                    let scale = high - low;
                    let value: $uty = Standard.sample(rng);
                    let value1_2 = <$ty>::from_bits(
                        (value >> $bits_to_discard) | (($bias as $uty) << $fraction_bits),
                    );
                    (value1_2 - 1.0) * scale + low
                }
            }
        };
    }

    uniform_float!(f64, u64, 12, 52, 1023u64);
    uniform_float!(f32, u32, 9, 23, 127u32);

    /// Range-like arguments accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Sample one value from this range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_single_inclusive(low, high, rng)
        }
    }
}

// ---------------------------------------------------------------------- Fill

/// Buffer types fillable by `Rng::fill`.
pub trait Fill {
    /// Fill `self` from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

// ----------------------------------------------------------------------- Rng

/// User-facing RNG extension trait (rand 0.8 surface used by the workspace).
pub trait Rng: RngCore {
    /// Sample a value from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        T: uniform::SampleUniform,
        Rge: uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Fill a byte buffer with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// --------------------------------------------------------------------- tests

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Standard};
    use super::rngs::StdRng;
    use super::{chacha_core, Rng, RngCore, SeedableRng};

    /// RFC 8439 §2.3.2 ChaCha20 block function test vector: pins the
    /// quarter-round network, word layout, and feed-forward addition that
    /// ChaCha12 shares (only the round count differs).
    #[test]
    fn chacha_core_matches_rfc8439_block_vector() {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        // key bytes 00 01 02 ... 1f as LE words
        let key: Vec<u32> = (0..8)
            .map(|i| {
                let b = [4 * i as u8, 4 * i as u8 + 1, 4 * i as u8 + 2, 4 * i as u8 + 3];
                u32::from_le_bytes(b)
            })
            .collect();
        state[4..12].copy_from_slice(&key);
        state[12] = 1; // block counter
        state[13] = 0x0900_0000; // nonce 00 00 00 09
        state[14] = 0x4a00_0000; // nonce 00 00 00 4a
        state[15] = 0x0000_0000;
        let out = chacha_core(&state, 10);
        let expected: [u32; 16] = [
            0xe4e7_f110, 0x1559_3bd1, 0x1fdd_0f50, 0xc471_20a3, 0xc7f4_d1c7, 0x0368_c033,
            0x9aaa_2204, 0x4e6c_d4c3, 0x4664_82d2, 0x09aa_9f07, 0x05d7_c214, 0xa202_8bd9,
            0xd19c_12b5, 0xb94e_16de, 0xe883_d0cb, 0x4e3c_50a2,
        ];
        assert_eq!(out, expected);
    }

    /// seed_from_u64's PCG expansion is deterministic and key-sensitive.
    #[test]
    fn seed_from_u64_is_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    /// next_u64 must consume exactly the same words as two next_u32 calls,
    /// including across the 64-word buffer boundary.
    #[test]
    fn next_u64_matches_word_pairs_across_refills() {
        let mut by64 = StdRng::seed_from_u64(99);
        let mut by32 = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let lo = by32.next_u32() as u64;
            let hi = by32.next_u32() as u64;
            assert_eq!(by64.next_u64(), lo | (hi << 32));
        }
        // Odd-offset start so next_u64 straddles the refill boundary.
        let mut odd = StdRng::seed_from_u64(5);
        let _ = odd.next_u32();
        let mut reference = StdRng::seed_from_u64(5);
        let mut words: Vec<u32> = Vec::new();
        // 3 refills' worth of the raw word stream
        for _ in 0..192 {
            words.push(reference.next_u32());
        }
        let mut idx = 1usize;
        for _ in 0..63 {
            // BlockRng semantics: straddle keeps both words consecutive.
            let v = odd.next_u64();
            assert_eq!(v, (words[idx] as u64) | ((words[idx + 1] as u64) << 32));
            idx += 2;
        }
    }

    /// fill_bytes consumes whole words little-endian, discarding the unused
    /// tail of a partial word — same as rand_core's fill_via_u32_chunks.
    #[test]
    fn fill_bytes_is_word_aligned_little_endian() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 10];
        rng.fill_bytes(&mut buf);
        let mut reference = StdRng::seed_from_u64(3);
        let w: Vec<u32> = (0..3).map(|_| reference.next_u32()).collect();
        let mut expect = Vec::new();
        for word in &w {
            expect.extend_from_slice(&word.to_le_bytes());
        }
        assert_eq!(&buf[..], &expect[..10]);
        // The partially-consumed third word is discarded entirely.
        assert_eq!(rng.next_u32(), reference.next_u32());
    }

    /// gen_range over integers stays in bounds and hits both endpoints of
    /// small inclusive ranges.
    #[test]
    fn gen_range_bounds_and_inclusive_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut saw0 = false;
        let mut saw3 = false;
        for _ in 0..400 {
            let v: usize = rng.gen_range(0..=3usize);
            assert!(v <= 3);
            saw0 |= v == 0;
            saw3 |= v == 3;
            let w: u64 = rng.gen_range(5..10u64);
            assert!((5..10).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(saw0 && saw3);
    }

    /// Standard f64 draws lie in [0, 1) with 53-bit granularity.
    #[test]
    fn standard_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..1000 {
            let x: f64 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }

    /// bool uses the u32 sign bit: roughly balanced, deterministic.
    #[test]
    fn standard_bool_balanced() {
        let mut rng = StdRng::seed_from_u64(17);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4500..5500).contains(&trues), "trues = {trues}");
    }
}
