//! No-op `serde` stand-in for the offline rig.
//!
//! The workspace imports `serde::{Deserialize, Serialize}` purely for
//! derives; nothing ever calls a serializer. The derive macros expand to
//! nothing and the traits are blanket-implemented, with the macro and trait
//! living under the same names (separate namespaces) exactly like the real
//! crate's `derive`-feature re-exports.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
