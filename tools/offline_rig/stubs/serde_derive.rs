//! No-op `serde_derive` stand-in for the offline rig.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no serializer is
//! ever invoked — there is no serde_json in the tree), so empty derive
//! expansions are sufficient for every call site. `attributes(serde)` is
//! registered so any future `#[serde(...)]` field attribute still parses.

extern crate proc_macro;
use proc_macro::TokenStream;

/// Expands to nothing; the `serde` stub's blanket impl covers the trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde` stub's blanket impl covers the trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
