//! Sequential stand-in for `rayon` (offline rig only).
//!
//! Mirrors the bound requirements of the real API surface the workspace
//! uses (`into_par_iter().map(f).collect()` in `wavekey-crypto::par`), so
//! code that compiles against this stub also compiles against real rayon.
//! Execution is sequential; `par_map_range` documents that results are
//! collected in index order either way, so outputs are identical.

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    /// Sequential stand-in for rayon's parallel iterator.
    pub struct ParIter<I>(I);
    /// A mapped [`ParIter`].
    pub struct ParMap<I, F>(I, F);

    /// Conversion into a "parallel" iterator.
    pub trait IntoParallelIterator: Sized + IntoIterator
    where
        Self::Item: Send,
    {
        /// Convert, keeping rayon's `Send` bounds so real-rayon builds stay
        /// compatible.
        fn into_par_iter(self) -> ParIter<Self::IntoIter> {
            ParIter(self.into_iter())
        }
    }
    impl<T: IntoIterator> IntoParallelIterator for T where T::Item: Send {}

    impl<I: Iterator> ParIter<I> {
        /// Map with rayon's `Sync + Send` closure bounds.
        pub fn map<U: Send, F: Fn(I::Item) -> U + Sync + Send>(self, f: F) -> ParMap<I, F> {
            ParMap(self.0, f)
        }
    }

    impl<I: Iterator, U: Send, F: Fn(I::Item) -> U + Sync + Send> ParMap<I, F> {
        /// Collect in index order (what the workspace relies on).
        pub fn collect<C: FromIterator<U>>(self) -> C {
            self.0.map(self.1).collect()
        }
    }
}
