//! Sequential stand-in for `rayon` (offline rig only).
//!
//! Mirrors the bound requirements of the real API surface the workspace
//! uses (`into_par_iter().map(f).collect()` plus the pool-sizing entry
//! points in `wavekey-crypto::par` and `wavekey-nn::gemm`), so code that
//! compiles against this stub also compiles against real rayon.
//! Execution is sequential; every parallel code path in the workspace
//! documents that its results are order-exact, so outputs are identical.

/// Sequential stand-in for `rayon::ThreadPool`: `install` just runs the
/// closure on the calling thread.
#[derive(Debug)]
pub struct ThreadPool;

impl ThreadPool {
    /// Runs `op` (sequentially) "inside" the pool.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        op()
    }
}

/// Error mirroring `rayon::ThreadPoolBuildError` (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`; all settings are
/// accepted and ignored (execution stays sequential).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    _num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Records (and ignores) the requested width.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self._num_threads = n;
        self
    }

    /// Builds a sequential [`ThreadPool`].
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }

    /// "Installs" the global pool (a no-op; always succeeds once).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        Ok(())
    }
}

/// The stub pool is the calling thread.
pub fn current_num_threads() -> usize {
    1
}

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    /// Sequential stand-in for rayon's parallel iterator.
    pub struct ParIter<I>(I);
    /// A mapped [`ParIter`].
    pub struct ParMap<I, F>(I, F);

    /// Conversion into a "parallel" iterator.
    pub trait IntoParallelIterator: Sized + IntoIterator
    where
        Self::Item: Send,
    {
        /// Convert, keeping rayon's `Send` bounds so real-rayon builds stay
        /// compatible.
        fn into_par_iter(self) -> ParIter<Self::IntoIter> {
            ParIter(self.into_iter())
        }
    }
    impl<T: IntoIterator> IntoParallelIterator for T where T::Item: Send {}

    impl<I: Iterator> ParIter<I> {
        /// Map with rayon's `Sync + Send` closure bounds.
        pub fn map<U: Send, F: Fn(I::Item) -> U + Sync + Send>(self, f: F) -> ParMap<I, F> {
            ParMap(self.0, f)
        }
    }

    impl<I: Iterator, U: Send, F: Fn(I::Item) -> U + Sync + Send> ParMap<I, F> {
        /// Collect in index order (what the workspace relies on).
        pub fn collect<C: FromIterator<U>>(self) -> C {
            self.0.map(self.1).collect()
        }
    }
}
