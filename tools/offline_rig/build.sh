#!/usr/bin/env bash
# Offline build/test rig for the WaveKey workspace.
#
# The cargo registry is unreachable in this container, so `cargo build`
# cannot even resolve the (tiny) external dependency set. This rig compiles
# the workspace crates directly with rustc against faithful stand-ins for
# the three external crates actually used in source (rand, rayon, serde —
# see stubs/; parking_lot/crossbeam/bytes are declared but unused), in
# dependency order, and can run every crate's unit tests plus the root
# integration tests that don't require proptest.
#
# Usage:
#   tools/offline_rig/build.sh             # build stubs + all crates
#   tools/offline_rig/build.sh test        # ... + compile & run all tests
#   tools/offline_rig/build.sh bin NAME... # ... + build bench bins by name
#   tools/offline_rig/build.sh run NAME [ARGS...]  # build bin and run it
#
# Any crates/wavekey-bench/src/bin/NAME.rs builds via `bin`/`run` — e.g.
# `run load_gen target/ci-bench-load.json` drives the ci.sh SLO gate and
# `run obs_report` regenerates the results/OBS_* artifacts.
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/../.." && pwd)
RIG="$ROOT/tools/offline_rig"
OUT="${RIG_OUT:-$ROOT/target/offline-rig}"
mkdir -p "$OUT" "$OUT/bin" "$OUT/tests"

EDITION=2021
# Match cargo's release profile (opt-level 3) so rig-measured benchmarks
# are comparable to cargo-measured baselines.
OPT=(-C opt-level=3)

# Rebuild only when any input is newer than the produced artifact.
stale() { # stale <artifact> <input>...
    local art=$1; shift
    [[ ! -e "$art" ]] && return 0
    local f
    for f in "$@"; do
        if [[ -d "$f" ]]; then
            [[ -n "$(find "$f" -name '*.rs' -newer "$art" -print -quit)" ]] && return 0
        else
            [[ "$f" -nt "$art" ]] && return 0
        fi
    done
    return 1
}

note() { echo "[rig] $*"; }

# ----------------------------------------------------------------- stubs
build_stubs() {
    if stale "$OUT/libserde_derive.so" "$RIG/stubs/serde_derive.rs"; then
        note "stub serde_derive (proc-macro)"
        rustc --edition $EDITION "${OPT[@]}" --crate-type proc-macro \
            --crate-name serde_derive "$RIG/stubs/serde_derive.rs" --out-dir "$OUT"
    fi
    if stale "$OUT/libserde.rlib" "$RIG/stubs/serde.rs" "$OUT/libserde_derive.so"; then
        note "stub serde"
        rustc --edition $EDITION "${OPT[@]}" --crate-type rlib --crate-name serde \
            "$RIG/stubs/serde.rs" --extern "serde_derive=$OUT/libserde_derive.so" \
            -L "$OUT" --out-dir "$OUT"
    fi
    if stale "$OUT/librand.rlib" "$RIG/stubs/rand.rs"; then
        note "stub rand (faithful rand 0.8 StdRng)"
        rustc --edition $EDITION "${OPT[@]}" --crate-type rlib --crate-name rand \
            "$RIG/stubs/rand.rs" --out-dir "$OUT"
    fi
    if stale "$OUT/librayon.rlib" "$RIG/stubs/rayon.rs"; then
        note "stub rayon (sequential)"
        rustc --edition $EDITION "${OPT[@]}" --crate-type rlib --crate-name rayon \
            "$RIG/stubs/rayon.rs" --out-dir "$OUT"
    fi
}

# Self-test the rand stub once (ChaCha RFC vector etc).
selftest_rand() {
    local bin="$OUT/tests/rand_selftest"
    if stale "$bin" "$RIG/stubs/rand.rs"; then
        note "rand stub self-test"
        rustc --edition $EDITION "${OPT[@]}" --test --crate-name rand_selftest \
            "$RIG/stubs/rand.rs" -o "$bin"
        "$bin" -q >/dev/null
    fi
}

# ----------------------------------------------------------- workspace libs
externs() { # externs NAME... -> echoes --extern flags
    local e
    for e in "$@"; do echo -n "--extern $e=$OUT/lib$e.rlib "; done
}

# build_lib <crate_name> <src_dir> [EXTRA_FLAGS -- ] <extern>...
build_lib() {
    local name=$1 dir=$2; shift 2
    local extra=()
    while [[ $# -gt 0 && "$1" != "--" ]]; do extra+=("$1"); shift; done
    [[ $# -gt 0 ]] && shift # drop --
    local art="$OUT/lib${name}.rlib" deps=() e
    for e in "$@"; do deps+=("$OUT/lib$e.rlib"); done
    if stale "$art" "$dir/src" "$OUT/librand.rlib" "$OUT/libserde.rlib" "${deps[@]}"; then
        note "lib $name"
        # shellcheck disable=SC2046
        rustc --edition $EDITION "${OPT[@]}" --crate-type rlib --crate-name "$name" \
            "$dir/src/lib.rs" -L "$OUT" --out-dir "$OUT" "${extra[@]}" $(externs "$@")
    fi
}

build_libs() {
    build_lib wavekey_math  "$ROOT/crates/wavekey-math"  -- serde
    build_lib wavekey_obs   "$ROOT/crates/wavekey-obs"   --
    build_lib wavekey_dsp   "$ROOT/crates/wavekey-dsp"   -- serde wavekey_math
    build_lib wavekey_nn    "$ROOT/crates/wavekey-nn"    -- serde rand
    build_lib wavekey_imu   "$ROOT/crates/wavekey-imu"   -- serde rand wavekey_math wavekey_dsp wavekey_obs
    build_lib wavekey_rfid  "$ROOT/crates/wavekey-rfid"  -- serde rand wavekey_math wavekey_dsp wavekey_imu wavekey_obs
    build_lib wavekey_crypto "$ROOT/crates/wavekey-crypto" --cfg 'feature="parallel"' -- \
        serde rand rayon wavekey_obs
    build_lib wavekey_store "$ROOT/crates/wavekey-store" --
    build_lib wavekey_core  "$ROOT/crates/wavekey-core"  -- serde rand \
        wavekey_math wavekey_dsp wavekey_nn wavekey_imu wavekey_rfid wavekey_crypto wavekey_store wavekey_obs
    build_lib wavekey_gateway "$ROOT/crates/wavekey-gateway" -- rand \
        wavekey_crypto wavekey_core wavekey_store wavekey_obs
    # facade
    local art="$OUT/libwavekey.rlib"
    if stale "$art" "$ROOT/src" "$OUT/libwavekey_core.rlib" "$OUT/libwavekey_store.rlib"; then
        note "lib wavekey (facade)"
        # shellcheck disable=SC2046
        rustc --edition $EDITION "${OPT[@]}" --crate-type rlib --crate-name wavekey \
            "$ROOT/src/lib.rs" -L "$OUT" --out-dir "$OUT" \
            $(externs wavekey_math wavekey_dsp wavekey_nn wavekey_imu wavekey_rfid wavekey_crypto wavekey_store wavekey_core wavekey_obs)
    fi
    build_lib wavekey_bench "$ROOT/crates/wavekey-bench" -- rand \
        wavekey_math wavekey_dsp wavekey_nn wavekey_imu wavekey_rfid wavekey_crypto wavekey_store wavekey_core wavekey_obs wavekey_gateway
}

# ------------------------------------------------------------------- tests
# run_unit <crate_name> <src_dir> [EXTRA -- ] <extern>...
run_unit() {
    local name=$1 dir=$2; shift 2
    local extra=()
    while [[ $# -gt 0 && "$1" != "--" ]]; do extra+=("$1"); shift; done
    [[ $# -gt 0 ]] && shift
    local bin="$OUT/tests/${name}_unit" deps=() e
    for e in "$@"; do deps+=("$OUT/lib$e.rlib"); done
    if stale "$bin" "$dir/src" "$OUT/librand.rlib" "${deps[@]}"; then
        note "unit tests: $name (compile)"
        # shellcheck disable=SC2046
        rustc --edition $EDITION "${OPT[@]}" --test --crate-name "$name" \
            "$dir/src/lib.rs" -L "$OUT" -o "$bin" "${extra[@]}" $(externs "$@")
    fi
    note "unit tests: $name"
    "$bin" -q
}

# run_itest <file> <extern>...
run_itest() {
    local file=$1; shift
    local name
    name=$(basename "$file" .rs)
    local bin="$OUT/tests/it_${name}"
    if stale "$bin" "$file" "$OUT/libwavekey.rlib"; then
        note "integration test: $name (compile)"
        # shellcheck disable=SC2046
        rustc --edition $EDITION "${OPT[@]}" --test --crate-name "it_$name" \
            "$file" -L "$OUT" -o "$bin" $(externs "$@")
    fi
    note "integration test: $name"
    "$bin" -q
}

run_tests() {
    selftest_rand
    run_unit wavekey_math  "$ROOT/crates/wavekey-math"  -- serde
    run_unit wavekey_obs   "$ROOT/crates/wavekey-obs"   --
    run_unit wavekey_dsp   "$ROOT/crates/wavekey-dsp"   -- serde wavekey_math
    run_unit wavekey_nn    "$ROOT/crates/wavekey-nn"    -- serde rand
    run_unit wavekey_imu   "$ROOT/crates/wavekey-imu"   -- serde rand wavekey_math wavekey_dsp wavekey_obs
    run_unit wavekey_rfid  "$ROOT/crates/wavekey-rfid"  -- serde rand wavekey_math wavekey_dsp wavekey_imu wavekey_obs
    run_unit wavekey_crypto "$ROOT/crates/wavekey-crypto" --cfg 'feature="parallel"' -- \
        serde rand rayon wavekey_obs
    run_unit wavekey_store "$ROOT/crates/wavekey-store" --
    run_unit wavekey_core  "$ROOT/crates/wavekey-core"  -- serde rand \
        wavekey_math wavekey_dsp wavekey_nn wavekey_imu wavekey_rfid wavekey_crypto wavekey_store wavekey_obs
    run_unit wavekey_gateway "$ROOT/crates/wavekey-gateway" -- rand \
        wavekey_crypto wavekey_core wavekey_store wavekey_obs
    run_unit wavekey_bench "$ROOT/crates/wavekey-bench" -- rand \
        wavekey_math wavekey_dsp wavekey_nn wavekey_imu wavekey_rfid wavekey_crypto wavekey_store wavekey_core wavekey_obs wavekey_gateway
    # Root integration tests (proptest-based crate tests are cargo-only).
    run_itest "$ROOT/tests/protocol_security.rs" wavekey rand
    run_itest "$ROOT/tests/differential_agreement.rs" wavekey rand
    run_itest "$ROOT/tests/differential_crypto.rs" wavekey rand
    run_itest "$ROOT/tests/substrate_interop.rs" wavekey rand
    run_itest "$ROOT/tests/end_to_end.rs" wavekey rand
    run_itest "$ROOT/tests/quantized_inference.rs" wavekey rand
    run_itest "$ROOT/tests/thread_determinism.rs" wavekey rand rayon
    run_itest "$ROOT/tests/store_recovery.rs" wavekey rand
    note "all rig tests passed"
}

# -------------------------------------------------------------------- bins
build_bin() {
    local name=$1
    local src="$ROOT/crates/wavekey-bench/src/bin/${name}.rs"
    [[ -f "$src" ]] || { echo "no such bin: $name" >&2; exit 1; }
    local bin="$OUT/bin/$name"
    if stale "$bin" "$src" "$OUT/libwavekey_bench.rlib"; then
        note "bin $name"
        # shellcheck disable=SC2046
        rustc --edition $EDITION "${OPT[@]}" --crate-name "$name" "$src" \
            -L "$OUT" -o "$bin" $(externs rand wavekey_bench \
            wavekey_math wavekey_dsp wavekey_nn wavekey_imu wavekey_rfid wavekey_crypto wavekey_store wavekey_core wavekey_obs wavekey_gateway)
    fi
}

# -------------------------------------------------------------------- main
cmd="${1:-build}"
case "$cmd" in
    build)
        build_stubs; build_libs ;;
    test)
        build_stubs; build_libs; run_tests ;;
    bin)
        shift; build_stubs; build_libs
        for b in "$@"; do build_bin "$b"; done ;;
    run)
        shift; b=$1; shift
        build_stubs; build_libs; build_bin "$b"
        cd "$ROOT" && CARGO_TARGET_DIR="${CARGO_TARGET_DIR:-$ROOT/target}" "$OUT/bin/$b" "$@" ;;
    *)
        echo "usage: build.sh [build|test|bin NAME...|run NAME [ARGS...]]" >&2; exit 2 ;;
esac
