//! # WaveKey
//!
//! A full-system reproduction of *WaveKey: Secure Mobile Ad Hoc Access to
//! RFID-Protected Systems* (ICDCS 2024).
//!
//! WaveKey establishes an ad hoc cryptographic key between a user's mobile
//! device and an RFID server. The user waves the mobile device together with
//! an RFID tag for about two seconds; the random gesture induces correlated
//! IMU readings on the phone and backscatter phase/magnitude variations at
//! the RFID reader. Two jointly trained autoencoders project the two
//! modalities into a common latent space; equiprobable quantization and Gray
//! coding turn the latent vectors into two similar key-seeds; and a
//! bidirectional 1-out-of-2 oblivious-transfer protocol with code-offset
//! reconciliation turns the seeds into one identical key.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`math`] — linear algebra, statistics, NIST randomness tests.
//! * [`dsp`] — Savitzky-Golay filtering, phase unwrapping, quantization,
//!   Gray coding.
//! * [`nn`] — a from-scratch CNN micro-framework.
//! * [`imu`] — gesture simulation, IMU sensor models, mobile-side pipeline.
//! * [`rfid`] — UHF backscatter channel simulator and server-side pipeline.
//! * [`crypto`] — big integers, SHA-256/HMAC, oblivious transfer, BCH codes.
//! * [`core`] — the WaveKey scheme itself: key-seed generation, the
//!   OT-based key-agreement protocol, the training harness, and attack
//!   models.
//! * [`obs`] — observability: structured spans, metrics with
//!   Prometheus/JSON exporters, and the per-session flight recorder.
//! * [`store`] — the durable state layer under the access service: a
//!   checksummed write-ahead journal, compacted snapshots, deterministic
//!   replay, and seeded storage-fault injection.
//!
//! ## Quickstart
//!
//! ```no_run
//! use wavekey::core::session::{Session, SessionConfig};
//! use wavekey::core::training::{TrainingConfig, train_autoencoders};
//! use wavekey::core::dataset::DatasetConfig;
//!
//! # fn main() -> Result<(), wavekey::core::Error> {
//! // Train the cross-modal autoencoders on simulated gestures (one-time).
//! let models = train_autoencoders(
//!     &DatasetConfig::small(),
//!     &TrainingConfig::fast(),
//!     7,
//! )?;
//!
//! // Establish a 256-bit key from a fresh simulated gesture.
//! let mut session = Session::new(SessionConfig::default(), models, 42);
//! let outcome = session.establish_key()?;
//! println!("key established: {} bits", outcome.key.len() * 8);
//! # Ok(())
//! # }
//! ```

pub use wavekey_core as core;
pub use wavekey_obs as obs;
pub use wavekey_crypto as crypto;
pub use wavekey_dsp as dsp;
pub use wavekey_imu as imu;
pub use wavekey_math as math;
pub use wavekey_nn as nn;
pub use wavekey_rfid as rfid;
pub use wavekey_store as store;
