//! Crash-at-every-boundary recovery: the durable store's observable
//! contract is that killing the process at ANY journal byte offset and
//! recovering yields exactly the state after some prefix of the applied
//! operations — never a torn half-operation, never a key the system
//! didn't hold at some point ("divergent key"), never a panic.
//!
//! Three angles:
//!
//! 1. truncate the journal at every record boundary AND at mid-record
//!    offsets, reopen, and check the recovered digest equals the digest
//!    the twin store had after exactly that many complete operations;
//! 2. snapshot + tail replay reconstructs the same state as full replay
//!    while compacting the journal;
//! 3. the `AccessService` facade end-to-end: issue/bind/rotate/revoke,
//!    kill, reopen, and authenticate against the recovered keys.

use std::collections::HashMap;

use wavekey::core::service::{AccessService, DEFAULT_TENANT};
use wavekey::core::session::SessionConfig;
use wavekey::core::WaveKeyConfig;
use wavekey::core::WaveKeyModels;
use wavekey::rfid::channel::TagModel;
use wavekey::store::record::decode_record;
use wavekey::store::{
    DurableStore, MemVolume, StoreConfig, TenantQuota, Volume, JOURNAL_FILE,
};

/// A deterministic mixed workload over two tenants. Every operation
/// appends exactly one journal record.
fn op_script() -> Vec<Op> {
    let mut ops = vec![
        Op::CreateTenant { max_tickets: 64 },
        Op::CreateTenant { max_tickets: 64 },
    ];
    for i in 0u8..12 {
        let tenant = 1 + u64::from(i % 2);
        ops.push(Op::Issue { tenant, epc: epc_of(i) });
        ops.push(Op::Bind { tenant, epc: epc_of(i), key: [0x10 + i; 32] });
        if i % 3 == 0 {
            ops.push(Op::Rotate { tenant, epc: epc_of(i), key: [0x80 + i; 32] });
        }
        if i % 5 == 4 {
            ops.push(Op::Revoke { tenant, epc: epc_of(i) });
        }
    }
    ops
}

#[derive(Clone)]
enum Op {
    CreateTenant { max_tickets: u32 },
    Issue { tenant: u64, epc: [u8; 12] },
    Bind { tenant: u64, epc: [u8; 12], key: [u8; 32] },
    Rotate { tenant: u64, epc: [u8; 12], key: [u8; 32] },
    Revoke { tenant: u64, epc: [u8; 12] },
}

fn epc_of(i: u8) -> [u8; 12] {
    let mut e = [0u8; 12];
    e[0] = b'T';
    e[11] = i;
    e
}

fn apply(store: &mut DurableStore, op: &Op) {
    match op {
        Op::CreateTenant { max_tickets } => {
            store
                .create_tenant(TenantQuota {
                    max_tickets: *max_tickets,
                    enroll_burst: u32::MAX,
                    enroll_refill: 0,
                })
                .map(|_| ())
                .expect("create tenant");
        }
        Op::Issue { tenant, epc } => {
            store.issue(*tenant, *epc, 0).map(|_| ()).expect("issue");
        }
        Op::Bind { tenant, epc, key } => {
            store.bind_key(*tenant, *epc, key).map(|_| ()).expect("bind");
        }
        Op::Rotate { tenant, epc, key } => {
            store.rotate_key(*tenant, *epc, key).map(|_| ()).expect("rotate");
        }
        Op::Revoke { tenant, epc } => {
            store.revoke(*tenant, *epc).expect("revoke");
        }
    }
}

/// Record boundaries (byte offsets) of a journal image, starting at 0
/// and ending at `bytes.len()`.
fn boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut offs = vec![0usize];
    let mut at = 0;
    while at < bytes.len() {
        let (_, used) = decode_record(&bytes[at..]).expect("final journal is clean");
        at += used;
        offs.push(at);
    }
    offs
}

fn reopen_truncated(media: &MemVolume, cut: usize) -> DurableStore {
    let mut image = media.deep_clone();
    let journal = image.read(JOURNAL_FILE).expect("read journal").unwrap_or_default();
    image
        .write(JOURNAL_FILE, &journal[..cut.min(journal.len())])
        .expect("truncate journal image");
    DurableStore::open(Box::new(image), StoreConfig::default()).expect("recovery never fails")
}

#[test]
fn truncation_at_every_offset_recovers_an_exact_operation_prefix() {
    let media = MemVolume::new();
    let mut store =
        DurableStore::open(Box::new(media.clone()), StoreConfig::default()).expect("open");

    // Digest after every complete operation, plus the key history every
    // (tenant, epc) pair ever held — the "no divergent keys" oracle.
    let ops = op_script();
    let mut digests = vec![store.full_digest().expect("digest")];
    let mut history: HashMap<(u64, [u8; 12]), Vec<Vec<u8>>> = HashMap::new();
    for op in &ops {
        apply(&mut store, op);
        digests.push(store.full_digest().expect("digest"));
        match op {
            Op::Bind { tenant, epc, key } | Op::Rotate { tenant, epc, key } => {
                history.entry((*tenant, *epc)).or_default().push(key.to_vec());
            }
            _ => {}
        }
    }

    let journal = media.read(JOURNAL_FILE).expect("read journal").expect("journal exists");
    let offs = boundaries(&journal);
    assert_eq!(offs.len(), ops.len() + 1, "one record per operation");

    let mut kill_points = 0usize;
    for (i, pair) in offs.windows(2).enumerate() {
        let (start, end) = (pair[0], pair[1]);
        // Clean cut at the boundary, a cut inside the header, and a cut
        // inside the payload: all must recover to exactly `i` ops.
        for cut in [start, start + 7, start + (end - start) / 2 + 1] {
            let mut back = reopen_truncated(&media, cut);
            assert_eq!(
                back.full_digest().expect("digest"),
                digests[i],
                "cut at byte {cut} must recover the {i}-op prefix"
            );
            // Every recovered key must be one the pair held at some point.
            for (&(tenant, epc), held) in &history {
                if let Some(key) = back.peek_key(tenant, epc) {
                    assert!(
                        held.iter().any(|h| h == key),
                        "divergent key for tenant {tenant} epc {epc:?}"
                    );
                }
            }
            kill_points += 1;
        }
    }
    // And the final boundary: a kill after the last append loses nothing.
    let mut full = reopen_truncated(&media, journal.len());
    assert_eq!(full.full_digest().expect("digest"), *digests.last().unwrap());
    assert!(kill_points >= 3 * ops.len());
}

#[test]
fn snapshot_plus_tail_replay_matches_full_replay() {
    let plain = MemVolume::new();
    let snapped = MemVolume::new();
    let mut a = DurableStore::open(Box::new(plain.clone()), StoreConfig::default()).expect("open");
    let mut b =
        DurableStore::open(Box::new(snapped.clone()), StoreConfig::default()).expect("open");

    let ops = op_script();
    let mid = ops.len() / 2;
    for (i, op) in ops.iter().enumerate() {
        apply(&mut a, op);
        apply(&mut b, op);
        if i == mid {
            b.snapshot().expect("snapshot");
        }
    }
    assert!(
        b.journal_len().expect("len") < a.journal_len().expect("len"),
        "snapshot compacts the journal"
    );

    let mut ra =
        DurableStore::open(Box::new(plain.deep_clone()), StoreConfig::default()).expect("reopen");
    let mut rb =
        DurableStore::open(Box::new(snapped.deep_clone()), StoreConfig::default()).expect("reopen");
    assert_eq!(ra.full_digest().expect("digest"), rb.full_digest().expect("digest"));
    assert_eq!(ra.full_state_bytes().expect("bytes"), rb.full_state_bytes().expect("bytes"));
    assert!(
        rb.stats().records_replayed < ra.stats().records_replayed,
        "snapshotted store replays only the tail"
    );
}

#[test]
fn access_service_end_to_end_kill_and_reopen() {
    let media = MemVolume::new();
    let models = WaveKeyModels::new(12, 5);
    let config = SessionConfig {
        use_tiny_group: true,
        wavekey: WaveKeyConfig { tau: 10.0, ..Default::default() },
        ..Default::default()
    };
    let mut svc = AccessService::open(
        models,
        config.clone(),
        2024,
        Box::new(media.clone()),
        StoreConfig::default(),
    )
    .expect("open service");

    let badge = svc.issue_ticket(TagModel::Alien9640A);
    let door = svc.issue_ticket(TagModel::DogBoneB);
    let gone = svc.issue_ticket(TagModel::Alien9730A);
    svc.store_mut().bind_key(DEFAULT_TENANT, badge.epc.0, &[0xAA; 32]).expect("bind");
    svc.store_mut().bind_key(DEFAULT_TENANT, door.epc.0, &[0xBB; 32]).expect("bind");
    svc.store_mut().bind_key(DEFAULT_TENANT, gone.epc.0, &[0xCC; 32]).expect("bind");
    let rotated = svc.rotate_key(DEFAULT_TENANT, door.epc).expect("rotate");
    svc.revoke_ticket(DEFAULT_TENANT, gone.epc).expect("revoke");

    // Kill.
    drop(svc);
    let mut back = AccessService::open(
        WaveKeyModels::new(12, 5),
        config,
        2024,
        Box::new(media.deep_clone()),
        StoreConfig::default(),
    )
    .expect("reopen service");

    assert_eq!(back.issued(), 3);
    let mac_badge = wavekey::crypto::hmac_sha256(&[0xAA; 32], b"open sesame");
    let mac_door_old = wavekey::crypto::hmac_sha256(&[0xBB; 32], b"open sesame");
    let mac_door_new = wavekey::crypto::hmac_sha256(&rotated, b"open sesame");
    let mac_gone = wavekey::crypto::hmac_sha256(&[0xCC; 32], b"open sesame");
    assert!(back.verify_request(badge.epc, b"open sesame", &mac_badge));
    assert!(!back.verify_request(door.epc, b"open sesame", &mac_door_old));
    assert!(back.verify_request(door.epc, b"open sesame", &mac_door_new));
    assert!(!back.verify_request(gone.epc, b"open sesame", &mac_gone));
    assert_eq!(back.store().stats().replays, 1);
}
