//! Quantized-inference integration: the int8 encoder path must be
//! invisible to the protocol. Calibrated models must yield bit-identical
//! key-seeds with `quantized_inference` on or off, the vectorized int8
//! kernels must match the scalar reference network exactly on every
//! window (seeded-exhaustive differential), and calibrated models must
//! survive a serialization round trip without perturbing the seeds.

use wavekey::core::calibrate;
use wavekey::core::dataset::{generate, DatasetConfig};
use wavekey::core::model::WaveKeyModels;
use wavekey::core::session::{Session, SessionConfig};
use wavekey::core::training::{train, TrainingConfig};
use wavekey::core::WaveKeyConfig;
use wavekey::nn::quant::QuantizedSequential;
use wavekey::nn::tensor::Tensor;

fn trained_models(corpus_cfg: &DatasetConfig) -> WaveKeyModels {
    let ds = generate(corpus_cfg);
    let cfg = TrainingConfig { epochs: 2, batch_size: 8, ..Default::default() };
    let mut models = WaveKeyModels::new(cfg.l_f, 42);
    train(&mut models, &ds, &cfg, 42).expect("training");
    models
}

fn quantized_session(models: WaveKeyModels, quantized: bool, seed: u64) -> Session {
    let config = SessionConfig {
        use_tiny_group: true,
        quantized_inference: quantized,
        wavekey: WaveKeyConfig { tau: 10.0, ..Default::default() },
        ..Default::default()
    };
    Session::new(config, models, seed)
}

fn batched(t: &Tensor) -> Tensor {
    let s = t.shape();
    t.reshaped(vec![1, s[0], s[1]])
}

#[test]
fn quantized_sessions_derive_bit_identical_seeds() {
    let corpus_cfg = DatasetConfig::tiny();
    let mut models = trained_models(&corpus_cfg);
    let corpus = generate(&corpus_cfg);
    let outcome = calibrate(&mut models, &corpus, WaveKeyConfig::default().n_b);
    assert_eq!(outcome.samples, corpus.len());
    assert_eq!(outcome.imu_quantized, models.imu_en_q.is_some());
    assert_eq!(outcome.rf_quantized, models.rf_en_q.is_some());

    // Same session seed, only the inference path differs: seeds must be
    // bit-identical whether the encoder ran in int8 or f32 — this holds
    // both when calibration succeeded (the gated contract) and when a
    // model fell back (routing returns to f32).
    for session_seed in [7u64, 8, 9] {
        let (f_m, f_r) = quantized_session(models.clone(), false, session_seed)
            .derive_seeds()
            .expect("f32 pipeline");
        let (q_m, q_r) = quantized_session(models.clone(), true, session_seed)
            .derive_seeds()
            .expect("quantized pipeline");
        assert_eq!(f_m, q_m, "mobile seed drifted (session seed {session_seed})");
        assert_eq!(f_r, q_r, "reader seed drifted (session seed {session_seed})");
    }
}

#[test]
fn int8_kernels_match_scalar_reference_exhaustively() {
    // Seeded-exhaustive differential: untrained (seed-randomized) encoder
    // weights, every corpus window, both encoder geometries. The scalar
    // reference network computes identical quantization math with naive
    // loops, so any divergence indicts the vectorized GEMM/pack path.
    for model_seed in [1u64, 2, 3] {
        let mut models = WaveKeyModels::new(12, model_seed);
        let corpus = generate(&DatasetConfig::tiny());
        let imu_inputs: Vec<Tensor> =
            corpus.samples.iter().map(|s| batched(&s.a)).collect();
        let rf_inputs: Vec<Tensor> =
            corpus.samples.iter().map(|s| batched(&s.r)).collect();
        for (net, inputs) in
            [(&mut models.imu_en, &imu_inputs), (&mut models.rf_en, &rf_inputs)]
        {
            let mut q = QuantizedSequential::from_sequential(net, inputs)
                .expect("encoder-shaped network");
            for (i, x) in inputs.iter().enumerate() {
                let fast = q.forward(x);
                let reference = q.reference_forward(x);
                assert_eq!(
                    fast.data(),
                    reference.data(),
                    "seed {model_seed}, window {i}"
                );
            }
        }
    }
}

#[test]
fn calibrated_models_roundtrip_serialization_with_identical_seeds() {
    let corpus_cfg = DatasetConfig::tiny();
    let mut models = trained_models(&corpus_cfg);
    let corpus = generate(&corpus_cfg);
    calibrate(&mut models, &corpus, WaveKeyConfig::default().n_b);

    let decoded = WaveKeyModels::decode(&models.encode()).expect("codec roundtrip");
    assert_eq!(decoded.imu_en_q, models.imu_en_q);
    assert_eq!(decoded.rf_en_q, models.rf_en_q);

    let (a_m, a_r) =
        quantized_session(models, true, 11).derive_seeds().expect("original");
    let (b_m, b_r) =
        quantized_session(decoded, true, 11).derive_seeds().expect("decoded");
    assert_eq!(a_m, b_m);
    assert_eq!(a_r, b_r);
}
