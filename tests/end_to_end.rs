//! Cross-crate integration: the complete WaveKey workflow from gesture
//! simulation through trained-model seed derivation to an established
//! key.

use wavekey::core::bits::mismatch_rate;
use wavekey::core::channel::PassiveChannel;
use wavekey::core::dataset::{generate, DatasetConfig};
use wavekey::core::model::WaveKeyModels;
use wavekey::core::session::{Session, SessionConfig};
use wavekey::core::training::{train, TrainingConfig};
use wavekey::core::WaveKeyConfig;

fn quick_models() -> WaveKeyModels {
    let ds = generate(&DatasetConfig::tiny());
    let cfg = TrainingConfig { epochs: 2, batch_size: 8, ..Default::default() };
    let mut models = WaveKeyModels::new(cfg.l_f, 42);
    train(&mut models, &ds, &cfg, 42).expect("training");
    models
}

fn test_session(models: WaveKeyModels) -> Session {
    let config = SessionConfig {
        use_tiny_group: true,
        wavekey: WaveKeyConfig { tau: 10.0, ..Default::default() },
        ..Default::default()
    };
    Session::new(config, models, 7)
}

#[test]
fn full_workflow_produces_structurally_valid_outputs() {
    let mut session = test_session(quick_models());
    // Seeds always derive; key establishment may fail with barely-trained
    // models — both outcomes must be clean.
    let (s_m, s_r) = session.derive_seeds().expect("pipelines");
    assert_eq!(s_m.len(), 48);
    assert_eq!(s_r.len(), 48);
    assert!(mismatch_rate(&s_m, &s_r) <= 1.0);

    match session.establish_key() {
        Ok(out) => {
            assert_eq!(out.key.len(), 32);
            assert_eq!(out.key_bits_len(), 256);
        }
        Err(wavekey::core::Error::Agreement(_)) => {}
        Err(e) => panic!("unexpected error class: {e}"),
    }
}

trait OutcomeExt {
    fn key_bits_len(&self) -> usize;
}

impl OutcomeExt for wavekey::core::SessionOutcome {
    fn key_bits_len(&self) -> usize {
        self.agreement.key_bits.len()
    }
}

#[test]
fn identical_seed_agreement_over_full_stack() {
    let mut session = test_session(quick_models());
    let seed: Vec<bool> = (0..48).map(|i| (i * 7) % 3 == 0).collect();
    let out = session
        .agree(&seed, &seed, &mut PassiveChannel)
        .expect("identical seeds must agree");
    assert_eq!(out.key.len(), 32);
    assert_eq!(out.seed_mismatch_bits, 0);
    // Different nonces / sequence draws per run: a second run gives a
    // different key even from the same seeds.
    let out2 = session.agree(&seed, &seed, &mut PassiveChannel).expect("agree again");
    assert_ne!(out.key, out2.key, "keys must be fresh per run");
}

#[test]
fn session_is_reproducible_given_same_rng_seed() {
    let models = quick_models();
    let mut s1 = test_session(models.clone());
    let mut s2 = test_session(models);
    let a = s1.derive_seeds().expect("seeds");
    let b = s2.derive_seeds().expect("seeds");
    assert_eq!(a, b);
}

#[test]
fn dataset_to_training_to_inference_shapes() {
    let models = quick_models();
    // The facade re-exports must interoperate: run an encoder forward on
    // a dataset sample through the public API.
    let ds = generate(&DatasetConfig::tiny());
    let sample = &ds.samples[0];
    let mut imu_en = models.imu_en.clone();
    let t = wavekey::nn::Tensor::stack(std::slice::from_ref(&sample.a));
    let latent = imu_en.forward(&t, false);
    assert_eq!(latent.shape(), &[1, models.l_f]);
}
