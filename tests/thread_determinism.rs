//! Thread-count determinism: training the autoencoder stack inside a
//! 1-thread and a 4-thread rayon pool must produce bit-identical loss
//! curves and serialized model bytes.
//!
//! This is the observable contract of the GEMM kernel's deterministic
//! reduction (`wavekey-nn/src/gemm.rs`): parallelism splits the output
//! into disjoint row bands and every element accumulates its products in
//! the same ascending-`k` order on every width, so thread count cannot
//! leak into trained weights — and therefore not into quantized key bits.
//!
//! Under the offline rig the rayon stand-in runs both pools sequentially
//! (the test still pins the training path); under cargo with the
//! default-on `parallel` feature the two pools genuinely differ in width.

use wavekey::core::dataset::{generate, DatasetConfig};
use wavekey::core::model::WaveKeyModels;
use wavekey::core::training::{train, TrainingConfig};
use wavekey::imu::sensors::DeviceModel;

/// Trains a small run entirely inside a pool of the given width and
/// returns the per-epoch loss curve plus the serialized models.
fn train_in_pool(threads: usize) -> (Vec<f32>, Vec<u8>) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool");
    pool.install(|| {
        let dataset = generate(&DatasetConfig {
            volunteers: 2,
            devices: vec![DeviceModel::GalaxyWatch],
            gestures_per_combo: 2,
            windows_per_gesture: 8,
            active_duration: 6.0,
            dynamic_fraction: 0.5,
            seed: 0x7357,
        });
        let config = TrainingConfig { epochs: 2, ..Default::default() };
        let mut models = WaveKeyModels::new(config.l_f, 0x5eed);
        let report = train(&mut models, &dataset, &config, 0x5eed).expect("training converges");
        (report.epoch_losses, models.encode())
    })
}

#[test]
fn training_is_bit_identical_at_1_and_4_threads() {
    let (losses_1, model_1) = train_in_pool(1);
    let (losses_4, model_4) = train_in_pool(4);
    assert_eq!(losses_1.len(), 2);
    assert_eq!(
        losses_1, losses_4,
        "loss curves diverge between 1- and 4-thread pools"
    );
    assert_eq!(
        model_1, model_4,
        "serialized model bytes diverge between 1- and 4-thread pools"
    );
}
