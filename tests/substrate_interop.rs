//! Cross-crate integration: the simulated substrates compose correctly
//! (gesture → sensors → pipelines → tensors; crypto layers interlock).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey::crypto::ecc::{Bch, CodeOffset};
use wavekey::crypto::group::DhGroup;
use wavekey::crypto::ot::{OtReceiver, OtSender};
use wavekey::imu::gesture::{GestureConfig, GestureGenerator, VolunteerId};
use wavekey::imu::pipeline::{process_imu, ImuPipelineConfig};
use wavekey::imu::sensors::{sample_imu, DeviceModel};
use wavekey::math::Vec3;
use wavekey::rfid::channel::TagModel;
use wavekey::rfid::environment::{Environment, UserPlacement};
use wavekey::rfid::pipeline::{process_rfid, RfidPipelineConfig};
use wavekey::rfid::reader::{record_rfid, ReaderSpec};

#[test]
fn one_gesture_feeds_both_pipelines_consistently() {
    let env = Environment::room(2);
    let placement = UserPlacement { distance: 3.0, azimuth_deg: 20.0 };
    let hand = placement.hand_position(&env);
    let dir = env.antenna - hand;
    let gesture = GestureGenerator::new(VolunteerId(3), 11)
        .generate(&GestureConfig::default())
        .rotated_yaw(dir.y.atan2(dir.x));

    let imu_rec = sample_imu(&gesture, &DeviceModel::Pixel8.spec(), 12);
    let a = process_imu(&imu_rec, &ImuPipelineConfig::default()).expect("imu side");
    assert_eq!(a.len(), 200);

    let channel = env.channel(TagModel::DogBoneA, 0, 12);
    let rfid_rec = record_rfid(
        &gesture,
        hand,
        Vec3::new(0.03, 0.0, 0.0),
        &channel,
        &ReaderSpec::default(),
        12,
    );
    let r = process_rfid(&rfid_rec, &RfidPipelineConfig::default()).expect("rfid side");
    assert_eq!(r.len(), 400);

    // The two independently detected onsets agree to within ~0.2 s.
    assert!(
        (a.start_time - r.start_time).abs() < 0.2,
        "onsets diverge: imu {} rfid {}",
        a.start_time,
        r.start_time
    );

    // Tensor conversions accept the processed outputs.
    let at = wavekey::core::model::imu_to_tensor(&a);
    let rt = wavekey::core::model::rfid_to_tensor(&r);
    assert_eq!(at.shape(), &[1, 3, 200]);
    assert_eq!(rt.shape(), &[1, 3, 400]);
}

#[test]
fn ot_transports_bch_codewords_exactly() {
    // The protocol's composition: random BCH codewords through the OT,
    // decoded and error-corrected on the far side.
    let group = DhGroup::tiny_test_group();
    let bch = Bch::new(3).unwrap();
    let mut rng = StdRng::seed_from_u64(21);
    let msg: Vec<bool> = (0..bch.k()).map(|_| rng.gen()).collect();
    let codeword = bch.encode(&msg).unwrap();
    let payload = wavekey::core::bits::pack_bits(&codeword);

    let mut rng_s = StdRng::seed_from_u64(22);
    let mut rng_r = StdRng::seed_from_u64(23);
    let (sender, ma) = OtSender::start(
        &group,
        vec![(payload.clone(), vec![0u8; payload.len()])],
        &mut rng_s,
    );
    let (receiver, mb) = OtReceiver::respond(&group, &[false], &ma, &mut rng_r).unwrap();
    let me = sender.encrypt(&group, &mb).unwrap();
    let received = receiver.decrypt(&group, &me).unwrap();
    let bits = wavekey::core::bits::unpack_bits(&received[0], 127);

    // Flip two bits in transit-equivalent corruption; BCH repairs them.
    let mut noisy = bits;
    noisy[5] = !noisy[5];
    noisy[80] = !noisy[80];
    let decoded = bch.decode(&noisy).unwrap();
    assert_eq!(decoded, codeword);
    assert_eq!(bch.extract_message(&decoded), msg);
}

#[test]
fn code_offset_reconciles_realistic_seed_noise() {
    // Emulate the protocol's key-noise structure: segments of 6
    // consecutive bits corrupted (a wrong OT selection), then interleaved
    // reconciliation.
    let co = CodeOffset::new(Bch::new(5).unwrap());
    let mut rng = StdRng::seed_from_u64(31);
    let k_len: usize = 288;
    let key: Vec<bool> = (0..k_len).map(|_| rng.gen()).collect();

    let blocks = k_len.div_ceil(127);
    let inter = wavekey::core::bits::interleave(&key, blocks, 127);
    let helper = co.commit(&inter, &mut rng);

    // Two bad segments with ~half their bits flipped.
    let mut noisy = key.clone();
    for seg_start in [36usize, 180] {
        for j in 0..6 {
            if rng.gen::<bool>() {
                noisy[seg_start + j] = !noisy[seg_start + j];
            }
        }
    }
    let noisy_inter = wavekey::core::bits::interleave(&noisy, blocks, 127);
    let recovered = co
        .reconcile(&noisy_inter, &helper, blocks * 127)
        .expect("within correction radius");
    let out = wavekey::core::bits::deinterleave(&recovered, blocks, 127, k_len);
    assert_eq!(out, key);
}

#[test]
fn environments_and_tags_compose() {
    // Every environment × tag builds a working channel and yields a
    // processable recording.
    let gesture = GestureGenerator::new(VolunteerId(0), 41).generate(&GestureConfig::default());
    for env_id in 1..=4u32 {
        let env = Environment::room(env_id);
        let hand = UserPlacement::default().hand_position(&env);
        for tag in TagModel::ALL {
            let channel = env.channel(tag, 2, 42);
            let rec = record_rfid(
                &gesture,
                hand,
                Vec3::ZERO,
                &channel,
                &ReaderSpec::default(),
                43,
            );
            assert!(rec.len() > 500, "env {env_id} tag {tag:?}");
        }
    }
}
