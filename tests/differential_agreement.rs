//! Differential test: the sans-IO state-machine lockstep driver must be
//! bit-identical to the monolithic key agreement it replaced.
//!
//! `reference_agreement` below is a self-contained reimplementation of
//! the pre-refactor protocol body (typed OT calls, identical RNG draw
//! order: pairs → sender exponents → respond exponents → commit → nonce)
//! with the channel and timing stripped — on a benign channel those
//! cannot influence keys. Every session compares:
//!
//! * success/failure verdicts and error values,
//! * the established key bytes and bits,
//! * the preliminary-mismatch diagnostic,
//! * the *caller-visible RNG end-state* (the driver threads RNGs through
//!   the machines and copies them back, so chained runs must observe the
//!   same stream the monolith produced).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey::core::agreement::{run_agreement, AgreementConfig, AgreementError};
use wavekey::core::bits::{
    deinterleave, hamming_distance, interleave, pack_bits, unpack_bits,
};
use wavekey::core::channel::{Delayer, Dropper, MessageKind, PassiveChannel};
use wavekey::crypto::ecc::{Bch, CodeOffset};
use wavekey::crypto::group::DhGroup;
use wavekey::crypto::hmac::{hmac_sha256, mac_eq};
use wavekey::crypto::ot::{OtReceiver, OtSender};

const ECC_BLOCK: usize = 127;
const NONCE_LEN: usize = 16;

fn config() -> AgreementConfig {
    AgreementConfig { use_tiny_group: true, tau: 10.0, ..Default::default() }
}

fn random_seed(len: usize, rng_seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    (0..len).map(|_| rng.gen()).collect()
}

fn flip_bits(seed: &[bool], n: usize) -> Vec<bool> {
    let mut out = seed.to_vec();
    for i in 0..n {
        let idx = (i * 17 + 3) % out.len();
        out[idx] = !out[idx];
    }
    out
}

fn random_pairs(l_s: usize, l_b: usize, rng: &mut StdRng) -> Vec<(Vec<bool>, Vec<bool>)> {
    (0..l_s)
        .map(|_| {
            let a: Vec<bool> = (0..l_b).map(|_| rng.gen()).collect();
            let b: Vec<bool> = (0..l_b).map(|_| rng.gen()).collect();
            (a, b)
        })
        .collect()
}

fn payload_pairs(pairs: &[(Vec<bool>, Vec<bool>)]) -> Vec<(Vec<u8>, Vec<u8>)> {
    pairs.iter().map(|(a, b)| (pack_bits(a), pack_bits(b))).collect()
}

struct RefOutcome {
    key: Vec<u8>,
    preliminary_mismatch_bits: usize,
}

/// The pre-refactor monolith, key logic only (benign channel, no clocks).
fn reference_agreement(
    s_m: &[bool],
    s_r: &[bool],
    config: &AgreementConfig,
    rng_mobile: &mut StdRng,
    rng_server: &mut StdRng,
) -> Result<RefOutcome, AgreementError> {
    let tiny;
    let group: &DhGroup = if config.use_tiny_group {
        tiny = DhGroup::tiny_test_group();
        &tiny
    } else {
        DhGroup::modp_1024_shared()
    };
    let l_s = s_m.len();
    let l_b = config.key_len_bits.div_ceil(2 * l_s);

    let x_pairs = random_pairs(l_s, l_b, rng_mobile);
    let (mobile_sender, ma_m) = OtSender::start(group, payload_pairs(&x_pairs), rng_mobile);
    let y_pairs = random_pairs(l_s, l_b, rng_server);
    let (server_sender, ma_r) = OtSender::start(group, payload_pairs(&y_pairs), rng_server);

    let (mobile_receiver, mb_m) =
        OtReceiver::respond(group, s_m, &ma_r, rng_mobile).expect("benign M_A");
    let (server_receiver, mb_r) =
        OtReceiver::respond(group, s_r, &ma_m, rng_server).expect("benign M_A");

    let me_m = mobile_sender.encrypt(group, &mb_r).expect("benign M_B");
    let me_r = server_sender.encrypt(group, &mb_m).expect("benign M_B");

    let y_received = mobile_receiver.decrypt(group, &me_r).expect("benign M_E");
    let mut k_m: Vec<bool> = Vec::with_capacity(2 * l_s * l_b);
    for i in 0..l_s {
        let own = if s_m[i] { &x_pairs[i].1 } else { &x_pairs[i].0 };
        k_m.extend_from_slice(own);
        k_m.extend(unpack_bits(&y_received[i], l_b));
    }
    let x_received = server_receiver.decrypt(group, &me_m).expect("benign M_E");
    let mut k_r: Vec<bool> = Vec::with_capacity(2 * l_s * l_b);
    for i in 0..l_s {
        k_r.extend(unpack_bits(&x_received[i], l_b));
        let own = if s_r[i] { &y_pairs[i].1 } else { &y_pairs[i].0 };
        k_r.extend_from_slice(own);
    }
    let preliminary_mismatch_bits = hamming_distance(&k_m, &k_r);

    let k_len = 2 * l_s * l_b;
    let blocks = k_len.div_ceil(ECC_BLOCK);
    let bch = Bch::new(config.bch_t).expect("valid t");
    let co = CodeOffset::new(bch);
    let k_m_inter = interleave(&k_m, blocks, ECC_BLOCK);
    let helper = co.commit(&k_m_inter, rng_mobile);
    let nonce: [u8; NONCE_LEN] = {
        let mut n = [0u8; NONCE_LEN];
        rng_mobile.fill(&mut n);
        n
    };

    let k_r_inter = interleave(&k_r, blocks, ECC_BLOCK);
    let Some(recovered_inter) = co.reconcile(&k_r_inter, &helper, blocks * ECC_BLOCK) else {
        return Err(AgreementError::ReconciliationFailed);
    };
    let k_server = deinterleave(&recovered_inter, blocks, ECC_BLOCK, k_len);
    let server_key = pack_bits(&k_server[..config.key_len_bits.min(k_server.len())]);
    let response = hmac_sha256(&server_key, &nonce);

    let key = pack_bits(&k_m[..config.key_len_bits.min(k_m.len())]);
    if !mac_eq(&hmac_sha256(&key, &nonce), &response) {
        return Err(AgreementError::ConfirmationFailed);
    }
    Ok(RefOutcome { key, preliminary_mismatch_bits })
}

/// The next few draws of two RNGs must coincide — the observable
/// definition of "same end state" for a caller that keeps using them.
fn assert_same_stream(a: &mut StdRng, b: &mut StdRng, context: &str) {
    for i in 0..4 {
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "{context}: draw {i} diverged");
    }
}

fn differential_session(
    s_m: &[bool],
    s_r: &[bool],
    config: &AgreementConfig,
    session: u64,
) {
    let mut ref_rm = StdRng::seed_from_u64(1000 + session);
    let mut ref_rs = StdRng::seed_from_u64(2000 + session);
    let reference = reference_agreement(s_m, s_r, config, &mut ref_rm, &mut ref_rs);

    let mut new_rm = StdRng::seed_from_u64(1000 + session);
    let mut new_rs = StdRng::seed_from_u64(2000 + session);
    let new = run_agreement(s_m, s_r, config, &mut new_rm, &mut new_rs, &mut PassiveChannel);

    match (reference, new) {
        (Ok(r), Ok(n)) => {
            assert_eq!(n.key, r.key, "session {session}: key bytes diverged");
            assert_eq!(n.key_bits, unpack_bits(&r.key, config.key_len_bits));
            assert_eq!(
                n.preliminary_mismatch_bits, r.preliminary_mismatch_bits,
                "session {session}: mismatch diagnostic diverged"
            );
        }
        (Err(r), Err(n)) => {
            assert_eq!(n, r, "session {session}: error values diverged");
        }
        (r, n) => panic!(
            "session {session}: verdicts diverged (reference ok={}, new ok={})",
            r.is_ok(),
            n.is_ok()
        ),
    }
    assert_same_stream(&mut new_rm, &mut ref_rm, "mobile rng");
    assert_same_stream(&mut new_rs, &mut ref_rs, "server rng");
}

#[test]
fn driver_matches_monolith_over_seeded_tiny_sessions() {
    // ≥24 sessions across the verdict spectrum: identical seeds, small
    // (correctable) mismatch, borderline, and far-beyond-radius seeds.
    let mut session = 0u64;
    for base in 0..6u64 {
        for flips in [0usize, 1, 2, 24] {
            let s_m = random_seed(48, 7000 + base);
            let s_r = flip_bits(&s_m, flips);
            differential_session(&s_m, &s_r, &config(), session);
            session += 1;
        }
    }
    assert_eq!(session, 24);
}

#[test]
fn driver_matches_monolith_on_modp_1024() {
    // The production group; fixed-base exponent draws must line up too.
    let cfg = AgreementConfig { use_tiny_group: false, tau: 10.0, ..Default::default() };
    let s_m = random_seed(48, 7100);
    differential_session(&s_m, &s_m, &cfg, 50);
    let s_r = flip_bits(&s_m, 1);
    differential_session(&s_m, &s_r, &cfg, 51);
}

#[test]
fn driver_preserves_rng_state_on_timeout() {
    // Timeout(OtA) aborts before either party's respond draws — exactly
    // as the monolith did; the caller's RNGs must reflect only the pair
    // generation and sender exponents.
    let cfg = AgreementConfig { use_tiny_group: true, tau: 0.5, ..Default::default() };
    let s = random_seed(48, 7200);
    let mut rm = StdRng::seed_from_u64(11);
    let mut rs = StdRng::seed_from_u64(12);
    let mut delayer = Delayer { target: Some(MessageKind::OtA), extra: 1.0 };
    let err = run_agreement(&s, &s, &cfg, &mut rm, &mut rs, &mut delayer).unwrap_err();
    assert_eq!(err, AgreementError::Timeout(MessageKind::OtA));

    let group = DhGroup::tiny_test_group();
    let l_b = cfg.key_len_bits.div_ceil(2 * s.len());
    let mut ref_rm = StdRng::seed_from_u64(11);
    let mut ref_rs = StdRng::seed_from_u64(12);
    let pairs = random_pairs(s.len(), l_b, &mut ref_rm);
    let _ = OtSender::start(&group, payload_pairs(&pairs), &mut ref_rm);
    let pairs = random_pairs(s.len(), l_b, &mut ref_rs);
    let _ = OtSender::start(&group, payload_pairs(&pairs), &mut ref_rs);
    assert_same_stream(&mut rm, &mut ref_rm, "mobile rng after timeout");
    assert_same_stream(&mut rs, &mut ref_rs, "server rng after timeout");
}

#[test]
fn driver_preserves_rng_state_on_drop() {
    // Dropped(OtE) aborts after both responds; encryption draws nothing.
    let cfg = config();
    let s = random_seed(48, 7300);
    let mut rm = StdRng::seed_from_u64(21);
    let mut rs = StdRng::seed_from_u64(22);
    let mut dropper = Dropper { target: MessageKind::OtE };
    let err = run_agreement(&s, &s, &cfg, &mut rm, &mut rs, &mut dropper).unwrap_err();
    assert_eq!(err, AgreementError::Dropped(MessageKind::OtE));

    let group = DhGroup::tiny_test_group();
    let l_b = cfg.key_len_bits.div_ceil(2 * s.len());
    let mut ref_rm = StdRng::seed_from_u64(21);
    let mut ref_rs = StdRng::seed_from_u64(22);
    let x_pairs = random_pairs(s.len(), l_b, &mut ref_rm);
    let (_, ma_m) = OtSender::start(&group, payload_pairs(&x_pairs), &mut ref_rm);
    let y_pairs = random_pairs(s.len(), l_b, &mut ref_rs);
    let (_, ma_r) = OtSender::start(&group, payload_pairs(&y_pairs), &mut ref_rs);
    let _ = OtReceiver::respond(&group, &s, &ma_r, &mut ref_rm).unwrap();
    let _ = OtReceiver::respond(&group, &s, &ma_m, &mut ref_rs).unwrap();
    assert_same_stream(&mut rm, &mut ref_rm, "mobile rng after drop");
    assert_same_stream(&mut rs, &mut ref_rs, "server rng after drop");
}
