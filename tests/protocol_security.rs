//! Cross-crate integration: adversarial behavior of the key-agreement
//! protocol (no trained models required — seeds are supplied directly).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey::core::agreement::{run_agreement, AgreementConfig, AgreementError};
use wavekey::core::channel::{
    BitFlipMitm, Delayer, Dropper, Eavesdropper, MessageKind, PassiveChannel, VersionSpoofer,
};
use wavekey::math::nist::bytes_to_bits;

fn config() -> AgreementConfig {
    AgreementConfig { use_tiny_group: true, tau: 10.0, ..Default::default() }
}

fn seed(len: usize, rng_seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    (0..len).map(|_| rng.gen()).collect()
}

fn run_with(
    s: &[bool],
    adversary: &mut dyn wavekey::core::Adversary,
) -> Result<wavekey::core::AgreementOutcome, AgreementError> {
    let mut rm = StdRng::seed_from_u64(1);
    let mut rs = StdRng::seed_from_u64(2);
    run_agreement(s, s, &config(), &mut rm, &mut rs, adversary)
}

#[test]
fn eavesdropper_cannot_read_key_material() {
    let s = seed(48, 3);
    let mut eve = Eavesdropper::default();
    let out = run_with(&s, &mut eve).expect("benign run");
    assert_eq!(eve.transcript.len(), 8);
    // Neither the key nor either seed appears verbatim in any message.
    let key = &out.key;
    for (_, kind, payload) in &eve.transcript {
        assert!(
            !payload.windows(key.len()).any(|w| w == key.as_slice()),
            "key leaked in {kind:?}"
        );
    }
}

#[test]
fn pervasive_mitm_fails_every_targeted_round() {
    let s = seed(48, 4);
    for kind in [MessageKind::OtA, MessageKind::OtB, MessageKind::OtE] {
        let mut mitm = BitFlipMitm::pervasive(kind, 4);
        let err = run_with(&s, &mut mitm).expect_err("manipulation must break the run");
        assert!(
            matches!(
                err,
                AgreementError::ReconciliationFailed
                    | AgreementError::ConfirmationFailed
                    | AgreementError::Ot(_)
            ),
            "{kind:?} gave {err:?}"
        );
    }
}

#[test]
fn challenge_tampering_is_detected_by_confirmation() {
    let s = seed(48, 5);
    let mut mitm = BitFlipMitm::new(MessageKind::Challenge, 7);
    let err = run_with(&s, &mut mitm).expect_err("tampered challenge");
    assert!(matches!(
        err,
        AgreementError::ConfirmationFailed | AgreementError::ReconciliationFailed
    ));
}

#[test]
fn response_tampering_is_detected() {
    let s = seed(48, 6);
    let mut mitm = BitFlipMitm::new(MessageKind::Response, 0);
    let err = run_with(&s, &mut mitm).expect_err("tampered response");
    assert_eq!(err, AgreementError::ConfirmationFailed);
}

#[test]
fn deadline_defeats_slow_relays() {
    let s = seed(48, 7);
    let cfg = AgreementConfig { use_tiny_group: true, tau: 0.2, ..Default::default() };
    // A relay that holds OT-A messages for half a second (e.g. remote
    // video processing round-trip) trips the τ fence.
    let mut relay = Delayer { target: Some(MessageKind::OtA), extra: 0.5 };
    let mut rm = StdRng::seed_from_u64(1);
    let mut rs = StdRng::seed_from_u64(2);
    let err = run_agreement(&s, &s, &cfg, &mut rm, &mut rs, &mut relay).unwrap_err();
    assert_eq!(err, AgreementError::Timeout(MessageKind::OtA));
}

#[test]
fn jamming_any_message_aborts() {
    let s = seed(48, 8);
    for kind in [
        MessageKind::OtA,
        MessageKind::OtB,
        MessageKind::OtE,
        MessageKind::Challenge,
        MessageKind::Response,
    ] {
        let mut dropper = Dropper { target: kind };
        let err = run_with(&s, &mut dropper).expect_err("dropped message");
        assert_eq!(err, AgreementError::Dropped(kind));
    }
}

#[test]
fn adversary_matrix_every_attack_on_every_message_fails_cleanly() {
    // The full wire-layer matrix: every active adversary aimed at every
    // MessageKind must end in a typed AgreementError — never a panic and
    // never a "success" whose key diverges between the parties.
    let s = seed(48, 9);
    let baseline = run_with(&s, &mut PassiveChannel).expect("baseline");

    for kind in MessageKind::ALL {
        // Payload corruption: caught by OT decoding, reconciliation, or
        // the HMAC confirmation, depending on which round was hit.
        let mut mitm = BitFlipMitm::pervasive(kind, 1);
        let err = run_with(&s, &mut mitm).expect_err("corruption must not yield a key");
        assert!(
            matches!(
                err,
                AgreementError::Ot(_)
                    | AgreementError::ReconciliationFailed
                    | AgreementError::ConfirmationFailed
            ),
            "BitFlipMitm x {kind:?} gave {err:?}"
        );

        // Jamming: the lockstep driver reports exactly which message
        // vanished.
        let mut dropper = Dropper { target: kind };
        let err = run_with(&s, &mut dropper).expect_err("dropped message");
        assert_eq!(err, AgreementError::Dropped(kind), "Dropper x {kind:?}");

        // Header re-versioning: rejected at the frame layer before any
        // payload ever reaches the protocol logic.
        let mut spoofer = VersionSpoofer { target: kind, version: 9 };
        let err = run_with(&s, &mut spoofer).expect_err("spoofed version");
        assert!(
            matches!(err, AgreementError::Wire(_)),
            "VersionSpoofer x {kind:?} gave {err:?}"
        );

        // Stalling: only M_A (mobile fence) and M_B (server fence) carry
        // the paper's `2 + τ` deadline; delaying anything else costs time
        // but must not change the key.
        let cfg = AgreementConfig { use_tiny_group: true, tau: 0.2, ..Default::default() };
        let mut rm = StdRng::seed_from_u64(1);
        let mut rs = StdRng::seed_from_u64(2);
        let mut relay = Delayer { target: Some(kind), extra: 0.5 };
        let result = run_agreement(&s, &s, &cfg, &mut rm, &mut rs, &mut relay);
        match kind {
            MessageKind::OtA | MessageKind::OtB => {
                assert_eq!(result.unwrap_err(), AgreementError::Timeout(kind));
            }
            _ => {
                let out = result.expect("unbudgeted delay is tolerated");
                assert_eq!(out.key, baseline.key, "Delayer x {kind:?} changed the key");
            }
        }
    }
}

#[test]
fn established_keys_pass_randomness_tests() {
    // Chain 40 keys from random seed pairs and run the NIST tests the
    // §VI-D evaluation uses.
    let mut chain = Vec::new();
    for i in 0..40u64 {
        let s = seed(48, 100 + i);
        let mut rm = StdRng::seed_from_u64(200 + i);
        let mut rs = StdRng::seed_from_u64(300 + i);
        let out = wavekey::core::agreement::run_agreement_information_layer(
            &s,
            &s,
            &config(),
            &mut rm,
            &mut rs,
        )
        .expect("benign");
        chain.extend(bytes_to_bits(&out.key));
    }
    assert_eq!(chain.len(), 40 * 256);
    let runs = wavekey::math::runs_test(&chain);
    assert!(runs.p_value > 0.01, "runs p = {}", runs.p_value);
    let mono = wavekey::math::monobit_test(&chain);
    assert!(mono.p_value > 0.01, "monobit p = {}", mono.p_value);
}
