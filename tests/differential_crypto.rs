//! Seeded-exhaustive differential twins for the batched crypto stack —
//! the rig-runnable counterpart of the cargo-only proptests in
//! `crates/wavekey-crypto/tests/differential.rs`.
//!
//! Every test here pins an optimized path `==`-exact against the scalar
//! Montgomery reference over fixed seeds and an exhaustive sweep of the
//! shapes that matter: ragged tails (quad counts not divisible by 4),
//! mixed moduli in one batch, fold vs Montgomery dispatch, and the
//! wider-than-`MAX_CIOS_LIMBS` scalar fallback.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wavekey::crypto::batch::ModexpBatch;
use wavekey::crypto::bigint::{CrandallCtx, MontgomeryCtx, Ubig};
use wavekey::crypto::group::{DhGroup, WAVEKEY_1024_HEX};

fn quad(ctx_modulus: &Ubig, rng: &mut StdRng) -> [Ubig; 4] {
    std::array::from_fn(|_| Ubig::random_below(ctx_modulus, rng))
}

/// 4-way interleaved CIOS exponentiation equals the scalar Montgomery
/// route lane-for-lane, across limb widths from 2 to 16.
#[test]
fn quad_cios_pow_matches_scalar_montgomery() {
    let moduli = [
        Ubig::from_hex("ffffffffffffffffffffffffffffff61"), // 2 limbs
        Ubig::from_hex("1000000000000000000000000000000000000000000000f1"), // 3 limbs
        Ubig::from_hex(wavekey::crypto::group::MODP_1024_HEX), // 16 limbs
    ];
    let mut rng = StdRng::seed_from_u64(0xD1FF_0001);
    for m in &moduli {
        let ctx = MontgomeryCtx::new(m.clone());
        for _ in 0..3 {
            let bases = quad(m, &mut rng);
            let exps = quad(m, &mut rng);
            let fast = ctx.mod_pow_x4(&bases, &exps);
            for l in 0..4 {
                assert_eq!(fast[l], ctx.mod_pow(&bases[l], &exps[l]), "lane {l} mod {m:?}");
            }
        }
    }
}

/// The Crandall fold kernels (general and fixed-base) equal the scalar
/// Montgomery route on the WAVEKEY-1024 fleet modulus and on a tiny
/// 2-limb Crandall modulus, including the edge exponents that hit the
/// window machinery's boundary paths.
#[test]
fn crandall_fold_pow_matches_montgomery() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0002);
    for p in [Ubig::from_hex(WAVEKEY_1024_HEX), Ubig::from_hex("ffffffffffffffffffffffffffffff61")]
    {
        let cr = CrandallCtx::new(&p).expect("Crandall-form modulus");
        let mont = MontgomeryCtx::new(p.clone());
        for _ in 0..3 {
            let bases = quad(&p, &mut rng);
            let exps = quad(&p, &mut rng);
            let fold = cr.pow_x4(&bases, &exps);
            for l in 0..4 {
                assert_eq!(fold[l], mont.mod_pow(&bases[l], &exps[l]), "lane {l}");
            }
        }
        // Edge exponents: zero, one, all-ones tail, and one lane past the
        // comb table's coverage (drags the whole quad through the
        // general-path fallback).
        let g = Ubig::from_u64(2);
        let comb = cr.comb_table(&g, p.bit_len(), 5);
        let edge: [Ubig; 4] = [
            Ubig::zero(),
            Ubig::one(),
            Ubig::from_u64(u64::MAX),
            p.sub(&Ubig::one()),
        ];
        let fixed = cr.pow_fixed_base_x4(&comb, &edge);
        for l in 0..4 {
            assert_eq!(fixed[l], mont.mod_pow(&g, &edge[l]), "fixed-base edge lane {l}");
        }
        let wide: [Ubig; 4] = [p.shl(64), Ubig::one(), Ubig::zero(), Ubig::from_u64(7)];
        let fallback = cr.pow_fixed_base_x4(&comb, &wide);
        for l in 0..4 {
            assert_eq!(fallback[l], mont.mod_pow(&g, &wide[l]), "fallback lane {l}");
        }
    }
}

/// Fills a batch with a deterministic mix of all four job kinds across
/// every supplied group — exercising dependent jobs (`MulPowG`) and
/// cross-group interleaving exactly as the OT rounds produce them.
fn fill_mixed(batch: &mut ModexpBatch<'_>, groups: &[&'static DhGroup], n: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let g = groups[i % groups.len()];
        let x = g.random_exponent(&mut rng);
        match i % 4 {
            0 => {
                batch.push_pow_g(g, x);
            }
            1 => {
                batch.push_inv_pow_g(g, x);
            }
            2 => {
                let base = Ubig::random_below(g.modulus(), &mut rng);
                batch.push_pow(g, base, x);
            }
            _ => {
                let base = Ubig::random_below(g.modulus(), &mut rng);
                let dep = batch.push_pow(g, base, x);
                batch.push_mul_pow_g(g, dep, g.random_exponent(&mut rng));
            }
        }
    }
}

/// The batch executor (quad-packed sweeps with dummy-lane padding) equals
/// the pinned scalar route job-for-job, over ragged tails and a mix of
/// fold-path (WAVEKEY-1024) and Montgomery-path (MODP-1024) moduli in the
/// same batch.
#[test]
fn batch_executor_matches_scalar_ragged_and_mixed() {
    let groups: Vec<&'static DhGroup> =
        vec![DhGroup::wavekey_1024_shared(), DhGroup::modp_1024_shared()];
    for n in [1usize, 2, 3, 5, 7] {
        let mut fast = ModexpBatch::new();
        let mut slow = ModexpBatch::new();
        fill_mixed(&mut fast, &groups, n, 0xD1FF_0003 + n as u64);
        fill_mixed(&mut slow, &groups, n, 0xD1FF_0003 + n as u64);
        let fast = fast.execute().into_vec();
        let slow = slow.execute_scalar().into_vec();
        assert_eq!(fast.len(), slow.len());
        for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
            assert_eq!(f, s, "job {i} of {n}-instance mixed batch");
        }
    }
}

/// Moduli wider than the interleaved kernel's 32-limb ceiling take the
/// scalar fallback inside `mod_pow_x4` (same answers), and the Crandall
/// context refuses them outright.
#[test]
fn oversized_moduli_fall_back_to_scalar() {
    // 33 limbs of Crandall shape: 2^2112 − 159.
    let p = Ubig::one().shl(33 * 64).sub(&Ubig::from_u64(159));
    assert!(CrandallCtx::new(&p).is_none(), "33-limb modulus must be rejected");
    let ctx = MontgomeryCtx::new(p.clone());
    let mut rng = StdRng::seed_from_u64(0xD1FF_0004);
    let bases = quad(&p, &mut rng);
    let exps: [Ubig; 4] = std::array::from_fn(|_| Ubig::random_below(&Ubig::one().shl(128), &mut rng));
    let out = ctx.mod_pow_x4(&bases, &exps);
    for l in 0..4 {
        assert_eq!(out[l], ctx.mod_pow(&bases[l], &exps[l]), "lane {l}");
    }
}
