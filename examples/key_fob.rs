//! Context 3 of the paper: RFID-assisted secure mobile system access.
//!
//! A homeowner's key fob admits them to a building; they want to register
//! a *new* phone with the building system without any pre-shared secret.
//! Waving the new phone together with the fob establishes an ad hoc key;
//! the building system then provisions the phone over the secured channel.
//! A thief who merely *watched* the wave (and mimics it with their own
//! phone) must not get in.
//!
//! ```text
//! cargo run --release --example key_fob
//! ```

use wavekey::core::attack::mimic_accel;
use wavekey::core::bits::mismatch_rate;
use wavekey::core::dataset::DatasetConfig;
use wavekey::core::session::{Session, SessionConfig};
use wavekey::core::training::{train_or_load, TrainingConfig};
use wavekey::imu::gesture::{GestureGenerator, MimicConfig, VolunteerId};
use wavekey::imu::sensors::DeviceModel;
use wavekey::rfid::channel::TagModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = std::path::Path::new("target/wavekey-models-small.bin");
    let mut models = train_or_load(
        cache,
        &DatasetConfig::small(),
        &TrainingConfig::default(),
        0x5eed_0001,
    )?;

    println!("== building access: registering a new phone via key fob ==\n");

    // The homeowner waves their new Pixel 8 with the fob.
    let config = SessionConfig {
        device: DeviceModel::Pixel8,
        tag: TagModel::DogBoneA, // the key fob
        ..Default::default()
    };
    let eta = config.wavekey.eta();
    let gesture_config = config.gesture;
    let mut session = Session::new(config, models.clone(), 0xf0b);

    // Up to three attempts, like a real enrolment flow.
    let mut registered = None;
    let mut homeowner_gesture = None;
    for attempt in 1..=3 {
        let gesture = session.new_gesture();
        match session.establish_key_from_gesture(
            &gesture,
            &mut wavekey::core::PassiveChannel,
        ) {
            Ok(out) => {
                println!(
                    "attempt {attempt}: phone registered ({} seed bits disagreed, repaired by ECC)",
                    out.seed_mismatch_bits
                );
                registered = Some(out);
                homeowner_gesture = Some(gesture);
                break;
            }
            Err(e) => println!("attempt {attempt}: failed ({e}); waving again"),
        }
    }
    let Some(outcome) = registered else {
        println!("\nregistration failed; see EXPERIMENTS.md for the substrate's success rates");
        return Ok(());
    };
    let prefix: String = outcome.key[..6].iter().map(|b| format!("{b:02x}")).collect();
    println!("provisioning credential under key {prefix}…\n");

    // A thief watched the wave from across the lobby and replays it with
    // their own phone against the building server.
    println!("== thief mimics the registration wave ==");
    let victim_gesture = homeowner_gesture.expect("stored with the outcome");
    let (s_victim, _) = session.derive_seeds_from_gesture(&victim_gesture)?;
    let mut thief = GestureGenerator::new(VolunteerId(5), 0xbad);
    let thief_accel = mimic_accel(
        &victim_gesture,
        &mut thief,
        DeviceModel::GalaxyS5A,
        &gesture_config,
        &MimicConfig::default(),
        0xbad2,
    )?;
    let thief_latent = {
        let t = wavekey::core::model::imu_to_tensor(&thief_accel);
        models.imu_en.forward(&t, false).into_vec()
    };
    let s_thief = session.seed_generator().seed_from_latent(&thief_latent);
    let rate = mismatch_rate(&s_victim, &s_thief);
    println!(
        "thief's seed disagrees with the fob's by {:.1} % (ECC radius: {:.1} %)",
        rate * 100.0,
        eta * 100.0
    );
    println!(
        "building verdict: {}",
        if rate <= eta { "ACCESS GRANTED (!)" } else { "access denied" }
    );
    Ok(())
}
