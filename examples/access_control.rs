//! Context 2 of the paper: RFID location-based access control.
//!
//! A non-removable RFID card guards a restricted area. Authorized staff
//! prove physical proximity by waving their phone with the card; the
//! resulting ad hoc key opens the resource. This example sweeps the
//! user's position (distance and azimuth) and reports where access
//! succeeds — the same sweep as Table II of the paper, in miniature.
//!
//! ```text
//! cargo run --release --example access_control
//! ```

use wavekey::core::dataset::DatasetConfig;
use wavekey::core::session::{Session, SessionConfig};
use wavekey::core::training::{train_or_load, TrainingConfig};
use wavekey::rfid::environment::UserPlacement;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = std::path::Path::new("target/wavekey-models-small.bin");
    let models = train_or_load(
        cache,
        &DatasetConfig::small(),
        &TrainingConfig::default(),
        0x5eed_0001,
    )?;

    println!("== restricted-area access: position sweep ==");
    println!("(3 attempts per position; any success grants access)\n");
    println!("{:>10} {:>10} {:>10}", "distance", "azimuth", "access");

    for &(distance, azimuth) in &[
        (1.0, 0.0),
        (3.0, 0.0),
        (5.0, 0.0),
        (7.0, 0.0),
        (9.0, 0.0),
        (5.0, -60.0),
        (5.0, -30.0),
        (5.0, 30.0),
        (5.0, 60.0),
    ] {
        let config = SessionConfig {
            placement: UserPlacement { distance, azimuth_deg: azimuth },
            ..Default::default()
        };
        let mut session =
            Session::new(config, models.clone(), (distance * 100.0 + azimuth) as u64);
        let mut granted = false;
        for _ in 0..3 {
            if session.establish_key().is_ok() {
                granted = true;
                break;
            }
        }
        println!(
            "{:>8} m {:>8}° {:>10}",
            distance,
            azimuth,
            if granted { "GRANTED" } else { "denied" }
        );
    }
    Ok(())
}
