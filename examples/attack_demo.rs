//! Demonstrates the §V adversary model against a live session: the
//! eavesdropper learns nothing useful, the MitM only breaks the run, a
//! delayed relay trips the `2 + τ` deadline, and a gesture mimic's seed
//! misses the ECC radius.
//!
//! ```text
//! cargo run --release --example attack_demo
//! ```

use wavekey::core::attack::{mimic_accel, random_guess_probability};
use wavekey::core::bits::mismatch_rate;
use wavekey::core::channel::{BitFlipMitm, Delayer, Eavesdropper, MessageKind};
use wavekey::core::dataset::DatasetConfig;
use wavekey::core::seed::SeedGenerator;
use wavekey::core::session::{Session, SessionConfig};
use wavekey::core::training::{train_or_load, TrainingConfig};
use wavekey::imu::gesture::{GestureConfig, GestureGenerator, MimicConfig, VolunteerId};
use wavekey::imu::sensors::DeviceModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = std::path::Path::new("target/wavekey-models-small.bin");
    let mut models = train_or_load(
        cache,
        &DatasetConfig::small(),
        &TrainingConfig::default(),
        0x5eed_0001,
    )?;
    let config = SessionConfig::default();
    let eta = config.wavekey.eta();

    // --- Eavesdropping ---------------------------------------------------
    println!("== eavesdropping ==");
    let mut session = Session::new(config.clone(), models.clone(), 7);
    let mut eve = Eavesdropper::default();
    match session.establish_key_with_adversary(&mut eve) {
        Ok(out) => {
            println!(
                "key established while Eve recorded {} messages totalling {} bytes",
                eve.transcript.len(),
                eve.transcript.iter().map(|(_, _, p)| p.len()).sum::<usize>()
            );
            let leaked = eve
                .transcript
                .iter()
                .any(|(_, _, p)| p.windows(out.key.len()).any(|w| w == out.key.as_slice()));
            println!("key bytes visible in Eve's transcript: {leaked} (OT hides the selections)");
        }
        Err(e) => println!("benign run failed ({e}); rerun — failures retry in practice"),
    }

    // --- Man-in-the-middle -----------------------------------------------
    println!("\n== man-in-the-middle ==");
    let mut session = Session::new(config.clone(), models.clone(), 8);
    let mut mitm = BitFlipMitm::pervasive(MessageKind::OtB, 16);
    match session.establish_key_with_adversary(&mut mitm) {
        Ok(_) => println!("UNEXPECTED: key established despite manipulation"),
        Err(e) => println!("run aborted as designed: {e}"),
    }

    // --- Delayed relay (remote video attack latency) ----------------------
    println!("\n== delayed relay ==");
    let mut session = Session::new(config.clone(), models.clone(), 9);
    let mut relay = Delayer { target: Some(MessageKind::OtA), extra: 0.5 };
    match session.establish_key_with_adversary(&mut relay) {
        Ok(_) => println!("UNEXPECTED: deadline did not trip"),
        Err(e) => println!("deadline enforcement: {e}"),
    }

    // --- Gesture mimicking --------------------------------------------------
    println!("\n== gesture mimicking ==");
    let gesture_config = GestureConfig::default();
    let mut victim_gen = GestureGenerator::new(VolunteerId(0), 100);
    let victim_gesture = victim_gen.generate(&gesture_config);
    let mut victim_session = Session::new(config.clone(), models.clone(), 10);
    let (s_victim, _) = victim_session.derive_seeds_from_gesture(&victim_gesture)?;

    let mut attacker_gen = GestureGenerator::new(VolunteerId(5), 101);
    let seed_gen = SeedGenerator::new(config.wavekey.n_b)?;
    let a = mimic_accel(
        &victim_gesture,
        &mut attacker_gen,
        DeviceModel::Pixel8,
        &gesture_config,
        &MimicConfig::default(),
        102,
    )?;
    let s_attacker = seed_gen.seed_imu(&mut models.imu_en, &a);
    let rate = mismatch_rate(&s_victim, &s_attacker);
    println!(
        "mimic seed mismatch {:.1} % vs ECC radius {:.1} % → attack {}",
        rate * 100.0,
        eta * 100.0,
        if rate <= eta { "SUCCEEDS (!)" } else { "fails" }
    );

    // --- Random guessing ----------------------------------------------------
    println!("\n== random guessing (Eq. 4) ==");
    let l_s = config.wavekey.l_s();
    println!(
        "P_g(l_s = {l_s}, η = {eta:.3}) = {:.3e}",
        random_guess_probability(l_s, eta)
    );
    Ok(())
}
