//! Quickstart: train (or load) the cross-modal autoencoders, then
//! establish one ad hoc key between a simulated mobile device and RFID
//! server.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The first run trains the models (a few minutes) and caches them under
//! `target/`; later runs start instantly.

use wavekey::core::dataset::DatasetConfig;
use wavekey::core::session::{Session, SessionConfig};
use wavekey::core::training::{train_or_load, TrainingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One-time training on simulated gestures (§IV-E of the paper),
    // cached next to the build artifacts.
    let cache = std::path::Path::new("target/wavekey-models-small.bin");
    println!("loading or training WaveKey autoencoders…");
    let models = train_or_load(
        cache,
        &DatasetConfig::small(),
        &TrainingConfig::default(),
        0x5eed_0001,
    )?;
    println!("models ready (l_f = {}).", models.l_f);

    // One key establishment under the paper's §VI-B default setting:
    // Galaxy Watch + Alien 9640 tag, 5 m from the antenna, static room.
    let config = SessionConfig::default();
    println!(
        "establishing a {}-bit key (N_b = {}, η = {:.3}, τ = {} ms)…",
        config.wavekey.key_len_bits,
        config.wavekey.n_b,
        config.wavekey.eta(),
        (config.wavekey.tau * 1000.0) as u64,
    );
    let mut session = Session::new(config, models, 42);

    match session.establish_key() {
        Ok(outcome) => {
            println!("key established!");
            println!(
                "  seed mismatch: {}/{} bits ({:.1} %)",
                outcome.seed_mismatch_bits,
                outcome.seed_len,
                100.0 * outcome.seed_mismatch_bits as f64 / outcome.seed_len as f64,
            );
            println!(
                "  preliminary-key mismatch repaired by ECC: {} bits",
                outcome.agreement.preliminary_mismatch_bits
            );
            println!(
                "  total latency: {:.3} s (incl. the 2 s gesture)",
                outcome.agreement.elapsed
            );
            let hex: String = outcome.key.iter().map(|b| format!("{b:02x}")).collect();
            println!("  key: {hex}");
        }
        Err(e) => {
            println!("key establishment failed: {e}");
            println!("(the paper's success rate is ~99 %; failures simply retry)");
        }
    }
    Ok(())
}
