//! Context 1 of the paper: an RFID line-up service system.
//!
//! Visitors to a service center receive RFID tickets; each visitor waves
//! their phone together with the ticket to establish an ad hoc key, then
//! submits paperwork over the secured channel. This example simulates a
//! morning of visitors with different phones, tickets, and positions in
//! the room, and prints the service log.
//!
//! ```text
//! cargo run --release --example lineup_service
//! ```

use wavekey::core::dataset::DatasetConfig;
use wavekey::core::session::{Session, SessionConfig};
use wavekey::core::training::{train_or_load, TrainingConfig};
use wavekey::imu::gesture::VolunteerId;
use wavekey::imu::sensors::DeviceModel;
use wavekey::rfid::channel::TagModel;
use wavekey::rfid::environment::UserPlacement;

struct Visitor {
    name: &'static str,
    volunteer: VolunteerId,
    device: DeviceModel,
    ticket: TagModel,
    distance: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = std::path::Path::new("target/wavekey-models-small.bin");
    let models = train_or_load(
        cache,
        &DatasetConfig::small(),
        &TrainingConfig::default(),
        0x5eed_0001,
    )?;

    let visitors = [
        Visitor {
            name: "ada",
            volunteer: VolunteerId(0),
            device: DeviceModel::Pixel8,
            ticket: TagModel::Alien9640A,
            distance: 3.0,
        },
        Visitor {
            name: "brian",
            volunteer: VolunteerId(1),
            device: DeviceModel::GalaxyS5A,
            ticket: TagModel::Alien9730A,
            distance: 5.0,
        },
        Visitor {
            name: "camila",
            volunteer: VolunteerId(2),
            device: DeviceModel::GalaxyWatch,
            ticket: TagModel::DogBoneA,
            distance: 7.0,
        },
        Visitor {
            name: "deniz",
            volunteer: VolunteerId(3),
            device: DeviceModel::GalaxyS5B,
            ticket: TagModel::Alien9640B,
            distance: 4.0,
        },
    ];

    println!("== RFID line-up service: morning shift ==");
    let mut queue_position = 1;
    for visitor in &visitors {
        let config = SessionConfig {
            volunteer: visitor.volunteer,
            device: visitor.device,
            tag: visitor.ticket,
            placement: UserPlacement { distance: visitor.distance, azimuth_deg: 0.0 },
            // Other visitors walk around the service hall.
            walkers: 3,
            ..Default::default()
        };
        let mut session = Session::new(config, models.clone(), 1000 + queue_position);
        print!(
            "ticket #{queue_position:03} ({}, {:?} at {} m): ",
            visitor.name, visitor.device, visitor.distance
        );
        // A visitor retries once if the first wave fails, as a real
        // kiosk flow would.
        let outcome = session.establish_key().or_else(|_| session.establish_key());
        match outcome {
            Ok(out) => {
                let prefix: String = out.key[..4].iter().map(|b| format!("{b:02x}")).collect();
                println!(
                    "key {prefix}… established in {:.2} s — paperwork channel open",
                    out.agreement.elapsed
                );
            }
            Err(e) => println!("FAILED ({e}) — visitor sent to the desk"),
        }
        queue_position += 1;
    }
    Ok(())
}
