#!/usr/bin/env bash
# CI entry point: build, test, and the observability overhead gate.
#
# Tier-1 is `cargo build --release && cargo test -q`; when the cargo
# registry is unreachable (the common case in the development container —
# see ROADMAP.md), this falls back to the offline rig, which compiles the
# same sources with rustc against faithful dependency stand-ins and runs
# the same test functions.
#
# The concurrency gate runs the `concurrent_sessions` bench (48 sessions
# interleaved through the SessionManager vs the same 48 run sequentially)
# and requires bit-identical keys and equal success counts — the sans-IO
# refactor's single-session-equivalence contract, checked end to end.
#
# The overhead gate re-times the Table III hot path (the full MODP-1024
# agreement, op `agreement_full_modp1024_seed48_key256`) with the
# instrumentation compiled in (disabled `Obs` handle — the default) and
# requires the mean to stay within WAVEKEY_OVERHEAD_TOL (default 1%) of
# the recorded baseline in results/BENCH_crypto.json.
#
# Usage:
#   ./ci.sh            # build + test + overhead gate
#   ./ci.sh fast       # build + test only
set -euo pipefail

ROOT=$(cd "$(dirname "$0")" && pwd)
cd "$ROOT"

echo "== build + test =="
if cargo build --release 2>/dev/null; then
    cargo test -q
else
    echo "cargo registry unreachable — using the offline rig (ROADMAP.md)"
    tools/offline_rig/build.sh test
fi

if [[ "${1:-}" == "fast" ]]; then
    echo "== done (fast mode, concurrency + overhead gates skipped) =="
    exit 0
fi

echo "== concurrent-session equivalence gate =="
# The sans-IO refactor's contract: interleaving N sessions through the
# SessionManager scheduler must be observationally identical to running
# them one at a time — same success count, bit-identical keys on both
# parties. The bench prints and records both; the gate parses its JSON.
CONC_JSON="$ROOT/target/ci-bench-concurrent.json"
tools/offline_rig/build.sh run concurrent_sessions "$CONC_JSON" >/dev/null

field_of() { # field_of <name> <file>
    # Anchor the value match on the field name itself so lines carrying
    # several "name": value pairs resolve to the requested one.
    awk -v name="$1" '
        {
            if (match($0, "\"" name "\": *[a-z0-9.]+")) {
                v = substr($0, RSTART, RLENGTH)
                sub(/^"[^"]*": */, "", v)
                print v
                exit
            }
        }' "$2"
}

identical=$(field_of "keys_bit_identical" "$CONC_JSON")
inter=$(field_of "interleaved_success" "$CONC_JSON")
seq_s=$(field_of "sequential_success" "$CONC_JSON")
sessions=$(field_of "sessions" "$CONC_JSON")
[[ -n "$identical" && -n "$inter" && -n "$seq_s" ]] \
    || { echo "concurrent bench produced no samples" >&2; exit 1; }
echo "sessions $sessions: interleaved $inter vs sequential $seq_s, keys_bit_identical=$identical"
[[ "$identical" == "true" ]] \
    || { echo "FAIL: interleaved keys diverge from single-session agreement" >&2; exit 1; }
[[ "$inter" == "$seq_s" ]] \
    || { echo "FAIL: interleaved success count != sequential success count" >&2; exit 1; }
echo "OK: interleaved sessions are observationally identical to sequential runs"

echo "== observability overhead gate =="
BASELINE_FILE="results/BENCH_crypto.json"
OP="agreement_full_modp1024_seed48_key256"
# Control op: the three-round OT batch. Its hot path has no
# observability attach point (the `*_observed` OT variants are separate
# delegating functions), it exercises the same kernels as the agreement
# with comparable duration, and it is measured seconds apart in the same
# process — so its drift vs the recorded baseline tracks machine/compiler
# conditions and is subtracted to isolate instrumentation cost.
CONTROL="ot_batch48_three_rounds"
TOL="${WAVEKEY_OVERHEAD_TOL:-0.01}"

mean_of() { # mean_of <op> <file>
    awk -v op="$1" '
        $0 ~ "\"op\": \"" op "\"" {
            if (match($0, /"mean_ns": [0-9.]+/)) {
                print substr($0, RSTART + 11, RLENGTH - 11)
            }
        }' "$2"
}

baseline=$(mean_of "$OP" "$BASELINE_FILE")
baseline_ctl=$(mean_of "$CONTROL" "$BASELINE_FILE")
[[ -n "$baseline" && -n "$baseline_ctl" ]] \
    || { echo "missing baseline ops in $BASELINE_FILE" >&2; exit 1; }

fresh="$ROOT/target/ci-bench-crypto.json"
# A longer measurement window than the default so the ~200 ms agreement op
# averages over enough iterations for a sub-1% comparison to be meaningful.
WAVEKEY_BENCH_WINDOW="${WAVEKEY_BENCH_WINDOW:-3.0}" \
    tools/offline_rig/build.sh run bench_crypto_json "$fresh" >/dev/null

current=$(mean_of "$OP" "$fresh")
current_ctl=$(mean_of "$CONTROL" "$fresh")
[[ -n "$current" && -n "$current_ctl" ]] \
    || { echo "bench run produced no samples" >&2; exit 1; }

awk -v base="$baseline" -v cur="$current" \
    -v cbase="$baseline_ctl" -v ccur="$current_ctl" -v tol="$TOL" 'BEGIN {
    delta = (cur - base) / base
    drift = (ccur - cbase) / cbase
    net = delta - drift
    printf "agreement: baseline %.1f ms, current %.1f ms (%+.2f%%)\n",
        base / 1e6, cur / 1e6, delta * 100
    printf "control drift (%s): %+.2f%%  ->  net overhead %+.2f%% (tolerance +%.0f%%)\n",
        "ot_batch", drift * 100, net * 100, tol * 100
    # The gate is one-sided: instrumentation must not make the protocol
    # slower than tolerance; being faster is fine.
    if (net > tol) {
        print "FAIL: instrumented agreement exceeds the overhead tolerance"
        exit 1
    }
    print "OK: disabled-collector overhead within tolerance"
}'

echo "== crypto batch-speedup gate =="
# The fleet-scale crypto contract: routing the 48-instance three-round OT
# through the batch executor (WAVEKEY-1024 fold path, quad-packed lanes)
# must beat the scalar MODP-1024 baseline workload (the recorded ~93 ms
# op, re-measured in the same fresh run above) by at least
# WAVEKEY_CRYPTO_BATCH_SPEEDUP_MIN (default 2.0x — the fold path measures
# ~3.3x at recording time, leaving headroom for machine noise) — and the
# batched routes must reproduce the scalar keys bit for bit at every
# thread width. The thread cap is read once per process, so each width
# runs its own equivalence-only process.
BATCH_MIN="${WAVEKEY_CRYPTO_BATCH_SPEEDUP_MIN:-2.0}"
scalar48=$(mean_of "ot_batch48_three_rounds" "$fresh")
batched48=$(mean_of "ot_batch48_three_rounds_wavekey1024_batched" "$fresh")
[[ -n "$scalar48" && -n "$batched48" ]] \
    || { echo "missing batch-gate ops in $fresh" >&2; exit 1; }
for t in 1 2 4; do
    EQ_JSON="$ROOT/target/ci-equiv-threads$t.json"
    WAVEKEY_THREADS=$t \
        tools/offline_rig/build.sh run bench_crypto_json --equivalence-only "$EQ_JSON" >/dev/null
    eq=$(field_of "keys_bit_identical" "$EQ_JSON")
    echo "WAVEKEY_THREADS=$t: keys_bit_identical=$eq"
    [[ "$eq" == "true" ]] \
        || { echo "FAIL: batched crypto keys diverge from the scalar route at $t threads" >&2; exit 1; }
done
awk -v scalar="$scalar48" -v batched="$batched48" -v min="$BATCH_MIN" 'BEGIN {
    speedup = scalar / batched
    printf "ot_batch48: scalar %.1f ms vs batched %.1f ms  ->  %.2fx (min %.1fx)\n",
        scalar / 1e6, batched / 1e6, speedup, min
    if (speedup < min) {
        print "FAIL: amortized OT-batch speedup below the regression floor"
        exit 1
    }
    print "OK: batch executor holds its amortized speedup with bit-identical keys"
}'

echo "== neural training-speed gate =="
# The im2col/GEMM lowering must stay decisively faster than the pinned
# naive reference loops while producing bit-identical training losses and
# serialized model bytes. The bench re-trains the autoencoder stack under
# both backends; the gate requires the recorded speedup to stay above
# WAVEKEY_NN_SPEEDUP_MIN (default 2.5x — below the ~3.3x measured at
# recording time, leaving headroom for machine noise).
NN_JSON="$ROOT/target/ci-bench-nn.json"
NN_MIN="${WAVEKEY_NN_SPEEDUP_MIN:-2.5}"
tools/offline_rig/build.sh run bench_nn_json "$NN_JSON" >/dev/null

nn_identical=$(field_of "loss_bit_identical" "$NN_JSON")
nn_speedup=$(field_of "train_speedup" "$NN_JSON")
[[ -n "$nn_identical" && -n "$nn_speedup" ]] \
    || { echo "nn bench produced no samples" >&2; exit 1; }
echo "train_autoencoders speedup ${nn_speedup}x (min ${NN_MIN}x), loss_bit_identical=$nn_identical"
[[ "$nn_identical" == "true" ]] \
    || { echo "FAIL: GEMM training losses diverge from the naive reference" >&2; exit 1; }
awk -v s="$nn_speedup" -v min="$NN_MIN" 'BEGIN {
    if (s + 0 < min + 0) {
        print "FAIL: GEMM training speedup below the regression floor"
        exit 1
    }
    print "OK: GEMM backend holds its training-speed advantage"
}'

echo "== int8 quantized-inference gate =="
# The quantized encoders are only admissible when they change nothing the
# protocol can observe: every reference-corpus window must yield the same
# key-seed as the f32 path (bit-identical, re-checked end to end by the
# bench), both encoders must actually calibrate (no silent f32 fallback),
# and the speed/size wins that justify the path must hold — whole-encoder
# forward at least WAVEKEY_NN_INT8_SPEEDUP_MIN x the f32 GEMM forward
# (default 2.0x, against ~3.9x measured at recording time) and the
# serialized int8 models at most 30% of the f64 bytes. Reuses the
# bench_nn_json run from the training gate above.
INT8_MIN="${WAVEKEY_NN_INT8_SPEEDUP_MIN:-2.0}"
int8_seeds=$(field_of "seeds_bit_identical" "$NN_JSON")
int8_imu=$(field_of "imu_en_quantized" "$NN_JSON")
int8_rf=$(field_of "rf_en_quantized" "$NN_JSON")
int8_speedup=$(field_of "encoder_int8_speedup" "$NN_JSON")
int8_ratio=$(field_of "int8_size_ratio" "$NN_JSON")
[[ -n "$int8_seeds" && -n "$int8_speedup" && -n "$int8_ratio" ]] \
    || { echo "nn bench recorded no int8 summary" >&2; exit 1; }
echo "encoder int8 speedup ${int8_speedup}x (min ${INT8_MIN}x), size ratio ${int8_ratio}," \
     "imu_quantized=$int8_imu rf_quantized=$int8_rf seeds_bit_identical=$int8_seeds"
[[ "$int8_imu" == "true" && "$int8_rf" == "true" ]] \
    || { echo "FAIL: an encoder fell back to f32 during calibration" >&2; exit 1; }
[[ "$int8_seeds" == "true" ]] \
    || { echo "FAIL: quantized key-seeds diverge from the f32 seeds" >&2; exit 1; }
awk -v s="$int8_speedup" -v min="$INT8_MIN" -v r="$int8_ratio" 'BEGIN {
    if (s + 0 < min + 0) {
        print "FAIL: int8 encoder speedup below the regression floor"
        exit 1
    }
    if (r + 0 > 0.30) {
        print "FAIL: int8 model bytes exceed 30% of the f64 serialization"
        exit 1
    }
    print "OK: int8 encoders hold seed equivalence with their speed and size wins"
}'

echo "== session throughput gate =="
# The work-stealing parallel drive must (a) reproduce the sequential
# scheduler's outcomes bit for bit and (b) not regress throughput: the
# best parallel width must reach at least WAVEKEY_THROUGHPUT_TOL x the
# sequential sessions/sec (default 0.9 — on multi-core machines the
# expectation is >1; the tolerance only absorbs single-core timing noise).
THR_JSON="$ROOT/target/ci-bench-throughput.json"
THR_TOL="${WAVEKEY_THROUGHPUT_TOL:-0.9}"
tools/offline_rig/build.sh run concurrent_sessions throughput "$THR_JSON" >/dev/null

thr_identical=$(field_of "keys_bit_identical" "$THR_JSON")
thr_success=$(field_of "successes_equal" "$THR_JSON")
thr_seq=$(field_of "sequential_sessions_per_sec" "$THR_JSON")
thr_par=$(field_of "best_parallel_sessions_per_sec" "$THR_JSON")
[[ -n "$thr_identical" && -n "$thr_success" && -n "$thr_seq" && -n "$thr_par" ]] \
    || { echo "throughput bench produced no samples" >&2; exit 1; }
echo "sequential ${thr_seq}/s vs best parallel ${thr_par}/s, keys_bit_identical=$thr_identical"
[[ "$thr_identical" == "true" ]] \
    || { echo "FAIL: parallel drive keys diverge from the sequential scheduler" >&2; exit 1; }
[[ "$thr_success" == "true" ]] \
    || { echo "FAIL: parallel drive success count != sequential" >&2; exit 1; }
awk -v par="$thr_par" -v seq="$thr_seq" -v tol="$THR_TOL" 'BEGIN {
    if (par + 0 < seq * tol) {
        print "FAIL: parallel session throughput regressed below tolerance"
        exit 1
    }
    print "OK: parallel drive matches sequential outcomes at full throughput"
}'

echo "== fault-soak (chaos) gate =="
# The robustness contract: under the reference FaultPlan mixture the
# recovery layer (retransmission + NAK + duplicate suppression + reorder
# deferral) must carry at least WAVEKEY_FAULT_SOAK_MIN of sessions to a
# key (default 0.90), the same mixture without recovery must lose more
# than half (proving the faults bite), no surviving session may ever
# hold divergent mobile/server keys, and with the faults removed the
# recovery layer must be provably inert (bit-identical to the lockstep
# driver).
FAULT_JSON="$ROOT/target/ci-bench-faults.json"
FAULT_MIN="${WAVEKEY_FAULT_SOAK_MIN:-0.90}"
tools/offline_rig/build.sh run fault_soak "$FAULT_JSON" >/dev/null

fs_sessions=$(field_of "sessions" "$FAULT_JSON")
fs_bare=$(field_of "success_rate_no_recovery" "$FAULT_JSON")
fs_rec=$(field_of "success_rate_recovered" "$FAULT_JSON")
fs_div=$(field_of "divergent_key_successes" "$FAULT_JSON")
fs_ident=$(field_of "fault_free_keys_bit_identical" "$FAULT_JSON")
[[ -n "$fs_sessions" && -n "$fs_bare" && -n "$fs_rec" && -n "$fs_div" && -n "$fs_ident" ]] \
    || { echo "fault soak produced no samples" >&2; exit 1; }
echo "sessions $fs_sessions: no-recovery $fs_bare, recovered $fs_rec (min $FAULT_MIN), divergent $fs_div, fault_free_bit_identical=$fs_ident"
awk -v bare="$fs_bare" -v rec="$fs_rec" -v min="$FAULT_MIN" 'BEGIN {
    if (bare + 0 >= 0.5) {
        print "FAIL: fault mixture too gentle — no-recovery survival >= 50%"
        exit 1
    }
    if (rec + 0 < min + 0) {
        print "FAIL: recovered survival below the fault-soak floor"
        exit 1
    }
}'
[[ "$fs_div" == "0" ]] \
    || { echo "FAIL: a recovered session completed with divergent keys" >&2; exit 1; }
[[ "$fs_ident" == "true" ]] \
    || { echo "FAIL: recovery layer perturbs fault-free runs" >&2; exit 1; }
echo "OK: recovery layer survives the chaos mixture without corrupting keys"

echo "== SLO load gate =="
# The observability v2 contract: the Zipfian load generator drives
# enrol-heavy / auth-heavy / fault-heavy mixes through the
# SessionManager, evaluates each against declarative SLOs (p99 latency
# via WAVEKEY_SLO_P99_MS, throughput floor via WAVEKEY_SLO_MIN_SPS —
# defaults calibrated ~15x above the 1-core container's observed
# numbers), checks that the fault-heavy causal timelines export
# byte-identically across two runs, and appends a results/TREND.jsonl
# ledger line. The gate requires every SLO verdict to pass, determinism
# to hold, and zero divergent-key successes.
LOAD_JSON="$ROOT/target/ci-bench-load.json"
tools/offline_rig/build.sh run load_gen "$LOAD_JSON" >/dev/null

slo_pass=$(field_of "slo_all_pass" "$LOAD_JSON")
slo_det=$(field_of "timelines_deterministic" "$LOAD_JSON")
slo_div=$(field_of "divergent_key_successes" "$LOAD_JSON")
slo_sps=$(field_of "sessions_per_s" "$LOAD_JSON")
[[ -n "$slo_pass" && -n "$slo_det" && -n "$slo_div" ]] \
    || { echo "load generator produced no verdicts" >&2; exit 1; }
echo "sessions/s $slo_sps, slo_all_pass=$slo_pass, timelines_deterministic=$slo_det, divergent $slo_div"
[[ "$slo_det" == "true" ]] \
    || { echo "FAIL: causal timelines diverge between identical fault-heavy runs" >&2; exit 1; }
[[ "$slo_div" == "0" ]] \
    || { echo "FAIL: a load-gen session completed with divergent keys" >&2; exit 1; }
[[ "$slo_pass" == "true" ]] \
    || { echo "FAIL: an SLO verdict failed (see $LOAD_JSON)" >&2; exit 1; }
echo "OK: all traffic mixes hold their SLOs with deterministic timelines"

echo "== gateway soak gate =="
# The async-gateway contract at fleet scale: WAVEKEY_GATEWAY_SESSIONS
# (default 100,000) sessions all in flight at once through one event
# loop must every one complete with matching mobile/gateway keys
# (divergent_keys == 0), peak_in_flight must reach the fleet size (the
# soak measures genuine concurrency, not a trickle), peak RSS must stay
# under WAVEKEY_GATEWAY_MAX_RSS_MB, a strided lockstep mirror must be
# bit-identical (byte chunking never reaches the machines), lossless
# stream faults must change no key, and the lossy arm may evict but
# never corrupt. The bench appends the run to results/TREND.jsonl.
GW_JSON="$ROOT/target/ci-bench-gateway.json"
tools/offline_rig/build.sh run gateway_soak "$GW_JSON" >/dev/null

gw_sessions=$(field_of "sessions" "$GW_JSON")
gw_completed=$(field_of "completed" "$GW_JSON")
gw_peak=$(field_of "peak_in_flight" "$GW_JSON")
gw_div=$(field_of "divergent_keys" "$GW_JSON")
gw_rss=$(field_of "peak_rss_mb" "$GW_JSON")
gw_rss_pass=$(field_of "rss_pass" "$GW_JSON")
gw_lockstep=$(field_of "lockstep_bit_identical" "$GW_JSON")
gw_lossless=$(field_of "lossless_keys_identical" "$GW_JSON")
gw_lossy_div=$(field_of "lossy_divergent" "$GW_JSON")
gw_pass=$(field_of "gateway_soak_pass" "$GW_JSON")
[[ -n "$gw_sessions" && -n "$gw_completed" && -n "$gw_div" && -n "$gw_pass" ]] \
    || { echo "gateway soak produced no verdicts" >&2; exit 1; }
echo "sessions $gw_sessions: completed $gw_completed, peak_in_flight $gw_peak, divergent $gw_div"
echo "peak RSS ${gw_rss} MiB (pass $gw_rss_pass), lockstep_bit_identical=$gw_lockstep, lossless_keys_identical=$gw_lossless, lossy divergent $gw_lossy_div"
[[ "$gw_completed" == "$gw_sessions" ]] \
    || { echo "FAIL: not every gateway session completed" >&2; exit 1; }
[[ "$gw_div" == "0" && "$gw_lossy_div" == "0" ]] \
    || { echo "FAIL: a gateway session completed with divergent keys" >&2; exit 1; }
[[ "$gw_lockstep" == "true" ]] \
    || { echo "FAIL: gateway keys diverge from the lockstep driver" >&2; exit 1; }
[[ "$gw_lossless" == "true" ]] \
    || { echo "FAIL: lossless stream faults perturbed a key" >&2; exit 1; }
[[ "$gw_rss_pass" == "true" ]] \
    || { echo "FAIL: gateway soak exceeded the memory ceiling" >&2; exit 1; }
[[ "$gw_pass" == "true" ]] \
    || { echo "FAIL: gateway soak gate failed (see $GW_JSON)" >&2; exit 1; }
echo "OK: the gateway holds $gw_sessions concurrent sessions with lockstep-identical keys"

echo "== store soak gate =="
# The durability contract: kill-and-recover at every journal record
# boundary (clean cuts, torn tails, bit rot, live-faulted media) must
# reproduce the never-crashed twin — the recovered-prefix rate must meet
# WAVEKEY_STORE_SOAK_MIN (default 0.99), the fault-free full recovery
# must be bit-identical, snapshot + tail replay must equal full replay,
# and no recovery may surface a key the workload never bound
# (divergent_keys == 0). The bench appends the run to results/TREND.jsonl.
STORE_SOAK_MIN="${WAVEKEY_STORE_SOAK_MIN:-0.99}"
STORE_JSON="$ROOT/target/ci-bench-store.json"
tools/offline_rig/build.sh run store_soak "$STORE_JSON" >/dev/null

st_ops=$(field_of "ops" "$STORE_JSON")
st_kills=$(field_of "kill_points" "$STORE_JSON")
st_rate=$(field_of "recovered_rate" "$STORE_JSON")
st_div=$(field_of "divergent_keys" "$STORE_JSON")
st_bit=$(field_of "fault_free_bit_identical" "$STORE_JSON")
st_snap=$(field_of "snapshot_equivalent" "$STORE_JSON")
st_pass=$(field_of "store_soak_pass" "$STORE_JSON")
[[ -n "$st_rate" && -n "$st_div" && -n "$st_pass" ]] \
    || { echo "store soak produced no verdicts" >&2; exit 1; }
echo "ops $st_ops, kill points $st_kills, recovered_rate $st_rate (floor $STORE_SOAK_MIN), divergent $st_div"
echo "fault_free_bit_identical=$st_bit, snapshot_equivalent=$st_snap"
awk -v rate="$st_rate" -v min="$STORE_SOAK_MIN" 'BEGIN { exit !(rate >= min) }' \
    || { echo "FAIL: recovery rate $st_rate below floor $STORE_SOAK_MIN" >&2; exit 1; }
[[ "$st_div" == "0" ]] \
    || { echo "FAIL: a recovery surfaced a divergent key" >&2; exit 1; }
[[ "$st_bit" == "true" ]] \
    || { echo "FAIL: fault-free recovery is not bit-identical to the twin" >&2; exit 1; }
[[ "$st_snap" == "true" ]] \
    || { echo "FAIL: snapshot + tail replay diverges from full replay" >&2; exit 1; }
[[ "$st_pass" == "true" ]] \
    || { echo "FAIL: store soak gate failed (see $STORE_JSON)" >&2; exit 1; }
echo "OK: every kill point recovers to an exact operation prefix"
echo "== done =="
