//! Property-based differential tests: the im2col/GEMM lowering must
//! reproduce the naive reference loops exactly over arbitrary layer
//! shapes — odd lengths, stride > 1, padding, and batch > 1.
//!
//! The seeded exhaustive differentials live as unit tests in
//! `src/lowering.rs` (offline-rig-runnable); this file adds the
//! proptest-driven shape sweep (cargo-only, like the other property
//! suites in the workspace).
//!
//! Outputs are compared with `==` (not an epsilon): the GEMM microkernel
//! adds every product of each output element in strictly ascending-k
//! order, matching the reference loops' accumulation order, so results
//! are bit-identical (`-0.0 == 0.0` covers positions where the reference
//! skips an explicit zero term the lowering multiplies).

use proptest::prelude::*;
use wavekey_nn::tensor::Tensor;
use wavekey_nn::{lowering, reference};

/// A deterministic pseudo-random tensor: shape-independent fill from a
/// seed, values in roughly [-1, 1].
fn filled(shape: Vec<usize>, seed: u64) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n)
        .map(|i| {
            let x = (i as u64 ^ seed)
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((x >> 33) % 2001) as f32 / 1000.0 - 1.0
        })
        .collect();
    Tensor::from_vec(data, shape)
}

proptest! {
    #[test]
    fn conv1d_forward_and_backward_match_reference(
        batch in 1usize..4,
        in_ch in 1usize..4,
        out_ch in 1usize..4,
        kernel in 1usize..8,
        stride in 1usize..5,
        padding in 0usize..4,
        extra in 0usize..16,
        seed in any::<u64>(),
    ) {
        let l_in = kernel + extra;
        let x = filled(vec![batch, in_ch, l_in], seed);
        let w = filled(vec![out_ch, in_ch, kernel], seed ^ 0x11);
        let b = filled(vec![out_ch], seed ^ 0x22);

        let y_ref = reference::conv1d_forward(&x, &w, &b, stride, padding);
        let y_gemm = lowering::conv1d_forward(&x, &w, &b, stride, padding);
        prop_assert_eq!(y_ref.shape(), y_gemm.shape());
        prop_assert!(y_ref.data() == y_gemm.data(), "forward outputs diverge");

        let g = filled(y_ref.shape().to_vec(), seed ^ 0x33);
        let mut wg_ref = Tensor::zeros(w.shape().to_vec());
        let mut bg_ref = Tensor::zeros(b.shape().to_vec());
        let gx_ref =
            reference::conv1d_backward(&x, &w, &g, stride, padding, &mut wg_ref, &mut bg_ref);
        let mut wg_gemm = Tensor::zeros(w.shape().to_vec());
        let mut bg_gemm = Tensor::zeros(b.shape().to_vec());
        let gx_gemm =
            lowering::conv1d_backward(&x, &w, &g, stride, padding, &mut wg_gemm, &mut bg_gemm);
        prop_assert!(gx_ref.data() == gx_gemm.data(), "input gradients diverge");
        prop_assert!(wg_ref.data() == wg_gemm.data(), "weight gradients diverge");
        prop_assert!(bg_ref.data() == bg_gemm.data(), "bias gradients diverge");
    }

    #[test]
    fn conv_transpose1d_forward_and_backward_match_reference(
        batch in 1usize..4,
        in_ch in 1usize..4,
        out_ch in 1usize..4,
        kernel in 1usize..9,
        stride in 1usize..5,
        l_in in 1usize..10, // includes the degenerate length-1 latent
        seed in any::<u64>(),
    ) {
        let x = filled(vec![batch, in_ch, l_in], seed);
        let w = filled(vec![in_ch, out_ch, kernel], seed ^ 0x44);
        let b = filled(vec![out_ch], seed ^ 0x55);

        let y_ref = reference::conv_transpose1d_forward(&x, &w, &b, stride);
        let y_gemm = lowering::conv_transpose1d_forward(&x, &w, &b, stride);
        prop_assert_eq!(y_ref.shape(), y_gemm.shape());
        prop_assert!(y_ref.data() == y_gemm.data(), "forward outputs diverge");

        let g = filled(y_ref.shape().to_vec(), seed ^ 0x66);
        let mut wg_ref = Tensor::zeros(w.shape().to_vec());
        let mut bg_ref = Tensor::zeros(b.shape().to_vec());
        let gx_ref =
            reference::conv_transpose1d_backward(&x, &w, &g, stride, &mut wg_ref, &mut bg_ref);
        let mut wg_gemm = Tensor::zeros(w.shape().to_vec());
        let mut bg_gemm = Tensor::zeros(b.shape().to_vec());
        let gx_gemm =
            lowering::conv_transpose1d_backward(&x, &w, &g, stride, &mut wg_gemm, &mut bg_gemm);
        prop_assert!(gx_ref.data() == gx_gemm.data(), "input gradients diverge");
        prop_assert!(wg_ref.data() == wg_gemm.data(), "weight gradients diverge");
        prop_assert!(bg_ref.data() == bg_gemm.data(), "bias gradients diverge");
    }

    #[test]
    fn dense_forward_and_backward_match_reference(
        batch in 1usize..5,
        in_f in 1usize..20,
        out_f in 1usize..16,
        seed in any::<u64>(),
    ) {
        let x = filled(vec![batch, in_f], seed);
        let w = filled(vec![out_f, in_f], seed ^ 0x77);
        let b = filled(vec![out_f], seed ^ 0x88);

        let y_ref = reference::dense_forward(&x, &w, &b);
        let y_gemm = lowering::dense_forward(&x, &w, &b);
        prop_assert_eq!(y_ref.shape(), y_gemm.shape());
        prop_assert!(y_ref.data() == y_gemm.data(), "forward outputs diverge");

        let g = filled(y_ref.shape().to_vec(), seed ^ 0x99);
        let mut wg_ref = Tensor::zeros(w.shape().to_vec());
        let mut bg_ref = Tensor::zeros(b.shape().to_vec());
        let gx_ref = reference::dense_backward(&x, &w, &g, &mut wg_ref, &mut bg_ref);
        let mut wg_gemm = Tensor::zeros(w.shape().to_vec());
        let mut bg_gemm = Tensor::zeros(b.shape().to_vec());
        let gx_gemm = lowering::dense_backward(&x, &w, &g, &mut wg_gemm, &mut bg_gemm);
        prop_assert!(gx_ref.data() == gx_gemm.data(), "input gradients diverge");
        prop_assert!(wg_ref.data() == wg_gemm.data(), "weight gradients diverge");
        prop_assert!(bg_ref.data() == bg_gemm.data(), "bias gradients diverge");
    }
}
