//! Property-based differentials for the int8 inference kernels: the
//! SSE2 paths (GEMM, de-interleave, quantize, requantize) must match
//! their scalar definitions exactly over arbitrary shapes, strides, and
//! full-range w8a15 values.
//!
//! The seeded exhaustive differentials live as unit tests in
//! `src/gemm.rs` / `src/quant.rs` (offline-rig-runnable); this file adds
//! the proptest-driven sweep (cargo-only, like the other property suites
//! in the workspace). Comparisons are `==`: integer accumulation is
//! exact and the float requantization performs the identical IEEE
//! operation sequence in both paths.

use proptest::prelude::*;
use wavekey_nn::gemm::{deinterleave2, gemm_i8_cols, quantize_codes, requant_relu};

/// Deterministic weight row in the i8 range widened to i16.
fn weights(seed: u64, n: usize) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let x = (i as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((x >> 32) % 255) as i16 - 127
        })
        .collect()
}

/// Deterministic activation codes in the 15-bit range.
fn codes(seed: u64, n: usize) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let x = (i as u64 ^ seed).wrapping_mul(0xD134_2543_DE82_EF95);
            ((x >> 30) % 32_767) as i16 - 16_383
        })
        .collect()
}

fn gemm_naive(c: &mut [i32], rsc: usize, a: &[i16], rsa: usize, b: &[i16], m: usize, kd: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..kd {
                acc += i32::from(a[i * rsa + k]) * i32::from(b[k * n + j]);
            }
            c[i * rsc + j] += acc;
        }
    }
}

proptest! {
    #[test]
    fn cols_gemm_matches_naive(
        m in 1usize..20,
        kd in 1usize..48,
        n in 1usize..130,
        pad in 0usize..5,
        seed in any::<u64>(),
    ) {
        let rsc = n + pad;
        let a = weights(seed, m * kd);
        let b = codes(seed ^ 0xA5, kd * n);
        let c0: Vec<i32> = (0..m * rsc).map(|i| i as i32 * 11 - 900).collect();
        let mut c_fast = c0.clone();
        let mut c_ref = c0;
        gemm_i8_cols(&mut c_fast, rsc, &a, kd, &b, m, kd, n);
        gemm_naive(&mut c_ref, rsc, &a, kd, &b, m, kd, n);
        prop_assert_eq!(c_fast, c_ref);
    }

    #[test]
    fn deinterleave2_matches_index_halves(
        len in 0usize..300,
        seed in any::<u64>(),
    ) {
        let src = codes(seed, len);
        let mut even = vec![0i16; len.div_ceil(2)];
        let mut odd = vec![0i16; len / 2];
        deinterleave2(&src, &mut even, &mut odd);
        let e_ref: Vec<i16> = src.iter().step_by(2).copied().collect();
        let o_ref: Vec<i16> = src.iter().skip(1).step_by(2).copied().collect();
        prop_assert_eq!(even, e_ref);
        prop_assert_eq!(odd, o_ref);
    }

    #[test]
    fn requant_relu_matches_scalar_formula(
        len in 0usize..100,
        scale in 1e-6f32..1e-2,
        seed in any::<u64>(),
    ) {
        let acc: Vec<i32> = weights(seed, len)
            .iter()
            .map(|&w| i32::from(w) * 21_001)
            .collect();
        let mut out = vec![0i16; len];
        requant_relu(&mut out, &acc, scale, 16_383.0);
        for (&o, &a) in out.iter().zip(&acc) {
            let want = ((a as f32 * scale).clamp(0.0, 16_383.0) + 0.5) as i16;
            prop_assert_eq!(o, want);
        }
    }

    #[test]
    fn quantize_codes_matches_scalar_formula(
        len in 0usize..100,
        inv in 1.0f32..20_000.0,
        seed in any::<u64>(),
    ) {
        let src: Vec<f32> = codes(seed, len).iter().map(|&v| f32::from(v) / 9_000.0).collect();
        let mut dst = Vec::new();
        quantize_codes(&mut dst, &src, inv, 16_383.0);
        prop_assert_eq!(dst.len(), src.len());
        for (&d, &s) in dst.iter().zip(&src) {
            let v = (s * inv).clamp(-16_383.0, 16_383.0);
            let want = (v + 0.5f32.copysign(v)) as i16;
            prop_assert_eq!(d, want);
        }
    }
}
