//! Property-based tests for the neural-network micro-framework.

use proptest::prelude::*;
use wavekey_nn::layer::{Conv1d, Dense, Layer, ReLU};
use wavekey_nn::tensor::Tensor;

fn tensor_strategy(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-10.0f32..10.0, n)
        .prop_map(move |data| Tensor::from_vec(data, shape.clone()))
}

proptest! {
    #[test]
    fn tensor_add_commutes(a in tensor_strategy(vec![2, 6]), b in tensor_strategy(vec![2, 6])) {
        prop_assert_eq!(a.add(&b).data().to_vec(), b.add(&a).data().to_vec());
    }

    #[test]
    fn tensor_scale_distributes(a in tensor_strategy(vec![12]), s in -5.0f32..5.0) {
        let lhs = a.add(&a).scale(s);
        let rhs = a.scale(s).add(&a.scale(s));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn stack_unstack_roundtrip(a in tensor_strategy(vec![3, 4]), b in tensor_strategy(vec![3, 4])) {
        let stacked = Tensor::stack(&[a.clone(), b.clone()]);
        let parts = stacked.unstack();
        prop_assert_eq!(parts[0].data().to_vec(), a.data().to_vec());
        prop_assert_eq!(parts[1].data().to_vec(), b.data().to_vec());
    }

    #[test]
    fn dense_is_affine(x in tensor_strategy(vec![1, 5]), y in tensor_strategy(vec![1, 5]), alpha in -3.0f32..3.0) {
        // f(αx + (1−α)y) = αf(x) + (1−α)f(y) for affine layers.
        let mut dense = Dense::new(5, 3, 7);
        let combo_in = x.scale(alpha).add(&y.scale(1.0 - alpha));
        let f_combo = dense.forward(&combo_in, false);
        let f_x = dense.forward(&x, false);
        let f_y = dense.forward(&y, false);
        let expected = f_x.scale(alpha).add(&f_y.scale(1.0 - alpha));
        for (a, b) in f_combo.data().iter().zip(expected.data()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn conv_is_translation_equivariant(signal in proptest::collection::vec(-5.0f32..5.0, 30)) {
        // Shifting the input by s shifts the (valid, stride-1) output by s.
        let mut conv = Conv1d::new(1, 2, 5, 3);
        let shift = 4usize;
        let mut shifted = vec![0.0f32; 30];
        shifted[shift..].copy_from_slice(&signal[..30 - shift]);
        let y1 = conv.forward(&Tensor::from_vec(signal.clone(), vec![1, 1, 30]), false);
        let y2 = conv.forward(&Tensor::from_vec(shifted, vec![1, 1, 30]), false);
        // Compare overlapping region: y2[t + shift] == y1[t] for valid t.
        let out_len = 30 - 5 + 1;
        for oc in 0..2 {
            for t in 0..(out_len - shift) {
                let a = y1.at3(0, oc, t);
                let b = y2.at3(0, oc, t + shift);
                prop_assert!((a - b).abs() < 1e-4, "oc {oc} t {t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(x in tensor_strategy(vec![2, 10])) {
        let mut relu = ReLU::new();
        let once = relu.forward(&x, false);
        prop_assert!(once.data().iter().all(|&v| v >= 0.0));
        let twice = relu.forward(&once, false);
        prop_assert_eq!(once.data().to_vec(), twice.data().to_vec());
    }

    #[test]
    fn encode_decode_preserves_networks(seed in any::<u64>()) {
        let mut net = wavekey_nn::Sequential::new();
        net.push(Conv1d::new(2, 3, 3, seed));
        net.push(ReLU::new());
        net.push(wavekey_nn::Flatten::new());
        net.push(Dense::new(3 * 8, 4, seed.wrapping_add(1)));
        let bytes = net.encode();
        let decoded = wavekey_nn::Sequential::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, net);
    }
}
