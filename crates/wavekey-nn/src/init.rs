//! Seeded weight initialization.
//!
//! Training must be reproducible (the experiment harness retrains during
//! the `l_f` pruning study), so all initialization goes through a
//! caller-supplied seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// He (Kaiming) uniform initialization for layers followed by ReLU:
/// `U(-√(6/fan_in), √(6/fan_in))`.
pub fn he_uniform(shape: Vec<usize>, fan_in: usize, seed: u64) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(shape, -bound, bound, seed)
}

/// Xavier (Glorot) uniform initialization:
/// `U(-√(6/(fan_in+fan_out)), √(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(shape: Vec<usize>, fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    assert!(fan_in + fan_out > 0, "fans must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -bound, bound, seed)
}

/// Uniform initialization over `[lo, hi)` with a fixed seed.
pub fn uniform(shape: Vec<usize>, lo: f32, hi: f32, seed: u64) -> Tensor {
    let n: usize = shape.iter().product();
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let a = he_uniform(vec![4, 4], 4, 42);
        let b = he_uniform(vec![4, 4], 4, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_weights() {
        let a = he_uniform(vec![4, 4], 4, 1);
        let b = he_uniform(vec![4, 4], 4, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn he_bound_respected() {
        let fan_in = 16;
        let bound = (6.0f32 / fan_in as f32).sqrt();
        let t = he_uniform(vec![100], fan_in, 7);
        assert!(t.data().iter().all(|&w| w > -bound && w < bound));
    }

    #[test]
    fn xavier_bound_respected() {
        let bound = (6.0f32 / 24.0).sqrt();
        let t = xavier_uniform(vec![100], 8, 16, 7);
        assert!(t.data().iter().all(|&w| w > -bound && w < bound));
    }
}
