//! The [`Sequential`] network container and its binary model format.
//!
//! Trained WaveKey models must be shareable between the example binaries,
//! the benchmark harness, and the tests without retraining, so
//! `Sequential` can encode itself to a compact little-endian binary format
//! and decode back. The codec is written by hand (no external
//! serialization dependency) and versioned with a magic header.

use crate::layer::{
    BatchNorm1d, Conv1d, ConvTranspose1d, Dense, Flatten, Layer, LayerBox, Param, ReLU, Reshape,
};
use crate::quant::QuantizedSequential;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"WKNN";
const VERSION: u32 = 1;
/// Version tag for quantized int8 models ([`QuantizedSequential`]).
const QUANT_VERSION: u32 = 2;

/// A feed-forward stack of layers.
///
/// # Examples
///
/// ```
/// use wavekey_nn::{Sequential, Dense, ReLU, Tensor};
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 8, 0));
/// net.push(ReLU::new());
/// net.push(Dense::new(8, 2, 1));
/// let x = Tensor::zeros(vec![1, 4]);
/// let y = net.forward(&x, false);
/// assert_eq!(y.shape(), &[1, 2]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sequential {
    layers: Vec<LayerBox>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Sequential {
        Sequential::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Into<LayerBox>) -> &mut Sequential {
        self.layers.push(layer.into());
        self
    }

    /// The layers, immutably.
    pub fn layers(&self) -> &[LayerBox] {
        &self.layers
    }

    /// The layers, mutably (used by the pruning study to edit specific
    /// layers in place).
    pub fn layers_mut(&mut self) -> &mut [LayerBox] {
        &mut self.layers
    }

    /// Runs the network forward.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Backpropagates from the output gradient, returning the gradient
    /// with respect to the network input.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// All trainable parameters, in a stable front-to-back order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Resets all gradients to zero.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of trainable scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }

    /// Encodes the network (architecture + weights + batch-norm running
    /// statistics) to the versioned binary model format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_u32(&mut out, self.layers.len() as u32);
        for layer in &self.layers {
            encode_layer(&mut out, layer);
        }
        out
    }

    /// Decodes a network previously produced by [`Sequential::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelCodecError`] on malformed input (wrong magic,
    /// unsupported version, truncated data, unknown layer tag).
    pub fn decode(bytes: &[u8]) -> Result<Sequential, ModelCodecError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(ModelCodecError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(ModelCodecError::UnsupportedVersion(version));
        }
        let count = r.u32()? as usize;
        let mut layers = Vec::with_capacity(count);
        for _ in 0..count {
            layers.push(decode_layer(&mut r)?);
        }
        if r.pos != r.bytes.len() {
            return Err(ModelCodecError::TrailingBytes);
        }
        Ok(Sequential { layers })
    }
}

impl QuantizedSequential {
    /// Encodes the quantized network under the same `WKNN` magic as the
    /// f32 format, with version tag 2. Weights are stored as true `i8`
    /// (one byte each), so the encoding is roughly 4× smaller than the
    /// f32 encoding of the same architecture.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, QUANT_VERSION);
        put_u32(&mut out, self.convs().len() as u32);
        for conv in self.convs() {
            let (ic, oc, k, s) = conv.dims();
            for v in [ic, oc, k, s] {
                put_u32(&mut out, v as u32);
            }
            let (weight, weight_scale, bias_q, in_scale, out_scale) = conv.codec_fields();
            put_i8s(&mut out, weight);
            put_f32s(&mut out, weight_scale);
            put_i32s(&mut out, bias_q);
            out.extend_from_slice(&in_scale.to_le_bytes());
            out.extend_from_slice(&out_scale.to_le_bytes());
        }
        let (inf, of) = self.dense().dims();
        put_u32(&mut out, inf as u32);
        put_u32(&mut out, of as u32);
        let (weight, weight_scale, bias, in_scale) = self.dense().codec_fields();
        put_i8s(&mut out, weight);
        put_f32s(&mut out, weight_scale);
        put_f32s(&mut out, bias);
        out.extend_from_slice(&in_scale.to_le_bytes());
        out
    }

    /// Decodes a network previously produced by
    /// [`QuantizedSequential::encode`].
    ///
    /// Derived inference state (widened `i16` weights, requantization
    /// multipliers) is rebuilt here, so a decoded model is forward-ready.
    ///
    /// # Errors
    ///
    /// Returns [`ModelCodecError`] on malformed input; a version-1 (f32)
    /// model yields [`ModelCodecError::UnsupportedVersion`]`(1)`.
    pub fn decode(bytes: &[u8]) -> Result<QuantizedSequential, ModelCodecError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(ModelCodecError::BadMagic);
        }
        let version = r.u32()?;
        if version != QUANT_VERSION {
            return Err(ModelCodecError::UnsupportedVersion(version));
        }
        let conv_count = r.u32()? as usize;
        let mut convs = Vec::with_capacity(conv_count);
        for _ in 0..conv_count {
            let (ic, oc, k, s) = (
                r.u32()? as usize,
                r.u32()? as usize,
                r.u32()? as usize,
                r.u32()? as usize,
            );
            if ic == 0 || oc == 0 || k == 0 || s == 0 {
                return Err(ModelCodecError::Truncated);
            }
            let weight = r.i8s()?;
            let weight_scale = r.f32s()?;
            let bias_q = r.i32s()?;
            let in_scale = r.f32()?;
            let out_scale = r.f32()?;
            if weight.len() != oc * ic * k || weight_scale.len() != oc || bias_q.len() != oc {
                return Err(ModelCodecError::Truncated);
            }
            convs.push(QuantizedSequential::conv_from_parts(
                ic, oc, k, s, weight, weight_scale, bias_q, in_scale, out_scale,
            ));
        }
        let (inf, of) = (r.u32()? as usize, r.u32()? as usize);
        let weight = r.i8s()?;
        let weight_scale = r.f32s()?;
        let bias = r.f32s()?;
        let in_scale = r.f32()?;
        if inf == 0
            || of == 0
            || weight.len() != of * inf
            || weight_scale.len() != of
            || bias.len() != of
        {
            return Err(ModelCodecError::Truncated);
        }
        if r.pos != r.bytes.len() {
            return Err(ModelCodecError::TrailingBytes);
        }
        Ok(QuantizedSequential::from_parts(
            convs,
            QuantizedSequential::dense_from_parts(inf, of, weight, weight_scale, bias, in_scale),
        ))
    }
}

/// Error decoding a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelCodecError {
    /// The magic header is missing.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// The byte stream ended prematurely.
    Truncated,
    /// An unknown layer tag was encountered.
    UnknownLayerTag(u8),
    /// Extra bytes followed the last layer.
    TrailingBytes,
}

impl std::fmt::Display for ModelCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelCodecError::BadMagic => write!(f, "missing WKNN magic header"),
            ModelCodecError::UnsupportedVersion(v) => write!(f, "unsupported model version {v}"),
            ModelCodecError::Truncated => write!(f, "model bytes truncated"),
            ModelCodecError::UnknownLayerTag(t) => write!(f, "unknown layer tag {t}"),
            ModelCodecError::TrailingBytes => write!(f, "trailing bytes after model"),
        }
    }
}

impl std::error::Error for ModelCodecError {}

// --- encoding helpers -----------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    put_u32(out, vs.len() as u32);
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_i8s(out: &mut Vec<u8>, vs: &[i8]) {
    put_u32(out, vs.len() as u32);
    out.extend(vs.iter().map(|&v| v as u8));
}

fn put_i32s(out: &mut Vec<u8>, vs: &[i32]) {
    put_u32(out, vs.len() as u32);
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_param(out: &mut Vec<u8>, p: &Param) {
    put_u32(out, p.value.ndim() as u32);
    for &d in p.value.shape() {
        put_u32(out, d as u32);
    }
    put_f32s(out, p.value.data());
}

fn encode_layer(out: &mut Vec<u8>, layer: &LayerBox) {
    match layer {
        LayerBox::Conv1d(l) => {
            out.push(1);
            let (ic, oc, k, s, p) = l.dims();
            for v in [ic, oc, k, s, p] {
                put_u32(out, v as u32);
            }
            put_param(out, &l.weight);
            put_param(out, &l.bias);
        }
        LayerBox::ConvTranspose1d(l) => {
            out.push(2);
            let (ic, oc, k, s) = l.dims();
            for v in [ic, oc, k, s] {
                put_u32(out, v as u32);
            }
            put_param(out, &l.weight);
            put_param(out, &l.bias);
        }
        LayerBox::Dense(l) => {
            out.push(3);
            let (i, o) = l.dims();
            put_u32(out, i as u32);
            put_u32(out, o as u32);
            put_param(out, &l.weight);
            put_param(out, &l.bias);
        }
        LayerBox::ReLU(_) => {
            out.push(4);
        }
        LayerBox::BatchNorm1d(l) => {
            out.push(5);
            put_u32(out, l.features() as u32);
            out.push(l.is_affine() as u8);
            put_param(out, &l.gamma);
            put_param(out, &l.beta);
            put_f32s(out, &l.running_mean);
            put_f32s(out, &l.running_var);
        }
        LayerBox::Flatten(_) => {
            out.push(6);
        }
        LayerBox::Reshape(l) => {
            out.push(7);
            let (c, len) = l.dims();
            put_u32(out, c as u32);
            put_u32(out, len as u32);
        }
    }
}

// --- decoding helpers -----------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ModelCodecError> {
        if self.pos + n > self.bytes.len() {
            return Err(ModelCodecError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ModelCodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ModelCodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self) -> Result<f32, ModelCodecError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i8s(&mut self) -> Result<Vec<i8>, ModelCodecError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        Ok(b.iter().map(|&v| v as i8).collect())
    }

    fn i32s(&mut self) -> Result<Vec<i32>, ModelCodecError> {
        let n = self.u32()? as usize;
        let b = self.take(n.saturating_mul(4))?;
        Ok(b.chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn f32s(&mut self) -> Result<Vec<f32>, ModelCodecError> {
        let n = self.u32()? as usize;
        let b = self.take(n * 4)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn param(&mut self) -> Result<Param, ModelCodecError> {
        let ndim = self.u32()? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(self.u32()? as usize);
        }
        let data = self.f32s()?;
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(ModelCodecError::Truncated);
        }
        Ok(Param::new(Tensor::from_vec(data, shape)))
    }
}

fn decode_layer(r: &mut Reader<'_>) -> Result<LayerBox, ModelCodecError> {
    let tag = r.u8()?;
    Ok(match tag {
        1 => {
            let (ic, oc, k, s, p) = (
                r.u32()? as usize,
                r.u32()? as usize,
                r.u32()? as usize,
                r.u32()? as usize,
                r.u32()? as usize,
            );
            let mut l = Conv1d::with_stride(ic, oc, k, s, p, 0);
            l.weight = r.param()?;
            l.bias = r.param()?;
            LayerBox::Conv1d(l)
        }
        2 => {
            let (ic, oc, k, s) = (
                r.u32()? as usize,
                r.u32()? as usize,
                r.u32()? as usize,
                r.u32()? as usize,
            );
            let mut l = ConvTranspose1d::new(ic, oc, k, s, 0);
            l.weight = r.param()?;
            l.bias = r.param()?;
            LayerBox::ConvTranspose1d(l)
        }
        3 => {
            let (i, o) = (r.u32()? as usize, r.u32()? as usize);
            let mut l = Dense::new(i, o, 0);
            l.weight = r.param()?;
            l.bias = r.param()?;
            LayerBox::Dense(l)
        }
        4 => LayerBox::ReLU(ReLU::new()),
        5 => {
            let features = r.u32()? as usize;
            let affine = r.u8()? != 0;
            let mut l = BatchNorm1d::new(features, affine);
            l.gamma = r.param()?;
            l.beta = r.param()?;
            l.running_mean = r.f32s()?;
            l.running_var = r.f32s()?;
            if l.running_mean.len() != features || l.running_var.len() != features {
                return Err(ModelCodecError::Truncated);
            }
            LayerBox::BatchNorm1d(l)
        }
        6 => LayerBox::Flatten(Flatten::new()),
        7 => {
            let (c, len) = (r.u32()? as usize, r.u32()? as usize);
            LayerBox::Reshape(Reshape::new(c, len))
        }
        t => return Err(ModelCodecError::UnknownLayerTag(t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::loss::mse;
    use crate::optim::{Adam, Optimizer};

    fn toy_net() -> Sequential {
        let mut net = Sequential::new();
        net.push(Conv1d::with_stride(2, 4, 3, 1, 1, 1));
        net.push(ReLU::new());
        net.push(Flatten::new());
        net.push(Dense::new(4 * 10, 6, 2));
        net.push(BatchNorm1d::new(6, false));
        net
    }

    #[test]
    fn forward_shape() {
        let mut net = toy_net();
        let x = init::uniform(vec![4, 2, 10], -1.0, 1.0, 3);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[4, 6]);
    }

    #[test]
    fn param_count() {
        let mut net = toy_net();
        // Conv: 4*2*3 + 4 = 28; Dense: 6*40 + 6 = 246; BN non-affine: 0.
        assert_eq!(net.param_count(), 28 + 246);
    }

    #[test]
    fn trains_xor() {
        // The classic nonlinear sanity check.
        let mut net = Sequential::new();
        net.push(Dense::new(2, 8, 10));
        net.push(ReLU::new());
        net.push(Dense::new(8, 1, 11));
        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], vec![4, 2]);
        let y = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], vec![4, 1]);
        let mut opt = Adam::new(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..800 {
            let out = net.forward(&x, true);
            let (loss, grad) = mse(&out, &y);
            net.zero_grad();
            net.backward(&grad);
            opt.step(&mut net.params_mut());
            final_loss = loss;
        }
        assert!(final_loss < 1e-2, "xor loss {final_loss}");
    }

    #[test]
    fn encode_decode_roundtrip_preserves_output() {
        let mut net = toy_net();
        // Push some data through in training mode so BN running stats move.
        let x = init::uniform(vec![8, 2, 10], -1.0, 1.0, 5);
        net.forward(&x, true);
        net.forward(&x, true);

        let bytes = net.encode();
        let mut decoded = Sequential::decode(&bytes).unwrap();

        let probe = init::uniform(vec![2, 2, 10], -1.0, 1.0, 9);
        let a = net.forward(&probe, false);
        let b = decoded.forward(&probe, false);
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Sequential::decode(b"nope").unwrap_err(), ModelCodecError::BadMagic);
        let mut bytes = toy_net().encode();
        bytes.truncate(bytes.len() - 3);
        assert_eq!(Sequential::decode(&bytes).unwrap_err(), ModelCodecError::Truncated);
        let mut bytes2 = toy_net().encode();
        bytes2.push(0);
        assert_eq!(Sequential::decode(&bytes2).unwrap_err(), ModelCodecError::TrailingBytes);
    }

    #[test]
    fn decode_rejects_future_version() {
        let mut bytes = toy_net().encode();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Sequential::decode(&bytes).unwrap_err(),
            ModelCodecError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn f32_roundtrip_is_bit_identical() {
        // The codec stores raw little-endian f32 bits, so decode must
        // reproduce every weight and running statistic exactly — not just
        // within tolerance.
        let mut net = toy_net();
        let x = init::uniform(vec![8, 2, 10], -1.0, 1.0, 5);
        net.forward(&x, true);
        let decoded = Sequential::decode(&net.encode()).unwrap();
        for (a, b) in net.layers().iter().zip(decoded.layers()) {
            match (a, b) {
                (LayerBox::Conv1d(x), LayerBox::Conv1d(y)) => {
                    assert_bits_eq(x.weight.value.data(), y.weight.value.data());
                    assert_bits_eq(x.bias.value.data(), y.bias.value.data());
                }
                (LayerBox::Dense(x), LayerBox::Dense(y)) => {
                    assert_bits_eq(x.weight.value.data(), y.weight.value.data());
                    assert_bits_eq(x.bias.value.data(), y.bias.value.data());
                }
                (LayerBox::BatchNorm1d(x), LayerBox::BatchNorm1d(y)) => {
                    assert_bits_eq(&x.running_mean, &y.running_mean);
                    assert_bits_eq(&x.running_var, &y.running_var);
                }
                (LayerBox::ReLU(_), LayerBox::ReLU(_))
                | (LayerBox::Flatten(_), LayerBox::Flatten(_)) => {}
                other => panic!("layer mismatch after roundtrip: {other:?}"),
            }
        }
    }

    fn assert_bits_eq(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    fn quantizable_net() -> Sequential {
        let mut net = Sequential::new();
        net.push(Conv1d::with_stride(3, 8, 7, 2, 0, 31));
        net.push(ReLU::new());
        net.push(Conv1d::with_stride(8, 16, 5, 2, 0, 32));
        net.push(ReLU::new());
        net.push(Flatten::new());
        // l = 60 → conv1 (k7 s2) 27 → conv2 (k5 s2) 12.
        net.push(Dense::new(16 * 12, 12, 33));
        net.push(BatchNorm1d::new(12, false));
        net
    }

    fn quantized_fixture() -> (Sequential, QuantizedSequential, Vec<Tensor>) {
        let mut net = quantizable_net();
        let calib: Vec<Tensor> = (0..6)
            .map(|i| init::uniform(vec![1, 3, 60], -1.0, 1.0, 100 + i))
            .collect();
        let q = QuantizedSequential::from_sequential(&mut net, &calib).unwrap();
        (net, q, calib)
    }

    #[test]
    fn quantized_roundtrip_preserves_model_and_forward() {
        let (_, mut q, calib) = quantized_fixture();
        let bytes = q.encode();
        let mut decoded = QuantizedSequential::decode(&bytes).unwrap();
        assert_eq!(q, decoded);
        for input in &calib {
            // Integer accumulation: the rebuilt model must match bit for
            // bit, not approximately.
            let a = q.forward(input);
            let b = decoded.forward(input);
            assert_eq!(
                a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn quantized_encoding_is_at_most_30_percent_of_f32() {
        let (net, q, _) = quantized_fixture();
        let f32_bytes = net.encode().len();
        let int8_bytes = q.encode().len();
        assert!(
            int8_bytes * 100 <= f32_bytes * 30,
            "int8 {int8_bytes}B vs f32 {f32_bytes}B"
        );
    }

    #[test]
    fn quantized_decode_rejects_wrong_versions() {
        let (net, q, _) = quantized_fixture();
        // A v1 (f32) blob is not a quantized model and vice versa.
        assert_eq!(
            QuantizedSequential::decode(&net.encode()).unwrap_err(),
            ModelCodecError::UnsupportedVersion(1)
        );
        assert_eq!(
            Sequential::decode(&q.encode()).unwrap_err(),
            ModelCodecError::UnsupportedVersion(2)
        );
        let mut bytes = q.encode();
        bytes[4..8].copy_from_slice(&77u32.to_le_bytes());
        assert_eq!(
            QuantizedSequential::decode(&bytes).unwrap_err(),
            ModelCodecError::UnsupportedVersion(77)
        );
    }

    #[test]
    fn quantized_decode_rejects_mutations() {
        let (_, q, _) = quantized_fixture();
        let bytes = q.encode();
        assert_eq!(
            QuantizedSequential::decode(b"not a model").unwrap_err(),
            ModelCodecError::BadMagic
        );
        // Every proper prefix must fail typed — never panic, never
        // succeed (mirrors the frame-decoder fuzz pattern).
        for cut in 0..bytes.len() {
            let err = QuantizedSequential::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ModelCodecError::BadMagic
                        | ModelCodecError::Truncated
                        | ModelCodecError::UnsupportedVersion(_)
                ),
                "prefix {cut}: {err:?}"
            );
        }
        // Trailing garbage after a complete model.
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            QuantizedSequential::decode(&extended).unwrap_err(),
            ModelCodecError::TrailingBytes
        );
        // Corrupting a conv dimension breaks the weight-length invariant.
        let mut corrupt = bytes;
        corrupt[12..16].copy_from_slice(&9999u32.to_le_bytes());
        assert!(QuantizedSequential::decode(&corrupt).is_err());
    }

    #[test]
    fn deconv_autoencoder_shape() {
        // Mirror of the paper's De: latent -> dense -> reshape -> deconv.
        let mut net = Sequential::new();
        net.push(Dense::new(12, 32, 20));
        net.push(ReLU::new());
        net.push(Reshape::new(4, 8));
        net.push(ConvTranspose1d::new(4, 2, 4, 2, 21));
        let x = init::uniform(vec![3, 12], -1.0, 1.0, 22);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[3, 2, (8 - 1) * 2 + 4]);
    }
}
