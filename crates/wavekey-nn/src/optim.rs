//! Optimizers: SGD with momentum and Adam.
//!
//! State (momentum / moment estimates) is kept per parameter, indexed by
//! position in the parameter list. Callers must pass the parameters in a
//! stable order across steps — [`crate::net::Sequential::params_mut`]
//! guarantees this.

use crate::layer::Param;

/// Common interface of optimizers.
pub trait Optimizer {
    /// Applies one update step to `params` using their accumulated
    /// gradients. Gradients are not cleared; call
    /// [`crate::net::Sequential::zero_grad`] before the next backward pass.
    fn step(&mut self, params: &mut [&mut Param]);
}

/// Stochastic gradient descent with (optional) momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Sgd {
        Sgd::with_momentum(lr, 0.0)
    }

    /// SGD with momentum coefficient `momentum` (0 disables momentum).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Sgd {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            debug_assert_eq!(p.value.len(), v.len(), "parameter list changed shape");
            for i in 0..p.value.len() {
                let g = p.grad.data()[i];
                if self.momentum > 0.0 {
                    v[i] = self.momentum * v[i] + g;
                    p.value.data_mut()[i] -= self.lr * v[i];
                } else {
                    p.value.data_mut()[i] -= self.lr * g;
                }
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba) with the standard bias correction and
/// optional decoupled weight decay (AdamW).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with learning rate `lr` and default β₁ = 0.9, β₂ = 0.999.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Adam {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with decoupled weight decay `wd` (applied as
    /// `p ← p − lr·wd·p` each step).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `wd < 0`.
    pub fn with_weight_decay(lr: f32, wd: f32) -> Adam {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        Adam { weight_decay: wd, ..Adam::new(lr) }
    }

    /// The current step count.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(self.m.iter_mut()).zip(self.v.iter_mut()) {
            debug_assert_eq!(p.value.len(), m.len(), "parameter list changed shape");
            for i in 0..p.value.len() {
                let g = p.grad.data()[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                let mut update = self.lr * m_hat / (v_hat.sqrt() + self.eps);
                if self.weight_decay > 0.0 {
                    update += self.lr * self.weight_decay * p.value.data()[i];
                }
                p.value.data_mut()[i] -= update;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// Minimizes f(x) = (x - 3)² from x = 0 with each optimizer.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = Param::new(Tensor::from_vec(vec![0.0], vec![1]));
        for _ in 0..steps {
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (x - 3.0);
            let mut params = [&mut p];
            opt.step(&mut params);
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = run_quadratic(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let x = run_quadratic(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = run_quadratic(&mut opt, 400);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        // With zero gradient, weight decay alone must shrink the value.
        let mut opt = Adam::with_weight_decay(0.1, 0.5);
        let mut p = Param::new(Tensor::from_vec(vec![2.0], vec![1]));
        let mut params = [&mut p];
        for _ in 0..10 {
            opt.step(&mut params);
        }
        let v = params[0].value.data()[0];
        assert!(v < 2.0 && v > 0.0, "v = {v}");
    }

    #[test]
    fn adam_counts_steps() {
        let mut opt = Adam::new(0.01);
        let mut p = Param::new(Tensor::zeros(vec![2]));
        let mut params = [&mut p];
        opt.step(&mut params);
        opt.step(&mut params);
        assert_eq!(opt.steps(), 2);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_nonpositive_lr() {
        Adam::new(0.0);
    }
}
