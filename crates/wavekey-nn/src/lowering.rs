//! im2col lowering: convolution and dense ops as [`crate::gemm`] calls.
//!
//! Every function here reproduces the accumulation order of its
//! counterpart in [`crate::reference`] element by element, so outputs are
//! numerically identical (`==`) to the naive loops — the differential
//! tests assert exactly that. The mapping per operation:
//!
//! * `Conv1d` forward — per-sample im2col of the input; `A` is the weight
//!   matrix `[oc][ic·K]` used in place; the reduction index `(ic, k)`
//!   ascends exactly like the naive loop nest.
//! * `Conv1d` backward-weight — per-sample GEMM into a transposed
//!   gradient scratch (`[ic·K][oc]`), samples processed sequentially so
//!   the `n`-major order of the naive loop is preserved.
//! * `Conv1d` backward-data — a stride-1 convolution of the
//!   *zero-upsampled* gradient with the flipped, transposed weights. The
//!   upsampled-gather form is used instead of a col2im scatter precisely
//!   because a scatter would regroup each input element's sum; the gather
//!   reads contributions in the naive `(oc asc, ol asc)` order.
//! * `ConvTranspose1d` forward — a stride-1 convolution of the
//!   zero-upsampled input with flipped weights `[oc][ic·K]`.
//! * `ConvTranspose1d` backward-data — a plain strided convolution of the
//!   gradient with the weights used in their native `[ic][oc·K]` layout.
//! * `ConvTranspose1d` backward-weight — GEMM directly into the weight
//!   gradient with a position-major gradient pack, reduction over input
//!   positions in ascending order, samples sequential.
//! * `Dense` — forward/backward-data/backward-weight are single GEMMs
//!   over the batch with at most one transposed pack each.
//!
//! Where the naive loops *skip* zero terms (`g == 0.0` / padding /
//! upsampling holes), the GEMM path adds an exact `±0.0` product instead;
//! adding a signed zero to a finite accumulator is exact, so only the
//! sign of an exactly-zero result can differ — which still compares `==`.
//!
//! Bias gradients stay as short scalar loops: they are cheap reductions
//! whose naive order is already optimal.

use crate::gemm::gemm;
use crate::reference;
use crate::tensor::Tensor;

/// Runs `f` over per-sample `(output, input)` slice pairs, fanning out
/// across samples when the `parallel` feature is enabled. Each sample is
/// processed by exactly one worker, so results are order-exact at any
/// thread count.
fn for_each_sample(
    out: &mut [f32],
    out_stride: usize,
    input: &[f32],
    in_stride: usize,
    f: impl Fn(&mut [f32], &[f32]) + Sync,
) {
    #[cfg(feature = "parallel")]
    {
        if crate::gemm::parallel_enabled(out.len() / out_stride) {
            use rayon::prelude::*;
            out.par_chunks_mut(out_stride)
                .zip(input.par_chunks(in_stride))
                .for_each(|(o, x)| f(o, x));
            return;
        }
    }
    for (o, x) in out.chunks_mut(out_stride).zip(input.chunks(in_stride)) {
        f(o, x);
    }
}

/// Packs one sample `[channels][l_in]` into im2col layout
/// `[channels·kernel][l_out]` for a strided, padded convolution; padding
/// positions become `0.0`.
fn im2col(
    x: &[f32],
    channels: usize,
    l_in: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    l_out: usize,
    cols: &mut [f32],
) {
    for ic in 0..channels {
        let xrow = &x[ic * l_in..][..l_in];
        for k in 0..kernel {
            let row = &mut cols[(ic * kernel + k) * l_out..][..l_out];
            // Valid columns satisfy `padding <= ol·stride + k < l_in + padding`;
            // the edges outside that range are padding zeros.
            let lo = if k >= padding { 0 } else { (padding - k).div_ceil(stride) }.min(l_out);
            let hi = if l_in + padding > k {
                ((l_in + padding - k - 1) / stride + 1).min(l_out)
            } else {
                0
            };
            if lo >= hi {
                row.fill(0.0);
                continue;
            }
            row[..lo].fill(0.0);
            row[hi..].fill(0.0);
            let start = lo * stride + k - padding;
            if stride == 1 {
                row[lo..hi].copy_from_slice(&xrow[start..start + (hi - lo)]);
            } else {
                let mut src = start;
                for slot in &mut row[lo..hi] {
                    *slot = xrow[src];
                    src += stride;
                }
            }
        }
    }
}

/// Packs one sample `[channels][l]` *zero-upsampled by `stride`* into
/// im2col layout for a stride-1 convolution with `padding`: virtual
/// position `j` holds `x[j / stride]` when `j` is a multiple of `stride`
/// and `0.0` otherwise.
#[allow(clippy::too_many_arguments)]
fn im2col_upsampled(
    x: &[f32],
    channels: usize,
    l: usize,
    up_stride: usize,
    kernel: usize,
    padding: usize,
    l_out: usize,
    cols: &mut [f32],
) {
    for c in 0..channels {
        let xrow = &x[c * l..][..l];
        for k in 0..kernel {
            let row = &mut cols[(c * kernel + k) * l_out..][..l_out];
            row.fill(0.0);
            // Source sample `s` lands in column `ol = s·up_stride + padding − k`
            // (everything else is an upsampling hole or padding — zero).
            let s_lo = if k > padding { (k - padding).div_ceil(up_stride) } else { 0 };
            let s_hi = if l_out + k > padding {
                l.min((l_out + k - padding - 1) / up_stride + 1)
            } else {
                0
            };
            if s_lo >= s_hi {
                continue;
            }
            let mut ol = s_lo * up_stride + padding - k;
            for &v in &xrow[s_lo..s_hi] {
                row[ol] = v;
                ol += up_stride;
            }
        }
    }
}

// ------------------------------------------------------------------ Conv1d

/// GEMM-lowered `Conv1d` forward; see [`reference::conv1d_forward`].
pub fn conv1d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    padding: usize,
) -> Tensor {
    let batch = input.shape()[0];
    let in_channels = input.shape()[1];
    let l_in = input.shape()[2];
    let out_channels = weight.shape()[0];
    let kernel = weight.shape()[2];
    let l_out = reference::conv1d_output_len(l_in, kernel, stride, padding);
    let kd = in_channels * kernel;
    let mut out = Tensor::zeros(vec![batch, out_channels, l_out]);
    let w = weight.data();
    let b = bias.data();
    for_each_sample(out.data_mut(), out_channels * l_out, input.data(), in_channels * l_in, |o, x| {
        let mut cols = vec![0f32; kd * l_out];
        im2col(x, in_channels, l_in, kernel, stride, padding, l_out, &mut cols);
        for (oc, row) in o.chunks_mut(l_out).enumerate() {
            row.fill(b[oc]);
        }
        gemm(o, l_out, w, kd, &cols, l_out, out_channels, kd, l_out);
    });
    out
}

/// GEMM-lowered `Conv1d` backward; see [`reference::conv1d_backward`].
///
/// Falls back to the reference loop when `padding >= kernel` (the dual
/// convolution's padding would go negative; no WaveKey model hits this).
#[allow(clippy::too_many_arguments)]
pub fn conv1d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    stride: usize,
    padding: usize,
    weight_grad: &mut Tensor,
    bias_grad: &mut Tensor,
) -> Tensor {
    let out_channels = weight.shape()[0];
    let kernel = weight.shape()[2];
    if padding >= kernel {
        return reference::conv1d_backward(
            input, weight, grad_output, stride, padding, weight_grad, bias_grad,
        );
    }
    let batch = input.shape()[0];
    let in_channels = input.shape()[1];
    let l_in = input.shape()[2];
    let l_out = grad_output.shape()[2];
    let ick = in_channels * kernel;
    let g = grad_output.data();

    // Bias gradient: same (n asc, ol asc) order as the naive loop.
    {
        let bg = bias_grad.data_mut();
        for n in 0..batch {
            for (oc, acc) in bg.iter_mut().enumerate() {
                let grow = &g[(n * out_channels + oc) * l_out..][..l_out];
                for &gv in grow {
                    *acc += gv;
                }
            }
        }
    }

    // Weight gradient, accumulated in a transposed scratch [ic·K][oc] so
    // the GEMM reduction runs over output positions (ascending `ol`),
    // with samples strictly sequential — the naive n-major order.
    {
        let wg = weight_grad.data_mut();
        let mut gwt = vec![0f32; ick * out_channels];
        for oc in 0..out_channels {
            for r in 0..ick {
                gwt[r * out_channels + oc] = wg[oc * ick + r];
            }
        }
        let mut cols = vec![0f32; ick * l_out];
        let mut gt = vec![0f32; l_out * out_channels];
        for n in 0..batch {
            let x = &input.data()[n * in_channels * l_in..][..in_channels * l_in];
            im2col(x, in_channels, l_in, kernel, stride, padding, l_out, &mut cols);
            for oc in 0..out_channels {
                let grow = &g[(n * out_channels + oc) * l_out..][..l_out];
                for (ol, &gv) in grow.iter().enumerate() {
                    gt[ol * out_channels + oc] = gv;
                }
            }
            gemm(&mut gwt, out_channels, &cols, l_out, &gt, out_channels, ick, l_out, out_channels);
        }
        for oc in 0..out_channels {
            for r in 0..ick {
                wg[oc * ick + r] = gwt[r * out_channels + oc];
            }
        }
    }

    // Input gradient: stride-1 convolution of the zero-upsampled gradient
    // with the flipped, transposed weights [ic][oc·K].
    let ock = out_channels * kernel;
    let mut wflip = vec![0f32; in_channels * ock];
    for ic in 0..in_channels {
        for oc in 0..out_channels {
            for kk in 0..kernel {
                wflip[ic * ock + oc * kernel + kk] =
                    weight.data()[(oc * in_channels + ic) * kernel + (kernel - 1 - kk)];
            }
        }
    }
    let dual_padding = kernel - 1 - padding;
    // Highest input index the naive scatter writes is
    // `(l_out−1)·stride + kernel − 1 − padding`; columns past it stay zero.
    let gi_len = l_in.min((l_out - 1) * stride + kernel - padding);
    let mut grad_input = Tensor::zeros(input.shape().to_vec());
    for_each_sample(grad_input.data_mut(), in_channels * l_in, g, out_channels * l_out, |gi, gs| {
        let mut cols = vec![0f32; ock * gi_len];
        im2col_upsampled(gs, out_channels, l_out, stride, kernel, dual_padding, gi_len, &mut cols);
        gemm(gi, l_in, &wflip, ock, &cols, gi_len, in_channels, ock, gi_len);
    });
    grad_input
}

// --------------------------------------------------------- ConvTranspose1d

/// `true` when the zero-upsampled input's non-zero support is narrower
/// than one kernel window: the lowered GEMM would multiply mostly padding
/// zeros, so a direct loop is strictly cheaper. (Hit by the decoder's
/// first deconvolution, which expands a length-1 latent.)
fn transpose_degenerate(l_in: usize, stride: usize, kernel: usize) -> bool {
    (l_in - 1) * stride + 1 < kernel
}

/// Degenerate-shape `ConvTranspose1d` forward: the reference loop nest
/// re-expressed over flat row slices (no per-element 3-D indexing), with
/// the identical accumulation order — bit-for-bit the reference result,
/// without paying the im2col setup the lowered path would waste on
/// padding zeros.
fn conv_transpose1d_forward_degenerate(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
) -> Tensor {
    let batch = input.shape()[0];
    let in_channels = input.shape()[1];
    let l_in = input.shape()[2];
    let out_channels = weight.shape()[1];
    let kernel = weight.shape()[2];
    let l_out = (l_in - 1) * stride + kernel;
    let (x, w, b) = (input.data(), weight.data(), bias.data());
    let mut out = Tensor::zeros(vec![batch, out_channels, l_out]);
    for (n, on) in out.data_mut().chunks_mut(out_channels * l_out).enumerate() {
        for (oc, row) in on.chunks_mut(l_out).enumerate() {
            row.fill(b[oc]);
        }
        for ic in 0..in_channels {
            let xrow = &x[(n * in_channels + ic) * l_in..][..l_in];
            for (i, &xv) in xrow.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                for oc in 0..out_channels {
                    let wrow = &w[(ic * out_channels + oc) * kernel..][..kernel];
                    let orow = &mut on[oc * l_out + i * stride..][..kernel];
                    for (o, &wv) in orow.iter_mut().zip(wrow) {
                        *o += xv * wv;
                    }
                }
            }
        }
    }
    out
}

/// Degenerate-shape `ConvTranspose1d` backward; flat-slice mirror of the
/// reference loops (same accumulation order), fused so the gradient read
/// serves both the input- and weight-gradient in one pass.
fn conv_transpose1d_backward_degenerate(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    stride: usize,
    weight_grad: &mut Tensor,
    bias_grad: &mut Tensor,
) -> Tensor {
    let batch = input.shape()[0];
    let in_channels = input.shape()[1];
    let l_in = input.shape()[2];
    let out_channels = weight.shape()[1];
    let kernel = weight.shape()[2];
    let l_out = grad_output.shape()[2];
    let (x, w, g) = (input.data(), weight.data(), grad_output.data());
    {
        let bg = bias_grad.data_mut();
        for n in 0..batch {
            for (oc, acc) in bg.iter_mut().enumerate() {
                for &gv in &g[(n * out_channels + oc) * l_out..][..l_out] {
                    *acc += gv;
                }
            }
        }
    }
    let wg = weight_grad.data_mut();
    let mut grad_input = Tensor::zeros(input.shape().to_vec());
    for (n, gin) in grad_input.data_mut().chunks_mut(in_channels * l_in).enumerate() {
        for ic in 0..in_channels {
            for i in 0..l_in {
                let xv = x[(n * in_channels + ic) * l_in + i];
                let mut gi = 0.0;
                for oc in 0..out_channels {
                    let grow = &g[(n * out_channels + oc) * l_out + i * stride..][..kernel];
                    let wrow = &w[(ic * out_channels + oc) * kernel..][..kernel];
                    let wgrow = &mut wg[(ic * out_channels + oc) * kernel..][..kernel];
                    for k in 0..kernel {
                        gi += grow[k] * wrow[k];
                        wgrow[k] += grow[k] * xv;
                    }
                }
                gin[ic * l_in + i] = gi;
            }
        }
    }
    grad_input
}

/// GEMM-lowered `ConvTranspose1d` forward; see
/// [`reference::conv_transpose1d_forward`]: a stride-1 convolution of the
/// zero-upsampled input with flipped weights.
pub fn conv_transpose1d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
) -> Tensor {
    let batch = input.shape()[0];
    let in_channels = input.shape()[1];
    let l_in = input.shape()[2];
    let out_channels = weight.shape()[1];
    let kernel = weight.shape()[2];
    if transpose_degenerate(l_in, stride, kernel) {
        return conv_transpose1d_forward_degenerate(input, weight, bias, stride);
    }
    let l_out = (l_in - 1) * stride + kernel;
    let ick = in_channels * kernel;
    let mut wt = vec![0f32; out_channels * ick];
    for oc in 0..out_channels {
        for ic in 0..in_channels {
            for kk in 0..kernel {
                wt[oc * ick + ic * kernel + kk] =
                    weight.data()[(ic * out_channels + oc) * kernel + (kernel - 1 - kk)];
            }
        }
    }
    let b = bias.data();
    let mut out = Tensor::zeros(vec![batch, out_channels, l_out]);
    for_each_sample(out.data_mut(), out_channels * l_out, input.data(), in_channels * l_in, |o, x| {
        let mut cols = vec![0f32; ick * l_out];
        im2col_upsampled(x, in_channels, l_in, stride, kernel, kernel - 1, l_out, &mut cols);
        for (oc, row) in o.chunks_mut(l_out).enumerate() {
            row.fill(b[oc]);
        }
        gemm(o, l_out, &wt, ick, &cols, l_out, out_channels, ick, l_out);
    });
    out
}

/// GEMM-lowered `ConvTranspose1d` backward; see
/// [`reference::conv_transpose1d_backward`].
pub fn conv_transpose1d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    stride: usize,
    weight_grad: &mut Tensor,
    bias_grad: &mut Tensor,
) -> Tensor {
    let batch = input.shape()[0];
    let in_channels = input.shape()[1];
    let l_in = input.shape()[2];
    let out_channels = weight.shape()[1];
    let kernel = weight.shape()[2];
    if transpose_degenerate(l_in, stride, kernel) {
        return conv_transpose1d_backward_degenerate(
            input, weight, grad_output, stride, weight_grad, bias_grad,
        );
    }
    let l_out = grad_output.shape()[2];
    let ock = out_channels * kernel;
    let g = grad_output.data();

    // Bias gradient: same (n asc, ol asc) order as the naive loop.
    {
        let bg = bias_grad.data_mut();
        for n in 0..batch {
            for (oc, acc) in bg.iter_mut().enumerate() {
                let grow = &g[(n * out_channels + oc) * l_out..][..l_out];
                for &gv in grow {
                    *acc += gv;
                }
            }
        }
    }

    // Weight gradient, directly in place [ic][oc·K]: per sample, `A` is
    // the cached input [ic][l_in] and `B` the position-major gradient
    // pack [l_in][oc·K]; the reduction ascends input positions, samples
    // sequential — the naive order.
    {
        let wg = weight_grad.data_mut();
        let mut bpos = vec![0f32; l_in * ock];
        for n in 0..batch {
            let x = &input.data()[n * in_channels * l_in..][..in_channels * l_in];
            for i in 0..l_in {
                for oc in 0..out_channels {
                    let grow = &g[(n * out_channels + oc) * l_out + i * stride..][..kernel];
                    bpos[i * ock + oc * kernel..][..kernel].copy_from_slice(grow);
                }
            }
            gemm(wg, ock, x, l_in, &bpos, ock, in_channels, l_in, ock);
        }
    }

    // Input gradient: a plain strided convolution of the gradient with
    // the weights in their native [ic][oc·K] layout.
    let mut grad_input = Tensor::zeros(input.shape().to_vec());
    let w = weight.data();
    for_each_sample(grad_input.data_mut(), in_channels * l_in, g, out_channels * l_out, |gi, gs| {
        let mut cols = vec![0f32; ock * l_in];
        im2col(gs, out_channels, l_out, kernel, stride, 0, l_in, &mut cols);
        gemm(gi, l_in, w, ock, &cols, l_in, in_channels, ock, l_in);
    });
    grad_input
}

// ------------------------------------------------------------------- Dense

/// GEMM-lowered `Dense` forward; see [`reference::dense_forward`].
pub fn dense_forward(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Tensor {
    let batch = input.shape()[0];
    let in_features = input.shape()[1];
    let out_features = weight.shape()[0];
    let mut wt = vec![0f32; in_features * out_features];
    for o in 0..out_features {
        for i in 0..in_features {
            wt[i * out_features + o] = weight.data()[o * in_features + i];
        }
    }
    let mut out = Tensor::zeros(vec![batch, out_features]);
    for row in out.data_mut().chunks_mut(out_features) {
        row.copy_from_slice(bias.data());
    }
    gemm(
        out.data_mut(),
        out_features,
        input.data(),
        in_features,
        &wt,
        out_features,
        batch,
        in_features,
        out_features,
    );
    out
}

/// GEMM-lowered `Dense` backward; see [`reference::dense_backward`].
pub fn dense_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    weight_grad: &mut Tensor,
    bias_grad: &mut Tensor,
) -> Tensor {
    let batch = input.shape()[0];
    let in_features = input.shape()[1];
    let out_features = weight.shape()[0];
    let g = grad_output.data();

    // Bias gradient: ascending batch order per output, as in the naive loop.
    {
        let bg = bias_grad.data_mut();
        for n in 0..batch {
            let grow = &g[n * out_features..][..out_features];
            for (acc, &gv) in bg.iter_mut().zip(grow) {
                *acc += gv;
            }
        }
    }

    // Weight gradient in place [of][if]: `A` is the transposed gradient
    // [of][batch], `B` the input [batch][if]; reduction over the batch in
    // ascending order.
    {
        let mut gt = vec![0f32; out_features * batch];
        for n in 0..batch {
            for o in 0..out_features {
                gt[o * batch + n] = g[n * out_features + o];
            }
        }
        gemm(
            weight_grad.data_mut(),
            in_features,
            &gt,
            batch,
            input.data(),
            in_features,
            out_features,
            batch,
            in_features,
        );
    }

    // Input gradient: `A` is the gradient [batch][of], `B` the weight
    // [of][if]; reduction over outputs in ascending order.
    let mut grad_input = Tensor::zeros(input.shape().to_vec());
    gemm(
        grad_input.data_mut(),
        in_features,
        g,
        out_features,
        weight.data(),
        in_features,
        batch,
        out_features,
        in_features,
    );
    grad_input
}

#[cfg(test)]
mod tests {
    //! Seeded exhaustive differential tests: the GEMM lowering must equal
    //! the naive reference loops *bitwise* (`==`) — forward, both
    //! gradients, odd shapes, stride > 1, padding up to `kernel − 1`,
    //! batch > 1, nonzero initial parameter gradients, and sparse
    //! (ReLU-like) output gradients that exercise the reference `g == 0`
    //! skip path. A cargo-only proptest flavor lives in `tests/`.

    use super::*;
    use crate::gemm::KernelBackend;
    use crate::init::uniform;

    /// Zeroes roughly half the elements (ReLU-like sparsity) so the
    /// reference `g == 0.0 { continue }` branches are exercised.
    fn sparsify(t: &Tensor) -> Tensor {
        let data = t.data().iter().map(|&v| if v > 0.0 { v } else { 0.0 }).collect();
        Tensor::from_vec(data, t.shape().to_vec())
    }

    fn conv1d_case(batch: usize, ic: usize, oc: usize, l_in: usize, k: usize, s: usize, p: usize, seed: u64) {
        let input = uniform(vec![batch, ic, l_in], -1.0, 1.0, seed);
        let weight = uniform(vec![oc, ic, k], -1.0, 1.0, seed + 1);
        let bias = uniform(vec![oc], -0.5, 0.5, seed + 2);
        let out_ref = reference::conv1d_forward(&input, &weight, &bias, s, p);
        let out_gemm = conv1d_forward(&input, &weight, &bias, s, p);
        assert_eq!(out_ref, out_gemm, "forward b{batch} ic{ic} oc{oc} l{l_in} k{k} s{s} p{p}");

        // Backward from both a dense and a sparse output gradient, with
        // nonzero initial parameter gradients (the `+=` contract).
        for (tag, grad_out) in [
            ("dense", uniform(out_ref.shape().to_vec(), -1.0, 1.0, seed + 3)),
            ("sparse", sparsify(&uniform(out_ref.shape().to_vec(), -1.0, 1.0, seed + 4))),
        ] {
            let wg0 = uniform(vec![oc, ic, k], -0.1, 0.1, seed + 5);
            let bg0 = uniform(vec![oc], -0.1, 0.1, seed + 6);
            let (mut wg_r, mut bg_r) = (wg0.clone(), bg0.clone());
            let (mut wg_g, mut bg_g) = (wg0, bg0);
            let gi_ref =
                reference::conv1d_backward(&input, &weight, &grad_out, s, p, &mut wg_r, &mut bg_r);
            let gi_gemm = conv1d_backward(&input, &weight, &grad_out, s, p, &mut wg_g, &mut bg_g);
            assert_eq!(gi_ref, gi_gemm, "{tag} grad_input b{batch} k{k} s{s} p{p}");
            assert_eq!(wg_r, wg_g, "{tag} weight grad b{batch} k{k} s{s} p{p}");
            assert_eq!(bg_r, bg_g, "{tag} bias grad b{batch} k{k} s{s} p{p}");
        }
    }

    #[test]
    fn conv1d_matches_reference_bitwise() {
        // (batch, ic, oc, l_in, kernel, stride, padding) straddling every
        // edge: odd lengths, stride > 1, padding up to kernel − 1, and the
        // real WaveKey encoder shapes.
        for (i, &(b, ic, oc, l, k, s, p)) in [
            (1, 1, 1, 1, 1, 1, 0),
            (1, 1, 1, 5, 2, 1, 0),
            (2, 2, 3, 9, 3, 1, 1),
            (3, 2, 2, 11, 4, 2, 2),
            (2, 3, 5, 17, 5, 3, 4),
            (1, 4, 2, 8, 3, 2, 2),
            (2, 1, 2, 7, 5, 5, 3),
            (4, 3, 8, 50, 7, 2, 0),
            (2, 8, 16, 23, 5, 2, 0),
        ]
        .iter()
        .enumerate()
        {
            conv1d_case(b, ic, oc, l, k, s, p, 100 + i as u64 * 10);
        }
    }

    fn conv_transpose_case(batch: usize, ic: usize, oc: usize, l_in: usize, k: usize, s: usize, seed: u64) {
        let input = uniform(vec![batch, ic, l_in], -1.0, 1.0, seed);
        let weight = uniform(vec![ic, oc, k], -1.0, 1.0, seed + 1);
        let bias = uniform(vec![oc], -0.5, 0.5, seed + 2);
        let out_ref = reference::conv_transpose1d_forward(&input, &weight, &bias, s);
        let out_gemm = conv_transpose1d_forward(&input, &weight, &bias, s);
        assert_eq!(out_ref, out_gemm, "forward b{batch} ic{ic} oc{oc} l{l_in} k{k} s{s}");

        // Also run forward on a sparsified input: the reference skips
        // x == 0.0 contributions entirely.
        let sparse_in = sparsify(&input);
        assert_eq!(
            reference::conv_transpose1d_forward(&sparse_in, &weight, &bias, s),
            conv_transpose1d_forward(&sparse_in, &weight, &bias, s),
            "sparse forward b{batch} k{k} s{s}"
        );

        for (tag, grad_out) in [
            ("dense", uniform(out_ref.shape().to_vec(), -1.0, 1.0, seed + 3)),
            ("sparse", sparsify(&uniform(out_ref.shape().to_vec(), -1.0, 1.0, seed + 4))),
        ] {
            let wg0 = uniform(vec![ic, oc, k], -0.1, 0.1, seed + 5);
            let bg0 = uniform(vec![oc], -0.1, 0.1, seed + 6);
            let (mut wg_r, mut bg_r) = (wg0.clone(), bg0.clone());
            let (mut wg_g, mut bg_g) = (wg0, bg0);
            let gi_ref = reference::conv_transpose1d_backward(
                &input, &weight, &grad_out, s, &mut wg_r, &mut bg_r,
            );
            let gi_gemm =
                conv_transpose1d_backward(&input, &weight, &grad_out, s, &mut wg_g, &mut bg_g);
            assert_eq!(gi_ref, gi_gemm, "{tag} grad_input b{batch} k{k} s{s}");
            assert_eq!(wg_r, wg_g, "{tag} weight grad b{batch} k{k} s{s}");
            assert_eq!(bg_r, bg_g, "{tag} bias grad b{batch} k{k} s{s}");
        }
    }

    #[test]
    fn conv_transpose1d_matches_reference_bitwise() {
        for (i, &(b, ic, oc, l, k, s)) in [
            (1, 1, 1, 1, 1, 1),
            (1, 1, 1, 4, 3, 1),
            (2, 2, 3, 7, 4, 2),
            (3, 3, 2, 9, 5, 3),
            (2, 4, 1, 11, 8, 4),
            (1, 12, 16, 1, 8, 4),
            // Degenerate support wider than one sample (l_in > 1): the
            // specialized flat-slice path, not just the l_in = 1 case.
            (2, 3, 5, 2, 8, 1),
            (3, 2, 4, 3, 12, 2),
            (2, 8, 4, 32, 12, 3),
        ]
        .iter()
        .enumerate()
        {
            conv_transpose_case(b, ic, oc, l, k, s, 500 + i as u64 * 10);
        }
    }

    #[test]
    fn dense_matches_reference_bitwise() {
        for (i, &(b, inf, of)) in
            [(1, 1, 1), (2, 3, 5), (7, 13, 11), (32, 752, 12), (4, 420, 40)].iter().enumerate()
        {
            let seed = 900 + i as u64 * 10;
            let input = uniform(vec![b, inf], -1.0, 1.0, seed);
            let weight = uniform(vec![of, inf], -1.0, 1.0, seed + 1);
            let bias = uniform(vec![of], -0.5, 0.5, seed + 2);
            let out_ref = reference::dense_forward(&input, &weight, &bias);
            let out_gemm = dense_forward(&input, &weight, &bias);
            assert_eq!(out_ref, out_gemm, "forward b{b} in{inf} out{of}");

            for (tag, grad_out) in [
                ("dense", uniform(vec![b, of], -1.0, 1.0, seed + 3)),
                ("sparse", sparsify(&uniform(vec![b, of], -1.0, 1.0, seed + 4))),
            ] {
                let wg0 = uniform(vec![of, inf], -0.1, 0.1, seed + 5);
                let bg0 = uniform(vec![of], -0.1, 0.1, seed + 6);
                let (mut wg_r, mut bg_r) = (wg0.clone(), bg0.clone());
                let (mut wg_g, mut bg_g) = (wg0, bg0);
                let gi_ref =
                    reference::dense_backward(&input, &weight, &grad_out, &mut wg_r, &mut bg_r);
                let gi_gemm = dense_backward(&input, &weight, &grad_out, &mut wg_g, &mut bg_g);
                assert_eq!(gi_ref, gi_gemm, "{tag} grad_input b{b} in{inf} out{of}");
                assert_eq!(wg_r, wg_g, "{tag} weight grad b{b} in{inf} out{of}");
                assert_eq!(bg_r, bg_g, "{tag} bias grad b{b} in{inf} out{of}");
            }
        }
    }

    #[test]
    fn whole_network_training_is_backend_identical() {
        // A miniature encoder/decoder trained for a few Adam steps under
        // each backend: the per-step losses and the final parameters must
        // be bitwise identical — the guarantee that lets the workspace
        // regenerate artifacts without success counts moving.
        use crate::layer::{Conv1d, ConvTranspose1d, Dense, Flatten, ReLU};
        use crate::loss::mse;
        use crate::net::Sequential;
        use crate::optim::{Adam, Optimizer};

        fn train(backend: KernelBackend) -> (Vec<f32>, Vec<u8>) {
            crate::gemm::set_kernel_backend(backend);
            let mut net = Sequential::new();
            net.push(Conv1d::with_stride(3, 4, 5, 2, 2, 1));
            net.push(ReLU::new());
            net.push(ConvTranspose1d::new(4, 2, 4, 2, 2));
            net.push(ReLU::new());
            net.push(Flatten::new());
            // Conv: 20 → 10 (k5 s2 p2); ConvTranspose: 10 → 22 (k4 s2).
            net.push(Dense::new(2 * 22, 16, 3));
            let mut opt = Adam::new(1e-2);
            let x = uniform(vec![6, 3, 20], -1.0, 1.0, 42);
            let y = uniform(vec![6, 16], -1.0, 1.0, 43);
            let mut losses = Vec::new();
            for _ in 0..5 {
                let out = net.forward(&x, true);
                let (loss, grad) = mse(&out, &y);
                losses.push(loss);
                net.zero_grad();
                net.backward(&grad);
                opt.step(&mut net.params_mut());
            }
            (losses, net.encode())
        }

        let _guard = crate::gemm::backend_test_lock();
        let (loss_gemm, model_gemm) = train(KernelBackend::Gemm);
        let (loss_ref, model_ref) = train(KernelBackend::Reference);
        crate::gemm::set_kernel_backend(KernelBackend::Gemm);
        assert_eq!(loss_gemm, loss_ref, "loss curves must be bitwise identical");
        assert_eq!(model_gemm, model_ref, "trained models must serialize identically");
    }
}
