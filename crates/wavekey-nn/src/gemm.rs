//! Blocked GEMM kernel with an *exactly reproducible* accumulation order.
//!
//! Every convolution and dense layer in this crate lowers to calls of
//! [`gemm`], computing `C += A · B` over row-major matrices with explicit
//! row strides. The kernel is built so that each element of `C` receives
//! its `k` products in strictly ascending `k` order, exactly like the
//! naive scalar loops in [`crate::reference`]:
//!
//! * The microkernel is an *outer-product* update: for each `k` it
//!   broadcasts `A[i][k]` and adds `A[i][k] · B[k][j]` across a register
//!   tile of `MR × NR` output elements. Vectorization happens **across**
//!   output elements (the `NR` lanes), never *within* one element's
//!   reduction, so no element's sum is ever re-associated.
//! * The register tile is loaded from `C` and stored back; `k`-blocking
//!   therefore preserves the order too, because storing and reloading an
//!   `f32` is exact.
//! * Parallelism (the `parallel` feature) splits `C` into disjoint row
//!   bands; each element is computed by exactly one thread in the same
//!   ascending-`k` order, so results are independent of thread count.
//!
//! The consequence, relied on throughout the workspace: training with the
//! GEMM backend produces bit-identical models to the naive loops (modulo
//! the sign of exact zeros, which compares `==`), at any thread count.
//!
//! The module also hosts the [`KernelBackend`] switch that lets benches
//! and differential tests route whole networks through either backend,
//! and the `WAVEKEY_THREADS` override honored by all `parallel`-feature
//! code paths.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Rows per register tile of the microkernel.
const MR: usize = 4;
/// Columns per register tile of the microkernel (the vector lanes).
const NR: usize = 16;
/// `k` block size: one `A` panel (`MR × KC`) plus the touched `B` rows
/// stay resident in L1/L2 while a tile row of `C` is updated.
const KC: usize = 256;

/// Minimum rows before the row-band parallel path is worth the fork.
#[cfg(feature = "parallel")]
const PAR_MIN_ROWS: usize = 32;

// ------------------------------------------------------------------ kernel

/// `C += A · B` over row-major matrices with explicit row strides.
///
/// `c` must hold exactly `m` rows of stride `rsc` (length `m · rsc`);
/// only the first `n` columns of each row are updated, so a sub-matrix of
/// a wider buffer can be targeted by passing `n < rsc`. `a` holds `m`
/// rows of stride `rsa` with `kd` used columns; `b` holds `kd` rows of
/// stride `rsb` with `n` used columns.
///
/// Accumulation starts from the existing contents of `C` (initialize rows
/// to the bias, a prior gradient, or zero as the operation requires), and
/// each element receives its `kd` products in ascending `k` order — see
/// the module docs for why this makes results thread-count independent.
///
/// # Panics
///
/// Panics when a slice is too short for the stated geometry.
pub fn gemm(
    c: &mut [f32],
    rsc: usize,
    a: &[f32],
    rsa: usize,
    b: &[f32],
    rsb: usize,
    m: usize,
    kd: usize,
    n: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(c.len() >= m * rsc && n <= rsc, "C too short for {m}x{n} (stride {rsc})");
    assert!(kd == 0 || a.len() >= (m - 1) * rsa + kd, "A too short");
    assert!(kd == 0 || b.len() >= (kd - 1) * rsb + n, "B too short");

    #[cfg(feature = "parallel")]
    if m >= PAR_MIN_ROWS && parallel_enabled(m / MR) {
        use rayon::prelude::*;
        let threads = rayon::current_num_threads().max(1);
        // Band size rounded to a tile multiple so every band but the last
        // runs the full-tile fast path.
        let rows = m.div_ceil(threads).div_ceil(MR) * MR;
        c[..m * rsc]
            .par_chunks_mut(rows * rsc)
            .enumerate()
            .for_each(|(band, cband)| {
                let i0 = band * rows;
                let mrows = rows.min(m - i0);
                gemm_seq(cband, rsc, &a[i0 * rsa..], rsa, b, rsb, mrows, kd, n);
            });
        return;
    }
    gemm_seq(c, rsc, a, rsa, b, rsb, m, kd, n);
}

/// The sequential cache-blocked driver behind [`gemm`].
fn gemm_seq(
    c: &mut [f32],
    rsc: usize,
    a: &[f32],
    rsa: usize,
    b: &[f32],
    rsb: usize,
    m: usize,
    kd: usize,
    n: usize,
) {
    let mut ks = 0;
    while ks < kd {
        let ke = (ks + KC).min(kd);
        let mut i0 = 0;
        while i0 < m {
            let mr = MR.min(m - i0);
            let mut j0 = 0;
            // Descend through fixed tile widths so the lane loop always has
            // a compile-time bound (vectorizable); only a < 4-column tail
            // takes the runtime-width edge kernel.
            while j0 + NR <= n {
                if mr == MR {
                    kernel_full(c, rsc, a, rsa, b, rsb, i0, j0, ks, ke);
                } else {
                    kernel_tile::<NR>(c, rsc, a, rsa, b, rsb, i0, j0, ks, ke, mr);
                }
                j0 += NR;
            }
            if j0 + 8 <= n {
                kernel_tile::<8>(c, rsc, a, rsa, b, rsb, i0, j0, ks, ke, mr);
                j0 += 8;
            }
            if j0 + 4 <= n {
                kernel_tile::<4>(c, rsc, a, rsa, b, rsb, i0, j0, ks, ke, mr);
                j0 += 4;
            }
            if j0 < n {
                kernel_edge(c, rsc, a, rsa, b, rsb, i0, j0, ks, ke, mr, n - j0);
            }
            i0 += MR;
        }
        ks = ke;
    }
}

/// Full `MR × NR` register tile: the vectorized fast path.
#[inline]
fn kernel_full(
    c: &mut [f32],
    rsc: usize,
    a: &[f32],
    rsa: usize,
    b: &[f32],
    rsb: usize,
    i0: usize,
    j0: usize,
    ks: usize,
    ke: usize,
) {
    let mut acc = [[0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[(i0 + r) * rsc + j0..][..NR]);
    }
    for kk in ks..ke {
        let brow = &b[kk * rsb + j0..][..NR];
        for (r, row) in acc.iter_mut().enumerate() {
            let av = a[(i0 + r) * rsa + kk];
            for (t, lane) in row.iter_mut().enumerate() {
                *lane += av * brow[t];
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[(i0 + r) * rsc + j0..][..NR].copy_from_slice(row);
    }
}

/// Fixed-width tile (`W` lanes, compile-time) with a runtime row count:
/// the fast path for matrices whose height is not a multiple of [`MR`]
/// (e.g. 3-channel gradients) or whose width hits the 8/4 column tails.
#[inline]
#[allow(clippy::too_many_arguments)]
fn kernel_tile<const W: usize>(
    c: &mut [f32],
    rsc: usize,
    a: &[f32],
    rsa: usize,
    b: &[f32],
    rsb: usize,
    i0: usize,
    j0: usize,
    ks: usize,
    ke: usize,
    mr: usize,
) {
    let mut acc = [[0f32; W]; MR];
    for (r, row) in acc.iter_mut().take(mr).enumerate() {
        row.copy_from_slice(&c[(i0 + r) * rsc + j0..][..W]);
    }
    for kk in ks..ke {
        let brow: &[f32; W] = b[kk * rsb + j0..][..W].try_into().unwrap();
        for (r, row) in acc.iter_mut().take(mr).enumerate() {
            let av = a[(i0 + r) * rsa + kk];
            for (t, lane) in row.iter_mut().enumerate() {
                *lane += av * brow[t];
            }
        }
    }
    for (r, row) in acc.iter().take(mr).enumerate() {
        c[(i0 + r) * rsc + j0..][..W].copy_from_slice(row);
    }
}

/// Partial tile at the right/bottom edges; same order, runtime widths.
#[allow(clippy::too_many_arguments)]
fn kernel_edge(
    c: &mut [f32],
    rsc: usize,
    a: &[f32],
    rsa: usize,
    b: &[f32],
    rsb: usize,
    i0: usize,
    j0: usize,
    ks: usize,
    ke: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0f32; NR]; MR];
    for (r, row) in acc.iter_mut().take(mr).enumerate() {
        row[..nr].copy_from_slice(&c[(i0 + r) * rsc + j0..][..nr]);
    }
    for kk in ks..ke {
        let brow = &b[kk * rsb + j0..][..nr];
        for (r, row) in acc.iter_mut().take(mr).enumerate() {
            let av = a[(i0 + r) * rsa + kk];
            for (t, lane) in row[..nr].iter_mut().enumerate() {
                *lane += av * brow[t];
            }
        }
    }
    for (r, row) in acc.iter().take(mr).enumerate() {
        c[(i0 + r) * rsc + j0..][..nr].copy_from_slice(&row[..nr]);
    }
}

// ----------------------------------------------------------------- backend

/// Which compute kernels the layers dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// The blocked im2col/GEMM kernels (the default).
    Gemm,
    /// The original naive scalar loops in [`crate::reference`].
    Reference,
}

static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Selects the compute backend for all subsequent layer calls.
///
/// Process-global; intended for benches and differential tests. Both
/// backends produce numerically identical (`==`) results, so switching is
/// never observable through values — only through speed.
pub fn set_kernel_backend(backend: KernelBackend) {
    let v = match backend {
        KernelBackend::Gemm => 0,
        KernelBackend::Reference => 1,
    };
    BACKEND.store(v, Ordering::Relaxed);
}

/// The currently selected compute backend.
pub fn kernel_backend() -> KernelBackend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => KernelBackend::Gemm,
        _ => KernelBackend::Reference,
    }
}

// ------------------------------------------------------------ thread config

/// The `WAVEKEY_THREADS` override, parsed once: `Some(n)` when set to a
/// positive integer, `None` otherwise. `1` forces every `parallel`-feature
/// code path in the workspace onto its sequential branch.
pub fn configured_threads() -> Option<usize> {
    static THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("WAVEKEY_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Whether a data-parallel split over `items` independent pieces should
/// fan out: the feature is on, `WAVEKEY_THREADS` is not `1`, and there is
/// more than one piece. Installs the sized global pool on first use when
/// `WAVEKEY_THREADS=n` requests a specific width.
#[cfg(feature = "parallel")]
pub(crate) fn parallel_enabled(items: usize) -> bool {
    if items < 2 {
        return false;
    }
    match configured_threads() {
        Some(1) => false,
        Some(n) => {
            ensure_global_pool(n);
            true
        }
        None => true,
    }
}

#[cfg(feature = "parallel")]
fn ensure_global_pool(n: usize) {
    use std::sync::Once;
    static INIT: Once = Once::new();
    // `build_global` fails when a pool already exists (e.g. a test driving
    // layers inside `ThreadPool::install`); the installed pool then takes
    // precedence, which is exactly the desired override order.
    INIT.call_once(|| {
        let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
    });
}

/// Serializes tests that flip the process-global backend switch, so they
/// cannot race with each other under the multi-threaded test harness.
/// Holders must restore [`KernelBackend::Gemm`] before releasing.
#[cfg(test)]
pub(crate) fn backend_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: same start-from-C, ascending-k order, scalar.
    fn gemm_naive(
        c: &mut [f32],
        rsc: usize,
        a: &[f32],
        rsa: usize,
        b: &[f32],
        rsb: usize,
        m: usize,
        kd: usize,
        n: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * rsc + j];
                for k in 0..kd {
                    acc += a[i * rsa + k] * b[k * rsb + j];
                }
                c[i * rsc + j] = acc;
            }
        }
    }

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_naive_bitwise_over_odd_shapes() {
        // Shapes straddling every tile edge: < MR, < NR, exact multiples,
        // one past a multiple, and a kd past the KC block size.
        for &(m, kd, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (4, 16, 16),
            (5, 17, 33),
            (8, 300, 20),
            (13, 11, 64),
            (32, 257, 47),
        ] {
            let a = pseudo(m as u64 * 31 + kd as u64, m * kd);
            let b = pseudo(n as u64 * 17 + 3, kd * n);
            let c0 = pseudo(m as u64 + n as u64, m * n);
            let mut c_fast = c0.clone();
            let mut c_ref = c0;
            gemm(&mut c_fast, n, &a, kd, &b, n, m, kd, n);
            gemm_naive(&mut c_ref, n, &a, kd, &b, n, m, kd, n);
            assert_eq!(c_fast, c_ref, "shape ({m},{kd},{n})");
        }
    }

    #[test]
    fn respects_row_strides_and_leaves_tail_columns_untouched() {
        let (m, kd, n, rsc) = (6usize, 9usize, 10usize, 13usize);
        let a = pseudo(1, m * kd);
        let b = pseudo(2, kd * n);
        let mut c = vec![7.25f32; m * rsc];
        let mut c_ref = c.clone();
        gemm(&mut c, rsc, &a, kd, &b, n, m, kd, n);
        gemm_naive(&mut c_ref, rsc, &a, kd, &b, n, m, kd, n);
        assert_eq!(c, c_ref);
        for row in c.chunks(rsc) {
            assert!(row[n..].iter().all(|&v| v == 7.25), "tail columns must be untouched");
        }
    }

    #[test]
    fn backend_switch_roundtrip() {
        let _guard = backend_test_lock();
        set_kernel_backend(KernelBackend::Reference);
        assert_eq!(kernel_backend(), KernelBackend::Reference);
        set_kernel_backend(KernelBackend::Gemm);
        assert_eq!(kernel_backend(), KernelBackend::Gemm);
    }
}
