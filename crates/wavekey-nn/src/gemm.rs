//! Blocked GEMM kernel with an *exactly reproducible* accumulation order.
//!
//! Every convolution and dense layer in this crate lowers to calls of
//! [`gemm`], computing `C += A · B` over row-major matrices with explicit
//! row strides. The kernel is built so that each element of `C` receives
//! its `k` products in strictly ascending `k` order, exactly like the
//! naive scalar loops in [`crate::reference`]:
//!
//! * The microkernel is an *outer-product* update: for each `k` it
//!   broadcasts `A[i][k]` and adds `A[i][k] · B[k][j]` across a register
//!   tile of `MR × NR` output elements. Vectorization happens **across**
//!   output elements (the `NR` lanes), never *within* one element's
//!   reduction, so no element's sum is ever re-associated.
//! * The register tile is loaded from `C` and stored back; `k`-blocking
//!   therefore preserves the order too, because storing and reloading an
//!   `f32` is exact.
//! * Parallelism (the `parallel` feature) splits `C` into disjoint row
//!   bands; each element is computed by exactly one thread in the same
//!   ascending-`k` order, so results are independent of thread count.
//!
//! The consequence, relied on throughout the workspace: training with the
//! GEMM backend produces bit-identical models to the naive loops (modulo
//! the sign of exact zeros, which compares `==`), at any thread count.
//!
//! The module also hosts the [`KernelBackend`] switch that lets benches
//! and differential tests route whole networks through either backend,
//! and the `WAVEKEY_THREADS` override honored by all `parallel`-feature
//! code paths.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Rows per register tile of the microkernel.
const MR: usize = 4;
/// Columns per register tile of the microkernel (the vector lanes).
const NR: usize = 16;
/// `k` block size: one `A` panel (`MR × KC`) plus the touched `B` rows
/// stay resident in L1/L2 while a tile row of `C` is updated.
const KC: usize = 256;

/// Minimum rows before the row-band parallel path is worth the fork.
#[cfg(feature = "parallel")]
const PAR_MIN_ROWS: usize = 32;

// ------------------------------------------------------------------ kernel

/// `C += A · B` over row-major matrices with explicit row strides.
///
/// `c` must hold exactly `m` rows of stride `rsc` (length `m · rsc`);
/// only the first `n` columns of each row are updated, so a sub-matrix of
/// a wider buffer can be targeted by passing `n < rsc`. `a` holds `m`
/// rows of stride `rsa` with `kd` used columns; `b` holds `kd` rows of
/// stride `rsb` with `n` used columns.
///
/// Accumulation starts from the existing contents of `C` (initialize rows
/// to the bias, a prior gradient, or zero as the operation requires), and
/// each element receives its `kd` products in ascending `k` order — see
/// the module docs for why this makes results thread-count independent.
///
/// # Panics
///
/// Panics when a slice is too short for the stated geometry.
pub fn gemm(
    c: &mut [f32],
    rsc: usize,
    a: &[f32],
    rsa: usize,
    b: &[f32],
    rsb: usize,
    m: usize,
    kd: usize,
    n: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(c.len() >= m * rsc && n <= rsc, "C too short for {m}x{n} (stride {rsc})");
    assert!(kd == 0 || a.len() >= (m - 1) * rsa + kd, "A too short");
    assert!(kd == 0 || b.len() >= (kd - 1) * rsb + n, "B too short");

    #[cfg(feature = "parallel")]
    if m >= PAR_MIN_ROWS && parallel_enabled(m / MR) {
        use rayon::prelude::*;
        let threads = rayon::current_num_threads().max(1);
        // Band size rounded to a tile multiple so every band but the last
        // runs the full-tile fast path.
        let rows = m.div_ceil(threads).div_ceil(MR) * MR;
        c[..m * rsc]
            .par_chunks_mut(rows * rsc)
            .enumerate()
            .for_each(|(band, cband)| {
                let i0 = band * rows;
                let mrows = rows.min(m - i0);
                gemm_seq(cband, rsc, &a[i0 * rsa..], rsa, b, rsb, mrows, kd, n);
            });
        return;
    }
    gemm_seq(c, rsc, a, rsa, b, rsb, m, kd, n);
}

/// The sequential cache-blocked driver behind [`gemm`].
fn gemm_seq(
    c: &mut [f32],
    rsc: usize,
    a: &[f32],
    rsa: usize,
    b: &[f32],
    rsb: usize,
    m: usize,
    kd: usize,
    n: usize,
) {
    let mut ks = 0;
    while ks < kd {
        let ke = (ks + KC).min(kd);
        let mut i0 = 0;
        while i0 < m {
            let mr = MR.min(m - i0);
            let mut j0 = 0;
            // Descend through fixed tile widths so the lane loop always has
            // a compile-time bound (vectorizable); only a < 4-column tail
            // takes the runtime-width edge kernel.
            while j0 + NR <= n {
                if mr == MR {
                    kernel_full(c, rsc, a, rsa, b, rsb, i0, j0, ks, ke);
                } else {
                    kernel_tile::<NR>(c, rsc, a, rsa, b, rsb, i0, j0, ks, ke, mr);
                }
                j0 += NR;
            }
            if j0 + 8 <= n {
                kernel_tile::<8>(c, rsc, a, rsa, b, rsb, i0, j0, ks, ke, mr);
                j0 += 8;
            }
            if j0 + 4 <= n {
                kernel_tile::<4>(c, rsc, a, rsa, b, rsb, i0, j0, ks, ke, mr);
                j0 += 4;
            }
            if j0 < n {
                kernel_edge(c, rsc, a, rsa, b, rsb, i0, j0, ks, ke, mr, n - j0);
            }
            i0 += MR;
        }
        ks = ke;
    }
}

/// Full `MR × NR` register tile: the vectorized fast path.
#[inline]
fn kernel_full(
    c: &mut [f32],
    rsc: usize,
    a: &[f32],
    rsa: usize,
    b: &[f32],
    rsb: usize,
    i0: usize,
    j0: usize,
    ks: usize,
    ke: usize,
) {
    let mut acc = [[0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[(i0 + r) * rsc + j0..][..NR]);
    }
    for kk in ks..ke {
        let brow = &b[kk * rsb + j0..][..NR];
        for (r, row) in acc.iter_mut().enumerate() {
            let av = a[(i0 + r) * rsa + kk];
            for (t, lane) in row.iter_mut().enumerate() {
                *lane += av * brow[t];
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[(i0 + r) * rsc + j0..][..NR].copy_from_slice(row);
    }
}

/// Fixed-width tile (`W` lanes, compile-time) with a runtime row count:
/// the fast path for matrices whose height is not a multiple of [`MR`]
/// (e.g. 3-channel gradients) or whose width hits the 8/4 column tails.
#[inline]
#[allow(clippy::too_many_arguments)]
fn kernel_tile<const W: usize>(
    c: &mut [f32],
    rsc: usize,
    a: &[f32],
    rsa: usize,
    b: &[f32],
    rsb: usize,
    i0: usize,
    j0: usize,
    ks: usize,
    ke: usize,
    mr: usize,
) {
    let mut acc = [[0f32; W]; MR];
    for (r, row) in acc.iter_mut().take(mr).enumerate() {
        row.copy_from_slice(&c[(i0 + r) * rsc + j0..][..W]);
    }
    for kk in ks..ke {
        let brow: &[f32; W] = b[kk * rsb + j0..][..W].try_into().unwrap();
        for (r, row) in acc.iter_mut().take(mr).enumerate() {
            let av = a[(i0 + r) * rsa + kk];
            for (t, lane) in row.iter_mut().enumerate() {
                *lane += av * brow[t];
            }
        }
    }
    for (r, row) in acc.iter().take(mr).enumerate() {
        c[(i0 + r) * rsc + j0..][..W].copy_from_slice(row);
    }
}

/// Partial tile at the right/bottom edges; same order, runtime widths.
#[allow(clippy::too_many_arguments)]
fn kernel_edge(
    c: &mut [f32],
    rsc: usize,
    a: &[f32],
    rsa: usize,
    b: &[f32],
    rsb: usize,
    i0: usize,
    j0: usize,
    ks: usize,
    ke: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0f32; NR]; MR];
    for (r, row) in acc.iter_mut().take(mr).enumerate() {
        row[..nr].copy_from_slice(&c[(i0 + r) * rsc + j0..][..nr]);
    }
    for kk in ks..ke {
        let brow = &b[kk * rsb + j0..][..nr];
        for (r, row) in acc.iter_mut().take(mr).enumerate() {
            let av = a[(i0 + r) * rsa + kk];
            for (t, lane) in row[..nr].iter_mut().enumerate() {
                *lane += av * brow[t];
            }
        }
    }
    for (r, row) in acc.iter().take(mr).enumerate() {
        c[(i0 + r) * rsc + j0..][..nr].copy_from_slice(&row[..nr]);
    }
}

// ------------------------------------------------------------- int8 kernel

/// Rows per register tile of the int8 microkernel.
const QMR: usize = 4;
/// Columns per register tile of the int8 microkernel.
const QNR: usize = 4;
/// Lanes per dot-product accumulator block: eight `i16·i16 → i32` MACs
/// is exactly one `pmaddwd`-pair at the SSE2 baseline, which is what the
/// autovectorizer emits for this shape.
const QLANES: usize = 8;

/// `C += A · Bᵀ` over quantized `i16` operands with exact i32
/// accumulation.
///
/// One operand carries int8-range weights (`-127..=127`) widened into
/// `i16` containers, the other up-to-15-bit activation codes
/// (`-16383..=16383`, see `quant::AMAX`): the widening costs 2× the
/// memory of true `i8` weight storage but lets the inner product lower
/// straight to the SSE2 `pmaddwd` multiply-accumulate (8 MACs per
/// instruction) without the SSE4.1 byte-extension the baseline target
/// lacks, and the asymmetric 8×15-bit grid keeps the deepest model
/// reduction (752 · 127 · 16383 ≈ 1.6e9) inside `i32`. Serialized models
/// store true `i8` weights; the widened copies are built once at load
/// time (see [`crate::quant`]).
///
/// Unlike [`gemm`], `B` is supplied *transposed* (`bt`: `n` rows of
/// stride `rsbt`, `kd` used columns), so each `C[i][j]` is a dot product
/// of two contiguous rows — the natural layout for quantized weights
/// (`[out_ch][in_ch·k]`) and for the patch-major `im2row` packing the
/// quantized convolutions use. Accumulation is exact integer arithmetic:
/// any summation order gives the same result, so no order pinning is
/// needed for reproducibility.
///
/// # Panics
///
/// Panics when a slice is too short for the stated geometry.
pub fn gemm_i8(
    c: &mut [i32],
    rsc: usize,
    a: &[i16],
    rsa: usize,
    bt: &[i16],
    rsbt: usize,
    m: usize,
    kd: usize,
    n: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(c.len() >= m * rsc && n <= rsc, "C too short for {m}x{n} (stride {rsc})");
    assert!(kd == 0 || a.len() >= (m - 1) * rsa + kd, "A too short");
    assert!(kd == 0 || bt.len() >= (n - 1) * rsbt + kd, "Bt too short");

    let mut i0 = 0;
    while i0 < m {
        let mr = QMR.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let nr = QNR.min(n - j0);
            // An MR×NR register tile: the A rows stay hot in L1 across
            // the NR dot products, the Bt rows across the MR.
            for r in 0..mr {
                let arow = &a[(i0 + r) * rsa..][..kd];
                for t in 0..nr {
                    let brow = &bt[(j0 + t) * rsbt..][..kd];
                    c[(i0 + r) * rsc + j0 + t] += dot_i16(arow, brow);
                }
            }
            j0 += QNR;
        }
        i0 += QMR;
    }
}

/// Output-position lanes per register block of [`gemm_i8_cols`].
const QCOLS: usize = 8;

/// `C += A · B` over quantized `i16` operands with `B` row-major
/// (`kd` rows of exactly `n` columns) — the int8 convolution kernel.
///
/// [`gemm_i8`]'s per-element dot form wins for the long dense reduction
/// (`kd = 752`) but loses badly at conv depths (`kd ≤ 40`), where the
/// horizontal reduction dominates every short dot. This form instead
/// keeps a [`QCOLS`]-wide register block of *output positions* live
/// across the whole `k` loop and broadcasts one weight per step:
///
/// ```text
/// C[i][j0..j0+8] += Σ_k  a[i][k] · b[k][j0..j0+8]
/// ```
///
/// On x86-64 the hot loop is hand-written SSE2 (guaranteed baseline):
/// adjacent `k` rows are interleaved with `punpck` and fed to
/// `pmaddwd` — 8 exact `i16·i16 → i32` MACs per instruction, with a
/// [`QCOLS`]·2-wide register block of output positions live across the
/// whole `k` loop and no horizontal reduction until the final store.
/// Other targets take a portable register-blocked loop the
/// autovectorizer handles. Accumulation is exact `i32` either way, so
/// the result is independent of summation order and identical across
/// both paths. Callers that control the packing should pad `n` to a
/// multiple of 16 (zero columns are exact no-ops) — remaining tail
/// columns fall back to scalar dots.
///
/// # Panics
///
/// Panics when a slice is too short for the stated geometry.
pub fn gemm_i8_cols(
    c: &mut [i32],
    rsc: usize,
    a: &[i16],
    rsa: usize,
    b: &[i16],
    m: usize,
    kd: usize,
    n: usize,
) {
    if m == 0 || n == 0 || kd == 0 {
        return;
    }
    assert!(c.len() >= m * rsc && n <= rsc, "C too short for {m}x{n} (stride {rsc})");
    assert!(a.len() >= (m - 1) * rsa + kd, "A too short");
    assert!(b.len() >= kd * n, "B too short");

    #[cfg(target_arch = "x86_64")]
    // SAFETY: the geometry asserts above bound every pointer access.
    unsafe {
        gemm_i8_cols_sse2(c, rsc, a, rsa, b, m, kd, n);
    }
    #[cfg(not(target_arch = "x86_64"))]
    gemm_i8_cols_portable(c, rsc, a, rsa, b, m, kd, n);
}

/// The SSE2 body of [`gemm_i8_cols`]; geometry must satisfy its asserts.
#[cfg(target_arch = "x86_64")]
unsafe fn gemm_i8_cols_sse2(
    c: &mut [i32],
    rsc: usize,
    a: &[i16],
    rsa: usize,
    b: &[i16],
    m: usize,
    kd: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    let jw = 2 * QCOLS;
    let nb = n - n % jw;
    let kb = kd - kd % 2;
    for i in 0..m {
        let wrow = &a[i * rsa..][..kd];
        let mut j0 = 0;
        while j0 < nb {
            // SAFETY: all loads/stores below stay inside `b[..kd*n]` and
            // row `i` of `c` (j0 + 16 ≤ nb ≤ n ≤ rsc).
            unsafe {
                let mut acc = [_mm_setzero_si128(); 4];
                let mut kk = 0;
                while kk < kb {
                    // Two adjacent weights broadcast as (w₀, w₁) i16
                    // pairs; the matching activation rows interleave to
                    // (x₀(j), x₁(j)) pairs — the pmaddwd operand shape.
                    let wv = _mm_set1_epi32(
                        (i32::from(wrow[kk + 1] as u16) << 16) | i32::from(wrow[kk] as u16),
                    );
                    let r0 = b.as_ptr().add(kk * n + j0);
                    let r1 = b.as_ptr().add((kk + 1) * n + j0);
                    for t in 0..2 {
                        let x0 = _mm_loadu_si128(r0.add(8 * t).cast());
                        let x1 = _mm_loadu_si128(r1.add(8 * t).cast());
                        let lo = _mm_unpacklo_epi16(x0, x1);
                        let hi = _mm_unpackhi_epi16(x0, x1);
                        acc[2 * t] = _mm_add_epi32(acc[2 * t], _mm_madd_epi16(lo, wv));
                        acc[2 * t + 1] =
                            _mm_add_epi32(acc[2 * t + 1], _mm_madd_epi16(hi, wv));
                    }
                    kk += 2;
                }
                if kk < kd {
                    // Odd depth: pair the last row with zeros (exact).
                    let wv = _mm_set1_epi32(i32::from(wrow[kk] as u16));
                    let zero = _mm_setzero_si128();
                    let r0 = b.as_ptr().add(kk * n + j0);
                    for t in 0..2 {
                        let x0 = _mm_loadu_si128(r0.add(8 * t).cast());
                        let lo = _mm_unpacklo_epi16(x0, zero);
                        let hi = _mm_unpackhi_epi16(x0, zero);
                        acc[2 * t] = _mm_add_epi32(acc[2 * t], _mm_madd_epi16(lo, wv));
                        acc[2 * t + 1] =
                            _mm_add_epi32(acc[2 * t + 1], _mm_madd_epi16(hi, wv));
                    }
                }
                let crow = c.as_mut_ptr().add(i * rsc + j0);
                for (t, av) in acc.into_iter().enumerate() {
                    let p: *mut __m128i = crow.add(4 * t).cast();
                    _mm_storeu_si128(p, _mm_add_epi32(_mm_loadu_si128(p), av));
                }
            }
            j0 += jw;
        }
        for j in nb..n {
            let mut acc = 0i32;
            for (kk, &w) in wrow.iter().enumerate() {
                acc += i32::from(w) * i32::from(b[kk * n + j]);
            }
            c[i * rsc + j] += acc;
        }
    }
}

/// The portable body of [`gemm_i8_cols`] for non-x86-64 targets: a
/// [`QCOLS`]-wide register block the autovectorizer can lower to the
/// platform's widening multiply-accumulate.
#[cfg(not(target_arch = "x86_64"))]
fn gemm_i8_cols_portable(
    c: &mut [i32],
    rsc: usize,
    a: &[i16],
    rsa: usize,
    b: &[i16],
    m: usize,
    kd: usize,
    n: usize,
) {
    let nb = n - n % QCOLS;
    for i in 0..m {
        let wrow = &a[i * rsa..][..kd];
        let (cmain, ctail) = c[i * rsc..][..n].split_at_mut(nb);
        for (jb, accblk) in cmain.chunks_exact_mut(QCOLS).enumerate() {
            let j0 = jb * QCOLS;
            let mut lanes = [0i32; QCOLS];
            for (kk, &w) in wrow.iter().enumerate() {
                let w = i32::from(w);
                let x: &[i16; QCOLS] = b[kk * n + j0..][..QCOLS].try_into().unwrap();
                for (lane, &xv) in lanes.iter_mut().zip(x) {
                    *lane += w * i32::from(xv);
                }
            }
            for (o, v) in accblk.iter_mut().zip(lanes) {
                *o += v;
            }
        }
        for (j, o) in (nb..n).zip(ctail.iter_mut()) {
            let mut acc = 0i32;
            for (kk, &w) in wrow.iter().enumerate() {
                acc += i32::from(w) * i32::from(b[kk * n + j]);
            }
            *o += acc;
        }
    }
}

/// Splits `src` into even-index and odd-index elements:
/// `even[i] = src[2i]`, `odd[i] = src[2i+1]`. The strided-conv packers
/// use this to phase-split an input channel once per layer, turning
/// every strided im2row gather into a contiguous `memcpy` (applied
/// twice it splits a stride-4 channel into its four phases).
///
/// On x86-64 this runs 16 elements per iteration in SSE2 (`pshuflw`/
/// `pshufhw`/`pshufd` de-interleave plus a quadword merge); elsewhere a
/// scalar loop does the same moves.
///
/// # Panics
///
/// Panics unless `even.len() == src.len().div_ceil(2)` and
/// `odd.len() == src.len() / 2`.
pub fn deinterleave2(src: &[i16], even: &mut [i16], odd: &mut [i16]) {
    assert_eq!(even.len(), src.len().div_ceil(2), "even length mismatch");
    assert_eq!(odd.len(), src.len() / 2, "odd length mismatch");
    #[cfg(not(target_arch = "x86_64"))]
    let done = 0;
    #[cfg(target_arch = "x86_64")]
    let done = {
        use std::arch::x86_64::*;
        let pairs = src.len() / 16;
        // SAFETY: each iteration reads 16 elements of `src` and writes 8
        // of `even` / `odd`, all within the lengths asserted above.
        unsafe {
            for t in 0..pairs {
                let a = _mm_loadu_si128(src.as_ptr().add(16 * t).cast());
                let b = _mm_loadu_si128(src.as_ptr().add(16 * t + 8).cast());
                // (e₀ o₀ e₁ o₁ …) → (e₀ e₁ e₂ e₃ o₀ o₁ o₂ o₃)
                let pa =
                    _mm_shuffle_epi32(_mm_shufflehi_epi16(_mm_shufflelo_epi16(a, 0xD8), 0xD8), 0xD8);
                let pb =
                    _mm_shuffle_epi32(_mm_shufflehi_epi16(_mm_shufflelo_epi16(b, 0xD8), 0xD8), 0xD8);
                _mm_storeu_si128(
                    even.as_mut_ptr().add(8 * t).cast(),
                    _mm_unpacklo_epi64(pa, pb),
                );
                _mm_storeu_si128(
                    odd.as_mut_ptr().add(8 * t).cast(),
                    _mm_unpackhi_epi64(pa, pb),
                );
            }
        }
        16 * pairs
    };
    for (i, pair) in src[done..].chunks(2).enumerate() {
        even[done / 2 + i] = pair[0];
        if let Some(&o) = pair.get(1) {
            odd[done / 2 + i] = o;
        }
    }
}

/// Quantizes a float slice to symmetric activation codes:
/// `dst[t] = trunc(v + ½·sign(v))` with `v = clamp(src[t]·inv, -cap, cap)`
/// — round-half-away-from-zero on the clamped range, matching the scalar
/// quantizer the calibrator uses. `dst` is cleared and refilled.
///
/// On x86-64 the loop runs 8 lanes at a time in SSE2 (the sign-carrying
/// half is built by OR-ing the sign bit into `0.5`, exactly
/// `f32::copysign`); elsewhere a scalar loop computes the identical
/// operation sequence, so both paths are bit-identical.
pub fn quantize_codes(dst: &mut Vec<i16>, src: &[f32], inv: f32, cap: f32) {
    dst.clear();
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        dst.resize(src.len(), 0);
        let mut chunks_d = dst.chunks_exact_mut(8);
        let mut chunks_s = src.chunks_exact(8);
        // SAFETY: each chunk is exactly 8 elements; loads/stores are
        // unaligned-tolerant.
        unsafe {
            let iv = _mm_set1_ps(inv);
            let lo = _mm_set1_ps(-cap);
            let hi = _mm_set1_ps(cap);
            let half = _mm_set1_ps(0.5);
            let sign = _mm_set1_ps(-0.0);
            for (d, s) in (&mut chunks_d).zip(&mut chunks_s) {
                let mut out = [_mm_setzero_si128(); 2];
                for (t, o) in out.iter_mut().enumerate() {
                    let v = _mm_mul_ps(_mm_loadu_ps(s[4 * t..].as_ptr()), iv);
                    let v = _mm_min_ps(_mm_max_ps(v, lo), hi);
                    let h = _mm_or_ps(half, _mm_and_ps(v, sign));
                    *o = _mm_cvttps_epi32(_mm_add_ps(v, h));
                }
                let packed = _mm_packs_epi32(out[0], out[1]);
                _mm_storeu_si128(d.as_mut_ptr().cast(), packed);
            }
        }
        for (d, &s) in chunks_d.into_remainder().iter_mut().zip(chunks_s.remainder()) {
            let v = (s * inv).clamp(-cap, cap);
            *d = (v + 0.5f32.copysign(v)) as i16;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    dst.extend(src.iter().map(|&s| {
        let v = (s * inv).clamp(-cap, cap);
        (v + 0.5f32.copysign(v)) as i16
    }));
}

/// Requantizes an `i32` accumulator slice to clamped activation codes:
/// `out[t] = ⌊clamp(acc[t]·scale, 0, cap) + ½⌋` — the ReLU-folded
/// round-half-up every quantized conv applies per output channel.
///
/// On x86-64 this runs 8 lanes at a time in SSE2 (`cvtdq2ps`/`maxps`/
/// `minps`/`cvttps2dq`/`packssdw`); elsewhere a scalar loop computes the
/// identical IEEE operation sequence, so both paths are bit-identical
/// (the saturating pack is a no-op after the clamp). `f32::round` is
/// deliberately avoided: it lowers to a per-element `roundf` libcall at
/// the SSE2 baseline and dominates conv runtime.
///
/// # Panics
///
/// Panics when `out` and `acc` lengths differ.
pub fn requant_relu(out: &mut [i16], acc: &[i32], scale: f32, cap: f32) {
    assert_eq!(out.len(), acc.len(), "requant length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        let mut chunks_o = out.chunks_exact_mut(8);
        let mut chunks_a = acc.chunks_exact(8);
        // SAFETY: each chunk is exactly 8 elements; loads/stores are
        // unaligned-tolerant.
        unsafe {
            let sc = _mm_set1_ps(scale);
            let zero = _mm_setzero_ps();
            let capv = _mm_set1_ps(cap);
            let half = _mm_set1_ps(0.5);
            for (o, av) in (&mut chunks_o).zip(&mut chunks_a) {
                let lo = _mm_cvtepi32_ps(_mm_loadu_si128(av.as_ptr().cast()));
                let hi = _mm_cvtepi32_ps(_mm_loadu_si128(av[4..].as_ptr().cast()));
                let lo = _mm_add_ps(_mm_min_ps(_mm_max_ps(_mm_mul_ps(lo, sc), zero), capv), half);
                let hi = _mm_add_ps(_mm_min_ps(_mm_max_ps(_mm_mul_ps(hi, sc), zero), capv), half);
                let packed = _mm_packs_epi32(_mm_cvttps_epi32(lo), _mm_cvttps_epi32(hi));
                _mm_storeu_si128(o.as_mut_ptr().cast(), packed);
            }
        }
        for (o, &av) in chunks_o.into_remainder().iter_mut().zip(chunks_a.remainder()) {
            *o = ((av as f32 * scale).clamp(0.0, cap) + 0.5) as i16;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    for (o, &av) in out.iter_mut().zip(acc) {
        *o = ((av as f32 * scale).clamp(0.0, cap) + 0.5) as i16;
    }
}

/// Widening `i16·i16 → i32` dot product, blocked so the reduction keeps
/// [`QLANES`] independent partial sums — the shape LLVM turns into a
/// `pmaddwd` loop at the SSE2 baseline.
#[inline]
fn dot_i16(a: &[i16], b: &[i16]) -> i32 {
    let mut acc = [0i32; QLANES];
    let mut ca = a.chunks_exact(QLANES);
    let mut cb = b.chunks_exact(QLANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for t in 0..QLANES {
            acc[t] += i32::from(xa[t]) * i32::from(xb[t]);
        }
    }
    let mut sum: i32 = acc.iter().sum();
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        sum += i32::from(x) * i32::from(y);
    }
    sum
}

// ----------------------------------------------------------------- backend

/// Which compute kernels the layers dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// The blocked im2col/GEMM kernels (the default).
    Gemm,
    /// The original naive scalar loops in [`crate::reference`].
    Reference,
}

static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Selects the compute backend for all subsequent layer calls.
///
/// Process-global; intended for benches and differential tests. Both
/// backends produce numerically identical (`==`) results, so switching is
/// never observable through values — only through speed.
pub fn set_kernel_backend(backend: KernelBackend) {
    let v = match backend {
        KernelBackend::Gemm => 0,
        KernelBackend::Reference => 1,
    };
    BACKEND.store(v, Ordering::Relaxed);
}

/// The currently selected compute backend.
pub fn kernel_backend() -> KernelBackend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => KernelBackend::Gemm,
        _ => KernelBackend::Reference,
    }
}

// ------------------------------------------------------------ thread config

/// The `WAVEKEY_THREADS` override, parsed once: `Some(n)` when set to a
/// positive integer, `None` otherwise. `1` forces every `parallel`-feature
/// code path in the workspace onto its sequential branch.
pub fn configured_threads() -> Option<usize> {
    static THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("WAVEKEY_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Whether a data-parallel split over `items` independent pieces should
/// fan out: the feature is on, `WAVEKEY_THREADS` is not `1`, and there is
/// more than one piece. Installs the sized global pool on first use when
/// `WAVEKEY_THREADS=n` requests a specific width.
#[cfg(feature = "parallel")]
pub(crate) fn parallel_enabled(items: usize) -> bool {
    if items < 2 {
        return false;
    }
    match configured_threads() {
        Some(1) => false,
        Some(n) => {
            ensure_global_pool(n);
            true
        }
        None => true,
    }
}

#[cfg(feature = "parallel")]
fn ensure_global_pool(n: usize) {
    use std::sync::Once;
    static INIT: Once = Once::new();
    // `build_global` fails when a pool already exists (e.g. a test driving
    // layers inside `ThreadPool::install`); the installed pool then takes
    // precedence, which is exactly the desired override order.
    INIT.call_once(|| {
        let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
    });
}

/// Serializes tests that flip the process-global backend switch, so they
/// cannot race with each other under the multi-threaded test harness.
/// Holders must restore [`KernelBackend::Gemm`] before releasing.
#[cfg(test)]
pub(crate) fn backend_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: same start-from-C, ascending-k order, scalar.
    fn gemm_naive(
        c: &mut [f32],
        rsc: usize,
        a: &[f32],
        rsa: usize,
        b: &[f32],
        rsb: usize,
        m: usize,
        kd: usize,
        n: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * rsc + j];
                for k in 0..kd {
                    acc += a[i * rsa + k] * b[k * rsb + j];
                }
                c[i * rsc + j] = acc;
            }
        }
    }

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_naive_bitwise_over_odd_shapes() {
        // Shapes straddling every tile edge: < MR, < NR, exact multiples,
        // one past a multiple, and a kd past the KC block size.
        for &(m, kd, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (4, 16, 16),
            (5, 17, 33),
            (8, 300, 20),
            (13, 11, 64),
            (32, 257, 47),
        ] {
            let a = pseudo(m as u64 * 31 + kd as u64, m * kd);
            let b = pseudo(n as u64 * 17 + 3, kd * n);
            let c0 = pseudo(m as u64 + n as u64, m * n);
            let mut c_fast = c0.clone();
            let mut c_ref = c0;
            gemm(&mut c_fast, n, &a, kd, &b, n, m, kd, n);
            gemm_naive(&mut c_ref, n, &a, kd, &b, n, m, kd, n);
            assert_eq!(c_fast, c_ref, "shape ({m},{kd},{n})");
        }
    }

    #[test]
    fn respects_row_strides_and_leaves_tail_columns_untouched() {
        let (m, kd, n, rsc) = (6usize, 9usize, 10usize, 13usize);
        let a = pseudo(1, m * kd);
        let b = pseudo(2, kd * n);
        let mut c = vec![7.25f32; m * rsc];
        let mut c_ref = c.clone();
        gemm(&mut c, rsc, &a, kd, &b, n, m, kd, n);
        gemm_naive(&mut c_ref, rsc, &a, kd, &b, n, m, kd, n);
        assert_eq!(c, c_ref);
        for row in c.chunks(rsc) {
            assert!(row[n..].iter().all(|&v| v == 7.25), "tail columns must be untouched");
        }
    }

    /// Naive scalar int8 GEMM over the same transposed-B layout.
    fn gemm_i8_naive(
        c: &mut [i32],
        rsc: usize,
        a: &[i16],
        rsa: usize,
        bt: &[i16],
        rsbt: usize,
        m: usize,
        kd: usize,
        n: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * rsc + j];
                for k in 0..kd {
                    acc += i32::from(a[i * rsa + k]) * i32::from(bt[j * rsbt + k]);
                }
                c[i * rsc + j] = acc;
            }
        }
    }

    fn pseudo_i8(seed: u64, len: usize) -> Vec<i16> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as i64 % 128 - 64) as i16
            })
            .collect()
    }

    #[test]
    fn int8_kernel_matches_naive_over_odd_shapes() {
        // Shapes straddling the QMR/QNR tile and QLANES chunk edges, plus
        // the production encoder shapes (conv1/conv2/dense at batch 1).
        for &(m, kd, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (4, 8, 4),
            (5, 17, 9),
            (8, 21, 97),
            (16, 40, 47),
            (1, 752, 12),
            (13, 300, 6),
        ] {
            let a = pseudo_i8(m as u64 * 131 + kd as u64, m * kd);
            let bt = pseudo_i8(n as u64 * 37 + 5, n * kd);
            let c0: Vec<i32> = (0..m * n).map(|i| i as i32 - 17).collect();
            let mut c_fast = c0.clone();
            let mut c_ref = c0;
            gemm_i8(&mut c_fast, n, &a, kd, &bt, kd, m, kd, n);
            gemm_i8_naive(&mut c_ref, n, &a, kd, &bt, kd, m, kd, n);
            assert_eq!(c_fast, c_ref, "shape ({m},{kd},{n})");
        }
    }

    #[test]
    fn int8_kernel_respects_strides_and_tail_columns() {
        let (m, kd, n, rsc, rsbt) = (6usize, 9usize, 10usize, 13usize, 12usize);
        let a = pseudo_i8(1, m * kd);
        let bt = pseudo_i8(2, n * rsbt);
        let mut c = vec![7i32; m * rsc];
        let mut c_ref = c.clone();
        gemm_i8(&mut c, rsc, &a, kd, &bt, rsbt, m, kd, n);
        gemm_i8_naive(&mut c_ref, rsc, &a, kd, &bt, rsbt, m, kd, n);
        assert_eq!(c, c_ref);
        for row in c.chunks(rsc) {
            assert!(row[n..].iter().all(|&v| v == 7), "tail columns must be untouched");
        }
    }

    #[test]
    fn int8_accumulation_cannot_overflow_at_model_depths() {
        // The deepest quantized reduction is the 752-wide encoder dense:
        // i8 weights against 15-bit activations peak at 752 · 127 · 16383,
        // inside i32 (and each pmaddwd pair sum is ≤ 2·127·16383 ≪ 2³¹).
        let worst = 752i64 * 127 * 16383;
        assert!(worst < i64::from(i32::MAX));
        let a = vec![16383i16; 752];
        let bt = vec![-127i16; 752];
        let mut c = [0i32];
        gemm_i8(&mut c, 1, &a, 752, &bt, 752, 1, 752, 1);
        assert_eq!(c[0], -worst as i32);
    }

    /// Naive scalar GEMM over the row-major-B layout of [`gemm_i8_cols`].
    fn gemm_i8_cols_naive(
        c: &mut [i32],
        rsc: usize,
        a: &[i16],
        rsa: usize,
        b: &[i16],
        m: usize,
        kd: usize,
        n: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * rsc + j];
                for k in 0..kd {
                    acc += i32::from(a[i * rsa + k]) * i32::from(b[k * n + j]);
                }
                c[i * rsc + j] = acc;
            }
        }
    }

    fn pseudo_i15(seed: u64, len: usize) -> Vec<i16> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as i64 % 32_767 - 16_383) as i16
            })
            .collect()
    }

    #[test]
    fn cols_kernel_matches_naive_over_odd_shapes() {
        // Production conv geometries (kd = ic·k at batch 1) plus shapes
        // straddling the QCOLS block edge (n = 1, 7, 8, 9, non-multiples);
        // activations span the full 15-bit range.
        for &(m, kd, n) in &[
            (1, 1, 1),
            (8, 21, 97),
            (16, 40, 47),
            (8, 27, 98),
            (3, 5, 7),
            (5, 4, 8),
            (5, 2, 33),
            (2, 13, 9),
        ] {
            let a = pseudo_i8(m as u64 * 59 + kd as u64, m * kd);
            let b = pseudo_i15(n as u64 * 43 + 7, kd * n);
            let c0: Vec<i32> = (0..m * n).map(|i| i as i32 * 3 - 40).collect();
            let mut c_fast = c0.clone();
            let mut c_ref = c0;
            gemm_i8_cols(&mut c_fast, n, &a, kd, &b, m, kd, n);
            gemm_i8_cols_naive(&mut c_ref, n, &a, kd, &b, m, kd, n);
            assert_eq!(c_fast, c_ref, "shape ({m},{kd},{n})");
        }
    }

    #[test]
    fn cols_kernel_respects_strides_and_tail_columns() {
        let (m, kd, n, rsc) = (4usize, 6usize, 9usize, 12usize);
        let a = pseudo_i8(3, m * kd);
        let b = pseudo_i15(4, kd * n);
        let mut c = vec![-3i32; m * rsc];
        let mut c_ref = c.clone();
        gemm_i8_cols(&mut c, rsc, &a, kd, &b, m, kd, n);
        gemm_i8_cols_naive(&mut c_ref, rsc, &a, kd, &b, m, kd, n);
        assert_eq!(c, c_ref);
        for row in c.chunks(rsc) {
            assert!(row[n..].iter().all(|&v| v == -3), "tail columns must be untouched");
        }
    }

    #[test]
    fn deinterleave2_matches_scalar_over_odd_lengths() {
        // Lengths straddling the 16-element SSE2 block (0, 1, tails,
        // exact multiples) with full-range 15-bit values.
        for &len in &[0usize, 1, 2, 15, 16, 17, 31, 32, 33, 97, 400] {
            let src = pseudo_i15(len as u64 + 11, len);
            let mut even = vec![0i16; len.div_ceil(2)];
            let mut odd = vec![0i16; len / 2];
            deinterleave2(&src, &mut even, &mut odd);
            let e_ref: Vec<i16> = src.iter().step_by(2).copied().collect();
            let o_ref: Vec<i16> = src.iter().skip(1).step_by(2).copied().collect();
            assert_eq!(even, e_ref, "even, len {len}");
            assert_eq!(odd, o_ref, "odd, len {len}");
        }
    }

    #[test]
    fn requant_relu_matches_scalar_over_odd_lengths() {
        for &len in &[0usize, 1, 7, 8, 9, 100] {
            let acc: Vec<i32> =
                (0..len).map(|i| (i as i32 * 7_919_113) % 3_000_000 - 1_200_000).collect();
            let mut out = vec![0i16; len];
            requant_relu(&mut out, &acc, 0.0137, 16383.0);
            for (&o, &a) in out.iter().zip(&acc) {
                let want = ((a as f32 * 0.0137).clamp(0.0, 16383.0) + 0.5) as i16;
                assert_eq!(o, want, "len {len}, acc {a}");
            }
        }
    }

    #[test]
    fn quantize_codes_matches_scalar_over_odd_lengths() {
        for &len in &[0usize, 1, 7, 8, 9, 33, 200] {
            let src: Vec<f32> =
                (0..len).map(|i| ((i as f32 * 0.7311) % 4.0 - 2.0) * 1.3).collect();
            let mut dst = Vec::new();
            quantize_codes(&mut dst, &src, 8191.5, 16383.0);
            assert_eq!(dst.len(), len);
            for (&d, &s) in dst.iter().zip(&src) {
                let v = (s * 8191.5).clamp(-16383.0, 16383.0);
                let want = (v + 0.5f32.copysign(v)) as i16;
                assert_eq!(d, want, "len {len}, src {s}");
            }
        }
    }

    #[test]
    fn backend_switch_roundtrip() {
        let _guard = backend_test_lock();
        set_kernel_backend(KernelBackend::Reference);
        assert_eq!(kernel_backend(), KernelBackend::Reference);
        set_kernel_backend(KernelBackend::Gemm);
        assert_eq!(kernel_backend(), KernelBackend::Gemm);
    }
}
