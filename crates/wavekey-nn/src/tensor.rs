//! A minimal row-major n-dimensional tensor.
//!
//! Shapes used by the WaveKey networks are `[batch, features]` for dense
//! layers and `[batch, channels, length]` for 1-D convolutions. The tensor
//! stores `f32` data contiguously in row-major order.

/// A dense row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use wavekey_nn::Tensor;
/// let t = Tensor::zeros(vec![2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape(), &[2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let n = checked_numel(&shape);
        Tensor { shape, data: vec![0.0; n] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Tensor {
        let n = checked_numel(&shape);
        Tensor { shape, data: vec![value; n] }
    }

    /// Wraps an existing data vector with a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: Vec<usize>) -> Tensor {
        let n = checked_numel(&shape);
        assert_eq!(data.len(), n, "data length {} != shape product {}", data.len(), n);
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements (never true for validly
    /// constructed tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the raw data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the raw data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshaped(&self, shape: Vec<usize>) -> Tensor {
        let n = checked_numel(&shape);
        assert_eq!(n, self.data.len(), "reshape changes element count");
        Tensor { shape, data: self.data.clone() }
    }

    /// Index into a 2-D tensor `[rows, cols]`.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable index into a 2-D tensor.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.ndim(), 2);
        &mut self.data[r * self.shape[1] + c]
    }

    /// Index into a 3-D tensor `[n, c, l]`.
    #[inline]
    pub fn at3(&self, n: usize, c: usize, l: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 3);
        self.data[(n * self.shape[1] + c) * self.shape[2] + l]
    }

    /// Mutable index into a 3-D tensor.
    #[inline]
    pub fn at3_mut(&mut self, n: usize, c: usize, l: usize) -> &mut f32 {
        debug_assert_eq!(self.ndim(), 3);
        &mut self.data[(n * self.shape[1] + c) * self.shape[2] + l]
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in sub");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * s).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// In-place `self += other * s` (AXPY), used by optimizers.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, other: &Tensor, s: f32) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Extracts row `r` of a 2-D tensor as a `Vec<f32>`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of range.
    pub fn row(&self, r: usize) -> Vec<f32> {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D tensor");
        let cols = self.shape[1];
        self.data[r * cols..(r + 1) * cols].to_vec()
    }

    /// Stacks equal-shape tensors along a new leading (batch) dimension.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "stack of zero tensors");
        let inner = items[0].shape.clone();
        let mut data = Vec::with_capacity(items.len() * items[0].len());
        for t in items {
            assert_eq!(t.shape, inner, "stack requires equal shapes");
            data.extend_from_slice(&t.data);
        }
        let mut shape = vec![items.len()];
        shape.extend(inner);
        Tensor { shape, data }
    }

    /// Splits the leading (batch) dimension back into per-item tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has fewer than 2 dimensions.
    pub fn unstack(&self) -> Vec<Tensor> {
        assert!(self.ndim() >= 2, "unstack requires a batch dimension");
        let batch = self.shape[0];
        let inner: Vec<usize> = self.shape[1..].to_vec();
        let stride: usize = inner.iter().product();
        (0..batch)
            .map(|i| Tensor {
                shape: inner.clone(),
                data: self.data[i * stride..(i + 1) * stride].to_vec(),
            })
            .collect()
    }
}

fn checked_numel(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "tensor shape must have at least one dimension");
    assert!(shape.iter().all(|&d| d > 0), "tensor dimensions must be positive");
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(vec![2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(vec![4], 2.5);
        assert!(f.data().iter().all(|&x| x == 2.5));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_length() {
        Tensor::from_vec(vec![1.0, 2.0], vec![3]);
    }

    #[test]
    fn indexing_2d_row_major() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        assert_eq!(t.at2(0, 0), 1.0);
        assert_eq!(t.at2(0, 2), 3.0);
        assert_eq!(t.at2(1, 0), 4.0);
        assert_eq!(t.at2(1, 2), 6.0);
    }

    #[test]
    fn indexing_3d_row_major() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), vec![2, 3, 4]);
        assert_eq!(t.at3(0, 0, 0), 0.0);
        assert_eq!(t.at3(0, 1, 0), 4.0);
        assert_eq!(t.at3(1, 0, 0), 12.0);
        assert_eq!(t.at3(1, 2, 3), 23.0);
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0], vec![2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], vec![2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        let mut c = a.clone();
        c.axpy(&b, 0.5);
        assert_eq!(c.data(), &[2.5, 4.5]);
        assert_eq!(b.sum(), 8.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        let r = t.reshaped(vec![4]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[4]);
    }

    #[test]
    #[should_panic(expected = "reshape changes element count")]
    fn reshape_rejects_bad_shape() {
        Tensor::zeros(vec![2, 2]).reshaped(vec![5]);
    }

    #[test]
    fn stack_unstack_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], vec![2, 2]);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.shape(), &[2, 2, 2]);
        let parts = s.unstack();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn row_extraction() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        assert_eq!(t.row(1), vec![4.0, 5.0, 6.0]);
    }
}
