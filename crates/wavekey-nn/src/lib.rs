//! A from-scratch deep-learning micro-framework for the WaveKey
//! autoencoders.
//!
//! The paper implements IMU-En, RF-En, and the auto-decoder De in PyTorch
//! (Fig. 5). No deep-learning ecosystem is available here, so this crate
//! provides exactly the pieces those networks need, implemented from
//! scratch on `f32`:
//!
//! * [`tensor`] — a row-major n-dimensional tensor.
//! * [`layer`] — `Conv1d`, `Dense`, `ReLU`, `BatchNorm1d`,
//!   `ConvTranspose1d`, `Flatten`, `Reshape`, all with hand-derived
//!   backward passes.
//! * [`gemm`] — the shared blocked GEMM kernel with an exactly
//!   reproducible accumulation order, plus the [`gemm::KernelBackend`]
//!   switch and the `WAVEKEY_THREADS` override.
//! * [`lowering`] — im2col lowering of the convolution/dense forward and
//!   backward passes onto [`gemm::gemm`].
//! * [`reference`] — the original naive scalar loops, kept as the
//!   differential-test oracle and selectable backend.
//! * [`net`] — a [`net::Sequential`] container with forward/backward and a
//!   compact binary (de)serialization format for trained models.
//! * [`quant`] — post-training int8 quantization of encoder-shaped
//!   networks: per-channel symmetric weight scales, calibrated 15-bit
//!   activation scales, corpus-aware adaptive weight rounding, and an
//!   inference-only forward on the exact-i32 kernels —
//!   [`gemm::gemm_i8_cols`] (SSE2 `pmaddwd` on x86-64) for the convs and
//!   [`gemm::gemm_i8`] for the dense head (serialized ~4× smaller under
//!   a version-2 tag in [`net`]).
//! * [`optim`] — SGD with momentum and Adam.
//! * [`loss`] — mean-squared error (the joint WaveKey loss of Eq. (3) is
//!   assembled from MSE pieces in `wavekey-core`).
//! * [`init`] — seeded He/Xavier initialization so training is
//!   reproducible.
//!
//! # Example: fitting a tiny regression
//!
//! ```
//! use wavekey_nn::net::Sequential;
//! use wavekey_nn::layer::{Dense, ReLU};
//! use wavekey_nn::optim::{Adam, Optimizer};
//! use wavekey_nn::loss::mse;
//! use wavekey_nn::tensor::Tensor;
//!
//! let mut net = Sequential::new();
//! net.push(Dense::new(1, 8, 1));
//! net.push(ReLU::new());
//! net.push(Dense::new(8, 1, 2));
//! let mut opt = Adam::new(1e-2);
//!
//! let x = Tensor::from_vec(vec![0.0, 0.5, 1.0, 1.5], vec![4, 1]);
//! let y = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![4, 1]);
//! let mut last = f32::MAX;
//! for _ in 0..500 {
//!     let out = net.forward(&x, true);
//!     let (loss, grad) = mse(&out, &y);
//!     net.zero_grad();
//!     net.backward(&grad);
//!     opt.step(&mut net.params_mut());
//!     last = loss;
//! }
//! assert!(last < 1e-2);
//! ```

pub mod gemm;
pub mod init;
pub mod layer;
pub mod loss;
pub mod lowering;
pub mod net;
pub mod optim;
pub mod quant;
pub mod reference;
pub mod tensor;

pub use gemm::{configured_threads, gemm_i8, kernel_backend, set_kernel_backend, KernelBackend};
pub use layer::{
    BatchNorm1d, Conv1d, ConvTranspose1d, Dense, Flatten, Layer, LayerBox, ReLU, Reshape,
};
pub use loss::{mse, mse_pair};
pub use net::Sequential;
pub use optim::{Adam, Optimizer, Sgd};
pub use quant::{QuantizeError, QuantizedSequential};
pub use tensor::Tensor;
