//! Quantized int8 inference for the WaveKey encoder networks.
//!
//! The per-session hot path runs the two encoders (Fig. 5) forward once
//! per key establishment; training is rare and stays f32. This module
//! provides a post-training-quantized mirror of an encoder-shaped
//! [`Sequential`] — `Conv1d`+`ReLU` stages, `Flatten`, a final `Dense`
//! with the trailing non-affine `BatchNorm1d` folded in — that runs the
//! whole forward on integer values with exact i32 accumulation through
//! [`crate::gemm::gemm_i8_cols`] (convolutions) and
//! [`crate::gemm::gemm_i8`] (the dense head):
//!
//! * **Weights** are quantized to int8 per *output channel* with
//!   symmetric scales (`scale = max|w| / 127`), the standard scheme for
//!   conv/dense layers whose channels have very different dynamic ranges.
//!   Serialized models store these true `i8` rows — the ≈4× size win.
//! * **Activations** are quantized per tensor to a finer symmetric
//!   15-bit grid (`scale = max|x| / 16383` over the calibration corpus,
//!   see [`AMAX`]). WaveKey consumes *equiprobable-quantizer bins* of the
//!   latent, whose central bins are only ~0.28σ wide; int8 activations
//!   leave ~1e-2 of latent error — enough to cross a bin somewhere on any
//!   realistic corpus — while the 15-bit grid cuts that to ~1e-4 and
//!   still rides the same 16-bit `pmaddwd` multiply lanes as the int8
//!   weights, at identical speed and no extra model bytes. Convolution
//!   outputs are requantized straight to the next layer's input scale
//!   with the ReLU folded into the clamp (`0..=16383`), so intermediate
//!   activations never leave the 15-bit grid.
//! * **Accumulation** is exact `i32` (the deepest reduction, the 752-wide
//!   encoder dense, peaks at `752·127·16383 ≈ 1.6e9`, inside `i32`), so
//!   results are independent of summation order and thread count by
//!   construction — no order pinning needed, unlike the f32 kernel.
//! * **Requantization** multiplies the `i32` accumulator by a per-output-
//!   channel f32 multiplier, clamps to the (non-negative, ReLU-folded)
//!   activation range, and rounds half up by adding 0.5 and truncating —
//!   a formulation that vectorizes at the SSE2 baseline, where
//!   `f32::round` is a per-element `roundf` libcall. The arithmetic is
//!   the same f32 operation everywhere (kernel and scalar reference), so
//!   the forward stays bit-deterministic even where the accumulator
//!   exceeds f32's 2²⁴ integer window.
//! * The final dense layer **dequantizes** to f32 and adds a per-channel
//!   f32 bias that carries the folded batch-norm shift plus a calibration
//!   bias correction (the mean f32-vs-quantized latent gap over the
//!   calibration corpus). `wavekey-core` further nudges this bias per
//!   channel to pin *seed-level* equivalence on its reference corpus; see
//!   [`QuantizedSequential::output_bias_mut`].
//!
//! At load time the `i8` weight rows are widened once into `i16` working
//! copies so both inner products lower to the SSE2 `pmaddwd`
//! multiply-accumulate (see the version-2 codec in [`crate::net`] for
//! the serialized form).

use crate::gemm::{deinterleave2, gemm_i8, gemm_i8_cols, quantize_codes, requant_relu};
use crate::layer::{Layer, LayerBox};
use crate::net::Sequential;
use crate::tensor::Tensor;

/// Largest quantized *weight* magnitude: symmetric `-127..=127` (the
/// `-128` code is unused so negation stays closed).
pub const QMAX: f32 = 127.0;

/// Largest quantized *activation* magnitude: symmetric 15-bit codes.
/// Chosen so the latent error stays well inside the equiprobable
/// quantizer's bin margins (the seed-equivalence requirement) while the
/// deepest reduction (`752 · 127 · 16383`) and every `pmaddwd` pair sum
/// (`2 · 127 · 16383`) stay inside `i32` — see the module docs.
pub const AMAX: f32 = 16383.0;

/// Why a network could not be quantized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantizeError {
    /// The layer stack is not the encoder shape this module supports
    /// (`[Conv1d, ReLU]* Flatten Dense [BatchNorm1d(non-affine)]`).
    UnsupportedArchitecture(String),
    /// No calibration inputs were supplied.
    EmptyCalibration,
}

impl std::fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantizeError::UnsupportedArchitecture(what) => {
                write!(f, "cannot quantize: {what}")
            }
            QuantizeError::EmptyCalibration => write!(f, "calibration corpus is empty"),
        }
    }
}

impl std::error::Error for QuantizeError {}

/// Quantizes one f32 activation to the symmetric 15-bit grid at
/// `1/inv_scale`, rounding half away from zero. Spelled as clamp +
/// `copysign` + truncate (identical results to `f32::round`) because
/// `round` is a `roundf` libcall at the SSE2 baseline, and this runs
/// per input element on the session hot path.
#[inline]
fn quantize_value(x: f32, inv_scale: f32) -> i16 {
    let v = (x * inv_scale).clamp(-AMAX, AMAX);
    (v + 0.5f32.copysign(v)) as i16
}

/// A quantized `Conv1d` with the following `ReLU` folded into its
/// requantization clamp.
#[derive(Debug, Clone)]
pub struct QuantizedConv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    /// `[oc][ic·k]`, the serialized form.
    weight: Vec<i8>,
    /// The same values widened once into `i16` for the conv kernel
    /// ([`gemm_i8_cols`]).
    weight_wide: Vec<i16>,
    /// Per-output-channel symmetric weight scales.
    weight_scale: Vec<f32>,
    /// Bias in accumulator units: `round(bias / (in_scale · w_scale))`.
    bias_q: Vec<i32>,
    in_scale: f32,
    out_scale: f32,
    /// Derived: `1 / in_scale` (input-side quantizer).
    in_inv: f32,
    /// Derived per-channel requantizer: `in_scale · w_scale / out_scale`.
    requant: Vec<f32>,
}

impl QuantizedConv1d {
    fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        weight: Vec<i8>,
        weight_scale: Vec<f32>,
        bias_q: Vec<i32>,
        in_scale: f32,
        out_scale: f32,
    ) -> QuantizedConv1d {
        let weight_wide = weight.iter().map(|&w| i16::from(w)).collect();
        let requant =
            weight_scale.iter().map(|&ws| in_scale * ws / out_scale).collect();
        QuantizedConv1d {
            in_channels,
            out_channels,
            kernel,
            stride,
            weight,
            weight_wide,
            weight_scale,
            bias_q,
            in_scale,
            out_scale,
            in_inv: 1.0 / in_scale,
            requant,
        }
    }

    /// `(in_channels, out_channels, kernel, stride)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.in_channels, self.out_channels, self.kernel, self.stride)
    }

    /// Output length for an input of `l_in` samples.
    pub fn l_out(&self, l_in: usize) -> usize {
        (l_in - self.kernel) / self.stride + 1
    }

    /// Raw codec fields: `(weight_i8, weight_scale, bias_q, in_scale,
    /// out_scale)`.
    pub fn codec_fields(&self) -> (&[i8], &[f32], &[i32], f32, f32) {
        (&self.weight, &self.weight_scale, &self.bias_q, self.in_scale, self.out_scale)
    }

    /// Quantized forward over one sample: `input_q` is `[ic][l_in]` of
    /// 15-bit activation codes, `out_q` receives `[oc][l_out]` post-ReLU
    /// codes. `cols`/`acc` are caller scratch (resized here).
    pub fn forward(
        &self,
        input_q: &[i16],
        l_in: usize,
        cols: &mut Vec<i16>,
        acc: &mut Vec<i32>,
        out_q: &mut Vec<i16>,
    ) {
        let l_out = self.l_out(l_in);
        let ick = self.in_channels * self.kernel;
        // Pad output positions to a multiple of 16 so the SSE2 GEMM
        // block never hits its scalar-tail columns; the pad columns are
        // zero activations (exact no-op MACs) and are never requantized.
        let l_pad = l_out.div_ceil(16) * 16;
        let rows_len = ick * l_pad;
        // k-major packing: row `k = c·kernel + tap` holds that receptive-
        // field tap for *every* output position `j` contiguously —
        // `x_k(j) = input[c][j·stride + tap]` — so the kernel's inner loop
        // runs unit-stride across output positions with one broadcast
        // weight per row. For strides 2 and 4 each channel is first
        // phase-split (vectorized de-interleave, once per layer) so that
        // every row pack is a contiguous `memcpy` instead of a strided
        // gather — the gather was costing more than the GEMM itself.
        let phased = matches!(self.stride, 2 | 4);
        let lp = l_in.div_ceil(self.stride.max(1));
        let phase_len = if phased { self.in_channels * self.stride * lp } else { 0 };
        let tmp_len = if self.stride == 4 { l_in + 1 } else { 0 };
        cols.clear();
        cols.resize(rows_len + phase_len + tmp_len, 0);
        let (rows_buf, rest) = cols.split_at_mut(rows_len);
        let (phases, tmp) = rest.split_at_mut(phase_len);
        if phased {
            for c in 0..self.in_channels {
                let src = &input_q[c * l_in..][..l_in];
                let chp = &mut phases[c * self.stride * lp..][..self.stride * lp];
                if self.stride == 2 {
                    let (p0, p1) = chp.split_at_mut(lp);
                    deinterleave2(src, &mut p0[..l_in.div_ceil(2)], &mut p1[..l_in / 2]);
                } else {
                    // Two-level split: evens/odds first, then each half
                    // again — evens-of-evens are phase 0, odds-of-evens
                    // phase 2, and so on.
                    let (t0, t1) = tmp.split_at_mut(l_in.div_ceil(2));
                    let (e, rest) = chp.split_at_mut(lp);
                    let (o, rest) = rest.split_at_mut(lp);
                    let (e2, o2) = rest.split_at_mut(lp);
                    let t0 = &mut t0[..l_in.div_ceil(2)];
                    let t1 = &mut t1[..l_in / 2];
                    deinterleave2(src, t0, t1);
                    deinterleave2(t0, &mut e[..t0.len().div_ceil(2)], &mut e2[..t0.len() / 2]);
                    deinterleave2(t1, &mut o[..t1.len().div_ceil(2)], &mut o2[..t1.len() / 2]);
                }
            }
        }
        for (k, row) in rows_buf.chunks_exact_mut(l_pad).enumerate() {
            let (c, tap) = (k / self.kernel, k % self.kernel);
            let row = &mut row[..l_out];
            if self.stride == 1 {
                row.copy_from_slice(&input_q[c * l_in + tap..][..l_out]);
            } else if phased {
                let (r, a) = (tap % self.stride, tap / self.stride);
                row.copy_from_slice(&phases[(c * self.stride + r) * lp + a..][..l_out]);
            } else {
                let src = &input_q[c * l_in + tap..];
                for (x, &s) in row.iter_mut().zip(src.iter().step_by(self.stride)) {
                    *x = s;
                }
            }
        }
        acc.clear();
        acc.resize(self.out_channels * l_pad, 0);
        for (oc, row) in acc.chunks_mut(l_pad).enumerate() {
            row.fill(self.bias_q[oc]);
        }
        gemm_i8_cols(
            acc,
            l_pad,
            &self.weight_wide,
            ick,
            cols,
            self.out_channels,
            ick,
            l_pad,
        );
        out_q.clear();
        out_q.resize(self.out_channels * l_out, 0);
        for oc in 0..self.out_channels {
            // ReLU folds into the requantizer's lower clamp (symmetric
            // scales put the zero point at code 0).
            requant_relu(
                &mut out_q[oc * l_out..][..l_out],
                &acc[oc * l_pad..][..l_out],
                self.requant[oc],
                AMAX,
            );
        }
    }

    /// Scalar reference forward: naive loops, same quantization math.
    /// Integer accumulation is exact, so this must equal [`Self::forward`]
    /// bit for bit — the differential-test oracle.
    pub fn reference_forward(&self, input_q: &[i16], l_in: usize) -> Vec<i16> {
        let l_out = self.l_out(l_in);
        let mut out = vec![0i16; self.out_channels * l_out];
        for oc in 0..self.out_channels {
            for ol in 0..l_out {
                let mut acc = self.bias_q[oc];
                for ic in 0..self.in_channels {
                    for kk in 0..self.kernel {
                        let w = self.weight
                            [(oc * self.in_channels + ic) * self.kernel + kk];
                        let x = input_q[ic * l_in + ol * self.stride + kk];
                        acc += i32::from(w) * i32::from(x);
                    }
                }
                out[oc * l_out + ol] =
                    ((acc as f32 * self.requant[oc]).clamp(0.0, AMAX) + 0.5) as i16;
            }
        }
        out
    }
}

/// The quantized final `Dense` layer, with the trailing non-affine
/// `BatchNorm1d` folded into its weights and bias; dequantizes to f32.
#[derive(Debug, Clone)]
pub struct QuantizedDense {
    in_features: usize,
    out_features: usize,
    /// `[of][if]`, batch-norm already folded.
    weight: Vec<i8>,
    weight_wide: Vec<i16>,
    weight_scale: Vec<f32>,
    /// f32 output bias: folded batch-norm shift plus calibration bias
    /// correction (and any seed-level nudge applied by the caller).
    bias: Vec<f32>,
    in_scale: f32,
    /// Derived per-channel dequantizer: `in_scale · w_scale`.
    dequant: Vec<f32>,
}

impl QuantizedDense {
    fn new(
        in_features: usize,
        out_features: usize,
        weight: Vec<i8>,
        weight_scale: Vec<f32>,
        bias: Vec<f32>,
        in_scale: f32,
    ) -> QuantizedDense {
        let weight_wide = weight.iter().map(|&w| i16::from(w)).collect();
        let dequant = weight_scale.iter().map(|&ws| in_scale * ws).collect();
        QuantizedDense {
            in_features,
            out_features,
            weight,
            weight_wide,
            weight_scale,
            bias,
            in_scale,
            dequant,
        }
    }

    /// `(in_features, out_features)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.in_features, self.out_features)
    }

    /// Raw codec fields: `(weight_i8, weight_scale, bias, in_scale)`.
    pub fn codec_fields(&self) -> (&[i8], &[f32], &[f32], f32) {
        (&self.weight, &self.weight_scale, &self.bias, self.in_scale)
    }

    /// Quantized forward over one sample: `input_q` holds `in_features`
    /// 15-bit activation codes; returns the f32 output vector.
    pub fn forward(&self, input_q: &[i16], acc: &mut Vec<i32>) -> Vec<f32> {
        acc.clear();
        acc.resize(self.out_features, 0);
        gemm_i8(
            acc,
            self.out_features,
            input_q,
            self.in_features,
            &self.weight_wide,
            self.in_features,
            1,
            self.in_features,
            self.out_features,
        );
        acc.iter()
            .enumerate()
            .map(|(o, &a)| a as f32 * self.dequant[o] + self.bias[o])
            .collect()
    }

    /// Scalar reference forward; see [`QuantizedConv1d::reference_forward`].
    pub fn reference_forward(&self, input_q: &[i16]) -> Vec<f32> {
        (0..self.out_features)
            .map(|o| {
                let mut acc = 0i32;
                for i in 0..self.in_features {
                    acc += i32::from(self.weight[o * self.in_features + i])
                        * i32::from(input_q[i]);
                }
                acc as f32 * self.dequant[o] + self.bias[o]
            })
            .collect()
    }
}

/// A fully quantized encoder: conv stages, then the dense head.
///
/// Built from a trained f32 [`Sequential`] with
/// [`QuantizedSequential::from_sequential`]; runs inference-only forwards
/// (`[n, C, L] → [n, out]`) entirely on int8 values.
#[derive(Debug, Clone)]
pub struct QuantizedSequential {
    convs: Vec<QuantizedConv1d>,
    dense: QuantizedDense,
    // Reused scratch: the per-session hot path must not churn the
    // allocator (the PR 4 jitter lesson).
    scratch_in: Vec<i16>,
    scratch_out: Vec<i16>,
    scratch_cols: Vec<i16>,
    scratch_acc: Vec<i32>,
}

// Scratch buffers are working state, not identity.
impl PartialEq for QuantizedSequential {
    fn eq(&self, other: &QuantizedSequential) -> bool {
        self.convs.len() == other.convs.len()
            && self
                .convs
                .iter()
                .zip(&other.convs)
                .all(|(a, b)| a.codec_fields() == b.codec_fields() && a.dims() == b.dims())
            && self.dense.codec_fields() == other.dense.codec_fields()
            && self.dense.dims() == other.dense.dims()
    }
}

impl QuantizedSequential {
    /// Rebuilds from codec parts (the version-2 decoder in
    /// [`crate::net`]).
    pub fn from_parts(
        convs: Vec<QuantizedConv1d>,
        dense: QuantizedDense,
    ) -> QuantizedSequential {
        QuantizedSequential {
            convs,
            dense,
            scratch_in: Vec::new(),
            scratch_out: Vec::new(),
            scratch_cols: Vec::new(),
            scratch_acc: Vec::new(),
        }
    }

    /// Assembles a conv layer for the codec.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_from_parts(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        weight: Vec<i8>,
        weight_scale: Vec<f32>,
        bias_q: Vec<i32>,
        in_scale: f32,
        out_scale: f32,
    ) -> QuantizedConv1d {
        QuantizedConv1d::new(
            in_channels,
            out_channels,
            kernel,
            stride,
            weight,
            weight_scale,
            bias_q,
            in_scale,
            out_scale,
        )
    }

    /// Assembles the dense head for the codec.
    pub fn dense_from_parts(
        in_features: usize,
        out_features: usize,
        weight: Vec<i8>,
        weight_scale: Vec<f32>,
        bias: Vec<f32>,
        in_scale: f32,
    ) -> QuantizedDense {
        QuantizedDense::new(in_features, out_features, weight, weight_scale, bias, in_scale)
    }

    /// The conv stages.
    pub fn convs(&self) -> &[QuantizedConv1d] {
        &self.convs
    }

    /// The dense head.
    pub fn dense(&self) -> &QuantizedDense {
        &self.dense
    }

    /// Output width of the dense head.
    pub fn out_features(&self) -> usize {
        self.dense.out_features
    }

    /// The dense head's f32 output bias, mutably: `wavekey-core`'s
    /// seed-equivalence calibration nudges these per channel (within the
    /// latent quantizer's bin margins) so the quantized encoder lands in
    /// the same key-seed bins as the f32 path on the reference corpus.
    pub fn output_bias_mut(&mut self) -> &mut [f32] {
        &mut self.dense.bias
    }

    /// Quantizes a trained encoder-shaped network against a calibration
    /// corpus of representative inputs.
    ///
    /// The supported stack is `[Conv1d(p=0), ReLU]+ Flatten Dense`
    /// optionally followed by a non-affine `BatchNorm1d` (folded into the
    /// dense weights/bias). Weight scales are symmetric per output
    /// channel; activation scales come from the corpus max; the dense
    /// bias additionally absorbs the mean f32-vs-quantized output gap per
    /// channel (bias correction).
    ///
    /// # Errors
    ///
    /// [`QuantizeError::UnsupportedArchitecture`] for any other layer
    /// stack (callers fall back to the f32 path);
    /// [`QuantizeError::EmptyCalibration`] when `calib` is empty.
    pub fn from_sequential(
        net: &mut Sequential,
        calib: &[Tensor],
    ) -> Result<QuantizedSequential, QuantizeError> {
        if calib.is_empty() {
            return Err(QuantizeError::EmptyCalibration);
        }
        let plan = EncoderPlan::of(net)?;

        // --- calibration pass: per-stage activation ranges, f32 outputs,
        // and the exact f32 *input* of every stage per corpus sample
        // (`stage_inputs[s]`; index `plan.convs.len()` is the dense
        // input). The f32 activations are the rounding targets below.
        let mut in_max = 0f32;
        let mut conv_out_max = vec![0f32; plan.convs.len()];
        let mut f32_outputs: Vec<Vec<f32>> = Vec::with_capacity(calib.len());
        let mut stage_inputs: Vec<Vec<Vec<f32>>> = vec![Vec::new(); plan.convs.len() + 1];
        let mut l0 = 0usize;
        for input in calib {
            for &v in input.data() {
                in_max = in_max.max(v.abs());
            }
            let (shape, batch) = match input.ndim() {
                2 => (input.shape().to_vec(), 1),
                _ => (input.shape()[1..].to_vec(), input.shape()[0]),
            };
            l0 = shape[1];
            let per = shape[0] * shape[1];
            for s in 0..batch {
                stage_inputs[0].push(input.data()[s * per..][..per].to_vec());
            }
            let mut x = input.clone();
            let mut conv_idx = 0usize;
            for layer in net.layers_mut() {
                x = layer.forward(&x, false);
                if matches!(layer, LayerBox::ReLU(_)) {
                    for &v in x.data() {
                        conv_out_max[conv_idx] = conv_out_max[conv_idx].max(v.abs());
                    }
                    conv_idx += 1;
                    let per = x.data().len() / x.shape()[0];
                    for s in 0..x.shape()[0] {
                        stage_inputs[conv_idx].push(x.data()[s * per..][..per].to_vec());
                    }
                }
            }
            for sample in 0..x.shape()[0] {
                let w = x.shape()[1];
                f32_outputs.push(x.data()[sample * w..][..w].to_vec());
            }
        }

        // --- quantize stage by stage, advancing the corpus through each
        // quantized stage so every layer's rounding is chosen against the
        // integer codes it will actually see at inference time — and
        // against the *accumulated* deviation from the f32 activations,
        // so each stage's rounding also cancels upstream requantization
        // and rounding error where the corpus lets it.
        let mut in_scale = scale_for(in_max);
        let mut codes: Vec<Vec<i16>> = stage_inputs[0]
            .iter()
            .map(|x| x.iter().map(|&v| quantize_value(v, 1.0 / in_scale)).collect())
            .collect();
        let mut l_cur = l0;
        let mut convs = Vec::with_capacity(plan.convs.len());
        for (stage, conv) in plan.convs.iter().enumerate() {
            let out_scale = scale_for(conv_out_max[stage]);
            let ick = conv.in_channels * conv.kernel;
            let l_out = (l_cur - conv.kernel) / conv.stride + 1;
            // Calibration activations, im2row'd across the whole corpus:
            // row k holds tap k of every (sample, output position) — the
            // integer codes the quantized stage consumes, and (in `dacts`,
            // code units) their deviation from the true f32 activations.
            let total = codes.len() * l_out;
            let mut acts = vec![0i32; ick * total];
            let mut dacts = vec![0f64; ick * total];
            let inv = f64::from(in_scale);
            for (s, (sample, xf)) in codes.iter().zip(&stage_inputs[stage]).enumerate() {
                for k in 0..ick {
                    let base = (k / conv.kernel) * l_cur + k % conv.kernel;
                    let dst = s * l_out;
                    for j in 0..l_out {
                        let code = i32::from(sample[base + j * conv.stride]);
                        acts[k * total + dst + j] = code;
                        dacts[k * total + dst + j] =
                            f64::from(code) - f64::from(xf[base + j * conv.stride]) / inv;
                    }
                }
            }
            let mut weight = vec![0i8; conv.out_channels * ick];
            let mut weight_scale = vec![0f32; conv.out_channels];
            let mut bias_q = vec![0i32; conv.out_channels];
            for oc in 0..conv.out_channels {
                let row = &conv.weight[oc * ick..][..ick];
                let ws = channel_scale(row);
                weight_scale[oc] = ws;
                bias_q[oc] = (conv.bias[oc] / (in_scale * ws)).round() as i32;
                let bias_err = f64::from(bias_q[oc]) * f64::from(ws)
                    - f64::from(conv.bias[oc]) / inv;
                weight[oc * ick..][..ick].copy_from_slice(&round_to_corpus(
                    row, ws, &acts, &dacts, total, bias_err, 0,
                ));
            }
            convs.push(QuantizedConv1d::new(
                conv.in_channels,
                conv.out_channels,
                conv.kernel,
                conv.stride,
                weight,
                weight_scale,
                bias_q,
                in_scale,
                out_scale,
            ));
            let stage_conv = convs.last().expect("just pushed");
            let (mut sc, mut sa) = (Vec::new(), Vec::new());
            codes = codes
                .iter()
                .map(|sample| {
                    let mut out = Vec::new();
                    stage_conv.forward(sample, l_cur, &mut sc, &mut sa, &mut out);
                    out
                })
                .collect();
            l_cur = l_out;
            in_scale = out_scale;
        }

        // Dense head with the batch-norm fold:
        // y = (Σ w·x + b − μ)·istd  ⇒  w′ = w·istd, b′ = (b − μ)·istd.
        // `codes` now holds the dense inputs ([oc][l_out] flattens
        // row-major to exactly the dense feature order). With far more
        // weights than corpus samples, this stage's rounding absorbs
        // nearly all accumulated upstream deviation on the corpus.
        let (inf, of) = (plan.dense_in, plan.dense_out);
        let total = codes.len();
        let mut acts = vec![0i32; inf * total];
        let mut dacts = vec![0f64; inf * total];
        let inv = f64::from(in_scale);
        let n_convs = plan.convs.len();
        for (s, (sample, xf)) in codes.iter().zip(&stage_inputs[n_convs]).enumerate() {
            for (i, &v) in sample.iter().enumerate() {
                acts[i * total + s] = i32::from(v);
                dacts[i * total + s] = f64::from(v) - f64::from(xf[i]) / inv;
            }
        }
        let mut weight = vec![0i8; of * inf];
        let mut weight_scale = vec![0f32; of];
        let mut bias = vec![0f32; of];
        let mut folded = vec![0f32; inf];
        for o in 0..of {
            let istd = plan.fold_istd[o];
            for (fw, &w) in folded.iter_mut().zip(&plan.dense_weight[o * inf..][..inf]) {
                *fw = w * istd;
            }
            let ws = channel_scale(&folded);
            weight_scale[o] = ws;
            // 8 peak sweeps: the latent head is where flat per-sample
            // residuals decide seed equivalence (see `round_to_corpus`).
            weight[o * inf..][..inf].copy_from_slice(&round_to_corpus(
                &folded, ws, &acts, &dacts, total, 0.0, 8,
            ));
            bias[o] = (plan.dense_bias[o] - plan.fold_mean[o]) * istd;
        }
        let dense = QuantizedDense::new(inf, of, weight, weight_scale, bias, in_scale);
        let mut quantized = QuantizedSequential::from_parts(convs, dense);

        // --- bias correction: absorb the mean per-channel latent gap.
        let mut gap = vec![0f64; of];
        let mut count = 0usize;
        for (input, _) in calib.iter().zip(0..) {
            let out = quantized.forward(input);
            for sample in 0..out.shape()[0] {
                let q = &out.data()[sample * of..][..of];
                let f = &f32_outputs[count];
                for (g, (&fv, &qv)) in gap.iter_mut().zip(f.iter().zip(q)) {
                    *g += f64::from(fv) - f64::from(qv);
                }
                count += 1;
            }
        }
        for (b, g) in quantized.dense.bias.iter_mut().zip(&gap) {
            *b += (g / count as f64) as f32;
        }
        Ok(quantized)
    }

    /// Quantized inference forward: `[n, C, L] → [n, out]` (also accepts
    /// a single `[C, L]` sample, returning `[1, out]`).
    ///
    /// # Panics
    ///
    /// Panics when the input geometry does not match the first conv.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let (shape, batch) = match input.ndim() {
            2 => (input.shape().to_vec(), 1),
            _ => (input.shape()[1..].to_vec(), input.shape()[0]),
        };
        let (channels, l0) = (shape[0], shape[1]);
        assert_eq!(channels, self.convs[0].in_channels, "input channel mismatch");
        let of = self.dense.out_features;
        let mut out = Tensor::zeros(vec![batch, of]);
        let per_sample = channels * l0;
        for n in 0..batch {
            let x = &input.data()[n * per_sample..][..per_sample];
            // Quantize the input once into 15-bit codes (vectorized;
            // bit-identical to the scalar `quantize_value`).
            quantize_codes(&mut self.scratch_in, x, self.convs[0].in_inv, AMAX);

            let mut l_in = l0;
            for (stage, conv) in self.convs.iter().enumerate() {
                if stage > 0 {
                    std::mem::swap(&mut self.scratch_in, &mut self.scratch_out);
                }
                conv.forward(
                    &self.scratch_in,
                    l_in,
                    &mut self.scratch_cols,
                    &mut self.scratch_acc,
                    &mut self.scratch_out,
                );
                l_in = conv.l_out(l_in);
            }
            // [oc][l_out] flattens row-major to exactly the dense input.
            let latent = self.dense.forward(&self.scratch_out, &mut self.scratch_acc);
            out.data_mut()[n * of..][..of].copy_from_slice(&latent);
        }
        out
    }

    /// Scalar-reference forward of the whole network: same quantization
    /// math, naive loops. Bit-identical to [`Self::forward`] because all
    /// integer accumulation is exact — the network-level differential
    /// oracle.
    pub fn reference_forward(&self, input: &Tensor) -> Tensor {
        let (shape, batch) = match input.ndim() {
            2 => (input.shape().to_vec(), 1),
            _ => (input.shape()[1..].to_vec(), input.shape()[0]),
        };
        let (channels, l0) = (shape[0], shape[1]);
        let of = self.dense.out_features;
        let mut out = Tensor::zeros(vec![batch, of]);
        let per_sample = channels * l0;
        for n in 0..batch {
            let x = &input.data()[n * per_sample..][..per_sample];
            let inv = self.convs[0].in_inv;
            let mut q: Vec<i16> = x.iter().map(|&v| quantize_value(v, inv)).collect();
            let mut l_in = l0;
            for conv in &self.convs {
                q = conv.reference_forward(&q, l_in);
                l_in = conv.l_out(l_in);
            }
            let latent = self.dense.reference_forward(&q);
            out.data_mut()[n * of..][..of].copy_from_slice(&latent);
        }
        out
    }
}

/// Corpus-aware weight rounding (error diffusion).
///
/// Nearest rounding leaves each weight a residual `r = q·ws − w` whose
/// corpus projection `Σ_k r_k · x_k(t)` is *input-dependent* — a bias
/// nudge cannot absorb it, and over a 752-wide reduction it reaches
/// ~1e-2 of a unit-variance latent, enough to cross the key quantizer's
/// narrow equiprobable bins somewhere on any realistic corpus. But
/// rounding direction is a free choice: this picks floor vs ceil per
/// weight to minimize the *total* deviation of the quantized stage
/// output from the true f32 output over the calibration corpus —
/// seeded with the propagated upstream deviation
/// `err₀(t) = Σ_k w_k · dacts_k(t) + bias_err` (`dacts`: code minus
/// f32-activation-in-code-units per tap), so a stage with enough
/// weights also cancels requantization and rounding noise from earlier
/// stages. Greedy error diffusion plus refinement sweeps; the result
/// stays on the same i8 grid — within one code of nearest — so the
/// codec, model size, and overflow bounds are untouched; ties (e.g.
/// unseen taps) fall back to nearest rounding.
///
/// `peak_sweeps` adds iteratively-reweighted refinement passes that
/// weight each calibration sample by its squared residual (≈ an L⁴
/// objective): total deviation is traded for *flat* per-sample
/// deviation. The final stage wants this — the seed-equivalence bias
/// nudge downstream must fit every sample's residual inside one
/// key-quantizer bin, so the worst sample, not the sum, decides whether
/// a whole latent channel calibrates. Interior stages pass 0: their
/// residuals are absorbed by later stages' rounding, where flatness
/// buys nothing.
fn round_to_corpus(
    row: &[f32],
    ws: f32,
    acts: &[i32],
    dacts: &[f64],
    total: usize,
    bias_err: f64,
    peak_sweeps: usize,
) -> Vec<i8> {
    const SWEEPS: usize = 3;
    let kd = row.len();
    debug_assert_eq!(acts.len(), kd * total);
    let wsf = f64::from(ws);
    let mut q = vec![0i8; kd];
    let mut delta = vec![0f64; kd];
    // Deviation per calibration activation, in f32 output units divided
    // by the (constant) input scale: starts at the propagated upstream
    // error, accumulates this stage's rounding residuals.
    let mut err = vec![bias_err; total];
    for (k, &w) in row.iter().enumerate() {
        let wf = f64::from(w);
        let d = &dacts[k * total..][..total];
        for (e, &dv) in err.iter_mut().zip(d) {
            *e += wf * dv;
        }
    }
    for sweep in 0..SWEEPS {
        for k in 0..kd {
            let x = &acts[k * total..][..total];
            if sweep > 0 {
                let d = delta[k];
                for (e, &xv) in err.iter_mut().zip(x) {
                    *e -= d * f64::from(xv);
                }
            }
            let w = f64::from(row[k]);
            let t = w / wsf;
            let near = t.round().clamp(-127.0, 127.0);
            let other = if near >= t { near - 1.0 } else { near + 1.0 }
                .clamp(-127.0, 127.0);
            let (mut g, mut h) = (0f64, 0f64);
            for (e, &xv) in err.iter().zip(x) {
                let xf = f64::from(xv);
                g += *e * xf;
                h += xf * xf;
            }
            // ‖err + d·x‖² − ‖err‖² = 2·d·⟨err,x⟩ + d²·‖x‖², per candidate.
            let cost = |cand: f64| {
                let d = cand * wsf - w;
                2.0 * d * g + d * d * h
            };
            // Strict `<` keeps nearest rounding on ties.
            let best = if cost(other) < cost(near) { other } else { near };
            let d = best * wsf - w;
            for (e, &xv) in err.iter_mut().zip(x) {
                *e += d * f64::from(xv);
            }
            delta[k] = d;
            q[k] = best as i8;
        }
    }
    // Peak-flattening: reweight samples by squared residual and re-sweep.
    // The mean-gap component of the residual is free downstream (the bias
    // nudge removes it), so weights are centred residuals.
    let mut u = vec![0f64; total];
    for _ in 0..peak_sweeps {
        let mean = err.iter().sum::<f64>() / total as f64;
        let var = err.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / total as f64;
        if var <= 0.0 {
            break;
        }
        for (uv, &e) in u.iter_mut().zip(&err) {
            // Base L2 pressure on every sample plus extra on outliers —
            // a bare squared-residual weight (true L⁴ IRLS) overshoots:
            // it all but ignores the well-fit bulk of the corpus and
            // mints new peaks there.
            *uv = 1.0 + (e - mean) * (e - mean) / var;
        }
        for k in 0..kd {
            let x = &acts[k * total..][..total];
            let d = delta[k];
            for (e, &xv) in err.iter_mut().zip(x) {
                *e -= d * f64::from(xv);
            }
            let w = f64::from(row[k]);
            let t = w / wsf;
            let near = t.round().clamp(-127.0, 127.0);
            let other = if near >= t { near - 1.0 } else { near + 1.0 }
                .clamp(-127.0, 127.0);
            let (mut g, mut h) = (0f64, 0f64);
            for ((e, &xv), &uv) in err.iter().zip(x).zip(&u) {
                let xf = f64::from(xv);
                g += uv * *e * xf;
                h += uv * xf * xf;
            }
            let cost = |cand: f64| {
                let d = cand * wsf - w;
                2.0 * d * g + d * d * h
            };
            let best = if cost(other) < cost(near) { other } else { near };
            let d = best * wsf - w;
            for (e, &xv) in err.iter_mut().zip(x) {
                *e += d * f64::from(xv);
            }
            delta[k] = d;
            q[k] = best as i8;
        }
    }
    q
}

/// Per-output-channel symmetric scale, guarded for all-zero channels.
fn channel_scale(values: &[f32]) -> f32 {
    let max = values.iter().fold(0f32, |m, &v| m.max(v.abs()));
    if max > 0.0 {
        max / QMAX
    } else {
        1.0
    }
}

/// Activation scale from a calibrated range maximum (15-bit grid).
fn scale_for(max: f32) -> f32 {
    if max > 0.0 {
        max / AMAX
    } else {
        1.0
    }
}

/// The f32 pieces `from_sequential` extracts from a supported stack.
struct EncoderPlan {
    convs: Vec<PlanConv>,
    dense_weight: Vec<f32>,
    dense_bias: Vec<f32>,
    dense_in: usize,
    dense_out: usize,
    /// Batch-norm fold factors (identity when no trailing BN).
    fold_mean: Vec<f32>,
    fold_istd: Vec<f32>,
}

struct PlanConv {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    weight: Vec<f32>,
    bias: Vec<f32>,
}

impl EncoderPlan {
    fn of(net: &Sequential) -> Result<EncoderPlan, QuantizeError> {
        let unsupported =
            |what: &str| Err(QuantizeError::UnsupportedArchitecture(what.to_string()));
        let layers = net.layers();
        let mut idx = 0usize;
        let mut convs = Vec::new();
        while let Some(LayerBox::Conv1d(c)) = layers.get(idx) {
            let (ic, oc, k, s, p) = c.dims();
            if p != 0 {
                return unsupported("padded convolution");
            }
            if !matches!(layers.get(idx + 1), Some(LayerBox::ReLU(_))) {
                return unsupported("convolution without a following ReLU");
            }
            convs.push(PlanConv {
                in_channels: ic,
                out_channels: oc,
                kernel: k,
                stride: s,
                weight: c.weight.value.data().to_vec(),
                bias: c.bias.value.data().to_vec(),
            });
            idx += 2;
        }
        if convs.is_empty() {
            return unsupported("no leading Conv1d+ReLU stage");
        }
        if !matches!(layers.get(idx), Some(LayerBox::Flatten(_))) {
            return unsupported("expected Flatten before the dense head");
        }
        idx += 1;
        let Some(LayerBox::Dense(d)) = layers.get(idx) else {
            return unsupported("expected a Dense head");
        };
        let (dense_in, dense_out) = d.dims();
        let dense_weight = d.weight.value.data().to_vec();
        let dense_bias = d.bias.value.data().to_vec();
        idx += 1;
        let (fold_mean, fold_istd) = match layers.get(idx) {
            None => (vec![0f32; dense_out], vec![1f32; dense_out]),
            Some(LayerBox::BatchNorm1d(bn)) => {
                if bn.is_affine() {
                    return unsupported("affine batch-norm head");
                }
                if bn.features() != dense_out {
                    return unsupported("batch-norm width mismatch");
                }
                idx += 1;
                let istd: Vec<f32> = bn
                    .running_var
                    .iter()
                    .map(|&v| 1.0 / (v + bn.eps()).sqrt())
                    .collect();
                (bn.running_mean.clone(), istd)
            }
            Some(_) => return unsupported("unexpected layer after the dense head"),
        };
        if idx != layers.len() {
            return unsupported("trailing layers after the encoder head");
        }
        Ok(EncoderPlan {
            convs,
            dense_weight,
            dense_bias,
            dense_in,
            dense_out,
            fold_mean,
            fold_istd,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{BatchNorm1d, Conv1d, ConvTranspose1d, Dense, Flatten, ReLU};

    /// Deterministic pseudo-random f32s in [-1, 1).
    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
            })
            .collect()
    }

    fn encoder_net(l_in: usize, l_f: usize, seed: u64) -> Sequential {
        let mut net = Sequential::new();
        net.push(Conv1d::with_stride(3, 8, 7, 2, 0, seed));
        net.push(ReLU::new());
        net.push(Conv1d::with_stride(8, 16, 5, 2, 0, seed.wrapping_add(1)));
        net.push(ReLU::new());
        net.push(Flatten::new());
        let l1 = (l_in - 7) / 2 + 1;
        let l2 = (l1 - 5) / 2 + 1;
        net.push(Dense::new(16 * l2, l_f, seed.wrapping_add(2)));
        net.push(BatchNorm1d::new(l_f, false));
        net
    }

    fn calib_inputs(l_in: usize, count: usize, seed: u64) -> Vec<Tensor> {
        (0..count)
            .map(|i| {
                Tensor::from_vec(pseudo(seed + i as u64, 3 * l_in), vec![1, 3, l_in])
            })
            .collect()
    }

    #[test]
    fn kernel_forward_matches_scalar_reference_exhaustively() {
        // Seeded-exhaustive differential over conv geometries including
        // the production encoder stages; integer accumulation must make
        // the tiled kernel and the naive loops bit-identical.
        for &(ic, oc, k, s, l_in, seed) in &[
            (1usize, 1usize, 1usize, 1usize, 1usize, 1u64),
            (3, 8, 7, 2, 200, 2),
            (8, 16, 5, 2, 97, 3),
            (3, 8, 9, 4, 400, 4),
            (2, 5, 3, 1, 17, 5),
            (4, 3, 2, 2, 9, 6),
        ] {
            let ick = ic * k;
            let weight: Vec<i8> = pseudo(seed, oc * ick)
                .iter()
                .map(|v| (v * 127.0) as i8)
                .collect();
            let conv = QuantizedConv1d::new(
                ic,
                oc,
                k,
                s,
                weight,
                vec![0.01; oc],
                (0..oc as i32).map(|i| i * 3 - 7).collect(),
                0.02,
                0.03,
            );
            let input: Vec<i16> = pseudo(seed ^ 0xFF, ic * l_in)
                .iter()
                .map(|v| (v * 16383.0) as i16)
                .collect();
            let (mut cols, mut acc, mut out) = (Vec::new(), Vec::new(), Vec::new());
            conv.forward(&input, l_in, &mut cols, &mut acc, &mut out);
            let reference = conv.reference_forward(&input, l_in);
            assert_eq!(out, reference, "conv ({ic},{oc},k{k},s{s},l{l_in})");
        }
    }

    #[test]
    fn dense_forward_matches_scalar_reference() {
        for &(inf, of, seed) in &[(752usize, 12usize, 1u64), (40, 7, 2), (8, 1, 3)] {
            let weight: Vec<i8> =
                pseudo(seed, of * inf).iter().map(|v| (v * 127.0) as i8).collect();
            let dense = QuantizedDense::new(
                inf,
                of,
                weight,
                pseudo(seed + 9, of).iter().map(|v| v.abs() * 0.01 + 1e-4).collect(),
                pseudo(seed + 10, of),
                0.015,
            );
            let input: Vec<i16> =
                pseudo(seed ^ 0xAB, inf).iter().map(|v| (v * 16383.0) as i16).collect();
            let mut acc = Vec::new();
            let fast = dense.forward(&input, &mut acc);
            assert_eq!(fast, dense.reference_forward(&input), "dense ({inf},{of})");
        }
    }

    #[test]
    fn requantize_clamps_and_rounds_half_away() {
        let conv = QuantizedConv1d::new(
            1,
            1,
            1,
            1,
            vec![100],
            vec![1.0],
            vec![0],
            1.0,
            // requant multiplier = 1·1/200 = 0.005
            200.0,
        );
        let (mut cols, mut acc, mut out) = (Vec::new(), Vec::new(), Vec::new());
        // acc = 100·x; 100·100·0.005 = 50; 100·127·0.005 = 63.5 → 64 (half
        // away from zero); negative pre-activations clamp to 0 (ReLU);
        // huge values clamp to the 15-bit activation ceiling.
        for (x, expect) in [(100i16, 50i16), (127, 64), (-50, 0), (127, 64)] {
            conv.forward(&[x], 1, &mut cols, &mut acc, &mut out);
            assert_eq!(out, vec![expect], "x = {x}");
        }
        let wide = QuantizedConv1d::new(1, 1, 1, 1, vec![127], vec![1.0], vec![0], 1.0, 0.5);
        // acc = 127·16383 = 2_080_641; ·2 = 4_161_282 → clamps to 16383.
        wide.forward(&[16383], 1, &mut cols, &mut acc, &mut out);
        assert_eq!(out, vec![16383], "upper clamp");
    }

    #[test]
    fn whole_network_forward_matches_scalar_reference() {
        let mut net = encoder_net(64, 6, 77);
        let calib = calib_inputs(64, 8, 1000);
        let mut q = QuantizedSequential::from_sequential(&mut net, &calib).unwrap();
        for input in &calib {
            let fast = q.forward(input);
            let reference = q.reference_forward(input);
            assert_eq!(fast.data(), reference.data());
        }
    }

    #[test]
    fn quantized_forward_tracks_f32_closely_after_calibration() {
        let mut net = encoder_net(64, 6, 123);
        let calib = calib_inputs(64, 16, 2000);
        let mut q = QuantizedSequential::from_sequential(&mut net, &calib).unwrap();
        let mut worst = 0f32;
        for input in &calib {
            let f = net.forward(input, false);
            let qv = q.forward(input);
            for (a, b) in f.data().iter().zip(qv.data()) {
                worst = worst.max((a - b).abs());
            }
        }
        // Random-init latents here have O(0.1) spread; 15-bit activations
        // keep the quantized path within a small fraction of a percent —
        // the margin that lets key-seed bins survive quantization.
        assert!(worst < 0.005, "quantized latent deviation {worst}");
    }

    #[test]
    fn batch_and_single_sample_forwards_agree() {
        let mut net = encoder_net(32, 4, 9);
        let calib = calib_inputs(32, 4, 44);
        let mut q = QuantizedSequential::from_sequential(&mut net, &calib).unwrap();
        let batch = Tensor::from_vec(
            calib.iter().flat_map(|t| t.data().to_vec()).collect(),
            vec![4, 3, 32],
        );
        let all = q.forward(&batch);
        for (i, input) in calib.iter().enumerate() {
            let one = q.forward(input);
            assert_eq!(&all.data()[i * 4..][..4], one.data());
        }
    }

    #[test]
    fn rejects_unsupported_architectures() {
        let calib = calib_inputs(32, 2, 5);
        // Padded conv.
        let mut padded = Sequential::new();
        padded.push(Conv1d::with_stride(3, 4, 3, 1, 1, 1));
        padded.push(ReLU::new());
        padded.push(Flatten::new());
        padded.push(Dense::new(4 * 32, 2, 2));
        assert!(matches!(
            QuantizedSequential::from_sequential(&mut padded, &calib),
            Err(QuantizeError::UnsupportedArchitecture(_))
        ));
        // Decoder-style net (deconv) is not quantizable.
        let mut deconv = Sequential::new();
        deconv.push(ConvTranspose1d::new(3, 4, 4, 2, 3));
        assert!(matches!(
            QuantizedSequential::from_sequential(&mut deconv, &calib),
            Err(QuantizeError::UnsupportedArchitecture(_))
        ));
        // Affine batch-norm head.
        let mut affine = Sequential::new();
        affine.push(Conv1d::with_stride(3, 4, 3, 1, 0, 1));
        affine.push(ReLU::new());
        affine.push(Flatten::new());
        affine.push(Dense::new(4 * 30, 2, 2));
        affine.push(BatchNorm1d::new(2, true));
        assert!(matches!(
            QuantizedSequential::from_sequential(&mut affine, &calib),
            Err(QuantizeError::UnsupportedArchitecture(_))
        ));
        // Empty calibration corpus.
        let mut ok = encoder_net(32, 4, 6);
        assert_eq!(
            QuantizedSequential::from_sequential(&mut ok, &[]).unwrap_err(),
            QuantizeError::EmptyCalibration
        );
    }

    #[test]
    fn output_bias_nudge_shifts_the_latent() {
        let mut net = encoder_net(32, 4, 11);
        let calib = calib_inputs(32, 2, 7);
        let mut q = QuantizedSequential::from_sequential(&mut net, &calib).unwrap();
        let before = q.forward(&calib[0]);
        q.output_bias_mut()[2] += 0.25;
        let after = q.forward(&calib[0]);
        assert!((after.data()[2] - before.data()[2] - 0.25).abs() < 1e-6);
        assert_eq!(before.data()[0], after.data()[0]);
    }
}
