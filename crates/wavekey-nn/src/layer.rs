//! Neural-network layers with hand-derived backward passes.
//!
//! The WaveKey encoders (Fig. 5 of the paper) are built from `Conv1d` +
//! `ReLU` stacks followed by a `Dense` layer and a final `BatchNorm1d`;
//! the decoder uses `ConvTranspose1d` and `Dense` layers. Each layer caches
//! whatever it needs during `forward` so that `backward` can compute both
//! parameter gradients and the gradient with respect to its input.
//!
//! The convolution and dense layers dispatch their compute through the
//! process-global [`crate::gemm::KernelBackend`] switch: the default
//! [`crate::lowering`] path lowers to the blocked GEMM kernel; the
//! [`crate::reference`] path runs the original naive loops. Both produce
//! numerically identical (`==`) results — see `DESIGN.md` §10.

use crate::gemm::{kernel_backend, KernelBackend};
use crate::init;
use crate::tensor::Tensor;
use crate::{lowering, reference};

/// A trainable parameter: its value and the gradient accumulated by the
/// most recent backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss with respect to the value.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zero gradient of matching shape.
    pub fn new(value: Tensor) -> Param {
        let grad = Tensor::zeros(value.shape().to_vec());
        Param { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }
}

/// Common interface of all layers.
pub trait Layer: std::fmt::Debug {
    /// Runs the layer forward. `train` selects training-time behavior
    /// (batch statistics in [`BatchNorm1d`]).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_output`, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    ///
    /// Must be called after a `forward` on the same input batch.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Mutable access to the layer's trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Resets all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

/// 1-D convolution over `[batch, in_channels, length]` inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// Weight tensor `[out_channels, in_channels, kernel]`.
    pub weight: Param,
    /// Bias tensor `[out_channels]`.
    pub bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// Creates a convolution with stride 1 and zero padding.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Conv1d {
        Conv1d::with_stride(in_channels, out_channels, kernel, 1, 0, seed)
    }

    /// Creates a convolution with explicit `stride` and symmetric zero
    /// `padding`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn with_stride(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Conv1d {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0);
        let fan_in = in_channels * kernel;
        let weight = Param::new(init::he_uniform(
            vec![out_channels, in_channels, kernel],
            fan_in,
            seed,
        ));
        let bias = Param::new(Tensor::zeros(vec![out_channels]));
        Conv1d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight,
            bias,
            cached_input: None,
        }
    }

    /// Output length for an input of length `l`.
    ///
    /// # Panics
    ///
    /// Panics when the padded input is shorter than the kernel.
    pub fn output_len(&self, l: usize) -> usize {
        let padded = l + 2 * self.padding;
        assert!(padded >= self.kernel, "input too short for kernel");
        (padded - self.kernel) / self.stride + 1
    }

    /// The layer's `(in_channels, out_channels, kernel, stride, padding)`.
    pub fn dims(&self) -> (usize, usize, usize, usize, usize) {
        (self.in_channels, self.out_channels, self.kernel, self.stride, self.padding)
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.ndim(), 3, "conv1d expects [batch, channels, length]");
        assert_eq!(input.shape()[1], self.in_channels, "channel mismatch");
        let out = match kernel_backend() {
            KernelBackend::Gemm => lowering::conv1d_forward(
                input,
                &self.weight.value,
                &self.bias.value,
                self.stride,
                self.padding,
            ),
            KernelBackend::Reference => reference::conv1d_forward(
                input,
                &self.weight.value,
                &self.bias.value,
                self.stride,
                self.padding,
            ),
        };
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        match kernel_backend() {
            KernelBackend::Gemm => lowering::conv1d_backward(
                input,
                &self.weight.value,
                grad_output,
                self.stride,
                self.padding,
                &mut self.weight.grad,
                &mut self.bias.grad,
            ),
            KernelBackend::Reference => reference::conv1d_backward(
                input,
                &self.weight.value,
                grad_output,
                self.stride,
                self.padding,
                &mut self.weight.grad,
                &mut self.bias.grad,
            ),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Transposed 1-D convolution (deconvolution) used by the decoder `De`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvTranspose1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    /// Weight tensor `[in_channels, out_channels, kernel]`.
    pub weight: Param,
    /// Bias tensor `[out_channels]`.
    pub bias: Param,
    cached_input: Option<Tensor>,
}

impl ConvTranspose1d {
    /// Creates a transposed convolution.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        seed: u64,
    ) -> ConvTranspose1d {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0);
        let fan_in = in_channels * kernel;
        let weight = Param::new(init::he_uniform(
            vec![in_channels, out_channels, kernel],
            fan_in,
            seed,
        ));
        let bias = Param::new(Tensor::zeros(vec![out_channels]));
        ConvTranspose1d { in_channels, out_channels, kernel, stride, weight, bias, cached_input: None }
    }

    /// Output length for an input of length `l`: `(l−1)·stride + kernel`.
    pub fn output_len(&self, l: usize) -> usize {
        (l - 1) * self.stride + self.kernel
    }

    /// Removes input channel `idx` (used by the §VI-C-1 pruning study
    /// when the latent dimension feeding this layer shrinks).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or only one input channel remains.
    pub fn remove_in_channel(&mut self, idx: usize) {
        assert!(idx < self.in_channels, "channel index out of range");
        assert!(self.in_channels > 1, "cannot remove the last input channel");
        let per_channel = self.out_channels * self.kernel;
        let mut w = Vec::with_capacity((self.in_channels - 1) * per_channel);
        for ic in 0..self.in_channels {
            if ic == idx {
                continue;
            }
            w.extend_from_slice(
                &self.weight.value.data()[ic * per_channel..(ic + 1) * per_channel],
            );
        }
        self.in_channels -= 1;
        self.weight = Param::new(Tensor::from_vec(
            w,
            vec![self.in_channels, self.out_channels, self.kernel],
        ));
    }

    /// The layer's `(in_channels, out_channels, kernel, stride)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.in_channels, self.out_channels, self.kernel, self.stride)
    }
}

impl Layer for ConvTranspose1d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.ndim(), 3, "conv_transpose1d expects [batch, channels, length]");
        assert_eq!(input.shape()[1], self.in_channels, "channel mismatch");
        let out = match kernel_backend() {
            KernelBackend::Gemm => lowering::conv_transpose1d_forward(
                input,
                &self.weight.value,
                &self.bias.value,
                self.stride,
            ),
            KernelBackend::Reference => reference::conv_transpose1d_forward(
                input,
                &self.weight.value,
                &self.bias.value,
                self.stride,
            ),
        };
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        match kernel_backend() {
            KernelBackend::Gemm => lowering::conv_transpose1d_backward(
                input,
                &self.weight.value,
                grad_output,
                self.stride,
                &mut self.weight.grad,
                &mut self.bias.grad,
            ),
            KernelBackend::Reference => reference::conv_transpose1d_backward(
                input,
                &self.weight.value,
                grad_output,
                self.stride,
                &mut self.weight.grad,
                &mut self.bias.grad,
            ),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Fully-connected layer over `[batch, in_features]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    /// Weight tensor `[out_features, in_features]`.
    pub weight: Param,
    /// Bias tensor `[out_features]`.
    pub bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Dense {
        assert!(in_features > 0 && out_features > 0);
        let weight = Param::new(init::he_uniform(
            vec![out_features, in_features],
            in_features,
            seed,
        ));
        let bias = Param::new(Tensor::zeros(vec![out_features]));
        Dense { in_features, out_features, weight, bias, cached_input: None }
    }

    /// `(in_features, out_features)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.in_features, self.out_features)
    }

    /// Removes input feature `idx`, shrinking the layer to
    /// `in_features − 1` inputs. Used by the §VI-C-1 pruning study to keep
    /// the decoder consistent with a pruned latent dimension.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the layer has a single input.
    pub fn remove_input(&mut self, idx: usize) {
        assert!(idx < self.in_features, "input index out of range");
        assert!(self.in_features > 1, "cannot remove the last input");
        let mut w = Vec::with_capacity(self.out_features * (self.in_features - 1));
        for r in 0..self.out_features {
            for c in 0..self.in_features {
                if c == idx {
                    continue;
                }
                w.push(self.weight.value.data()[r * self.in_features + c]);
            }
        }
        self.in_features -= 1;
        self.weight = Param::new(Tensor::from_vec(w, vec![self.out_features, self.in_features]));
    }

    /// Removes output neuron `idx`, shrinking the layer to
    /// `out_features − 1` outputs. Used by the §VI-C-1 pruning study.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the layer has a single output.
    pub fn remove_output(&mut self, idx: usize) {
        assert!(idx < self.out_features, "neuron index out of range");
        assert!(self.out_features > 1, "cannot remove the last output");
        let mut w = Vec::with_capacity((self.out_features - 1) * self.in_features);
        for r in 0..self.out_features {
            if r == idx {
                continue;
            }
            w.extend_from_slice(
                &self.weight.value.data()[r * self.in_features..(r + 1) * self.in_features],
            );
        }
        let mut b: Vec<f32> = self.bias.value.data().to_vec();
        b.remove(idx);
        self.out_features -= 1;
        self.weight = Param::new(Tensor::from_vec(w, vec![self.out_features, self.in_features]));
        self.bias = Param::new(Tensor::from_vec(b, vec![self.out_features]));
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.ndim(), 2, "dense expects [batch, features]");
        assert_eq!(input.shape()[1], self.in_features, "feature mismatch");
        let out = match kernel_backend() {
            KernelBackend::Gemm => {
                lowering::dense_forward(input, &self.weight.value, &self.bias.value)
            }
            KernelBackend::Reference => {
                reference::dense_forward(input, &self.weight.value, &self.bias.value)
            }
        };
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        match kernel_backend() {
            KernelBackend::Gemm => lowering::dense_backward(
                input,
                &self.weight.value,
                grad_output,
                &mut self.weight.grad,
                &mut self.bias.grad,
            ),
            KernelBackend::Reference => reference::dense_backward(
                input,
                &self.weight.value,
                grad_output,
                &mut self.weight.grad,
                &mut self.bias.grad,
            ),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Rectified linear unit, element-wise, any shape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReLU {
    mask: Vec<bool>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> ReLU {
        ReLU::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.mask = input.data().iter().map(|&x| x > 0.0).collect();
        let data = input.data().iter().map(|&x| x.max(0.0)).collect();
        Tensor::from_vec(data, input.shape().to_vec())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(grad_output.len(), self.mask.len(), "backward before forward");
        let data = grad_output
            .data()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_output.shape().to_vec())
    }
}

/// Batch normalization over `[batch, features]`.
///
/// The WaveKey encoders end with a *non-affine* batch-norm so that every
/// latent element is (approximately) standard normal — the property the
/// equiprobable quantizer of Eq. (1) relies on. At inference time (single
/// gesture, batch of one) running statistics collected during training are
/// used.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm1d {
    features: usize,
    eps: f32,
    momentum: f32,
    affine: bool,
    /// Scale γ (`[features]`), used only when `affine`.
    pub gamma: Param,
    /// Shift β (`[features]`), used only when `affine`.
    pub beta: Param,
    /// Running mean, updated during training.
    pub running_mean: Vec<f32>,
    /// Running variance, updated during training.
    pub running_var: Vec<f32>,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone, PartialEq)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer. `affine = false` gives the plain
    /// standardizing form the WaveKey encoders use as their last layer.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0`.
    pub fn new(features: usize, affine: bool) -> BatchNorm1d {
        assert!(features > 0);
        BatchNorm1d {
            features,
            eps: 1e-5,
            momentum: 0.1,
            affine,
            gamma: Param::new(Tensor::full(vec![features], 1.0)),
            beta: Param::new(Tensor::zeros(vec![features])),
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
            cache: None,
        }
    }

    /// Number of normalized features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Whether the layer applies a learnable affine transform.
    pub fn is_affine(&self) -> bool {
        self.affine
    }

    /// The numerical-stability epsilon added to the running variance.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Removes feature `idx` (used by the pruning study together with
    /// [`Dense::remove_output`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or only one feature remains.
    pub fn remove_feature(&mut self, idx: usize) {
        assert!(idx < self.features, "feature index out of range");
        assert!(self.features > 1, "cannot remove the last feature");
        let mut g: Vec<f32> = self.gamma.value.data().to_vec();
        let mut b: Vec<f32> = self.beta.value.data().to_vec();
        g.remove(idx);
        b.remove(idx);
        self.running_mean.remove(idx);
        self.running_var.remove(idx);
        self.features -= 1;
        self.gamma = Param::new(Tensor::from_vec(g, vec![self.features]));
        self.beta = Param::new(Tensor::from_vec(b, vec![self.features]));
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.ndim(), 2, "batchnorm1d expects [batch, features]");
        assert_eq!(input.shape()[1], self.features, "feature mismatch");
        let batch = input.shape()[0];
        let mut out = Tensor::zeros(input.shape().to_vec());

        if train {
            assert!(batch >= 2, "training-mode batchnorm needs batch >= 2");
            let mut x_hat = Tensor::zeros(input.shape().to_vec());
            let mut inv_std = vec![0.0f32; self.features];
            for f in 0..self.features {
                let mut mean = 0.0;
                for n in 0..batch {
                    mean += input.at2(n, f);
                }
                mean /= batch as f32;
                let mut var = 0.0;
                for n in 0..batch {
                    let d = input.at2(n, f) - mean;
                    var += d * d;
                }
                var /= batch as f32;
                let istd = 1.0 / (var + self.eps).sqrt();
                inv_std[f] = istd;
                self.running_mean[f] =
                    (1.0 - self.momentum) * self.running_mean[f] + self.momentum * mean;
                self.running_var[f] =
                    (1.0 - self.momentum) * self.running_var[f] + self.momentum * var;
                for n in 0..batch {
                    let xh = (input.at2(n, f) - mean) * istd;
                    *x_hat.at2_mut(n, f) = xh;
                    let y = if self.affine {
                        self.gamma.value.data()[f] * xh + self.beta.value.data()[f]
                    } else {
                        xh
                    };
                    *out.at2_mut(n, f) = y;
                }
            }
            self.cache = Some(BnCache { x_hat, inv_std });
        } else {
            for f in 0..self.features {
                let istd = 1.0 / (self.running_var[f] + self.eps).sqrt();
                for n in 0..batch {
                    let xh = (input.at2(n, f) - self.running_mean[f]) * istd;
                    let y = if self.affine {
                        self.gamma.value.data()[f] * xh + self.beta.value.data()[f]
                    } else {
                        xh
                    };
                    *out.at2_mut(n, f) = y;
                }
            }
            self.cache = None;
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward requires training-mode forward");
        let batch = grad_output.shape()[0];
        let m = batch as f32;
        let mut grad_input = Tensor::zeros(grad_output.shape().to_vec());
        for f in 0..self.features {
            let gamma = if self.affine { self.gamma.value.data()[f] } else { 1.0 };
            // Accumulate the two reduction terms of the BN backward formula.
            let mut sum_dy = 0.0;
            let mut sum_dy_xhat = 0.0;
            for n in 0..batch {
                let dy = grad_output.at2(n, f);
                sum_dy += dy;
                sum_dy_xhat += dy * cache.x_hat.at2(n, f);
            }
            if self.affine {
                self.gamma.grad.data_mut()[f] += sum_dy_xhat;
                self.beta.grad.data_mut()[f] += sum_dy;
            }
            let istd = cache.inv_std[f];
            for n in 0..batch {
                let dy = grad_output.at2(n, f);
                let xh = cache.x_hat.at2(n, f);
                *grad_input.at2_mut(n, f) =
                    gamma * istd / m * (m * dy - sum_dy - xh * sum_dy_xhat);
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        if self.affine {
            vec![&mut self.gamma, &mut self.beta]
        } else {
            Vec::new()
        }
    }
}

/// Flattens `[batch, channels, length]` into `[batch, channels·length]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Flatten {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert!(input.ndim() >= 2, "flatten expects a batch dimension");
        self.cached_shape = input.shape().to_vec();
        let batch = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.reshaped(vec![batch, rest])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        grad_output.reshaped(self.cached_shape.clone())
    }
}

/// Reshapes `[batch, features]` into `[batch, channels, length]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Reshape {
    channels: usize,
    length: usize,
}

impl Reshape {
    /// Creates a reshape to `[batch, channels, length]`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(channels: usize, length: usize) -> Reshape {
        assert!(channels > 0 && length > 0);
        Reshape { channels, length }
    }

    /// `(channels, length)` of the target shape.
    pub fn dims(&self) -> (usize, usize) {
        (self.channels, self.length)
    }
}

impl Layer for Reshape {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let batch = input.shape()[0];
        input.reshaped(vec![batch, self.channels, self.length])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let batch = grad_output.shape()[0];
        grad_output.reshaped(vec![batch, self.channels * self.length])
    }
}

/// A concrete, serializable layer container.
///
/// `Sequential` stores layers through this enum (rather than trait
/// objects) so trained models can be encoded to a compact binary format
/// without external serialization machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerBox {
    /// 1-D convolution.
    Conv1d(Conv1d),
    /// Transposed 1-D convolution.
    ConvTranspose1d(ConvTranspose1d),
    /// Fully-connected layer.
    Dense(Dense),
    /// Rectified linear unit.
    ReLU(ReLU),
    /// Batch normalization.
    BatchNorm1d(BatchNorm1d),
    /// Flatten to 2-D.
    Flatten(Flatten),
    /// Reshape to 3-D.
    Reshape(Reshape),
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $e:expr) => {
        match $self {
            LayerBox::Conv1d($inner) => $e,
            LayerBox::ConvTranspose1d($inner) => $e,
            LayerBox::Dense($inner) => $e,
            LayerBox::ReLU($inner) => $e,
            LayerBox::BatchNorm1d($inner) => $e,
            LayerBox::Flatten($inner) => $e,
            LayerBox::Reshape($inner) => $e,
        }
    };
}

impl Layer for LayerBox {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        delegate!(self, l => l.forward(input, train))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        delegate!(self, l => l.backward(grad_output))
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        delegate!(self, l => l.params_mut())
    }
}

impl From<Conv1d> for LayerBox {
    fn from(l: Conv1d) -> LayerBox {
        LayerBox::Conv1d(l)
    }
}
impl From<ConvTranspose1d> for LayerBox {
    fn from(l: ConvTranspose1d) -> LayerBox {
        LayerBox::ConvTranspose1d(l)
    }
}
impl From<Dense> for LayerBox {
    fn from(l: Dense) -> LayerBox {
        LayerBox::Dense(l)
    }
}
impl From<ReLU> for LayerBox {
    fn from(l: ReLU) -> LayerBox {
        LayerBox::ReLU(l)
    }
}
impl From<BatchNorm1d> for LayerBox {
    fn from(l: BatchNorm1d) -> LayerBox {
        LayerBox::BatchNorm1d(l)
    }
}
impl From<Flatten> for LayerBox {
    fn from(l: Flatten) -> LayerBox {
        LayerBox::Flatten(l)
    }
}
impl From<Reshape> for LayerBox {
    fn from(l: Reshape) -> LayerBox {
        LayerBox::Reshape(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numeric gradient check: perturb each input element and compare the
    /// analytic input gradient against finite differences of a scalar loss
    /// `L = Σ out²/2` (whose dL/dout = out).
    fn check_input_gradient<L: Layer>(layer: &mut L, input: &Tensor, tol: f32) {
        let out = layer.forward(input, true);
        let grad_out = out.clone();
        let analytic = layer.backward(&grad_out);

        let eps = 1e-3f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let lp: f32 = layer.forward(&plus, true).data().iter().map(|o| o * o / 2.0).sum();
            let lm: f32 = layer.forward(&minus, true).data().iter().map(|o| o * o / 2.0).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (numeric - a).abs() < tol * (1.0 + numeric.abs().max(a.abs())),
                "element {i}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    /// Numeric gradient check for the layer parameters.
    fn check_param_gradient<L: Layer>(layer: &mut L, input: &Tensor, tol: f32) {
        let out = layer.forward(input, true);
        let grad_out = out.clone();
        layer.zero_grad();
        layer.backward(&grad_out);
        let analytic: Vec<Vec<f32>> =
            layer.params_mut().iter().map(|p| p.grad.data().to_vec()).collect();

        let eps = 1e-3f32;
        for (pi, grads) in analytic.iter().enumerate() {
            for gi in 0..grads.len() {
                let orig = {
                    let mut ps = layer.params_mut();
                    let v = ps[pi].value.data()[gi];
                    ps[pi].value.data_mut()[gi] = v + eps;
                    v
                };
                let lp: f32 = layer.forward(input, true).data().iter().map(|o| o * o / 2.0).sum();
                {
                    let mut ps = layer.params_mut();
                    ps[pi].value.data_mut()[gi] = orig - eps;
                }
                let lm: f32 = layer.forward(input, true).data().iter().map(|o| o * o / 2.0).sum();
                {
                    let mut ps = layer.params_mut();
                    ps[pi].value.data_mut()[gi] = orig;
                }
                let numeric = (lp - lm) / (2.0 * eps);
                let a = grads[gi];
                assert!(
                    (numeric - a).abs() < tol * (1.0 + numeric.abs().max(a.abs())),
                    "param {pi} element {gi}: numeric {numeric} vs analytic {a}"
                );
            }
        }
    }

    fn test_input(shape: Vec<usize>, seed: u64) -> Tensor {
        crate::init::uniform(shape, -1.0, 1.0, seed)
    }

    #[test]
    fn conv1d_shapes() {
        let mut conv = Conv1d::with_stride(2, 3, 5, 2, 2, 1);
        let x = test_input(vec![2, 2, 20], 3);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[2, 3, 10]);
    }

    #[test]
    fn conv1d_known_values() {
        // 1 channel, kernel [1, 2], no bias change: y[i] = x[i] + 2x[i+1].
        let mut conv = Conv1d::new(1, 1, 2, 0);
        conv.weight.value = Tensor::from_vec(vec![1.0, 2.0], vec![1, 1, 2]);
        conv.bias.value = Tensor::from_vec(vec![0.5], vec![1]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], vec![1, 1, 3]);
        let y = conv.forward(&x, true);
        assert_eq!(y.data(), &[1.0 + 4.0 + 0.5, 2.0 + 6.0 + 0.5]);
    }

    #[test]
    fn conv1d_gradients() {
        let mut conv = Conv1d::with_stride(2, 2, 3, 1, 1, 5);
        let x = test_input(vec![2, 2, 8], 7);
        check_input_gradient(&mut conv, &x, 2e-2);
        check_param_gradient(&mut conv, &x, 2e-2);
    }

    #[test]
    fn conv1d_strided_gradients() {
        let mut conv = Conv1d::with_stride(1, 2, 4, 2, 0, 9);
        let x = test_input(vec![1, 1, 12], 11);
        check_input_gradient(&mut conv, &x, 2e-2);
        check_param_gradient(&mut conv, &x, 2e-2);
    }

    #[test]
    fn conv_transpose_shapes_and_inverse_of_conv_shape() {
        let mut deconv = ConvTranspose1d::new(3, 2, 4, 2, 1);
        let x = test_input(vec![1, 3, 10], 2);
        let y = deconv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2, (10 - 1) * 2 + 4]);
    }

    #[test]
    fn conv_transpose_gradients() {
        let mut deconv = ConvTranspose1d::new(2, 2, 3, 2, 4);
        let x = test_input(vec![1, 2, 5], 6);
        check_input_gradient(&mut deconv, &x, 2e-2);
        check_param_gradient(&mut deconv, &x, 2e-2);
    }

    #[test]
    fn conv_transpose_remove_in_channel() {
        let mut deconv = ConvTranspose1d::new(3, 2, 4, 2, 7);
        let x = test_input(vec![1, 3, 5], 8);
        // Zeroing channel 1 then removing it must give the same output.
        let mut zeroed = x.clone();
        for l in 0..5 {
            *zeroed.at3_mut(0, 1, l) = 0.0;
        }
        let zeroed_out = deconv.forward(&zeroed, true);
        deconv.remove_in_channel(1);
        assert_eq!(deconv.dims(), (2, 2, 4, 2));
        let mut reduced_data = Vec::new();
        for c in [0usize, 2] {
            for l in 0..5 {
                reduced_data.push(x.at3(0, c, l));
            }
        }
        let reduced = Tensor::from_vec(reduced_data, vec![1, 2, 5]);
        let out = deconv.forward(&reduced, true);
        for (a, b) in out.data().iter().zip(zeroed_out.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn dense_known_values() {
        let mut dense = Dense::new(2, 2, 0);
        dense.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        dense.bias.value = Tensor::from_vec(vec![0.1, 0.2], vec![2]);
        let x = Tensor::from_vec(vec![1.0, 1.0], vec![1, 2]);
        let y = dense.forward(&x, true);
        assert!((y.data()[0] - 3.1).abs() < 1e-6);
        assert!((y.data()[1] - 7.2).abs() < 1e-6);
    }

    #[test]
    fn dense_gradients() {
        let mut dense = Dense::new(4, 3, 8);
        let x = test_input(vec![3, 4], 13);
        check_input_gradient(&mut dense, &x, 1e-2);
        check_param_gradient(&mut dense, &x, 1e-2);
    }

    #[test]
    fn dense_remove_input() {
        let mut dense = Dense::new(3, 2, 1);
        let x = test_input(vec![1, 3], 2);
        let before = dense.forward(&x, true);
        // Zeroing input 1 then removing it must give the same output.
        let mut zeroed = x.clone();
        zeroed.data_mut()[1] = 0.0;
        let zeroed_out = dense.forward(&zeroed, true);
        dense.remove_input(1);
        assert_eq!(dense.dims(), (2, 2));
        let reduced = Tensor::from_vec(vec![x.data()[0], x.data()[2]], vec![1, 2]);
        let after = dense.forward(&reduced, true);
        assert!((after.data()[0] - zeroed_out.data()[0]).abs() < 1e-6);
        assert!((after.data()[1] - zeroed_out.data()[1]).abs() < 1e-6);
        let _ = before;
    }

    #[test]
    fn dense_remove_output() {
        let mut dense = Dense::new(3, 3, 1);
        let x = test_input(vec![1, 3], 2);
        let before = dense.forward(&x, true);
        dense.remove_output(1);
        assert_eq!(dense.dims(), (3, 2));
        let after = dense.forward(&x, true);
        assert!((after.data()[0] - before.data()[0]).abs() < 1e-6);
        assert!((after.data()[1] - before.data()[2]).abs() < 1e-6);
    }

    #[test]
    fn relu_forward_backward() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], vec![1, 3]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = relu.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], vec![1, 3]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn batchnorm_standardizes_in_training() {
        let mut bn = BatchNorm1d::new(2, false);
        let x = test_input(vec![64, 2], 20);
        let y = bn.forward(&x, true);
        for f in 0..2 {
            let col: Vec<f32> = (0..64).map(|n| y.at2(n, f)).collect();
            let mean: f32 = col.iter().sum::<f32>() / 64.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1, false);
        // Train on shifted data so running stats move away from (0, 1).
        for step in 0..200 {
            let x = test_input(vec![32, 1], 100 + step).add(&Tensor::full(vec![32, 1], 5.0));
            bn.forward(&x, true);
        }
        // Eval on a single sample at the training mean: output should be ~0.
        let y = bn.forward(&Tensor::from_vec(vec![5.0], vec![1, 1]), false);
        assert!(y.data()[0].abs() < 0.3, "eval output {}", y.data()[0]);
    }

    #[test]
    fn batchnorm_gradients() {
        let mut bn = BatchNorm1d::new(3, true);
        let x = test_input(vec![8, 3], 33);
        check_input_gradient(&mut bn, &x, 3e-2);
        check_param_gradient(&mut bn, &x, 3e-2);
    }

    #[test]
    fn batchnorm_nonaffine_gradients() {
        let mut bn = BatchNorm1d::new(2, false);
        let x = test_input(vec![6, 2], 44);
        check_input_gradient(&mut bn, &x, 3e-2);
    }

    #[test]
    fn batchnorm_remove_feature() {
        let mut bn = BatchNorm1d::new(3, false);
        bn.running_mean = vec![1.0, 2.0, 3.0];
        bn.remove_feature(1);
        assert_eq!(bn.features(), 2);
        assert_eq!(bn.running_mean, vec![1.0, 3.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let x = test_input(vec![2, 3, 4], 50);
        let y = fl.forward(&x, true);
        assert_eq!(y.shape(), &[2, 12]);
        let g = fl.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn reshape_roundtrip() {
        let mut rs = Reshape::new(3, 4);
        let x = test_input(vec![2, 12], 51);
        let y = rs.forward(&x, true);
        assert_eq!(y.shape(), &[2, 3, 4]);
        let g = rs.backward(&y);
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn layerbox_delegates() {
        let mut boxed: LayerBox = Dense::new(2, 2, 3).into();
        let x = test_input(vec![1, 2], 60);
        let y = boxed.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(boxed.params_mut().len(), 2);
    }
}
