//! Loss functions.
//!
//! The joint WaveKey training loss (Eq. (3) of the paper) is
//! `‖f_M − f_R‖² + λ·‖De(f_M) − R^Mag‖²`, assembled in `wavekey-core` from
//! the [`mse`] and [`mse_pair`] pieces defined here.

use crate::tensor::Tensor;

/// Mean-squared error between `output` and `target`.
///
/// Returns `(loss, d_loss/d_output)`. The gradient is `2(out − target)/N`
/// where `N` is the total element count, matching the `mean` reduction of
/// common frameworks.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(output: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(output.shape(), target.shape(), "mse shape mismatch");
    let n = output.len() as f32;
    let mut loss = 0.0;
    let mut grad = Tensor::zeros(output.shape().to_vec());
    for i in 0..output.len() {
        let d = output.data()[i] - target.data()[i];
        loss += d * d;
        grad.data_mut()[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Symmetric MSE between two *trainable* outputs `a` and `b` (both sides
/// receive gradients), used for the `‖f_M − f_R‖²` term where both
/// encoders are being trained toward each other.
///
/// Returns `(loss, d_loss/d_a, d_loss/d_b)`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse_pair(a: &Tensor, b: &Tensor) -> (f32, Tensor, Tensor) {
    assert_eq!(a.shape(), b.shape(), "mse_pair shape mismatch");
    let n = a.len() as f32;
    let mut loss = 0.0;
    let mut grad_a = Tensor::zeros(a.shape().to_vec());
    let mut grad_b = Tensor::zeros(b.shape().to_vec());
    for i in 0..a.len() {
        let d = a.data()[i] - b.data()[i];
        loss += d * d;
        grad_a.data_mut()[i] = 2.0 * d / n;
        grad_b.data_mut()[i] = -2.0 * d / n;
    }
    (loss / n, grad_a, grad_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_when_equal() {
        let t = Tensor::from_vec(vec![1.0, 2.0], vec![2]);
        let (loss, grad) = mse(&t, &t);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_known_value() {
        let a = Tensor::from_vec(vec![1.0, 2.0], vec![2]);
        let b = Tensor::from_vec(vec![0.0, 0.0], vec![2]);
        let (loss, grad) = mse(&a, &b);
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert!((grad.data()[0] - 1.0).abs() < 1e-6); // 2*1/2
        assert!((grad.data()[1] - 2.0).abs() < 1e-6); // 2*2/2
    }

    #[test]
    fn mse_gradient_is_finite_difference() {
        let a = Tensor::from_vec(vec![0.3, -0.7, 1.1], vec![3]);
        let b = Tensor::from_vec(vec![0.1, 0.2, -0.5], vec![3]);
        let (_, grad) = mse(&a, &b);
        let eps = 1e-3;
        for i in 0..3 {
            let mut ap = a.clone();
            ap.data_mut()[i] += eps;
            let mut am = a.clone();
            am.data_mut()[i] -= eps;
            let (lp, _) = mse(&ap, &b);
            let (lm, _) = mse(&am, &b);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn mse_pair_antisymmetric_gradients() {
        let a = Tensor::from_vec(vec![1.0, -2.0], vec![2]);
        let b = Tensor::from_vec(vec![0.5, 0.5], vec![2]);
        let (loss, ga, gb) = mse_pair(&a, &b);
        let (loss2, ga2) = mse(&a, &b);
        assert!((loss - loss2).abs() < 1e-6);
        for i in 0..2 {
            assert!((ga.data()[i] - ga2.data()[i]).abs() < 1e-6);
            assert!((ga.data()[i] + gb.data()[i]).abs() < 1e-6);
        }
    }
}
