//! Reference (naive) compute kernels for the convolution and dense layers.
//!
//! These are the original scalar loops the layers shipped with, kept as
//! free functions so the blocked GEMM kernels in [`crate::lowering`] can be
//! pinned against them by differential tests. The GEMM path reproduces the
//! accumulation order of these loops *exactly* (see `DESIGN.md` §10), so
//! the differential tests assert bitwise `==` equality, not a tolerance.
//!
//! Layouts match the layers: `Conv1d` weights are
//! `[out_channels, in_channels, kernel]`, `ConvTranspose1d` weights are
//! `[in_channels, out_channels, kernel]`, `Dense` weights are
//! `[out_features, in_features]`.

use crate::tensor::Tensor;

/// Output length of a strided, padded 1-D convolution.
///
/// # Panics
///
/// Panics when the padded input is shorter than the kernel.
pub fn conv1d_output_len(l_in: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let padded = l_in + 2 * padding;
    assert!(padded >= kernel, "input too short for kernel");
    (padded - kernel) / stride + 1
}

/// Naive `Conv1d` forward over `[batch, in_channels, length]`.
pub fn conv1d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    padding: usize,
) -> Tensor {
    let batch = input.shape()[0];
    let in_channels = input.shape()[1];
    let l_in = input.shape()[2];
    let out_channels = weight.shape()[0];
    let kernel = weight.shape()[2];
    let l_out = conv1d_output_len(l_in, kernel, stride, padding);
    let mut out = Tensor::zeros(vec![batch, out_channels, l_out]);
    for n in 0..batch {
        for oc in 0..out_channels {
            let b = bias.data()[oc];
            for ol in 0..l_out {
                let mut acc = b;
                let start = ol * stride;
                for ic in 0..in_channels {
                    for k in 0..kernel {
                        let pos = start + k;
                        if pos < padding {
                            continue;
                        }
                        let i = pos - padding;
                        if i >= l_in {
                            continue;
                        }
                        acc += weight.at3(oc, ic, k) * input.at3(n, ic, i);
                    }
                }
                *out.at3_mut(n, oc, ol) = acc;
            }
        }
    }
    out
}

/// Naive `Conv1d` backward: accumulates into `weight_grad` / `bias_grad`
/// and returns the gradient with respect to the input.
#[allow(clippy::too_many_arguments)]
pub fn conv1d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    stride: usize,
    padding: usize,
    weight_grad: &mut Tensor,
    bias_grad: &mut Tensor,
) -> Tensor {
    let batch = input.shape()[0];
    let in_channels = input.shape()[1];
    let l_in = input.shape()[2];
    let out_channels = weight.shape()[0];
    let kernel = weight.shape()[2];
    let l_out = grad_output.shape()[2];
    let mut grad_input = Tensor::zeros(input.shape().to_vec());
    for n in 0..batch {
        for oc in 0..out_channels {
            for ol in 0..l_out {
                let g = grad_output.at3(n, oc, ol);
                if g == 0.0 {
                    continue;
                }
                bias_grad.data_mut()[oc] += g;
                let start = ol * stride;
                for ic in 0..in_channels {
                    for k in 0..kernel {
                        let pos = start + k;
                        if pos < padding {
                            continue;
                        }
                        let i = pos - padding;
                        if i >= l_in {
                            continue;
                        }
                        *weight_grad.at3_mut(oc, ic, k) += g * input.at3(n, ic, i);
                        *grad_input.at3_mut(n, ic, i) += g * weight.at3(oc, ic, k);
                    }
                }
            }
        }
    }
    grad_input
}

/// Naive `ConvTranspose1d` forward over `[batch, in_channels, length]`.
pub fn conv_transpose1d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
) -> Tensor {
    let batch = input.shape()[0];
    let in_channels = input.shape()[1];
    let l_in = input.shape()[2];
    let out_channels = weight.shape()[1];
    let kernel = weight.shape()[2];
    let l_out = (l_in - 1) * stride + kernel;
    let mut out = Tensor::zeros(vec![batch, out_channels, l_out]);
    for n in 0..batch {
        for oc in 0..out_channels {
            let b = bias.data()[oc];
            for ol in 0..l_out {
                *out.at3_mut(n, oc, ol) = b;
            }
        }
        for ic in 0..in_channels {
            for i in 0..l_in {
                let x = input.at3(n, ic, i);
                if x == 0.0 {
                    continue;
                }
                for oc in 0..out_channels {
                    for k in 0..kernel {
                        *out.at3_mut(n, oc, i * stride + k) += x * weight.at3(ic, oc, k);
                    }
                }
            }
        }
    }
    out
}

/// Naive `ConvTranspose1d` backward: accumulates into `weight_grad` /
/// `bias_grad` and returns the gradient with respect to the input.
pub fn conv_transpose1d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    stride: usize,
    weight_grad: &mut Tensor,
    bias_grad: &mut Tensor,
) -> Tensor {
    let batch = input.shape()[0];
    let in_channels = input.shape()[1];
    let l_in = input.shape()[2];
    let out_channels = weight.shape()[1];
    let kernel = weight.shape()[2];
    let mut grad_input = Tensor::zeros(input.shape().to_vec());
    for n in 0..batch {
        for oc in 0..out_channels {
            for ol in 0..grad_output.shape()[2] {
                bias_grad.data_mut()[oc] += grad_output.at3(n, oc, ol);
            }
        }
    }
    for n in 0..batch {
        for ic in 0..in_channels {
            for i in 0..l_in {
                let x = input.at3(n, ic, i);
                let mut gi = 0.0;
                for oc in 0..out_channels {
                    for k in 0..kernel {
                        let g = grad_output.at3(n, oc, i * stride + k);
                        gi += g * weight.at3(ic, oc, k);
                        *weight_grad.at3_mut(ic, oc, k) += g * x;
                    }
                }
                *grad_input.at3_mut(n, ic, i) = gi;
            }
        }
    }
    grad_input
}

/// Naive `Dense` forward over `[batch, in_features]`.
pub fn dense_forward(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Tensor {
    let batch = input.shape()[0];
    let in_features = input.shape()[1];
    let out_features = weight.shape()[0];
    let mut out = Tensor::zeros(vec![batch, out_features]);
    for n in 0..batch {
        for o in 0..out_features {
            let mut acc = bias.data()[o];
            let wrow = &weight.data()[o * in_features..(o + 1) * in_features];
            let xrow = &input.data()[n * in_features..(n + 1) * in_features];
            for (wi, xi) in wrow.iter().zip(xrow) {
                acc += wi * xi;
            }
            *out.at2_mut(n, o) = acc;
        }
    }
    out
}

/// Naive `Dense` backward: accumulates into `weight_grad` / `bias_grad`
/// and returns the gradient with respect to the input.
pub fn dense_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    weight_grad: &mut Tensor,
    bias_grad: &mut Tensor,
) -> Tensor {
    let batch = input.shape()[0];
    let in_features = input.shape()[1];
    let out_features = weight.shape()[0];
    let mut grad_input = Tensor::zeros(input.shape().to_vec());
    for n in 0..batch {
        for o in 0..out_features {
            let g = grad_output.at2(n, o);
            if g == 0.0 {
                continue;
            }
            bias_grad.data_mut()[o] += g;
            for i in 0..in_features {
                weight_grad.data_mut()[o * in_features + i] += g * input.at2(n, i);
                *grad_input.at2_mut(n, i) += g * weight.data()[o * in_features + i];
            }
        }
    }
    grad_input
}
