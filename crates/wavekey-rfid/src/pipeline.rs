//! The server-side data-processing pipeline of §IV-B-2.
//!
//! Given a raw [`RfidRecording`](crate::reader::RfidRecording), the
//! pipeline:
//!
//! 1. unwraps the phase stream (reported modulo 2π);
//! 2. detects the gesture onset from the variance rise of the unwrapped
//!    phase (mirroring the mobile side's pause-based synchronization);
//! 3. interpolates phase and magnitude onto a uniform 200 Hz grid starting
//!    at the onset (the reader's read slots arrive with jitter and
//!    occasional dropouts);
//! 4. denoises both streams with a Savitzky-Golay filter, which preserves
//!    the local extrema the RF-En autoencoder feeds on;
//! 5. standardizes each stream (zero mean, unit variance over the window)
//!    and assembles the paper's `2n×2` matrix `R` — 400 phase and 400
//!    magnitude samples for `n = 200` Hz.
//!
//! Standardization is a reproduction choice: the paper feeds "processed
//! phases and magnitudes" without specifying scaling, and per-window
//! standardization is what makes one trained RF-En work from 1 m to 9 m
//! (the magnitude's absolute level varies by ~28 dB over that range).

use crate::reader::RfidRecording;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use wavekey_dsp::{
    detect_motion_start, savgol_second_derivative_into, savgol_smooth_into, unwrap_phase_into,
    MotionDetectConfig,
};
use wavekey_math::resample_linear_into;

/// The processed RFID matrix `R`: standardized phase and magnitude
/// columns, 2·n rows total for an n Hz reader (the paper's 400×2).
#[derive(Debug, Clone, PartialEq)]
pub struct RfidMatrix {
    /// Standardized, unwrapped, denoised phase samples.
    pub phase: Vec<f64>,
    /// Standardized, denoised magnitude samples.
    pub magnitude: Vec<f64>,
    /// Gesture onset in recording time (s).
    pub start_time: f64,
}

impl RfidMatrix {
    /// Number of samples per column.
    pub fn len(&self) -> usize {
        self.phase.len()
    }

    /// `true` when the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.phase.is_empty()
    }

    /// Interleaves to the paper's column layout `[phase‖magnitude]`
    /// flattened row-major: `[(φ0, m0), (φ1, m1), …]`.
    pub fn flatten(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.phase.len() * 2);
        for (p, m) in self.phase.iter().zip(&self.magnitude) {
            out.push(*p);
            out.push(*m);
        }
        out
    }
}

/// Configuration of the server-side pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RfidPipelineConfig {
    /// Interpolation rate (Hz); the paper's reader runs at 200 Hz.
    pub target_rate: f64,
    /// Output samples per column; the paper uses 400 (two seconds).
    pub samples: usize,
    /// Savitzky-Golay window (odd).
    pub savgol_window: usize,
    /// Savitzky-Golay polynomial order.
    pub savgol_order: usize,
    /// Onset detection parameters (tuned for 200 Hz phase data).
    pub detect: MotionDetectConfig,
    /// Second-stage onset refinement threshold in m/s² (see the IMU
    /// pipeline's `onset_refine_threshold`); both sides re-estimate the
    /// onset as the first crossing of the same absolute acceleration
    /// level, which aligns the two windows without clock
    /// synchronization. `0.0` disables refinement.
    pub onset_refine_threshold: f64,
}

impl Default for RfidPipelineConfig {
    fn default() -> Self {
        RfidPipelineConfig {
            target_rate: 200.0,
            samples: 400,
            savgol_window: 11,
            savgol_order: 3,
            detect: MotionDetectConfig {
                window: 20,
                baseline_len: 60,
                threshold_factor: 8.0,
                variance_floor: 1e-6,
            },
            onset_refine_threshold: 0.4,
        }
    }
}

/// Error from the server-side pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RfidPipelineError {
    /// Too few reads to process at all.
    TooFewReads,
    /// The variance detector never fired.
    MotionNotDetected,
    /// Not enough data after the onset to fill the window.
    RecordingTooShort,
}

impl std::fmt::Display for RfidPipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RfidPipelineError::TooFewReads => write!(f, "too few RFID reads"),
            RfidPipelineError::MotionNotDetected => write!(f, "gesture onset not detected"),
            RfidPipelineError::RecordingTooShort => {
                write!(f, "recording too short after gesture onset")
            }
        }
    }
}

impl std::error::Error for RfidPipelineError {}

/// [`process_rfid`] timed under the canonical `rfid_pipeline` span (a
/// no-op with a disabled [`wavekey_obs::Obs`] handle).
///
/// # Errors
///
/// See [`RfidPipelineError`].
pub fn process_rfid_observed(
    recording: &RfidRecording,
    config: &RfidPipelineConfig,
    obs: &wavekey_obs::Obs,
) -> Result<RfidMatrix, RfidPipelineError> {
    let _span = obs.span(wavekey_obs::stage::RFID_PIPELINE);
    process_rfid(recording, config)
}

/// Per-thread intermediate buffers reused across [`process_rfid`] calls.
///
/// The pipeline's p99 latency sat ~3× above its p50 purely from
/// allocator jitter: every call built half a dozen recording- or
/// grid-length temporaries. Routing the stages through these buffers
/// makes steady-state processing allocation-free except for the returned
/// [`RfidMatrix`] columns.
#[derive(Default)]
struct Scratch {
    unwrapped: Vec<f64>,
    refine_grid: Vec<f64>,
    d2: Vec<f64>,
    acc: Vec<f64>,
    phase_grid: Vec<f64>,
    mag_grid: Vec<f64>,
    phase_smooth: Vec<f64>,
    mag_smooth: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::default();
}

/// Runs the full §IV-B-2 server pipeline on a recording.
///
/// # Errors
///
/// See [`RfidPipelineError`].
pub fn process_rfid(
    recording: &RfidRecording,
    config: &RfidPipelineConfig,
) -> Result<RfidMatrix, RfidPipelineError> {
    SCRATCH.with(|cell| process_rfid_scratch(recording, config, &mut cell.borrow_mut()))
}

fn process_rfid_scratch(
    recording: &RfidRecording,
    config: &RfidPipelineConfig,
    scratch: &mut Scratch,
) -> Result<RfidMatrix, RfidPipelineError> {
    let Scratch {
        unwrapped,
        refine_grid,
        d2,
        acc,
        phase_grid,
        mag_grid,
        phase_smooth,
        mag_smooth,
    } = scratch;
    if recording.len() < config.detect.baseline_len + config.detect.window {
        return Err(RfidPipelineError::TooFewReads);
    }

    // 1. Unwrap.
    unwrap_phase_into(&recording.phase, unwrapped);

    // 2. Onset detection on the unwrapped phase, refined on the
    //    phase-derived acceleration-energy envelope (mirrors the IMU
    //    side's refinement so both windows align).
    let onset_idx = detect_motion_start(unwrapped, &config.detect)
        .ok_or(RfidPipelineError::MotionNotDetected)?;
    let mut t0 = recording.ts[onset_idx];
    if config.onset_refine_threshold > 0.0 {
        let grid_start = (t0 - 0.2).max(recording.ts[0]);
        let lookahead = ((1.0 * config.target_rate) as usize).max(64);
        if resample_linear_into(
            &recording.ts,
            unwrapped,
            grid_start,
            config.target_rate,
            lookahead,
            refine_grid,
        )
        .is_ok()
        {
            // Radial acceleration in m/s²: d = φ·λ/4π for the round-trip
            // backscatter phase, so d'' = φ''·λ/4π. The long fit window
            // keeps the differentiation noise (~0.06 m/s²) far below the
            // detection threshold.
            if savgol_second_derivative_into(refine_grid, 61, 3, 1.0 / config.target_rate, d2)
                .is_ok()
            {
                let scale = crate::wavelength() / (4.0 * std::f64::consts::PI);
                acc.clear();
                acc.extend(d2.iter().map(|v| (v * scale).abs()));
                t0 = wavekey_imu::pipeline::refine_onset(
                    acc,
                    grid_start,
                    config.target_rate,
                    config.onset_refine_threshold,
                    61,
                );
            }
        }
    }

    let window = (config.samples - 1) as f64 / config.target_rate;
    if t0 + window > *recording.ts.last().expect("non-empty") + 1e-9 {
        return Err(RfidPipelineError::RecordingTooShort);
    }

    // 3. Interpolate onto the uniform grid.
    resample_linear_into(
        &recording.ts,
        unwrapped,
        t0,
        config.target_rate,
        config.samples,
        phase_grid,
    )
    .expect("strictly increasing timestamps");
    resample_linear_into(
        &recording.ts,
        &recording.magnitude,
        t0,
        config.target_rate,
        config.samples,
        mag_grid,
    )
    .expect("strictly increasing timestamps");

    // 4. Savitzky-Golay denoising.
    savgol_smooth_into(phase_grid, config.savgol_window, config.savgol_order, phase_smooth)
        .expect("window fits 400 samples");
    savgol_smooth_into(mag_grid, config.savgol_window, config.savgol_order, mag_smooth)
        .expect("window fits 400 samples");

    // 5. Standardize.
    Ok(RfidMatrix {
        phase: standardize(phase_smooth),
        magnitude: standardize(mag_smooth),
        start_time: t0,
    })
}

/// Zero-mean unit-variance scaling with an epsilon guard.
fn standardize(xs: &[f64]) -> Vec<f64> {
    let mean = wavekey_math::mean(xs);
    let std = wavekey_math::std_dev(xs).max(1e-9);
    xs.iter().map(|x| (x - mean) / std).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::TagModel;
    use crate::environment::{Environment, UserPlacement};
    use crate::reader::{record_rfid, ReaderSpec};
    use wavekey_imu::gesture::{Gesture, GestureConfig, GestureGenerator, VolunteerId};
    use wavekey_math::Vec3;

    fn run(seed: u64, walkers: usize) -> (Gesture, RfidMatrix) {
        let gesture =
            GestureGenerator::new(VolunteerId(0), seed).generate(&GestureConfig::default());
        let env = Environment::room(1);
        let channel = env.channel(TagModel::Alien9640A, walkers, seed);
        let hand = UserPlacement::default().hand_position(&env);
        let rec = record_rfid(
            &gesture,
            hand,
            Vec3::new(0.03, 0.0, 0.0),
            &channel,
            &ReaderSpec::default(),
            seed,
        );
        let r = process_rfid(&rec, &RfidPipelineConfig::default()).expect("pipeline");
        (gesture, r)
    }

    #[test]
    fn produces_400_samples() {
        let (_, r) = run(1, 0);
        assert_eq!(r.len(), 400);
        assert_eq!(r.magnitude.len(), 400);
    }

    #[test]
    fn columns_are_standardized() {
        let (_, r) = run(2, 0);
        assert!(wavekey_math::mean(&r.phase).abs() < 1e-9);
        assert!((wavekey_math::std_dev(&r.phase) - 1.0).abs() < 1e-6);
        assert!(wavekey_math::mean(&r.magnitude).abs() < 1e-9);
        assert!((wavekey_math::std_dev(&r.magnitude) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn onset_near_pause_end() {
        let (gesture, r) = run(3, 0);
        assert!(
            (r.start_time - gesture.pause()).abs() < 0.25,
            "onset {} vs pause {}",
            r.start_time,
            gesture.pause()
        );
    }

    #[test]
    fn onset_agrees_with_imu_side() {
        // The whole point of the pause trick: the two modalities detect
        // nearly the same onset without clock synchronization.
        use wavekey_imu::pipeline::{process_imu, ImuPipelineConfig};
        use wavekey_imu::sensors::{sample_imu, DeviceModel};
        let seed = 4;
        let gesture =
            GestureGenerator::new(VolunteerId(0), seed).generate(&GestureConfig::default());
        let env = Environment::room(1);
        let channel = env.channel(TagModel::Alien9640A, 0, seed);
        let hand = UserPlacement::default().hand_position(&env);
        let rf_rec = record_rfid(
            &gesture,
            hand,
            Vec3::new(0.03, 0.0, 0.0),
            &channel,
            &ReaderSpec::default(),
            seed,
        );
        let imu_rec = sample_imu(&gesture, &DeviceModel::GalaxyWatch.spec(), seed);
        let r = process_rfid(&rf_rec, &RfidPipelineConfig::default()).unwrap();
        let a = process_imu(&imu_rec, &ImuPipelineConfig::default()).unwrap();
        assert!(
            (r.start_time - a.start_time).abs() < 0.15,
            "rfid onset {} vs imu onset {}",
            r.start_time,
            a.start_time
        );
    }

    #[test]
    fn phase_tracks_distance_to_antenna() {
        // The standardized phase must correlate with the tag–antenna
        // distance over the window (up to sign, since standardization may
        // flip nothing but multipath can).
        let seed = 5;
        let gesture =
            GestureGenerator::new(VolunteerId(0), seed).generate(&GestureConfig::default());
        let env = Environment::room(1);
        // Free-space channel to make the relation exact.
        let channel =
            crate::channel::BackscatterChannel::free_space(env.antenna, env.boresight, TagModel::Alien9640A);
        let hand = UserPlacement::default().hand_position(&env);
        let rec = record_rfid(
            &gesture,
            hand,
            Vec3::ZERO,
            &channel,
            &ReaderSpec { dropout: 0.0, ..Default::default() },
            seed,
        );
        let r = process_rfid(&rec, &RfidPipelineConfig::default()).unwrap();
        let base_shift = hand - gesture.position_at(0.0);
        let dist: Vec<f64> = (0..r.len())
            .map(|i| {
                let t = r.start_time + i as f64 / 200.0;
                (gesture.position_at(t) + base_shift).distance(env.antenna)
            })
            .collect();
        let corr = wavekey_math::pearson_correlation(&r.phase, &dist);
        assert!(corr.abs() > 0.95, "phase-distance correlation {corr}");
    }

    #[test]
    fn dynamic_condition_still_processes() {
        let (_, r) = run(6, 5);
        assert_eq!(r.len(), 400);
    }

    #[test]
    fn too_few_reads_error() {
        let rec = RfidRecording { ts: vec![0.0, 0.01], phase: vec![0.1, 0.2], magnitude: vec![1.0, 1.0] };
        assert_eq!(
            process_rfid(&rec, &RfidPipelineConfig::default()).unwrap_err(),
            RfidPipelineError::TooFewReads
        );
    }

    #[test]
    fn still_tag_no_onset() {
        // A gesture with no active phase: the tag never moves.
        let config = GestureConfig { active: 0.0, pause: 3.0, ..Default::default() };
        let gesture = GestureGenerator::new(VolunteerId(1), 7).generate(&config);
        let env = Environment::room(1);
        let channel = env.channel(TagModel::Alien9640A, 0, 7);
        let hand = UserPlacement::default().hand_position(&env);
        let rec = record_rfid(
            &gesture,
            hand,
            Vec3::ZERO,
            &channel,
            &ReaderSpec::default(),
            7,
        );
        let err = process_rfid(&rec, &RfidPipelineConfig::default()).unwrap_err();
        assert_eq!(err, RfidPipelineError::MotionNotDetected);
    }
}
