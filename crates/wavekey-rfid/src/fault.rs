//! Deterministic sensing-layer fault injection for RFID recordings.
//!
//! The server-side counterpart of `wavekey_imu::fault`: stresses the raw
//! backscatter stream ahead of [`crate::pipeline::process_rfid`]. Two
//! fault families an Impinj-class deployment exhibits:
//!
//! * **RF phase spikes** — a competing emitter or a multipath flicker
//!   kicks individual phase reports by a large wrapped offset.
//! * **Tag-read gaps** — the tag leaves the beam (or loses power) and a
//!   contiguous run of read slots returns nothing.
//!
//! Injection is a pure function of `(recording, config, seed)` so chaos
//! soaks replay read-for-read.

use crate::reader::RfidRecording;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What to inject into an RFID recording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfidFaultConfig {
    /// Number of contiguous read gaps to carve out.
    pub read_gaps: usize,
    /// Reads removed per gap.
    pub gap_len: usize,
    /// Number of individual phase reports to spike.
    pub phase_spikes: usize,
    /// Spike amplitude (radians); the sign alternates per spike and the
    /// result is re-wrapped into `[0, 2π)`.
    pub spike_rad: f64,
}

impl RfidFaultConfig {
    /// No faults: injection returns the recording unchanged.
    pub fn none() -> RfidFaultConfig {
        RfidFaultConfig { read_gaps: 0, gap_len: 0, phase_spikes: 0, spike_rad: 0.0 }
    }

    /// The reference chaos mixture used by the `fault_soak` bench: two
    /// ~50 ms read gaps (10 reads at 200 Hz) and six π/2 phase spikes —
    /// harsh but inside what the unwrapping + denoising pipeline absorbs.
    pub fn reference() -> RfidFaultConfig {
        RfidFaultConfig {
            read_gaps: 2,
            gap_len: 10,
            phase_spikes: 6,
            spike_rad: std::f64::consts::FRAC_PI_2,
        }
    }
}

impl Default for RfidFaultConfig {
    fn default() -> RfidFaultConfig {
        RfidFaultConfig::none()
    }
}

/// Applies the configured faults to a recording, deterministically in
/// `(recording, config, seed)`. Timestamp, phase, and magnitude streams
/// stay index-aligned: a gap removes the same read from all three.
pub fn inject_rfid_faults(
    recording: &RfidRecording,
    config: &RfidFaultConfig,
    seed: u64,
) -> RfidRecording {
    let mut out = recording.clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0F1D_FA17);

    if config.phase_spikes > 0 && !out.is_empty() {
        for spike in 0..config.phase_spikes {
            let idx = rng.gen_range(0..out.phase.len());
            let sign = if spike % 2 == 0 { 1.0 } else { -1.0 };
            let two_pi = std::f64::consts::TAU;
            out.phase[idx] = (out.phase[idx] + sign * config.spike_rad).rem_euclid(two_pi);
        }
    }

    if config.read_gaps > 0 && config.gap_len > 0 && !out.is_empty() {
        let mut keep = vec![true; out.len()];
        for _ in 0..config.read_gaps {
            let start = rng.gen_range(0..out.len());
            for flag in keep.iter_mut().skip(start).take(config.gap_len) {
                *flag = false;
            }
        }
        if keep.iter().filter(|&&k| k).count() >= 2 {
            let filter = |v: &[f64]| -> Vec<f64> {
                v.iter().zip(&keep).filter(|(_, &k)| k).map(|(x, _)| *x).collect()
            };
            out.ts = filter(&out.ts);
            out.phase = filter(&out.phase);
            out.magnitude = filter(&out.magnitude);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::TagModel;
    use crate::environment::{Environment, UserPlacement};
    use crate::pipeline::{process_rfid, RfidPipelineConfig};
    use crate::reader::{record_rfid, ReaderSpec};
    use wavekey_imu::gesture::{GestureConfig, GestureGenerator, VolunteerId};
    use wavekey_math::Vec3;

    fn recording(seed: u64) -> RfidRecording {
        let mut generator = GestureGenerator::new(VolunteerId(0), seed);
        let gesture = generator.generate(&GestureConfig::default());
        let env = Environment::room(1);
        let channel = env.channel(TagModel::Alien9640A, 0, seed);
        let hand = UserPlacement::default().hand_position(&env);
        record_rfid(
            &gesture,
            hand,
            Vec3::new(0.03, 0.0, 0.0),
            &channel,
            &ReaderSpec::default(),
            seed,
        )
    }

    #[test]
    fn injection_is_deterministic_in_the_seed() {
        let rec = recording(21);
        let config = RfidFaultConfig::reference();
        let a = inject_rfid_faults(&rec, &config, 5);
        let b = inject_rfid_faults(&rec, &config, 5);
        assert_eq!(a, b);
        let c = inject_rfid_faults(&rec, &config, 6);
        assert_ne!(a, c, "different seeds place different spikes and gaps");
    }

    #[test]
    fn none_config_is_the_identity() {
        let rec = recording(22);
        assert_eq!(inject_rfid_faults(&rec, &RfidFaultConfig::none(), 0), rec);
    }

    #[test]
    fn gaps_remove_aligned_reads_and_keep_order() {
        let rec = recording(23);
        let config =
            RfidFaultConfig { read_gaps: 3, gap_len: 9, phase_spikes: 0, spike_rad: 0.0 };
        let faulted = inject_rfid_faults(&rec, &config, 99);
        assert!(faulted.len() < rec.len());
        assert!(faulted.len() >= rec.len().saturating_sub(3 * 9));
        assert_eq!(faulted.ts.len(), faulted.phase.len());
        assert_eq!(faulted.ts.len(), faulted.magnitude.len());
        assert!(faulted.ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn spikes_stay_wrapped_and_touch_only_phase() {
        let rec = recording(24);
        let config =
            RfidFaultConfig { read_gaps: 0, gap_len: 0, phase_spikes: 8, spike_rad: 1.5 };
        let faulted = inject_rfid_faults(&rec, &config, 7);
        assert_eq!(faulted.len(), rec.len());
        assert_eq!(faulted.ts, rec.ts);
        assert_eq!(faulted.magnitude, rec.magnitude);
        assert_ne!(faulted.phase, rec.phase);
        assert!(faulted
            .phase
            .iter()
            .all(|&p| (0.0..std::f64::consts::TAU).contains(&p)));
    }

    #[test]
    fn pipeline_survives_reference_faults() {
        for seed in 0..8u64 {
            let rec = recording(30 + seed);
            let faulted = inject_rfid_faults(&rec, &RfidFaultConfig::reference(), seed);
            let _ = process_rfid(&faulted, &RfidPipelineConfig::default());
        }
    }
}
