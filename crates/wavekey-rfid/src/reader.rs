//! The reader model: 200 Hz sampling of the backscatter channel.
//!
//! The paper sets the Impinj R420's sample rate to 200 Hz. Real readers
//! additionally exhibit small timing jitter (tag replies are slotted) and
//! occasional missed reads; both are modeled and later absorbed by the
//! §IV-B interpolation.

use crate::channel::{noise_rng, BackscatterChannel};
use rand::Rng;
use serde::{Deserialize, Serialize};
use wavekey_imu::gesture::Gesture;
use wavekey_math::Vec3;

/// Reader sampling characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReaderSpec {
    /// Nominal sample rate (Hz); the paper uses 200 Hz.
    pub sample_rate: f64,
    /// Timestamp jitter standard deviation (s).
    pub timestamp_jitter: f64,
    /// Probability that a read slot is missed entirely.
    pub dropout: f64,
}

impl Default for ReaderSpec {
    fn default() -> Self {
        ReaderSpec { sample_rate: 200.0, timestamp_jitter: 0.0008, dropout: 0.005 }
    }
}

/// A raw RFID recording: wrapped phase and dB-scale magnitude per read.
#[derive(Debug, Clone, PartialEq)]
pub struct RfidRecording {
    /// Read timestamps (s), gesture-relative, strictly increasing.
    pub ts: Vec<f64>,
    /// Wrapped phase reports in `[0, 2π)`.
    pub phase: Vec<f64>,
    /// Magnitude reports (dB-like scale).
    pub magnitude: Vec<f64>,
}

impl RfidRecording {
    /// Number of reads.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// `true` when the recording is empty.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }
}

/// Records the tag held together with the phone through `gesture`.
///
/// `tag_offset` is the fixed displacement between the phone (whose
/// trajectory the gesture describes) and the tag in the same hand — a few
/// centimeters.
pub fn record_rfid(
    gesture: &Gesture,
    hand_base: Vec3,
    tag_offset: Vec3,
    channel: &BackscatterChannel,
    spec: &ReaderSpec,
    seed: u64,
) -> RfidRecording {
    let mut rng = noise_rng(seed);
    let duration = gesture.duration();
    let dt = 1.0 / spec.sample_rate;
    let n = (duration / dt).floor() as usize + 1;
    let mut ts = Vec::with_capacity(n);
    let mut phase = Vec::with_capacity(n);
    let mut magnitude = Vec::with_capacity(n);

    // The gesture's positions are relative to the user's body; offset the
    // whole trajectory to the placement's hand position.
    let base_shift = hand_base - gesture.position_at(0.0);

    for i in 0..n {
        if rng.gen_range(0.0..1.0) < spec.dropout {
            continue;
        }
        let jitter: f64 = {
            // Box-Muller inline to keep a single RNG stream.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let t = (i as f64 * dt + jitter * spec.timestamp_jitter).clamp(0.0, duration);
        let tag_pos = gesture.position_at(t) + base_shift + tag_offset;
        let (p, m) = channel.measure(tag_pos, t, &mut rng);
        ts.push(t);
        phase.push(p);
        magnitude.push(m);
    }

    // Enforce strictly increasing timestamps despite jitter.
    for i in 1..ts.len() {
        if ts[i] <= ts[i - 1] {
            ts[i] = ts[i - 1] + 1e-6;
        }
    }

    RfidRecording { ts, phase, magnitude }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::TagModel;
    use crate::environment::{Environment, UserPlacement};
    use wavekey_imu::gesture::{GestureConfig, GestureGenerator, VolunteerId};

    fn setup(seed: u64) -> (Gesture, RfidRecording) {
        let gesture =
            GestureGenerator::new(VolunteerId(0), seed).generate(&GestureConfig::default());
        let env = Environment::room(1);
        let channel = env.channel(TagModel::Alien9640A, 0, seed);
        let hand = UserPlacement::default().hand_position(&env);
        let rec = record_rfid(
            &gesture,
            hand,
            Vec3::new(0.03, 0.0, 0.0),
            &channel,
            &ReaderSpec::default(),
            seed,
        );
        (gesture, rec)
    }

    #[test]
    fn sample_count_near_rate_times_duration() {
        let (gesture, rec) = setup(1);
        let expected = (gesture.duration() * 200.0) as usize;
        // Dropout removes ~0.5 %.
        assert!(rec.len() as f64 > expected as f64 * 0.97);
        assert!(rec.len() <= expected + 1);
    }

    #[test]
    fn phases_wrapped() {
        let (_, rec) = setup(2);
        for &p in &rec.phase {
            assert!((0.0..std::f64::consts::TAU).contains(&p));
        }
    }

    #[test]
    fn phase_static_during_pause_varies_during_gesture() {
        let (gesture, rec) = setup(3);
        let pause = gesture.pause();
        let quiet: Vec<f64> = rec
            .ts
            .iter()
            .zip(&rec.phase)
            .filter(|(t, _)| **t < pause - 0.05)
            .map(|(_, p)| *p)
            .collect();
        let active: Vec<f64> = rec
            .ts
            .iter()
            .zip(&rec.phase)
            .filter(|(t, _)| **t > pause + 0.3 && **t < pause + 1.5)
            .map(|(_, p)| *p)
            .collect();
        // Wrapped-phase spread: use circular variance via resultant length.
        let circ_spread = |ps: &[f64]| {
            let (s, c) = ps.iter().fold((0.0, 0.0), |(s, c), p| (s + p.sin(), c + p.cos()));
            1.0 - (s * s + c * c).sqrt() / ps.len() as f64
        };
        assert!(
            circ_spread(&active) > 5.0 * circ_spread(&quiet).max(1e-6),
            "active {} quiet {}",
            circ_spread(&active),
            circ_spread(&quiet)
        );
    }

    #[test]
    fn timestamps_strictly_increase() {
        let (_, rec) = setup(4);
        for w in rec.ts.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn reproducible_with_same_seed() {
        let (_, a) = setup(5);
        let (_, b) = setup(5);
        assert_eq!(a, b);
    }
}
