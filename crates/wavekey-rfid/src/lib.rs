//! UHF RFID backscatter simulation and the server-side WaveKey pipeline.
//!
//! The original evaluation used an Impinj Speedway R420 reader with a
//! Laird S9028 antenna and six passive UHF tags. This crate replaces that
//! hardware with a physical-layer simulator while keeping the paper's
//! server-side processing (§IV-B-2) intact:
//!
//! * [`channel`] — the backscatter channel: round-trip carrier phase
//!   `4πd/λ`, two-way path loss, static multipath reflectors, moving-person
//!   scatterers for the "dynamic condition", per-tag hardware
//!   imperfections, antenna pattern, reader phase/RSSI quantization.
//! * [`reader`] — a 200 Hz sampler producing wrapped phase and magnitude
//!   streams as an Impinj-class reader reports them.
//! * [`environment`] — the four emulated rooms of Table I and the
//!   user-position geometry (distance / azimuth) of Table II.
//! * [`inventory`] — EPC Gen2-flavored tag inventory (slotted ALOHA with
//!   Q-algorithm frame adaptation): the substrate a deployed WaveKey
//!   server uses to discover the ticket/fob to range against.
//! * [`pipeline`] — §IV-B-2: onset detection, phase unwrapping,
//!   Savitzky-Golay denoising, producing the 400×2 matrix `R`.
//! * [`fault`] — deterministic sensing-fault injection (RF phase spikes,
//!   tag-read gaps) for the robustness/chaos suite.

pub mod channel;
pub mod environment;
pub mod fault;
pub mod inventory;
pub mod pipeline;
pub mod reader;

pub use channel::{BackscatterChannel, Complex, TagModel};
pub use fault::{inject_rfid_faults, RfidFaultConfig};
pub use environment::{Environment, UserPlacement};
pub use inventory::{run_inventory, Epc, FieldTag, InventoryConfig, InventoryReport};
pub use pipeline::{process_rfid, RfidMatrix, RfidPipelineConfig, RfidPipelineError};
pub use reader::{record_rfid, ReaderSpec, RfidRecording};

/// Speed of light (m/s).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// UHF RFID carrier frequency used by the simulator (Hz): the US 915 MHz
/// ISM band the Impinj R420 operates in.
pub const CARRIER_HZ: f64 = 915.0e6;

/// Carrier wavelength (m).
pub fn wavelength() -> f64 {
    SPEED_OF_LIGHT / CARRIER_HZ
}
