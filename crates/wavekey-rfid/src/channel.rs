//! The UHF backscatter channel model.
//!
//! A passive UHF tag reflects the reader's carrier. The reader therefore
//! observes the *round-trip* channel: for a one-way multipath channel
//! `h_f`, the backscatter channel is `h = h_f² · g_tag`. The one-way
//! channel is a sum of rays,
//!
//! ```text
//! h_f = Σ_k a_k · exp(−j 2π L_k / λ) / L_k
//! ```
//!
//! with `L_0` the direct reader→tag distance (amplitude scaled by the
//! antenna pattern) and `L_k` the reflected paths via static walls /
//! furniture and, in the "dynamic condition" of §VI-F, via walking people
//! whose positions move during the gesture.
//!
//! The phase the reader reports is `arg(h)` plus a per-tag offset (tag
//! backscatter phase + cable delay), quantized the way an Impinj R420
//! quantizes it (2π/4096 steps); RSSI-style magnitude is quantized to
//! 0.5 dB.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wavekey_math::Vec3;

use crate::wavelength;

/// A minimal complex number for channel arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// `r·e^{jθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Complex {
        Complex { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }

    /// Argument in `(−π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex addition.
    pub fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }

    /// Complex multiplication.
    pub fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Complex {
        Complex { re: self.re * s, im: self.im * s }
    }
}

/// The six RFID tags of the paper's evaluation (§VI-A): two units each of
/// three models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagModel {
    /// Alien ALN-9640 "Squiggle", unit 1 — the default tag of §VI-B.
    Alien9640A,
    /// Alien ALN-9640, unit 2.
    Alien9640B,
    /// Alien ALN-9730, unit 1.
    Alien9730A,
    /// Alien ALN-9730, unit 2.
    Alien9730B,
    /// SMARTRAC DogBone, unit 1.
    DogBoneA,
    /// SMARTRAC DogBone, unit 2.
    DogBoneB,
}

impl TagModel {
    /// All six tags.
    pub const ALL: [TagModel; 6] = [
        TagModel::Alien9640A,
        TagModel::Alien9640B,
        TagModel::Alien9730A,
        TagModel::Alien9730B,
        TagModel::DogBoneA,
        TagModel::DogBoneB,
    ];

    /// Per-tag hardware imperfections: `(phase_offset_rad,
    /// backscatter_gain, noise_scale)`. Units of the same model share the
    /// design but differ slightly (manufacturing variation), which is what
    /// the §VI-F-3 device study exercises.
    pub fn imperfections(self) -> (f64, f64, f64) {
        match self {
            TagModel::Alien9640A => (0.41, 1.00, 1.00),
            TagModel::Alien9640B => (0.47, 0.97, 1.05),
            TagModel::Alien9730A => (1.13, 0.92, 1.10),
            TagModel::Alien9730B => (1.21, 0.90, 1.12),
            TagModel::DogBoneA => (2.05, 1.08, 0.95),
            TagModel::DogBoneB => (1.98, 1.06, 0.97),
        }
    }
}

/// A static reflector: mirrors the signal via a fixed point with a fixed
/// complex gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticReflector {
    /// Reflection point (wall/furniture bounce).
    pub point: Vec3,
    /// Reflection amplitude relative to the direct path (< 1).
    pub gain: f64,
    /// Extra phase shift at the bounce (rad).
    pub phase_shift: f64,
}

/// A walking person: a moving reflector on a circular path around a
/// center, used for the paper's "dynamic condition".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingScatterer {
    /// Center of the walking path.
    pub center: Vec3,
    /// Path radius (m).
    pub radius: f64,
    /// Angular speed (rad/s) — ~1.2 m/s walking speed over the radius.
    pub angular_speed: f64,
    /// Starting angle (rad).
    pub phase0: f64,
    /// Reflection amplitude relative to the direct path.
    pub gain: f64,
}

impl MovingScatterer {
    /// The scatterer's position at time `t`.
    pub fn position_at(&self, t: f64) -> Vec3 {
        let a = self.phase0 + self.angular_speed * t;
        self.center + Vec3::new(a.cos(), a.sin(), 0.0) * self.radius
    }
}

/// The full backscatter channel: antenna + reflectors + tag.
#[derive(Debug, Clone, PartialEq)]
pub struct BackscatterChannel {
    /// Antenna position.
    pub antenna: Vec3,
    /// Antenna boresight direction (unit vector).
    pub boresight: Vec3,
    /// Static multipath reflectors.
    pub reflectors: Vec<StaticReflector>,
    /// Moving-person scatterers (empty in the static condition).
    pub movers: Vec<MovingScatterer>,
    /// The tag being read.
    pub tag: TagModel,
}

impl BackscatterChannel {
    /// Creates a channel with no multipath.
    pub fn free_space(antenna: Vec3, boresight: Vec3, tag: TagModel) -> BackscatterChannel {
        BackscatterChannel {
            antenna,
            boresight: boresight.normalized(),
            reflectors: Vec::new(),
            movers: Vec::new(),
            tag,
        }
    }

    /// Antenna gain toward `dir` (normalized direction from the antenna):
    /// a `cos^n` pattern matching a ~65° panel antenna such as the Laird
    /// S9028, with a −20 dB floor behind the antenna.
    pub fn antenna_gain(&self, dir: Vec3) -> f64 {
        let c = self.boresight.dot(dir.normalized()).max(0.0);
        (c.powi(3)).max(0.01)
    }

    /// The complex round-trip channel seen by the reader for a tag at
    /// `tag_pos` at time `t`.
    pub fn response(&self, tag_pos: Vec3, t: f64) -> Complex {
        let lambda = wavelength();
        let two_pi = std::f64::consts::TAU;

        // Direct ray.
        let d_vec = tag_pos - self.antenna;
        let d = d_vec.norm().max(0.05);
        let g_ant = self.antenna_gain(d_vec);
        let mut h_f = Complex::from_polar(g_ant / d, -two_pi * d / lambda);

        // Static reflections: antenna -> point -> tag.
        for r in &self.reflectors {
            let l = (r.point - self.antenna).norm() + (tag_pos - r.point).norm();
            let l = l.max(0.1);
            h_f = h_f.add(Complex::from_polar(r.gain / l, -two_pi * l / lambda + r.phase_shift));
        }

        // Moving scatterers.
        for m in &self.movers {
            let p = m.position_at(t);
            let l = (p - self.antenna).norm() + (tag_pos - p).norm();
            let l = l.max(0.1);
            h_f = h_f.add(Complex::from_polar(m.gain / l, -two_pi * l / lambda));
        }

        // Round trip: the backscatter channel is the square of the one-way
        // channel, times the tag's backscatter gain and phase offset.
        let (phase_offset, gain, _) = self.tag.imperfections();
        h_f.mul(h_f).mul(Complex::from_polar(gain, phase_offset))
    }

    /// Reader-style measurement at time `t`: `(wrapped_phase, magnitude)`
    /// including reader noise and quantization.
    ///
    /// * phase noise: zero-mean Gaussian, σ ≈ 0.05–0.15 rad depending on
    ///   the tag's `noise_scale`;
    /// * phase quantization: 2π/4096 (Impinj LLRF report resolution);
    /// * magnitude: reported on a dB-like scale quantized to 0.5 dB.
    pub fn measure(&self, tag_pos: Vec3, t: f64, rng: &mut StdRng) -> (f64, f64) {
        let h = self.response(tag_pos, t);
        let (_, _, noise_scale) = self.tag.imperfections();

        let phase_noise = gaussian(rng) * 0.06 * noise_scale;
        let raw_phase = h.arg() + phase_noise;
        let step = std::f64::consts::TAU / 4096.0;
        let mut phase = (raw_phase / step).round() * step;
        phase = phase.rem_euclid(std::f64::consts::TAU);

        // Magnitude in dB with 0.5 dB quantization and mild noise.
        let db = 20.0 * h.abs().max(1e-12).log10() + gaussian(rng) * 0.35 * noise_scale;
        let db_q = (db / 0.5).round() * 0.5;
        (phase, db_q)
    }
}

/// Box-Muller standard normal.
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Creates a seeded RNG for channel noise.
pub(crate) fn noise_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0xbac5_ca77)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> BackscatterChannel {
        BackscatterChannel::free_space(Vec3::ZERO, Vec3::X, TagModel::Alien9640A)
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a.mul(b);
        assert!((p.re - 5.0).abs() < 1e-12);
        assert!((p.im - 5.0).abs() < 1e-12);
        let s = a.add(b);
        assert!((s.re - 4.0).abs() < 1e-12 && (s.im - 1.0).abs() < 1e-12);
        let polar = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!(polar.re.abs() < 1e-12 && (polar.im - 2.0).abs() < 1e-12);
    }

    #[test]
    fn phase_advances_with_distance() {
        // Moving the tag λ/4 away changes the round-trip phase by π.
        let ch = channel();
        let lambda = wavelength();
        let p1 = ch.response(Vec3::new(3.0, 0.0, 0.0), 0.0).arg();
        let p2 = ch.response(Vec3::new(3.0 + lambda / 4.0, 0.0, 0.0), 0.0).arg();
        let mut diff = p1 - p2;
        while diff < 0.0 {
            diff += std::f64::consts::TAU;
        }
        diff %= std::f64::consts::TAU;
        assert!((diff - std::f64::consts::PI).abs() < 1e-6, "Δφ = {diff}");
    }

    #[test]
    fn full_wavelength_round_trip_is_invariant() {
        let ch = channel();
        let lambda = wavelength();
        let p1 = ch.response(Vec3::new(4.0, 0.0, 0.0), 0.0).arg();
        let p2 = ch.response(Vec3::new(4.0 + lambda / 2.0, 0.0, 0.0), 0.0).arg();
        // λ/2 displacement = full 2π round-trip shift (phases equal mod 2π,
        // magnitudes differ slightly from path loss).
        let diff = (p1 - p2).rem_euclid(std::f64::consts::TAU);
        assert!(diff < 1e-3 || diff > std::f64::consts::TAU - 1e-3, "Δφ = {diff}");
    }

    #[test]
    fn magnitude_decays_with_distance() {
        let ch = channel();
        let near = ch.response(Vec3::new(1.0, 0.0, 0.0), 0.0).abs();
        let far = ch.response(Vec3::new(5.0, 0.0, 0.0), 0.0).abs();
        // Round-trip amplitude ~ 1/d²: 5× distance → 25× weaker.
        let ratio = near / far;
        assert!((ratio - 25.0).abs() / 25.0 < 0.05, "ratio {ratio}");
    }

    #[test]
    fn antenna_pattern_attenuates_off_axis() {
        let ch = channel();
        let on_axis = ch.antenna_gain(Vec3::X);
        let off_axis = ch.antenna_gain(Vec3::new(1.0, 1.0, 0.0));
        let behind = ch.antenna_gain(-Vec3::X);
        assert!(on_axis > off_axis);
        assert!(off_axis > behind);
        assert!(behind >= 0.01);
    }

    #[test]
    fn multipath_changes_response() {
        let mut ch = channel();
        let free = ch.response(Vec3::new(3.0, 0.5, 1.0), 0.0);
        ch.reflectors.push(StaticReflector {
            point: Vec3::new(2.0, 3.0, 1.0),
            gain: 0.4,
            phase_shift: std::f64::consts::PI,
        });
        let with_mp = ch.response(Vec3::new(3.0, 0.5, 1.0), 0.0);
        assert!((free.abs() - with_mp.abs()).abs() > 1e-9 || (free.arg() - with_mp.arg()).abs() > 1e-9);
    }

    #[test]
    fn movers_make_channel_time_varying() {
        let mut ch = channel();
        ch.movers.push(MovingScatterer {
            center: Vec3::new(2.0, 2.0, 1.0),
            radius: 1.0,
            angular_speed: 0.6,
            phase0: 0.0,
            gain: 0.3,
        });
        let tag = Vec3::new(3.0, 0.0, 1.0);
        let a = ch.response(tag, 0.0);
        let b = ch.response(tag, 1.0);
        assert!((a.arg() - b.arg()).abs() > 1e-6 || (a.abs() - b.abs()).abs() > 1e-9);
    }

    #[test]
    fn static_channel_is_time_invariant() {
        let ch = channel();
        let tag = Vec3::new(3.0, 0.0, 1.0);
        assert_eq!(ch.response(tag, 0.0), ch.response(tag, 5.0));
    }

    #[test]
    fn measure_is_quantized_and_wrapped() {
        let ch = channel();
        let mut rng = noise_rng(1);
        let (phase, db) = ch.measure(Vec3::new(3.0, 0.0, 1.0), 0.0, &mut rng);
        assert!((0.0..std::f64::consts::TAU).contains(&phase));
        let step = std::f64::consts::TAU / 4096.0;
        let remainder = (phase / step).fract().abs();
        assert!(remainder < 1e-6 || remainder > 1.0 - 1e-6);
        let db_rem = (db / 0.5).fract().abs();
        assert!(db_rem < 1e-9 || db_rem > 1.0 - 1e-9);
    }

    #[test]
    fn tags_differ() {
        for (i, a) in TagModel::ALL.iter().enumerate() {
            for b in TagModel::ALL.iter().skip(i + 1) {
                assert_ne!(a.imperfections(), b.imperfections());
            }
        }
    }
}
