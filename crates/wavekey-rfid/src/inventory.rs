//! EPC Gen2-flavored tag inventory.
//!
//! The paper's systems sit on ordinary UHF RFID infrastructure: before a
//! WaveKey session can start, the reader must *inventory* the tag
//! population to find the ticket/fob it will range against (Context 1's
//! line-up system explicitly tracks many tickets at once). This module
//! provides that substrate: a simplified EPC Class-1 Generation-2
//! inventory round — slotted ALOHA with the Q-algorithm's dynamic frame
//! sizing — over a set of simulated tags with EPCs and read reliability
//! derived from their channel magnitude.
//!
//! The protocol is deliberately reduced to the pieces WaveKey needs
//! (singulation and EPC reporting); session/handle state machines,
//! SELECT masks, and link-timing parameters of the full Gen2 spec are out
//! of scope.

use crate::channel::{BackscatterChannel, TagModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wavekey_math::Vec3;

/// A 96-bit EPC identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Epc(pub [u8; 12]);

impl Epc {
    /// Derives a deterministic EPC from a tag model and serial.
    pub fn derive(model: TagModel, serial: u32) -> Epc {
        let mut epc = [0u8; 12];
        // Header byte per model family, then the serial, then a filler
        // pattern — enough structure for tests to assert on.
        epc[0] = match model {
            TagModel::Alien9640A | TagModel::Alien9640B => 0xa1,
            TagModel::Alien9730A | TagModel::Alien9730B => 0xa2,
            TagModel::DogBoneA | TagModel::DogBoneB => 0xd0,
        };
        epc[1..5].copy_from_slice(&serial.to_be_bytes());
        for (i, b) in epc.iter_mut().enumerate().skip(5) {
            *b = (i as u8) ^ 0x5a;
        }
        Epc(epc)
    }
}

impl std::fmt::Display for Epc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// A tag in the reader's field.
#[derive(Debug, Clone)]
pub struct FieldTag {
    /// The tag's identity.
    pub epc: Epc,
    /// Hardware model.
    pub model: TagModel,
    /// Position in the room (for read-reliability estimation).
    pub position: Vec3,
}

/// Outcome of one inventory run.
#[derive(Debug, Clone, Default)]
pub struct InventoryReport {
    /// EPCs successfully singulated, in discovery order.
    pub found: Vec<Epc>,
    /// Total query slots spent.
    pub slots: usize,
    /// Slots wasted on collisions.
    pub collisions: usize,
    /// Final Q value of the adaptive algorithm.
    pub final_q: u32,
}

/// Configuration of the inventory algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InventoryConfig {
    /// Initial Q (frame size is `2^Q` slots).
    pub initial_q: u32,
    /// Maximum inventory rounds before giving up on silent tags.
    pub max_rounds: usize,
    /// Q-algorithm step (the Gen2 spec suggests 0.1–0.5).
    pub q_step: f64,
}

impl Default for InventoryConfig {
    fn default() -> Self {
        InventoryConfig { initial_q: 4, max_rounds: 16, q_step: 0.3 }
    }
}

/// Runs a Gen2-style inventory over `tags` through `channel`.
///
/// Each round opens a `2^Q`-slot frame; every unacknowledged tag draws a
/// slot. A slot with exactly one reply singulates that tag *if* the
/// channel is strong enough (read probability derived from the
/// backscatter magnitude at the tag's position); collisions and failed
/// reads push Q up, empty frames pull it down — the Gen2 Q-algorithm in
/// miniature.
pub fn run_inventory(
    tags: &[FieldTag],
    channel: &BackscatterChannel,
    config: &InventoryConfig,
    seed: u64,
) -> InventoryReport {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1af0);
    let mut report = InventoryReport { final_q: config.initial_q, ..Default::default() };
    let mut pending: Vec<&FieldTag> = tags.iter().collect();
    let mut q_float = f64::from(config.initial_q);

    for round in 0..config.max_rounds {
        if pending.is_empty() {
            break;
        }
        let q = q_float.round().clamp(0.0, 15.0) as u32;
        report.final_q = q;
        let frame = 1usize << q;
        // Each pending tag draws a slot.
        let mut slots: Vec<Vec<usize>> = vec![Vec::new(); frame];
        for (i, _) in pending.iter().enumerate() {
            slots[rng.gen_range(0..frame)].push(i);
        }
        let mut acked = Vec::new();
        for slot in &slots {
            report.slots += 1;
            match slot.len() {
                0 => {
                    q_float = (q_float - config.q_step).max(0.0);
                }
                1 => {
                    let tag = pending[slot[0]];
                    // Read reliability from channel strength: strong tags
                    // read ~always, weak ones intermittently.
                    let magnitude = channel.response(tag.position, round as f64 * 0.1).abs();
                    let p_read = (magnitude * 120.0).clamp(0.05, 0.99);
                    if rng.gen_range(0.0..1.0) < p_read {
                        report.found.push(tag.epc);
                        acked.push(slot[0]);
                    }
                }
                _ => {
                    report.collisions += 1;
                    q_float = (q_float + config.q_step).min(15.0);
                }
            }
        }
        // Remove acknowledged tags (highest indices first).
        acked.sort_unstable_by(|a, b| b.cmp(a));
        for i in acked {
            pending.swap_remove(i);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::Environment;

    fn population(n: usize, distance: f64) -> (Vec<FieldTag>, BackscatterChannel) {
        let env = Environment::room(1);
        let channel = env.channel(TagModel::Alien9640A, 0, 1);
        let tags = (0..n)
            .map(|i| FieldTag {
                epc: Epc::derive(TagModel::Alien9640A, i as u32),
                model: TagModel::Alien9640A,
                // Cluster the population near the boresight: far off-axis
                // tags legitimately fall outside the antenna pattern.
                position: Vec3::new(
                    distance + 0.05 * i as f64,
                    0.15 * (i % 8) as f64 - 0.5,
                    1.3,
                ),
            })
            .collect();
        (tags, channel)
    }

    #[test]
    fn epcs_are_unique_and_structured() {
        let a = Epc::derive(TagModel::Alien9640A, 1);
        let b = Epc::derive(TagModel::Alien9640A, 2);
        let c = Epc::derive(TagModel::DogBoneA, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.0[0], 0xa1);
        assert_eq!(c.0[0], 0xd0);
        assert_eq!(format!("{a}").len(), 24);
    }

    #[test]
    fn inventories_all_nearby_tags() {
        let (tags, channel) = population(12, 2.0);
        let report = run_inventory(&tags, &channel, &InventoryConfig::default(), 7);
        assert_eq!(report.found.len(), 12, "found {:?}", report.found.len());
        // No duplicates.
        let mut epcs: Vec<_> = report.found.clone();
        epcs.sort_by_key(|e| e.0);
        epcs.dedup();
        assert_eq!(epcs.len(), 12);
    }

    #[test]
    fn single_tag_needs_few_slots() {
        let (tags, channel) = population(1, 1.5);
        let report = run_inventory(&tags, &channel, &InventoryConfig::default(), 9);
        assert_eq!(report.found.len(), 1);
        assert!(report.collisions == 0);
    }

    #[test]
    fn large_population_collides_but_converges() {
        let (tags, channel) = population(60, 2.0);
        let report = run_inventory(&tags, &channel, &InventoryConfig::default(), 11);
        assert!(report.collisions > 0, "60 tags should collide somewhere");
        assert!(
            report.found.len() >= 55,
            "only {} of 60 singulated",
            report.found.len()
        );
    }

    #[test]
    fn distant_tags_read_less_reliably() {
        let (near, channel) = population(10, 1.0);
        let (far, _) = population(10, 12.0);
        let cfg = InventoryConfig { max_rounds: 3, ..Default::default() };
        let near_found = run_inventory(&near, &channel, &cfg, 13).found.len();
        let far_found = run_inventory(&far, &channel, &cfg, 13).found.len();
        assert!(
            near_found >= far_found,
            "near {near_found} vs far {far_found}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (tags, channel) = population(8, 2.0);
        let a = run_inventory(&tags, &channel, &InventoryConfig::default(), 21);
        let b = run_inventory(&tags, &channel, &InventoryConfig::default(), 21);
        assert_eq!(a.found, b.found);
        assert_eq!(a.slots, b.slots);
    }
}
