//! Emulated rooms and user placement.
//!
//! Table I evaluates WaveKey in four "environments" created by moving the
//! RFID reader/antenna inside one laboratory room — each environment has a
//! different antenna pose and a different static multipath layout. Table II
//! varies the user's distance (1–9 m) and azimuth (−60°…60°) relative to
//! the antenna. This module encodes both studies' geometry.

use crate::channel::{BackscatterChannel, MovingScatterer, StaticReflector, TagModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wavekey_math::Vec3;

/// One of the emulated laboratory environments.
#[derive(Debug, Clone, PartialEq)]
pub struct Environment {
    /// Environment index (1–4 for the Table I rooms).
    pub id: u32,
    /// Antenna position (m, room coordinates; z up).
    pub antenna: Vec3,
    /// Antenna boresight (unit vector).
    pub boresight: Vec3,
    /// Static multipath layout.
    pub reflectors: Vec<StaticReflector>,
}

impl Environment {
    /// Returns emulated environment `id` (1–4), matching the Table I
    /// setup: same room, different reader location/orientation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `1..=4`.
    pub fn room(id: u32) -> Environment {
        assert!((1..=4).contains(&id), "environment id must be 1..=4");
        // Deterministic per-room multipath layout.
        let mut rng = StdRng::seed_from_u64(0xe4_007 + u64::from(id));
        let (antenna, boresight) = match id {
            1 => (Vec3::new(0.0, 0.0, 1.5), Vec3::X),
            2 => (Vec3::new(0.0, 4.0, 1.8), Vec3::new(1.0, -0.5, 0.0).normalized()),
            3 => (Vec3::new(-2.0, -2.0, 1.2), Vec3::new(1.0, 0.7, 0.0).normalized()),
            _ => (Vec3::new(1.0, 5.0, 2.0), Vec3::new(0.3, -1.0, -0.1).normalized()),
        };
        let n_reflectors = 4 + (id as usize % 3);
        let reflectors = (0..n_reflectors)
            .map(|_| StaticReflector {
                point: Vec3::new(
                    rng.gen_range(-4.0..8.0),
                    rng.gen_range(-4.0..8.0),
                    rng.gen_range(0.3..2.8),
                ),
                gain: rng.gen_range(0.04..0.18),
                phase_shift: rng.gen_range(0.0..std::f64::consts::TAU),
            })
            .collect();
        Environment { id, antenna, boresight, reflectors }
    }

    /// Builds the backscatter channel for this environment, `tag`, and a
    /// number of walking people (`0` = the paper's static condition,
    /// `5` = its dynamic condition, where the other five volunteers walk
    /// around the reader).
    pub fn channel(&self, tag: TagModel, walkers: usize, seed: u64) -> BackscatterChannel {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd1_a117);
        let movers = (0..walkers)
            .map(|_| {
                let radius = rng.gen_range(1.0..3.0);
                // ~1.2 m/s walking speed.
                let angular_speed = 1.2 / radius;
                MovingScatterer {
                    center: self.antenna
                        + Vec3::new(rng.gen_range(1.0..4.0), rng.gen_range(-2.0..2.0), 0.0),
                    radius,
                    angular_speed,
                    phase0: rng.gen_range(0.0..std::f64::consts::TAU),
                    gain: rng.gen_range(0.08..0.25),
                }
            })
            .collect();
        BackscatterChannel {
            antenna: self.antenna,
            boresight: self.boresight,
            reflectors: self.reflectors.clone(),
            movers,
            tag,
        }
    }
}

/// Where the user stands relative to the antenna (Table II geometry).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserPlacement {
    /// Distance from the antenna (m). The paper evaluates 1–9 m.
    pub distance: f64,
    /// Azimuth from boresight (degrees). The paper evaluates −60°…60°.
    pub azimuth_deg: f64,
}

impl Default for UserPlacement {
    fn default() -> Self {
        // §VI-B default: 5 m, 0° azimuth.
        UserPlacement { distance: 5.0, azimuth_deg: 0.0 }
    }
}

impl UserPlacement {
    /// The user's hand base position in room coordinates for `env`.
    ///
    /// The azimuth rotates around the vertical axis relative to the
    /// antenna boresight; the hand hovers at roughly chest height near the
    /// user's body.
    pub fn hand_position(&self, env: &Environment) -> Vec3 {
        let az = self.azimuth_deg.to_radians();
        // Rotate the boresight by the azimuth in the horizontal plane.
        let b = Vec3::new(env.boresight.x, env.boresight.y, 0.0).normalized();
        let dir = Vec3::new(
            b.x * az.cos() - b.y * az.sin(),
            b.x * az.sin() + b.y * az.cos(),
            0.0,
        );
        env.antenna + dir * self.distance + Vec3::new(0.0, 0.0, 1.3 - env.antenna.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rooms_differ() {
        let rooms: Vec<Environment> = (1..=4).map(Environment::room).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    rooms[i].antenna != rooms[j].antenna
                        || rooms[i].boresight != rooms[j].boresight
                );
            }
        }
    }

    #[test]
    fn rooms_are_deterministic() {
        let a = Environment::room(2);
        let b = Environment::room(2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "environment id must be 1..=4")]
    fn invalid_room_panics() {
        Environment::room(5);
    }

    #[test]
    fn default_placement_is_5m_boresight() {
        let env = Environment::room(1);
        let pos = UserPlacement::default().hand_position(&env);
        let horizontal = Vec3::new(pos.x - env.antenna.x, pos.y - env.antenna.y, 0.0);
        assert!((horizontal.norm() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn azimuth_rotates_position() {
        let env = Environment::room(1);
        let p0 = UserPlacement { distance: 5.0, azimuth_deg: 0.0 }.hand_position(&env);
        let p60 = UserPlacement { distance: 5.0, azimuth_deg: 60.0 }.hand_position(&env);
        assert!(p0.distance(p60) > 3.0);
        // Same distance from the antenna in the horizontal plane.
        let d0 = Vec3::new(p0.x - env.antenna.x, p0.y - env.antenna.y, 0.0).norm();
        let d60 = Vec3::new(p60.x - env.antenna.x, p60.y - env.antenna.y, 0.0).norm();
        assert!((d0 - d60).abs() < 1e-9);
    }

    #[test]
    fn dynamic_channel_has_walkers() {
        let env = Environment::room(3);
        let ch = env.channel(TagModel::Alien9640A, 5, 7);
        assert_eq!(ch.movers.len(), 5);
        let ch_static = env.channel(TagModel::Alien9640A, 0, 7);
        assert!(ch_static.movers.is_empty());
    }
}
