//! Property-based tests for the backscatter channel simulation.

use proptest::prelude::*;
use wavekey_math::Vec3;
use wavekey_rfid::channel::{BackscatterChannel, TagModel};
use wavekey_rfid::environment::{Environment, UserPlacement};
use wavekey_rfid::wavelength;

proptest! {
    #[test]
    fn phase_is_distance_locked_in_free_space(
        d in 0.5f64..10.0,
        y in -2.0f64..2.0,
        z in 0.5f64..2.5
    ) {
        // Moving the tag radially by λ/4 shifts the round-trip phase by π.
        let ch = BackscatterChannel::free_space(Vec3::ZERO, Vec3::X, TagModel::Alien9640A);
        let p = Vec3::new(d, y, z);
        let u = p.normalized();
        let p2 = p + u * (wavelength() / 4.0);
        let ph1 = ch.response(p, 0.0).arg();
        let ph2 = ch.response(p2, 0.0).arg();
        let diff = (ph1 - ph2).rem_euclid(std::f64::consts::TAU);
        prop_assert!((diff - std::f64::consts::PI).abs() < 1e-6, "Δφ = {diff}");
    }

    #[test]
    fn magnitude_monotone_in_distance_on_boresight(d1 in 1.0f64..5.0, extra in 0.5f64..5.0) {
        let ch = BackscatterChannel::free_space(Vec3::ZERO, Vec3::X, TagModel::Alien9640A);
        let near = ch.response(Vec3::new(d1, 0.0, 0.0), 0.0).abs();
        let far = ch.response(Vec3::new(d1 + extra, 0.0, 0.0), 0.0).abs();
        prop_assert!(near > far);
    }

    #[test]
    fn antenna_gain_bounded_and_peaked(x in -1.0f64..1.0, y in -1.0f64..1.0, z in -1.0f64..1.0) {
        prop_assume!(x.abs() + y.abs() + z.abs() > 1e-3);
        let ch = BackscatterChannel::free_space(Vec3::ZERO, Vec3::X, TagModel::Alien9640A);
        let g = ch.antenna_gain(Vec3::new(x, y, z));
        prop_assert!((0.01..=1.0).contains(&g));
        prop_assert!(g <= ch.antenna_gain(Vec3::X) + 1e-12);
    }

    #[test]
    fn placements_are_at_requested_distance(d in 1.0f64..9.0, az in -60.0f64..60.0, env_id in 1u32..5) {
        let env = Environment::room(env_id);
        let hand = UserPlacement { distance: d, azimuth_deg: az }.hand_position(&env);
        let horizontal = Vec3::new(hand.x - env.antenna.x, hand.y - env.antenna.y, 0.0);
        prop_assert!((horizontal.norm() - d).abs() < 1e-9);
    }

    #[test]
    fn measurements_always_well_formed(
        seed in any::<u64>(),
        d in 1.0f64..9.0,
        tag_idx in 0usize..6
    ) {
        let env = Environment::room(1);
        let ch = env.channel(TagModel::ALL[tag_idx], 2, seed);
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let (phase, db) = ch.measure(Vec3::new(d, 0.3, 1.2), 0.5, &mut rng);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&phase));
        prop_assert!(db.is_finite());
    }
}
