//! Sharded session table.
//!
//! The gateway tracks every in-flight connection in a [`SessionTable`]
//! split across power-of-two shards, each behind its own mutex, so a
//! 100k-session soak never serializes on one lock and a single shard's
//! map stays small enough to rehash cheaply. Aggregate gauges (live,
//! peak-live, completed, evicted) are lock-free atomics updated outside
//! the shard locks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use wavekey_core::agreement::AgreementError;

/// Why the gateway removed a session before it finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// The peer went silent (or disappeared) past the idle budget.
    Idle,
    /// The connection's write queue stopped draining — the peer accepts
    /// no bytes and the bounded queue refuses to grow.
    Backpressure,
    /// The gateway is shutting down and rejected the connection before
    /// a session started.
    Shutdown,
}

impl EvictReason {
    /// The metric label value (`wavekey_evictions_total{reason=...}`).
    pub fn label(self) -> &'static str {
        match self {
            EvictReason::Idle => "idle",
            EvictReason::Backpressure => "backpressure",
            EvictReason::Shutdown => "shutdown",
        }
    }
}

/// Terminal record for one session.
#[derive(Debug, Clone)]
pub enum SessionOutcome {
    /// Agreement completed; the server-side key.
    Done(Vec<u8>),
    /// The protocol failed with a machine-level error.
    Failed(AgreementError),
    /// The gateway evicted the session.
    Evicted(EvictReason),
}

#[derive(Debug)]
struct Slot {
    outcome: Option<SessionOutcome>,
}

/// Sharded map from connection id to session slot.
#[derive(Debug)]
pub struct SessionTable {
    shards: Vec<Mutex<HashMap<u64, Slot>>>,
    mask: u64,
    live: AtomicU64,
    peak_live: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    evicted: AtomicU64,
}

impl SessionTable {
    /// A table with `shards` shards, rounded up to a power of two.
    pub fn new(shards: usize) -> SessionTable {
        let n = shards.max(1).next_power_of_two();
        SessionTable {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n as u64 - 1,
            live: AtomicU64::new(0),
            peak_live: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Slot>> {
        // Multiplicative spread so sequential conn ids do not all land
        // in consecutive shards of one arena page.
        let h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h & self.mask) as usize]
    }

    /// Registers a new in-flight session.
    pub fn insert(&self, id: u64) {
        self.shard(id).lock().unwrap().insert(id, Slot { outcome: None });
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_live.fetch_max(live, Ordering::Relaxed);
    }

    /// Records a terminal outcome for `id` and drops it from the live
    /// set. Unknown ids are ignored (an eviction can race a completion
    /// only through driver bugs; last write wins on the counters).
    pub fn finish(&self, id: u64, outcome: SessionOutcome) {
        let mut shard = self.shard(id).lock().unwrap();
        let Some(slot) = shard.get_mut(&id) else { return };
        if slot.outcome.is_some() {
            return;
        }
        match &outcome {
            SessionOutcome::Done(_) => self.completed.fetch_add(1, Ordering::Relaxed),
            SessionOutcome::Failed(_) => self.failed.fetch_add(1, Ordering::Relaxed),
            SessionOutcome::Evicted(_) => self.evicted.fetch_add(1, Ordering::Relaxed),
        };
        slot.outcome = Some(outcome);
        drop(shard);
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sessions inserted but not yet finished.
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`live`](Self::live).
    pub fn peak_live(&self) -> u64 {
        self.peak_live.load(Ordering::Relaxed)
    }

    /// Sessions that completed the agreement.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Sessions that failed with a protocol error.
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Sessions evicted by the gateway.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Every recorded outcome, sorted by connection id.
    pub fn outcomes(&self) -> Vec<(u64, SessionOutcome)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            for (id, slot) in shard.lock().unwrap().iter() {
                if let Some(outcome) = &slot.outcome {
                    all.push((*id, outcome.clone()));
                }
            }
        }
        all.sort_by_key(|(id, _)| *id);
        all
    }

    /// The outcome for one session, if terminal.
    pub fn outcome(&self, id: u64) -> Option<SessionOutcome> {
        self.shard(id).lock().unwrap().get(&id).and_then(|s| s.outcome.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(SessionTable::new(1).shard_count(), 1);
        assert_eq!(SessionTable::new(5).shard_count(), 8);
        assert_eq!(SessionTable::new(64).shard_count(), 64);
    }

    #[test]
    fn live_and_peak_track_insert_and_finish() {
        let table = SessionTable::new(4);
        for id in 1..=10 {
            table.insert(id);
        }
        assert_eq!(table.live(), 10);
        assert_eq!(table.peak_live(), 10);
        for id in 1..=6 {
            table.finish(id, SessionOutcome::Done(vec![id as u8]));
        }
        table.finish(7, SessionOutcome::Evicted(EvictReason::Idle));
        table.finish(8, SessionOutcome::Failed(AgreementError::ConfirmationFailed));
        assert_eq!(table.live(), 2);
        assert_eq!(table.peak_live(), 10);
        assert_eq!(table.completed(), 6);
        assert_eq!(table.evicted(), 1);
        assert_eq!(table.failed(), 1);
    }

    #[test]
    fn first_terminal_outcome_wins() {
        let table = SessionTable::new(2);
        table.insert(3);
        table.finish(3, SessionOutcome::Done(vec![9]));
        table.finish(3, SessionOutcome::Evicted(EvictReason::Idle));
        assert!(matches!(table.outcome(3), Some(SessionOutcome::Done(k)) if k == vec![9]));
        assert_eq!(table.live(), 0);
        assert_eq!(table.evicted(), 0);
    }

    #[test]
    fn outcomes_are_sorted_and_skip_live_sessions() {
        let table = SessionTable::new(8);
        for id in [5u64, 2, 9, 4] {
            table.insert(id);
        }
        table.finish(9, SessionOutcome::Done(vec![1]));
        table.finish(2, SessionOutcome::Done(vec![2]));
        let ids: Vec<u64> = table.outcomes().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![2, 9]);
    }
}
