//! The async WaveKey gateway.
//!
//! [`Gateway`] is the event-loop face of the protocol: it accepts
//! simulated connections from a [`SimNet`], frames bytes through the
//! streaming [`Decoder`], and drives one transport-agnostic
//! [`Endpoint`] (the same session core `SessionManager` uses) per
//! connection. The sans-IO split does the heavy lifting — machines
//! never see sockets, the gateway never sees group elements — so a
//! gateway session's key is **bit-identical** to the lockstep driver's
//! for the same seeds and RNGs, regardless of how the bytes were
//! chunked, stalled, or interleaved in flight.
//!
//! Concerns handled here, per connection:
//!
//! - incremental framing with resync (garbage never kills the loop),
//! - a bounded write queue: flush-before-read, with eviction when the
//!   queue overflows or stops draining (`reason="backpressure"`),
//! - idle eviction on the executor's logical clock — timers only fire
//!   when the whole system quiesces, so a *slow* peer is never confused
//!   with a *gone* peer (`reason="idle"`),
//! - graceful shutdown: new connections are rejected
//!   (`reason="shutdown"`) while accepted sessions drain to completion,
//! - start-cost pooling: eligible servers' first exponentiations are
//!   collected into one cross-session [`ModexpBatch`] flushed at
//!   `batch_max` or a `batch_ticks` deadline,
//! - a per-connection [`EventScope`] causal timeline under actor
//!   `"gateway"`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wavekey_core::agreement::{AgreementConfig, AgreementError};
use wavekey_core::proto::link::{Endpoint, LinkDiscipline};
use wavekey_core::proto::{Decoder, Frame, MobileAgreement, ServerAgreement, StartPending};
use wavekey_crypto::batch::ModexpBatch;
use wavekey_obs::{EventScope, Obs};
use wavekey_store::{DurableStore, StoreError, TenantQuota};

use crate::exec::{race, Either, Handle};
use crate::stream::{SimNet, SimStream};
use crate::table::{EvictReason, SessionOutcome, SessionTable};

/// Gateway tuning knobs on top of the protocol's [`AgreementConfig`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Protocol parameters for every session.
    pub agreement: AgreementConfig,
    /// Session-table shards (rounded up to a power of two).
    pub shards: usize,
    /// Per-connection write-queue byte bound; overflow evicts.
    pub write_queue_cap: usize,
    /// Logical ticks a connection may sit idle (no readable bytes, or
    /// no write progress) before eviction.
    pub idle_ticks: u64,
    /// Flush the pooled start batch at this many pending sessions.
    pub batch_max: usize,
    /// ... or this many logical ticks after the first pending session.
    pub batch_ticks: u64,
    /// Base seed for per-connection server RNG derivation.
    pub server_seed: u64,
    /// Per-connection read buffer size in bytes.
    pub read_buf: usize,
}

impl GatewayConfig {
    /// Defaults sized for soak fleets: 64 shards, 64 KiB write queues,
    /// 32-tick idle budget, 64-session start batches.
    pub fn new(agreement: AgreementConfig) -> GatewayConfig {
        GatewayConfig {
            agreement,
            shards: 64,
            write_queue_cap: 1 << 16,
            idle_ticks: 32,
            batch_max: 64,
            batch_ticks: 4,
            server_seed: 0xC0_F7EE,
            read_buf: 512,
        }
    }
}

/// The deterministic per-connection server RNG: the soak driver derives
/// the same stream to mirror a gateway session in the lockstep driver.
pub fn server_rng(base: u64, conn_id: u64) -> StdRng {
    StdRng::seed_from_u64(base ^ conn_id.wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// Adapts a sensing [`wavekey_core::Session`] into a [`Gateway`] seed
/// source: every accepted connection simulates one fresh gesture and
/// hands the server-side seed `S_R` to the agreement. The session's
/// encoder routing applies, so a config with `quantized_inference` set
/// (and calibrated models) runs every gateway session on the int8 path.
///
/// The returned closure panics if the sensing pipeline fails — gateway
/// deployments that need graceful sensing fallback should wrap their own
/// seed source.
pub fn session_seed_fn(session: wavekey_core::Session) -> impl Fn(u64) -> Vec<bool> {
    let cell = std::cell::RefCell::new(session);
    move |_conn_id| {
        let (_, s_r) = cell.borrow_mut().derive_seeds().expect("sensing pipeline");
        s_r
    }
}

/// Persists completed gateway enrolments into a [`DurableStore`].
///
/// The executor is single-threaded, so the store is shared across
/// connection tasks as `Rc<RefCell<_>>` — no locks, no Send bound. Each
/// connection maps to a synthetic gateway EPC (`"GW" ‖ 0 ‖ 0 ‖ conn_id`),
/// issued on first completion; re-connects of the same `conn_id` land as
/// re-enrolments so the key generation advances instead of forking.
pub struct EnrollmentSink {
    store: Rc<RefCell<DurableStore>>,
    tenant: u64,
}

impl EnrollmentSink {
    /// A sink writing under `tenant` (created unlimited if absent).
    pub fn new(store: Rc<RefCell<DurableStore>>, tenant: u64) -> Result<EnrollmentSink, StoreError> {
        store.borrow_mut().ensure_tenant(tenant, TenantQuota::unlimited())?;
        Ok(EnrollmentSink { store, tenant })
    }

    /// The synthetic EPC a connection's enrolment is stored under.
    pub fn epc_for(conn_id: u64) -> [u8; 12] {
        let mut epc = [0u8; 12];
        epc[0] = b'G';
        epc[1] = b'W';
        epc[4..].copy_from_slice(&conn_id.to_le_bytes());
        epc
    }

    /// The shared store handle (for draining / inspection after a run).
    pub fn store(&self) -> Rc<RefCell<DurableStore>> {
        Rc::clone(&self.store)
    }

    fn persist(&self, conn_id: u64, key: &[u8]) -> Result<(), StoreError> {
        let mut store = self.store.borrow_mut();
        let epc = Self::epc_for(conn_id);
        let generation = match store.state().ticket(self.tenant, &epc) {
            Some(t) => t.generation,
            None => {
                store.issue(self.tenant, epc, 0)?;
                0
            }
        };
        if generation == 0 {
            store.bind_key(self.tenant, epc, key)?;
        } else {
            store.re_enroll(self.tenant, epc, key)?;
        }
        Ok(())
    }
}

struct GatewayInner {
    config: GatewayConfig,
    obs: Obs,
    table: SessionTable,
    accepting: AtomicBool,
    rejected: AtomicU64,
    seed_fn: Box<dyn Fn(u64) -> Vec<bool>>,
    sink: Option<EnrollmentSink>,
}

/// A cloneable handle to one gateway instance.
#[derive(Clone)]
pub struct Gateway {
    inner: Arc<GatewayInner>,
}

/// A server whose pooled start exponentiations are awaiting the batch.
struct PendingStart {
    stream: SimStream,
    server: ServerAgreement,
    pending: StartPending,
    scope: EventScope,
}

impl Gateway {
    /// A gateway running `config`, reporting into `obs`, and asking
    /// `seed_fn(conn_id)` for the server-side RFID seed bits of each
    /// accepted connection (the deployment's sensing front-end; the
    /// soak's scripted per-session seeds).
    pub fn new(
        config: GatewayConfig,
        obs: Obs,
        seed_fn: impl Fn(u64) -> Vec<bool> + 'static,
    ) -> Gateway {
        Gateway::build(config, obs, seed_fn, None)
    }

    /// Like [`Gateway::new`], but every completed session's key is also
    /// written through `sink` into its durable store before the session
    /// is marked done — a crash after completion replays the enrolment.
    pub fn with_sink(
        config: GatewayConfig,
        obs: Obs,
        seed_fn: impl Fn(u64) -> Vec<bool> + 'static,
        sink: EnrollmentSink,
    ) -> Gateway {
        Gateway::build(config, obs, seed_fn, Some(sink))
    }

    fn build(
        config: GatewayConfig,
        obs: Obs,
        seed_fn: impl Fn(u64) -> Vec<bool> + 'static,
        sink: Option<EnrollmentSink>,
    ) -> Gateway {
        let table = SessionTable::new(config.shards);
        Gateway {
            inner: Arc::new(GatewayInner {
                config,
                obs,
                table,
                accepting: AtomicBool::new(true),
                rejected: AtomicU64::new(0),
                seed_fn: Box::new(seed_fn),
                sink,
            }),
        }
    }

    /// The session table (live gauges and terminal outcomes).
    pub fn table(&self) -> &SessionTable {
        &self.inner.table
    }

    /// Connections rejected (accept-time errors or shutdown).
    pub fn rejected(&self) -> u64 {
        self.inner.rejected.load(Ordering::Relaxed)
    }

    /// Spawns the accept loop onto the executor.
    pub fn listen(&self, handle: &Handle, net: &SimNet) {
        let gw = Arc::clone(&self.inner);
        let net = net.clone();
        let handle2 = handle.clone();
        handle.spawn(accept_loop(gw, handle2, net));
    }

    /// Begins graceful shutdown: the listener refuses new connects,
    /// queued-but-unaccepted connections are rejected with
    /// `reason="shutdown"`, and every in-flight session drains to its
    /// natural end.
    pub fn shutdown(&self, net: &SimNet) {
        self.inner.accepting.store(false, Ordering::Relaxed);
        net.close();
    }
}

impl GatewayInner {
    fn count_evict(&self, reason: EvictReason) {
        self.obs.with_registry(|r| {
            r.inc_counter(&format!("wavekey_evictions_total{{reason=\"{}\"}}", reason.label()), 1);
        });
    }

    /// Writes a completed session's key through the sink, if one is
    /// attached. Persistence failures don't kill the session — the key
    /// was established and the peer already holds it — but they are
    /// counted and time-lined so an operator sees the durability gap.
    fn persist_enrollment(&self, conn_id: u64, key: &[u8], scope: &EventScope) {
        let Some(sink) = &self.sink else { return };
        match sink.persist(conn_id, key) {
            Ok(()) => {
                self.obs.inc("gateway_enrollments_persisted");
                scope.emit("persist");
            }
            Err(_) => {
                self.obs.inc("gateway_enrollment_persist_failures");
                scope.emit_full("persist_failed", None, None, None);
            }
        }
    }

    /// Records a gateway eviction and closes the stream.
    fn evict(&self, id: u64, reason: EvictReason, scope: &EventScope, stream: &SimStream) {
        self.count_evict(reason);
        scope.emit_full("evict", Some(reason.label()), None, None);
        self.table.finish(id, SessionOutcome::Evicted(reason));
        stream.close();
    }
}

async fn accept_loop(gw: Arc<GatewayInner>, handle: Handle, net: SimNet) {
    // Pooled start batch: only group-shared configs can cross-batch
    // (tiny test groups are per-machine — same rule as `spawn_many`).
    let batching = gw.config.agreement.batched_crypto && !gw.config.agreement.use_tiny_group;
    let mut batch: ModexpBatch<'static> = ModexpBatch::new();
    let mut pending: Vec<PendingStart> = Vec::new();
    loop {
        let accepted = if pending.is_empty() {
            match net.accept().await {
                Ok(stream) => Some(stream),
                Err(_) => None,
            }
        } else {
            match race(net.accept(), handle.sleep(gw.config.batch_ticks)).await {
                Either::A(Ok(stream)) => Some(stream),
                Either::A(Err(_)) => None,
                Either::B(()) => {
                    let flush = std::mem::take(&mut pending);
                    flush_starts(&gw, &handle, std::mem::take(&mut batch), flush);
                    continue;
                }
            }
        };
        let Some(stream) = accepted else {
            // Listener closed: flush the stragglers, then stop.
            let flush = std::mem::take(&mut pending);
            flush_starts(&gw, &handle, std::mem::take(&mut batch), flush);
            return;
        };
        if !gw.accepting.load(Ordering::Relaxed) {
            gw.rejected.fetch_add(1, Ordering::Relaxed);
            gw.count_evict(EvictReason::Shutdown);
            stream.close();
            continue;
        }
        let conn_id = stream.conn_id();
        let seed = (gw.seed_fn)(conn_id);
        let rng = server_rng(gw.config.server_seed, conn_id);
        let mut server = match ServerAgreement::new(&seed, &gw.config.agreement, rng) {
            Ok(server) => server,
            Err(_) => {
                gw.rejected.fetch_add(1, Ordering::Relaxed);
                stream.close();
                continue;
            }
        };
        let scope = EventScope::new(&gw.obs, conn_id, "gateway");
        if scope.is_enabled() {
            server.bind_events(scope.with_actor("server"));
        }
        scope.emit("accept");
        gw.obs.inc("gateway_conns_accepted");
        if batching {
            match server.start_enqueue(&mut batch) {
                Ok(pend) => {
                    pending.push(PendingStart { stream, server, pending: pend, scope });
                    if pending.len() >= gw.config.batch_max {
                        let flush = std::mem::take(&mut pending);
                        flush_starts(&gw, &handle, std::mem::take(&mut batch), flush);
                    }
                    continue;
                }
                // Inapplicable after all (owned group): fall through to
                // the scalar start.
                Err(AgreementError::Config(_)) => {}
                Err(err) => {
                    fail_before_start(&gw, &stream, &scope, err);
                    continue;
                }
            }
        }
        match server.start() {
            Ok(first) => spawn_conn(&gw, &handle, stream, server, first, scope),
            Err(err) => fail_before_start(&gw, &stream, &scope, err),
        }
    }
}

/// Executes the pooled start batch and launches every pending session,
/// billing each server its amortized share of the batch wall time.
fn flush_starts(
    gw: &Arc<GatewayInner>,
    handle: &Handle,
    batch: ModexpBatch<'static>,
    pending: Vec<PendingStart>,
) {
    if pending.is_empty() {
        return;
    }
    gw.obs.inc("gateway_start_batches");
    let t = Instant::now();
    let results = batch.execute();
    let share = t.elapsed().as_secs_f64() / pending.len() as f64;
    for p in pending {
        let PendingStart { stream, mut server, pending: pend, scope } = p;
        match server.start_commit(pend, &results, share) {
            Ok(first) => spawn_conn(gw, handle, stream, server, first, scope),
            Err(err) => fail_before_start(gw, &stream, &scope, err),
        }
    }
}

/// A session whose machine failed before its first frame: record the
/// failure so the fleet accounting still sums to the accept count.
fn fail_before_start(gw: &GatewayInner, stream: &SimStream, scope: &EventScope, err: AgreementError) {
    let id = stream.conn_id();
    gw.obs.inc("gateway_sessions_failed");
    scope.emit("protocol_error");
    gw.table.insert(id);
    gw.table.finish(id, SessionOutcome::Failed(err));
    stream.close();
}

fn spawn_conn(
    gw: &Arc<GatewayInner>,
    handle: &Handle,
    stream: SimStream,
    server: ServerAgreement,
    first: Frame,
    scope: EventScope,
) {
    let gw = Arc::clone(gw);
    let handle2 = handle.clone();
    let endpoint = Endpoint::server(server);
    let disc = LinkDiscipline::new(gw.config.agreement.retry);
    handle.spawn(serve_conn(gw, handle2, stream, endpoint, disc, first, scope));
}

/// Drives one accepted connection to a terminal table entry.
async fn serve_conn(
    gw: Arc<GatewayInner>,
    handle: Handle,
    stream: SimStream,
    mut server: Endpoint,
    mut disc: LinkDiscipline,
    first: Frame,
    scope: EventScope,
) {
    let id = stream.conn_id();
    let idle = gw.config.idle_ticks;
    let delay = gw.config.agreement.channel_delay;
    gw.table.insert(id);
    let mut wq: VecDeque<u8> = first.encode().into();
    let mut dec = Decoder::new();
    let mut held: VecDeque<Frame> = VecDeque::new();
    let mut buf = vec![0u8; gw.config.read_buf.max(64)];
    loop {
        // Flush before reading: replies already owed take priority, and
        // a queue that cannot drain is the backpressure signal.
        while !wq.is_empty() {
            if wq.len() > gw.config.write_queue_cap {
                return gw.evict(id, EvictReason::Backpressure, &scope, &stream);
            }
            wq.make_contiguous();
            let outcome = {
                let (front, _) = wq.as_slices();
                race(stream.write_some(front), handle.sleep(idle)).await
            };
            match outcome {
                Either::A(Ok(n)) => {
                    wq.drain(..n);
                }
                // Peer closed with our reply undelivered — it vanished.
                Either::A(Err(_)) => return gw.evict(id, EvictReason::Idle, &scope, &stream),
                // No write progress for a whole idle window.
                Either::B(()) => return gw.evict(id, EvictReason::Backpressure, &scope, &stream),
            }
        }
        if server.is_done() {
            let key = server.key().to_vec();
            scope.emit("complete");
            gw.obs.inc("gateway_sessions_completed");
            gw.persist_enrollment(id, &key, &scope);
            gw.table.finish(id, SessionOutcome::Done(key));
            stream.close();
            return;
        }
        match race(stream.read_some(&mut buf), handle.sleep(idle)).await {
            Either::A(Ok(0)) | Either::A(Err(_)) => {
                // EOF (or a torn stream) mid-protocol: the peer is gone.
                return gw.evict(id, EvictReason::Idle, &scope, &stream);
            }
            Either::A(Ok(n)) => {
                dec.push(&buf[..n]);
                while let Some(item) = dec.next_frame() {
                    let frame = match item {
                        Ok(frame) => frame,
                        Err(_) => {
                            // Streams resync instead of NAKing: the
                            // decoder already skipped the garbage.
                            gw.obs.inc("gateway_frame_resyncs");
                            scope.emit("resync");
                            continue;
                        }
                    };
                    if disc.should_defer(server.expected_kind(), frame.kind) {
                        scope.emit_frame("defer", frame.kind.label());
                        held.push_back(frame);
                        continue;
                    }
                    scope.emit_frame("deliver", frame.kind.label());
                    if !deliver(&gw, id, &mut server, &frame, delay, &mut wq, &scope) {
                        stream.close();
                        return;
                    }
                    // Progress may have made a deferred frame current.
                    while let Some(pos) =
                        held.iter().position(|h| server.expected_kind() == Some(h.kind))
                    {
                        let h = held.remove(pos).expect("position in bounds");
                        scope.emit_frame("deliver", h.kind.label());
                        if !deliver(&gw, id, &mut server, &h, delay, &mut wq, &scope) {
                            stream.close();
                            return;
                        }
                    }
                }
            }
            Either::B(()) => return gw.evict(id, EvictReason::Idle, &scope, &stream),
        }
    }
}

/// Feeds one frame to the machine; queues replies. `false` means the
/// session reached a terminal protocol failure (already recorded).
fn deliver(
    gw: &GatewayInner,
    id: u64,
    server: &mut Endpoint,
    frame: &Frame,
    delay: f64,
    wq: &mut VecDeque<u8>,
    scope: &EventScope,
) -> bool {
    let arrival = server.clock() + delay;
    match server.handle(frame, arrival) {
        Ok(replies) => {
            for reply in &replies {
                wq.extend(reply.encode());
            }
            true
        }
        Err(err) => {
            gw.obs.inc("gateway_sessions_failed");
            scope.emit("protocol_error");
            gw.table.finish(id, SessionOutcome::Failed(err));
            false
        }
    }
}

/// Drives the mobile side of one agreement over `stream` — the client
/// mirror of the gateway's connection loop, shared by the unit tests
/// and the `gateway_soak` fleet driver.
///
/// # Errors
///
/// [`AgreementError::Evicted`] when the gateway closes the stream or
/// goes silent past `idle_ticks`; otherwise whatever the machine
/// reports.
pub async fn drive_mobile(
    handle: Handle,
    stream: SimStream,
    mobile: MobileAgreement,
    channel_delay: f64,
    idle_ticks: u64,
) -> Result<Vec<u8>, AgreementError> {
    let mut mobile = Endpoint::mobile(mobile);
    let first = mobile.start()?;
    let mut wq: VecDeque<u8> = first.encode().into();
    let mut dec = Decoder::new();
    let mut buf = vec![0u8; 512];
    loop {
        while !wq.is_empty() {
            wq.make_contiguous();
            let outcome = {
                let (front, _) = wq.as_slices();
                race(stream.write_some(front), handle.sleep(idle_ticks)).await
            };
            match outcome {
                Either::A(Ok(n)) => {
                    wq.drain(..n);
                }
                Either::A(Err(_)) | Either::B(()) => return Err(AgreementError::Evicted),
            }
        }
        if mobile.is_done() {
            stream.close();
            return Ok(mobile.key().to_vec());
        }
        match race(stream.read_some(&mut buf), handle.sleep(idle_ticks)).await {
            Either::A(Ok(0)) | Either::A(Err(_)) | Either::B(()) => {
                return Err(AgreementError::Evicted)
            }
            Either::A(Ok(n)) => {
                dec.push(&buf[..n]);
                while let Some(item) = dec.next_frame() {
                    let Ok(frame) = item else { continue };
                    let arrival = mobile.clock() + channel_delay;
                    for reply in mobile.handle(&frame, arrival)? {
                        wq.extend(reply.encode());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::stream::StreamFaults;
    use rand::Rng;
    use std::cell::RefCell;
    use std::rc::Rc;
    use wavekey_core::proto::driver;
    use wavekey_core::PassiveChannel;
    use wavekey_obs::EventLog;

    fn tiny_config() -> AgreementConfig {
        AgreementConfig { use_tiny_group: true, tau: 10.0, bch_t: 5, ..Default::default() }
    }

    /// Mobile/server seed bits for session `conn_id`: close enough to
    /// reconcile (one flipped bit).
    fn seed_pair(conn_id: u64) -> (Vec<bool>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + conn_id);
        let s_m: Vec<bool> = (0..24).map(|_| rng.gen()).collect();
        let mut s_r = s_m.clone();
        let flip = (conn_id as usize) % s_r.len();
        s_r[flip] = !s_r[flip];
        (s_m, s_r)
    }

    fn mobile_rng(conn_id: u64) -> StdRng {
        StdRng::seed_from_u64(0x0B11_E000 + conn_id)
    }

    fn gateway_config() -> GatewayConfig {
        GatewayConfig::new(tiny_config())
    }

    /// Closes the listener once everything else has gone quiet: the
    /// huge sleep only fires at quiesce, after every shorter timer
    /// (idle budgets, batch deadlines) has been consumed or cancelled,
    /// which lets the accept loop terminate so `run()` can return.
    fn spawn_closer(exec: &Executor, net: &SimNet) {
        let handle = exec.handle();
        let net = net.clone();
        exec.spawn(async move {
            handle.sleep(1_000_000).await;
            net.close();
        });
    }

    /// Runs `n` clients against a gateway and returns
    /// `(client keys by conn id, gateway)`.
    fn run_fleet(
        config: GatewayConfig,
        obs: Obs,
        n: u64,
        faults: impl Fn(u64) -> StreamFaults,
    ) -> (Vec<(u64, Result<Vec<u8>, AgreementError>)>, Gateway) {
        let gateway = Gateway::new(config.clone(), obs, |conn_id| seed_pair(conn_id).1);
        let out = run_fleet_on(&gateway, &config, n, faults);
        (out, gateway)
    }

    /// Drives `n` clients against an already-built gateway.
    fn run_fleet_on(
        gateway: &Gateway,
        config: &GatewayConfig,
        n: u64,
        faults: impl Fn(u64) -> StreamFaults,
    ) -> Vec<(u64, Result<Vec<u8>, AgreementError>)> {
        let agreement = config.agreement.clone();
        let idle = config.idle_ticks;
        let net = SimNet::new(1 << 16);
        let mut exec = Executor::new();
        gateway.listen(&exec.handle(), &net);
        spawn_closer(&exec, &net);
        let results = Rc::new(RefCell::new(Vec::new()));
        for i in 0..n {
            let stream = net.connect_with(faults(i)).unwrap();
            let conn_id = stream.conn_id();
            let (s_m, _) = seed_pair(conn_id);
            let mobile =
                MobileAgreement::new(&s_m, &agreement, mobile_rng(conn_id)).expect("mobile");
            let handle = exec.handle();
            let results = Rc::clone(&results);
            let delay = agreement.channel_delay;
            exec.spawn(async move {
                let got = drive_mobile(handle, stream, mobile, delay, idle).await;
                results.borrow_mut().push((conn_id, got));
            });
        }
        exec.run();
        let mut out = Rc::try_unwrap(results).expect("tasks done").into_inner();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    #[test]
    fn fleet_completes_with_keys_bit_identical_to_lockstep() {
        let (clients, gateway) = run_fleet(gateway_config(), Obs::disabled(), 12, |_| {
            StreamFaults::none()
        });
        assert_eq!(gateway.table().completed(), 12);
        assert_eq!(gateway.table().live(), 0);
        assert_eq!(gateway.table().peak_live(), 12, "all sessions in flight at once");
        for (conn_id, got) in clients {
            let client_key = got.expect("client key");
            // The gateway's record of the server key matches.
            let Some(SessionOutcome::Done(server_key)) = gateway.table().outcome(conn_id) else {
                panic!("no Done outcome for {conn_id}");
            };
            assert_eq!(client_key, server_key);
            // And both equal the lockstep driver with mirrored seeds/RNGs.
            let (s_m, s_r) = seed_pair(conn_id);
            let mut rng_m = mobile_rng(conn_id);
            let mut rng_r = server_rng(gateway_config().server_seed, conn_id);
            let outcome = driver::drive_lockstep(
                &s_m,
                &s_r,
                &tiny_config(),
                &mut rng_m,
                &mut rng_r,
                &mut PassiveChannel,
            )
            .expect("lockstep");
            assert_eq!(client_key, outcome.key, "conn {conn_id}");
        }
    }

    #[test]
    fn completed_sessions_persist_through_the_sink_and_survive_a_kill() {
        use wavekey_store::{MemVolume, StoreConfig};

        let media = MemVolume::new();
        let store = DurableStore::open(Box::new(media.clone()), StoreConfig::default())
            .expect("open store");
        let tenant = 7;
        let sink = EnrollmentSink::new(Rc::new(RefCell::new(store)), tenant).expect("sink");
        let live = sink.store();

        let config = gateway_config();
        let gateway =
            Gateway::with_sink(config.clone(), Obs::disabled(), |id| seed_pair(id).1, sink);
        let clients = run_fleet_on(&gateway, &config, 6, |_| StreamFaults::none());
        assert_eq!(gateway.table().completed(), 6);

        // Every completed key is durably bound under the gateway EPC.
        {
            let store = live.borrow();
            for (conn_id, got) in &clients {
                let key = got.as_ref().expect("client key");
                let epc = EnrollmentSink::epc_for(*conn_id);
                assert_eq!(store.peek_key(tenant, epc), Some(key.as_slice()), "conn {conn_id}");
            }
        }

        // Kill the gateway process: a fresh store on the same media
        // replays the journal and serves the same keys.
        let mut back = DurableStore::open(Box::new(media.deep_clone()), StoreConfig::default())
            .expect("reopen");
        assert_eq!(back.stats().replays, 1);
        for (conn_id, got) in &clients {
            let key = got.as_ref().expect("client key");
            let fetched = back
                .key_for(tenant, EnrollmentSink::epc_for(*conn_id))
                .expect("fetch")
                .map(<[u8]>::to_vec);
            assert_eq!(fetched.as_deref(), Some(key.as_slice()), "conn {conn_id}");
        }
    }

    #[test]
    fn session_seed_fn_mirrors_the_sensing_session() {
        use wavekey_core::{Session, SessionConfig, WaveKeyConfig, WaveKeyModels};
        let models = WaveKeyModels::new(12, 3);
        let config = SessionConfig {
            use_tiny_group: true,
            wavekey: WaveKeyConfig { tau: 10.0, ..Default::default() },
            // Models carry no calibrated slots, so the quantized flag
            // exercises the per-model f32 fallback inside the closure.
            quantized_inference: true,
            ..Default::default()
        };
        let mut mirror = Session::new(config.clone(), models.clone(), 42);
        let seed_fn = session_seed_fn(Session::new(config, models, 42));
        for conn_id in 0..2u64 {
            let (_, expect) = mirror.derive_seeds().unwrap();
            assert_eq!(seed_fn(conn_id), expect, "conn {conn_id}");
        }
    }

    #[test]
    fn lossless_stream_faults_change_no_key() {
        let clean = run_fleet(gateway_config(), Obs::disabled(), 8, |_| StreamFaults::none()).0;
        let rough =
            run_fleet(gateway_config(), Obs::disabled(), 8, |i| StreamFaults::lossless(0xF0 + i)).0;
        assert_eq!(clean.len(), rough.len());
        for ((id_a, a), (id_b, b)) in clean.iter().zip(rough.iter()) {
            assert_eq!(id_a, id_b);
            assert_eq!(
                a.as_ref().expect("clean"),
                b.as_ref().expect("rough"),
                "splits and stalls must not alter keys"
            );
        }
    }

    #[test]
    fn half_open_peer_is_evicted_as_idle() {
        let (obs, _) = Obs::with_memory();
        let config = GatewayConfig { idle_ticks: 8, ..gateway_config() };
        let gateway = Gateway::new(config, obs.clone(), |conn_id| seed_pair(conn_id).1);
        let net = SimNet::new(1 << 16);
        let mut exec = Executor::new();
        gateway.listen(&exec.handle(), &net);
        spawn_closer(&exec, &net);
        // The client connects and then never writes a byte.
        let stream = net.connect().unwrap();
        let conn_id = stream.conn_id();
        exec.run();
        assert!(matches!(
            gateway.table().outcome(conn_id),
            Some(SessionOutcome::Evicted(EvictReason::Idle))
        ));
        assert_eq!(gateway.table().evicted(), 1);
        assert!(obs
            .prometheus_text()
            .contains("wavekey_evictions_total{reason=\"idle\"} 1"));
        drop(stream);
    }

    #[test]
    fn peer_vanishing_mid_protocol_is_evicted_and_client_sees_evicted() {
        let (obs, _) = Obs::with_memory();
        let config = GatewayConfig { idle_ticks: 8, ..gateway_config() };
        let agreement = config.agreement.clone();
        let gateway = Gateway::new(config, obs.clone(), |conn_id| seed_pair(conn_id).1);
        let net = SimNet::new(1 << 16);
        let mut exec = Executor::new();
        gateway.listen(&exec.handle(), &net);
        spawn_closer(&exec, &net);
        let stream = net.connect().unwrap();
        let conn_id = stream.conn_id();
        let (s_m, _) = seed_pair(conn_id);
        let mut mobile = MobileAgreement::new(&s_m, &agreement, mobile_rng(conn_id)).unwrap();
        exec.spawn(async move {
            // Send the opening OT frame, then disappear mid-round.
            let first = mobile.start().expect("start").encode();
            let mut at = 0;
            while at < first.len() {
                at += stream.write_some(&first[at..]).await.expect("write");
            }
            stream.close();
        });
        exec.run();
        assert!(matches!(
            gateway.table().outcome(conn_id),
            Some(SessionOutcome::Evicted(EvictReason::Idle))
        ));
    }

    #[test]
    fn stalled_reader_trips_backpressure_eviction() {
        let (obs, _) = Obs::with_memory();
        // 8-byte pipes: the server's opening frame cannot fit, and the
        // client never reads, so the write queue stops draining.
        let config = GatewayConfig { idle_ticks: 6, ..gateway_config() };
        let gateway = Gateway::new(config, obs.clone(), |conn_id| seed_pair(conn_id).1);
        let net = SimNet::new(8);
        let mut exec = Executor::new();
        gateway.listen(&exec.handle(), &net);
        spawn_closer(&exec, &net);
        let stream = net.connect().unwrap();
        let conn_id = stream.conn_id();
        exec.run();
        assert!(matches!(
            gateway.table().outcome(conn_id),
            Some(SessionOutcome::Evicted(EvictReason::Backpressure))
        ));
        assert!(obs
            .prometheus_text()
            .contains("wavekey_evictions_total{reason=\"backpressure\"} 1"));
        drop(stream);
    }

    #[test]
    fn oversized_write_queue_evicts_for_backpressure() {
        let (obs, _) = Obs::with_memory();
        // A queue bound smaller than the opening frame: overflow path.
        let config = GatewayConfig { write_queue_cap: 4, ..gateway_config() };
        let gateway = Gateway::new(config, obs.clone(), |conn_id| seed_pair(conn_id).1);
        let net = SimNet::new(1 << 16);
        let mut exec = Executor::new();
        gateway.listen(&exec.handle(), &net);
        spawn_closer(&exec, &net);
        let stream = net.connect().unwrap();
        let conn_id = stream.conn_id();
        exec.run();
        assert!(matches!(
            gateway.table().outcome(conn_id),
            Some(SessionOutcome::Evicted(EvictReason::Backpressure))
        ));
        drop(stream);
    }

    #[test]
    fn shutdown_rejects_queued_connections_and_drains_in_flight() {
        let (obs, _) = Obs::with_memory();
        let config = gateway_config();
        let agreement = config.agreement.clone();
        let idle = config.idle_ticks;
        let gateway = Gateway::new(config, obs.clone(), |conn_id| seed_pair(conn_id).1);
        let net = SimNet::new(1 << 16);
        let mut exec = Executor::new();
        gateway.listen(&exec.handle(), &net);

        // Three in-flight clients, connected before the executor runs —
        // the accept loop drains them on its first poll.
        let done = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let stream = net.connect().unwrap();
            let conn_id = stream.conn_id();
            let (s_m, _) = seed_pair(conn_id);
            let mobile = MobileAgreement::new(&s_m, &agreement, mobile_rng(conn_id)).unwrap();
            let handle = exec.handle();
            let done = Rc::clone(&done);
            let delay = agreement.channel_delay;
            exec.spawn(async move {
                let got = drive_mobile(handle, stream, mobile, delay, idle).await;
                done.borrow_mut().push(got.is_ok());
            });
        }
        // A task scheduled after the clients: it queues one more
        // connection and immediately shuts the gateway down, so the late
        // connection is still unaccepted when shutdown lands.
        let late_id = Rc::new(RefCell::new(0u64));
        {
            let gateway = gateway.clone();
            let net = net.clone();
            let done = Rc::clone(&done);
            let late_id = Rc::clone(&late_id);
            exec.spawn(async move {
                let late = net.connect().expect("pre-shutdown connect");
                *late_id.borrow_mut() = late.conn_id();
                gateway.shutdown(&net);
                // Connects after shutdown are refused outright.
                done.borrow_mut().push(net.connect().is_err());
                // The rejected stream reads EOF without a single frame.
                let mut buf = [0u8; 64];
                let n = late.read_some(&mut buf).await.expect("eof");
                done.borrow_mut().push(n == 0);
            });
        }
        exec.run();
        // In-flight sessions completed despite shutdown; the queued one
        // was rejected, never entering the table.
        assert_eq!(done.borrow().len(), 5);
        assert!(done.borrow().iter().all(|ok| *ok));
        assert_eq!(gateway.table().completed(), 3);
        assert_eq!(gateway.rejected(), 1);
        assert!(gateway.table().outcome(*late_id.borrow()).is_none());
        assert!(obs
            .prometheus_text()
            .contains("wavekey_evictions_total{reason=\"shutdown\"} 1"));
    }

    #[test]
    fn pooled_start_batching_matches_scalar_starts_on_the_fleet_group() {
        // Real group, so the cross-session ModexpBatch path is live.
        let fleet = AgreementConfig {
            use_tiny_group: false,
            fleet_group: true,
            batched_crypto: true,
            tau: 10.0,
            bch_t: 5,
            ..Default::default()
        };
        let scalar = AgreementConfig { batched_crypto: false, ..fleet.clone() };
        let batched_cfg =
            GatewayConfig { batch_max: 2, ..GatewayConfig::new(fleet) };
        let scalar_cfg = GatewayConfig::new(scalar);
        let (batched, gw) = run_fleet(batched_cfg, Obs::disabled(), 3, |_| StreamFaults::none());
        let (plain, _) = run_fleet(scalar_cfg, Obs::disabled(), 3, |_| StreamFaults::none());
        assert_eq!(gw.table().completed(), 3);
        for ((id_a, a), (id_b, b)) in batched.iter().zip(plain.iter()) {
            assert_eq!(id_a, id_b);
            assert_eq!(
                a.as_ref().expect("batched"),
                b.as_ref().expect("scalar"),
                "pooling starts must not change keys"
            );
        }
    }

    #[test]
    fn per_connection_timelines_are_deterministic() {
        let run = || {
            let log = Arc::new(EventLog::new(256));
            let obs = Obs::new(log.clone());
            let (_, _gw) = run_fleet(gateway_config(), obs, 4, |_| StreamFaults::none());
            log.timelines_jsonl()
        };
        let a = run();
        assert!(a.contains("\"actor\":\"gateway\"") || a.contains("gateway"));
        assert_eq!(a, run(), "same fleet, same causal timelines");
    }
}
