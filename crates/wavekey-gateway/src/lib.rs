//! Async event-loop networking for the WaveKey protocol.
//!
//! `wavekey-core`'s agreement machines are sans-IO: they consume frames
//! and emit frames, and never touch a socket. This crate supplies the
//! missing IO half as a dependency-free async stack:
//!
//! - [`exec`] — a deterministic single-threaded executor with logical
//!   time: tasks run in spawn order, wake-ups dedupe, and timers fire
//!   only when the whole system quiesces, so "idle" can never be
//!   confused with "scheduled later".
//! - [`stream`] — simulated non-blocking byte streams (bounded duplex
//!   pipes with readiness wakers) plus seeded stream-level fault
//!   injection: split reads, stalled writes, truncate-and-close.
//! - [`table`] — the sharded session table tracking every in-flight
//!   connection and its terminal outcome.
//! - [`gateway`] — the [`Gateway`] itself: accept loop with pooled
//!   start batching, per-connection incremental framing over the
//!   streaming [`wavekey_core::proto::Decoder`], bounded write queues
//!   with backpressure eviction, idle eviction, graceful shutdown, and
//!   per-connection causal timelines.
//!
//! Because arrival chunking never reaches the machines — only whole
//! frames do — a gateway fleet's keys are bit-identical to the lockstep
//! driver's for the same seeds and RNGs. The `gateway_soak` bench in
//! `wavekey-bench` gates that equivalence at 100k concurrent sessions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod gateway;
pub mod stream;
pub mod table;

pub use exec::{race, yield_now, Either, Executor, Handle};
pub use gateway::{drive_mobile, server_rng, session_seed_fn, EnrollmentSink, Gateway, GatewayConfig};
pub use stream::{SimNet, SimStream, StreamError, StreamFaults};
pub use table::{EvictReason, SessionOutcome, SessionTable};
