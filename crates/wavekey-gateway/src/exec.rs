//! A dependency-free, single-threaded, deterministic async executor.
//!
//! The gateway needs real event-loop mechanics — readiness, wakers,
//! partial IO, timers — without pulling a runtime the offline build
//! cannot fetch. This executor provides exactly the subset the gateway
//! uses, with one extra property production runtimes do not promise:
//! **determinism**. Tasks run from a FIFO ready queue on one thread, a
//! waker enqueues its task at most once per poll, and time is a logical
//! tick counter that only advances when every task is blocked — so a
//! given program always interleaves identically, and the soak gate can
//! assert bit-identical keys against the lockstep driver.
//!
//! Timers are the quiesce points: [`Handle::sleep`] registers a wakeup
//! at `now + ticks`, and when the ready queue drains the executor jumps
//! `now` to the earliest pending deadline. An idle timeout therefore
//! fires exactly when the system has nothing better to do — which is
//! the moment a stalled connection is provably stalled and safe to
//! evict.

use std::cell::RefCell;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// The waker-facing half of the executor: ready queue, tick clock, and
/// timer heap. Kept `Send + Sync` (everything under one mutex) so the
/// hand-rolled wakers honor the `Waker` thread-safety contract even
/// though this executor never leaves its thread.
#[derive(Debug, Default)]
struct ReadyShared {
    state: Mutex<ReadyState>,
}

#[derive(Debug, Default)]
struct ReadyState {
    ready: VecDeque<u64>,
    /// Tasks already in `ready` (a waker fires at most one enqueue).
    queued: HashSet<u64>,
    /// Logical now, in ticks.
    now: u64,
    /// Min-heap of (due_tick, timer_seq); cancelled seqs are skipped.
    timer_heap: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    timers: HashMap<u64, Waker>,
    next_timer: u64,
}

/// One spawned task.
struct Task {
    future: Pin<Box<dyn Future<Output = ()>>>,
}

/// The single-threaded deterministic executor.
pub struct Executor {
    tasks: HashMap<u64, Task>,
    shared: Arc<ReadyShared>,
    inbox: Rc<RefCell<Vec<Pin<Box<dyn Future<Output = ()>>>>>>,
    next_task: u64,
    polls: u64,
}

impl Default for Executor {
    fn default() -> Executor {
        Executor::new()
    }
}

impl Executor {
    /// A fresh executor at tick 0 with no tasks.
    pub fn new() -> Executor {
        Executor {
            tasks: HashMap::new(),
            shared: Arc::new(ReadyShared::default()),
            inbox: Rc::new(RefCell::new(Vec::new())),
            next_task: 1,
            polls: 0,
        }
    }

    /// A cloneable handle for spawning tasks and creating timers —
    /// usable both outside [`Executor::run`] and from inside tasks.
    pub fn handle(&self) -> Handle {
        Handle { shared: Arc::clone(&self.shared), inbox: Rc::clone(&self.inbox) }
    }

    /// Spawns a task (queued behind everything already ready).
    pub fn spawn(&self, future: impl Future<Output = ()> + 'static) {
        self.inbox.borrow_mut().push(Box::pin(future));
    }

    /// Total task polls performed (scheduling-cost diagnostic).
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// The current logical tick.
    pub fn now(&self) -> u64 {
        self.shared.state.lock().unwrap().now
    }

    /// Runs until every task has completed. Returns the number of tasks
    /// that ran to completion.
    ///
    /// # Panics
    ///
    /// Panics on deadlock — tasks remain but none is ready and no timer
    /// is pending. A deterministic system should never reach that state;
    /// failing loudly beats hanging the soak.
    pub fn run(&mut self) -> usize {
        let mut completed = 0usize;
        loop {
            self.drain_inbox();
            let next = {
                let mut st = self.shared.state.lock().unwrap();
                match st.ready.pop_front() {
                    Some(id) => {
                        st.queued.remove(&id);
                        Some(id)
                    }
                    None => None,
                }
            };
            let Some(id) = next else {
                if self.tasks.is_empty() && self.inbox.borrow().is_empty() {
                    return completed;
                }
                if !self.fire_due_timers() {
                    panic!(
                        "executor deadlock: {} tasks blocked with no pending timer",
                        self.tasks.len()
                    );
                }
                continue;
            };
            let Some(task) = self.tasks.get_mut(&id) else {
                continue; // completed task woken by a stale timer
            };
            let waker = task_waker(id, Arc::clone(&self.shared));
            let mut cx = Context::from_waker(&waker);
            self.polls += 1;
            if task.future.as_mut().poll(&mut cx).is_ready() {
                self.tasks.remove(&id);
                completed += 1;
            }
        }
    }

    /// Moves newly spawned futures into the task map and marks them
    /// ready, preserving spawn order.
    fn drain_inbox(&mut self) {
        let mut inbox = self.inbox.borrow_mut();
        if inbox.is_empty() {
            return;
        }
        let mut st = self.shared.state.lock().unwrap();
        for future in inbox.drain(..) {
            let id = self.next_task;
            self.next_task += 1;
            self.tasks.insert(id, Task { future });
            st.ready.push_back(id);
            st.queued.insert(id);
        }
    }

    /// Advances `now` to the earliest pending timer and wakes everything
    /// due. Returns false when no timer is pending.
    fn fire_due_timers(&self) -> bool {
        let due: Vec<Waker> = {
            let mut st = self.shared.state.lock().unwrap();
            // Skip cancelled timers (dropped Sleep futures).
            let target = loop {
                match st.timer_heap.peek() {
                    Some(&std::cmp::Reverse((due, seq))) => {
                        if st.timers.contains_key(&seq) {
                            break due;
                        }
                        st.timer_heap.pop();
                    }
                    None => return false,
                }
            };
            st.now = st.now.max(target);
            let now = st.now;
            let mut woken = Vec::new();
            while let Some(&std::cmp::Reverse((due, seq))) = st.timer_heap.peek() {
                if due > now {
                    break;
                }
                st.timer_heap.pop();
                if let Some(waker) = st.timers.remove(&seq) {
                    woken.push(waker);
                }
            }
            woken
        };
        for waker in &due {
            waker.wake_by_ref();
        }
        !due.is_empty()
    }
}

/// Cloneable spawn/timer handle onto an [`Executor`].
#[derive(Clone)]
pub struct Handle {
    shared: Arc<ReadyShared>,
    inbox: Rc<RefCell<Vec<Pin<Box<dyn Future<Output = ()>>>>>>,
}

impl Handle {
    /// Spawns a task onto the executor this handle came from.
    pub fn spawn(&self, future: impl Future<Output = ()> + 'static) {
        self.inbox.borrow_mut().push(Box::pin(future));
    }

    /// The current logical tick.
    pub fn now(&self) -> u64 {
        self.shared.state.lock().unwrap().now
    }

    /// A future that resolves once the logical clock has advanced
    /// `ticks` past its creation — i.e. after the system quiesced that
    /// many times with this sleeper as (one of) the earliest deadline.
    pub fn sleep(&self, ticks: u64) -> Sleep {
        Sleep {
            shared: Arc::clone(&self.shared),
            due: None,
            delay: ticks,
            seq: None,
        }
    }
}

/// Timer future returned by [`Handle::sleep`]; deregisters itself on
/// drop so abandoned timers (the losing arm of a [`race`]) cannot
/// accumulate in the heap.
pub struct Sleep {
    shared: Arc<ReadyShared>,
    due: Option<u64>,
    delay: u64,
    seq: Option<u64>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let mut st = this.shared.state.lock().unwrap();
        let due = *this.due.get_or_insert(st.now + this.delay);
        if st.now >= due {
            if let Some(seq) = this.seq.take() {
                st.timers.remove(&seq);
            }
            return Poll::Ready(());
        }
        match this.seq {
            Some(seq) => {
                // Re-registration with a fresh waker (e.g. after a move
                // between combinators) must replace the stale one.
                st.timers.insert(seq, cx.waker().clone());
            }
            None => {
                let seq = st.next_timer;
                st.next_timer += 1;
                this.seq = Some(seq);
                st.timer_heap.push(std::cmp::Reverse((due, seq)));
                st.timers.insert(seq, cx.waker().clone());
            }
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(seq) = self.seq.take() {
            if let Ok(mut st) = self.shared.state.lock() {
                st.timers.remove(&seq);
            }
        }
    }
}

/// Which arm of a [`race`] finished first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future won.
    A(A),
    /// The second future won.
    B(B),
}

/// Polls two futures concurrently, resolving with the first to finish
/// (the loser is dropped, cancelling any timer it held). `A` is polled
/// first each round, so ties resolve deterministically to `A`.
pub fn race<FA, FB>(a: FA, b: FB) -> Race<FA, FB>
where
    FA: Future,
    FB: Future,
{
    Race { a: Some(Box::pin(a)), b: Some(Box::pin(b)) }
}

/// Future returned by [`race`].
pub struct Race<FA: Future, FB: Future> {
    a: Option<Pin<Box<FA>>>,
    b: Option<Pin<Box<FB>>>,
}

impl<FA: Future, FB: Future> Future for Race<FA, FB> {
    type Output = Either<FA::Output, FB::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Some(a) = this.a.as_mut() {
            if let Poll::Ready(out) = a.as_mut().poll(cx) {
                this.a = None;
                this.b = None;
                return Poll::Ready(Either::A(out));
            }
        }
        if let Some(b) = this.b.as_mut() {
            if let Poll::Ready(out) = b.as_mut().poll(cx) {
                this.a = None;
                this.b = None;
                return Poll::Ready(Either::B(out));
            }
        }
        Poll::Pending
    }
}

// ---------------------------------------------------------------- wakers

struct WakeData {
    id: u64,
    shared: Arc<ReadyShared>,
}

impl std::task::Wake for WakeData {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        let mut st = self.shared.state.lock().unwrap();
        if st.queued.insert(self.id) {
            st.ready.push_back(self.id);
        }
    }
}

fn task_waker(id: u64, shared: Arc<ReadyShared>) -> Waker {
    Waker::from(Arc::new(WakeData { id, shared }))
}

/// Yields once: goes to the back of the ready queue and resumes on the
/// next scheduling round (cooperative fairness inside long loops).
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            return Poll::Ready(());
        }
        self.yielded = true;
        cx.waker().wake_by_ref();
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn tasks_run_in_spawn_order_and_complete() {
        let mut exec = Executor::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let log = Rc::clone(&log);
            exec.spawn(async move {
                log.borrow_mut().push(i);
            });
        }
        assert_eq!(exec.run(), 5);
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn yield_now_interleaves_round_robin() {
        let mut exec = Executor::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let log = Rc::clone(&log);
            exec.spawn(async move {
                for _ in 0..2 {
                    log.borrow_mut().push(i);
                    yield_now().await;
                }
            });
        }
        exec.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn sleep_advances_logical_time_at_quiesce() {
        let mut exec = Executor::new();
        let handle = exec.handle();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (name, ticks) in [("late", 10u64), ("early", 3), ("mid", 7)] {
            let handle = handle.clone();
            let order = Rc::clone(&order);
            exec.spawn(async move {
                handle.sleep(ticks).await;
                order.borrow_mut().push(name);
            });
        }
        exec.run();
        assert_eq!(*order.borrow(), vec!["early", "mid", "late"]);
        assert_eq!(exec.now(), 10);
    }

    #[test]
    fn nested_spawn_from_inside_a_task_runs() {
        let mut exec = Executor::new();
        let handle = exec.handle();
        let hit = Rc::new(Cell::new(false));
        {
            let hit = Rc::clone(&hit);
            exec.spawn(async move {
                let inner_hit = Rc::clone(&hit);
                handle.spawn(async move {
                    inner_hit.set(true);
                });
            });
        }
        assert_eq!(exec.run(), 2);
        assert!(hit.get());
    }

    #[test]
    fn race_prefers_first_ready_arm_and_cancels_loser_timer() {
        let mut exec = Executor::new();
        let handle = exec.handle();
        let outcome = Rc::new(RefCell::new(None));
        {
            let handle = handle.clone();
            let outcome = Rc::clone(&outcome);
            exec.spawn(async move {
                // The 2-tick sleeper beats the 50-tick sleeper; the loser
                // must not hold the clock hostage afterwards.
                let won = race(handle.sleep(50), handle.sleep(2)).await;
                *outcome.borrow_mut() = Some(matches!(won, Either::B(())));
            });
        }
        exec.run();
        assert_eq!(*outcome.borrow(), Some(true));
        // The losing 50-tick timer was cancelled on drop: time stopped at 2.
        assert_eq!(exec.now(), 2);
    }

    #[test]
    fn two_identical_programs_schedule_identically() {
        // Determinism: same spawns → same poll count, same tick, same log.
        let run_once = || {
            let mut exec = Executor::new();
            let handle = exec.handle();
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..4u64 {
                let handle = handle.clone();
                let log = Rc::clone(&log);
                exec.spawn(async move {
                    handle.sleep(i % 3).await;
                    log.borrow_mut().push(i);
                    yield_now().await;
                    log.borrow_mut().push(i + 10);
                });
            }
            exec.run();
            let events = log.borrow().clone();
            (exec.polls(), exec.now(), events)
        };
        assert_eq!(run_once(), run_once());
    }
}
