//! Simulated non-blocking byte streams with readiness.
//!
//! [`SimNet`] is an in-process listener: [`SimNet::connect`] creates a
//! bounded duplex byte pipe and queues the server end for
//! [`SimNet::accept`]. Streams behave like non-blocking sockets —
//! partial reads and writes, would-block backpressure with waker
//! registration on both sides, and EOF-after-drain close semantics — so
//! the gateway's framing, flushing, and eviction logic runs against the
//! same edge cases a kernel socket would produce, minus the
//! nondeterminism.
//!
//! [`StreamFaults`] composes the repo's seeded fault-injection idiom
//! (`wavekey_core::fault`) at the **stream** level: split reads (one
//! frame arriving as many chunks), stalled writes (a send window going
//! quiet for a few polls), and truncate-and-close (a peer dying mid
//! frame). Decisions are pure functions of `(seed, connection, lane,
//! op index)` — replaying a seed replays the exact fault schedule.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Stream-level failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The stream (or its peer) is closed.
    Closed,
    /// The listener refused the connection (shutdown).
    Refused,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Closed => write!(f, "stream closed"),
            StreamError::Refused => write!(f, "connection refused"),
        }
    }
}

impl std::error::Error for StreamError {}

/// SplitMix64 — the same generator `wavekey_core::fault` seeds its
/// schedules with (kept in sync by the gateway's determinism tests).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded stream-level fault plan, attached to a connection at
/// [`SimNet::connect_with`] time. Probabilities are per mille per IO
/// operation; `0` everywhere (the default) is a clean stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamFaults {
    /// Seed for the whole connection's schedule.
    pub seed: u64,
    /// P(a read returns fewer bytes than available), per mille.
    pub split_per_mille: u16,
    /// P(a write poll stalls), per mille.
    pub stall_per_mille: u16,
    /// How many polls a stall lasts once triggered.
    pub stall_polls: u32,
    /// P(a write is truncated and the stream closed), per mille —
    /// **lossy**: bytes are dropped and the session will be evicted.
    pub truncate_per_mille: u16,
}

impl StreamFaults {
    /// No faults.
    pub fn none() -> StreamFaults {
        StreamFaults::default()
    }

    /// Non-lossy turbulence: aggressive read splitting and write
    /// stalling. Every byte still arrives, so sessions must complete
    /// with bit-identical keys.
    pub fn lossless(seed: u64) -> StreamFaults {
        StreamFaults {
            seed,
            split_per_mille: 450,
            stall_per_mille: 200,
            stall_polls: 3,
            truncate_per_mille: 0,
        }
    }

    /// Lossless turbulence plus rare truncate-and-close — peers that
    /// die mid-frame. Their sessions must be evicted, never produce a
    /// divergent key.
    pub fn lossy(seed: u64) -> StreamFaults {
        StreamFaults { truncate_per_mille: 25, ..StreamFaults::lossless(seed) }
    }

    /// Whether any fault can fire.
    pub fn armed(&self) -> bool {
        self.split_per_mille > 0 || self.stall_per_mille > 0 || self.truncate_per_mille > 0
    }

    /// The raw decision hash for (`lane`, `op`).
    fn roll(&self, lane: u64, op: u64, salt: u64) -> u64 {
        splitmix64(
            self.seed
                ^ lane.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ op.wrapping_mul(0x9FB2_1C65_1E98_DF25)
                ^ salt,
        )
    }

    fn fires(&self, per_mille: u16, lane: u64, op: u64, salt: u64) -> bool {
        per_mille > 0 && self.roll(lane, op, salt) % 1000 < per_mille as u64
    }
}

/// One direction of a duplex connection.
#[derive(Debug)]
struct Pipe {
    buf: VecDeque<u8>,
    cap: usize,
    /// Writer closed (reader sees EOF once `buf` drains) — also set by
    /// a full stream close, failing subsequent writes.
    closed: bool,
    read_waker: Option<Waker>,
    write_waker: Option<Waker>,
    read_ops: u64,
    write_ops: u64,
    stall_left: u32,
    /// Fault lane: `conn_id * 2 + direction`.
    lane: u64,
}

impl Pipe {
    fn new(cap: usize, lane: u64) -> Pipe {
        Pipe {
            buf: VecDeque::new(),
            cap,
            closed: false,
            read_waker: None,
            write_waker: None,
            read_ops: 0,
            write_ops: 0,
            stall_left: 0,
            lane,
        }
    }

    fn wake_reader(&mut self) {
        if let Some(w) = self.read_waker.take() {
            w.wake();
        }
    }

    fn wake_writer(&mut self) {
        if let Some(w) = self.write_waker.take() {
            w.wake();
        }
    }
}

#[derive(Debug)]
struct Duplex {
    /// Client → server bytes.
    a2b: Pipe,
    /// Server → client bytes.
    b2a: Pipe,
    faults: StreamFaults,
}

/// One end of a simulated connection.
#[derive(Debug)]
pub struct SimStream {
    duplex: Arc<Mutex<Duplex>>,
    /// True for the connecting (client) end.
    a_side: bool,
    conn_id: u64,
}

impl SimStream {
    /// The listener-assigned connection id (same value on both ends).
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// Reads *some* bytes into `buf`: resolves with `Ok(n > 0)` on data,
    /// `Ok(0)` on EOF (peer closed and the pipe drained), and waits
    /// while the pipe is empty but open. Split faults may shorten `n`.
    pub fn read_some<'a>(&'a self, buf: &'a mut [u8]) -> ReadSome<'a> {
        ReadSome { stream: self, buf }
    }

    /// Writes *some* prefix of `bytes`: resolves with `Ok(n)` on first
    /// progress, `Err(Closed)` when the stream is closed, and waits
    /// while the pipe is full (or a stall fault holds the window shut).
    pub fn write_some<'a>(&'a self, bytes: &'a [u8]) -> WriteSome<'a> {
        WriteSome { stream: self, bytes }
    }

    /// Closes both directions: the peer reads EOF after draining
    /// buffered bytes, and all writes fail with [`StreamError::Closed`].
    pub fn close(&self) {
        let mut dx = self.duplex.lock().unwrap();
        dx.a2b.closed = true;
        dx.b2a.closed = true;
        dx.a2b.wake_reader();
        dx.a2b.wake_writer();
        dx.b2a.wake_reader();
        dx.b2a.wake_writer();
    }

    /// Whether the stream has been closed (either end).
    pub fn is_closed(&self) -> bool {
        self.duplex.lock().unwrap().a2b.closed
    }
}

/// Future returned by [`SimStream::read_some`].
pub struct ReadSome<'a> {
    stream: &'a SimStream,
    buf: &'a mut [u8],
}

impl Future for ReadSome<'_> {
    type Output = Result<usize, StreamError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut dx = this.stream.duplex.lock().unwrap();
        let faults = dx.faults;
        let pipe = if this.stream.a_side { &mut dx.b2a } else { &mut dx.a2b };
        if pipe.buf.is_empty() {
            if pipe.closed {
                return Poll::Ready(Ok(0));
            }
            pipe.read_waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        pipe.read_ops += 1;
        let mut n = this.buf.len().min(pipe.buf.len());
        if n > 1 && faults.fires(faults.split_per_mille, pipe.lane, pipe.read_ops, 0x51) {
            n = 1 + (faults.roll(pipe.lane, pipe.read_ops, 0x52) % (n as u64 - 1).max(1)) as usize;
        }
        for slot in this.buf.iter_mut().take(n) {
            *slot = pipe.buf.pop_front().expect("n <= len");
        }
        pipe.wake_writer();
        Poll::Ready(Ok(n))
    }
}

/// Future returned by [`SimStream::write_some`].
pub struct WriteSome<'a> {
    stream: &'a SimStream,
    bytes: &'a [u8],
}

impl Future for WriteSome<'_> {
    type Output = Result<usize, StreamError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut dx = this.stream.duplex.lock().unwrap();
        let faults = dx.faults;
        let pipe = if this.stream.a_side { &mut dx.a2b } else { &mut dx.b2a };
        if pipe.closed {
            return Poll::Ready(Err(StreamError::Closed));
        }
        if this.bytes.is_empty() {
            return Poll::Ready(Ok(0));
        }
        // A stalled send window: the poll fails but re-arms itself, so
        // the stall resolves after `stall_polls` scheduler rounds rather
        // than deadlocking the connection.
        if pipe.stall_left > 0 {
            pipe.stall_left -= 1;
            cx.waker().wake_by_ref();
            return Poll::Pending;
        }
        pipe.write_ops += 1;
        if faults.fires(faults.stall_per_mille, pipe.lane, pipe.write_ops, 0x57) {
            pipe.stall_left = faults.stall_polls;
            cx.waker().wake_by_ref();
            return Poll::Pending;
        }
        if faults.fires(faults.truncate_per_mille, pipe.lane, pipe.write_ops, 0x71) {
            // The peer dies mid-frame: a prefix lands, the rest is lost,
            // and the stream closes in both directions.
            let keep = (faults.roll(pipe.lane, pipe.write_ops, 0x72)
                % this.bytes.len() as u64) as usize;
            let keep = keep.min(pipe.cap - pipe.buf.len());
            pipe.buf.extend(&this.bytes[..keep]);
            pipe.closed = true;
            pipe.wake_reader();
            drop(dx);
            this.stream.close();
            return Poll::Ready(Ok(keep));
        }
        let free = pipe.cap - pipe.buf.len();
        if free == 0 {
            pipe.write_waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let n = free.min(this.bytes.len());
        pipe.buf.extend(&this.bytes[..n]);
        pipe.wake_reader();
        Poll::Ready(Ok(n))
    }
}

#[derive(Debug)]
struct NetInner {
    backlog: VecDeque<SimStream>,
    accept_waker: Option<Waker>,
    closed: bool,
    stream_cap: usize,
    next_conn: u64,
}

/// An in-process listener creating [`SimStream`] pairs.
#[derive(Debug, Clone)]
pub struct SimNet {
    inner: Arc<Mutex<NetInner>>,
}

impl SimNet {
    /// A listener whose streams buffer up to `stream_cap` bytes per
    /// direction.
    pub fn new(stream_cap: usize) -> SimNet {
        SimNet {
            inner: Arc::new(Mutex::new(NetInner {
                backlog: VecDeque::new(),
                accept_waker: None,
                closed: false,
                stream_cap,
                next_conn: 0,
            })),
        }
    }

    /// Connects a clean stream.
    ///
    /// # Errors
    ///
    /// [`StreamError::Refused`] once the listener closed.
    pub fn connect(&self) -> Result<SimStream, StreamError> {
        self.connect_with(StreamFaults::none())
    }

    /// Connects a stream with a seeded fault plan on its pipes.
    ///
    /// # Errors
    ///
    /// [`StreamError::Refused`] once the listener closed.
    pub fn connect_with(&self, faults: StreamFaults) -> Result<SimStream, StreamError> {
        let mut net = self.inner.lock().unwrap();
        if net.closed {
            return Err(StreamError::Refused);
        }
        net.next_conn += 1;
        let conn_id = net.next_conn;
        let duplex = Arc::new(Mutex::new(Duplex {
            a2b: Pipe::new(net.stream_cap, conn_id * 2),
            b2a: Pipe::new(net.stream_cap, conn_id * 2 + 1),
            faults,
        }));
        let client = SimStream { duplex: Arc::clone(&duplex), a_side: true, conn_id };
        let server = SimStream { duplex, a_side: false, conn_id };
        net.backlog.push_back(server);
        if let Some(w) = net.accept_waker.take() {
            w.wake();
        }
        Ok(client)
    }

    /// Accepts the next queued connection; after [`SimNet::close`] the
    /// backlog drains and then accepts fail with [`StreamError::Closed`].
    pub fn accept(&self) -> Accept {
        Accept { net: self.clone() }
    }

    /// Closes the listener: new connects are refused immediately;
    /// already-queued connections still reach [`SimNet::accept`] (the
    /// acceptor decides their fate — the gateway rejects them when
    /// draining for shutdown).
    pub fn close(&self) {
        let mut net = self.inner.lock().unwrap();
        net.closed = true;
        if let Some(w) = net.accept_waker.take() {
            w.wake();
        }
    }

    /// Connections queued but not yet accepted.
    pub fn pending(&self) -> usize {
        self.inner.lock().unwrap().backlog.len()
    }
}

/// Future returned by [`SimNet::accept`].
pub struct Accept {
    net: SimNet,
}

impl Future for Accept {
    type Output = Result<SimStream, StreamError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut net = self.net.inner.lock().unwrap();
        if let Some(stream) = net.backlog.pop_front() {
            return Poll::Ready(Ok(stream));
        }
        if net.closed {
            return Poll::Ready(Err(StreamError::Closed));
        }
        net.accept_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn bytes_flow_with_partial_writes_under_a_tiny_cap() {
        let net = SimNet::new(4); // 4-byte pipe: every write is partial
        let mut exec = Executor::new();
        let client = net.connect().unwrap();
        let payload: Vec<u8> = (0u8..32).collect();
        let received = Rc::new(RefCell::new(Vec::new()));

        {
            let received = Rc::clone(&received);
            let accept = net.accept();
            exec.spawn(async move {
                let server = accept.await.unwrap();
                let mut buf = [0u8; 8];
                loop {
                    match server.read_some(&mut buf).await.unwrap() {
                        0 => break,
                        n => received.borrow_mut().extend_from_slice(&buf[..n]),
                    }
                }
            });
        }
        {
            let payload = payload.clone();
            exec.spawn(async move {
                let mut at = 0;
                while at < payload.len() {
                    let n = client.write_some(&payload[at..]).await.unwrap();
                    assert!(n > 0 && n <= 4);
                    at += n;
                }
                client.close();
            });
        }
        exec.run();
        assert_eq!(*received.borrow(), payload);
    }

    #[test]
    fn close_gives_eof_after_drain_and_fails_writes() {
        let net = SimNet::new(64);
        let mut exec = Executor::new();
        let client = net.connect().unwrap();
        let accept = net.accept();
        exec.spawn(async move {
            let server = accept.await.unwrap();
            server.write_some(b"tail").await.unwrap();
            server.close();
            assert_eq!(server.write_some(b"x").await, Err(StreamError::Closed));
        });
        let saw = Rc::new(RefCell::new(Vec::new()));
        {
            let saw = Rc::clone(&saw);
            exec.spawn(async move {
                let mut buf = [0u8; 16];
                loop {
                    match client.read_some(&mut buf).await.unwrap() {
                        0 => break,
                        n => saw.borrow_mut().extend_from_slice(&buf[..n]),
                    }
                }
                // Buffered bytes arrived before the EOF.
                assert_eq!(client.write_some(b"y").await, Err(StreamError::Closed));
            });
        }
        exec.run();
        assert_eq!(*saw.borrow(), b"tail");
    }

    #[test]
    fn listener_refuses_after_close_but_drains_backlog() {
        let net = SimNet::new(64);
        let _queued = net.connect().unwrap();
        net.close();
        assert!(matches!(net.connect(), Err(StreamError::Refused)));
        let mut exec = Executor::new();
        let results = Rc::new(RefCell::new(Vec::new()));
        {
            let net = net.clone();
            let results = Rc::clone(&results);
            exec.spawn(async move {
                results.borrow_mut().push(net.accept().await.is_ok());
                results.borrow_mut().push(net.accept().await.is_ok());
            });
        }
        exec.run();
        // Queued-before-close accepted, then Closed.
        assert_eq!(*results.borrow(), vec![true, false]);
    }

    #[test]
    fn lossless_faults_deliver_every_byte_in_order() {
        // Split reads and stalled writes reshape timing, never content.
        let net = SimNet::new(16);
        let mut exec = Executor::new();
        let client = net.connect_with(StreamFaults::lossless(0xFA01)).unwrap();
        let payload: Vec<u8> = (0..200u32).map(|i| (i * 7) as u8).collect();
        let received = Rc::new(RefCell::new(Vec::new()));
        {
            let received = Rc::clone(&received);
            let accept = net.accept();
            exec.spawn(async move {
                let server = accept.await.unwrap();
                let mut buf = [0u8; 13];
                loop {
                    match server.read_some(&mut buf).await.unwrap() {
                        0 => break,
                        n => received.borrow_mut().extend_from_slice(&buf[..n]),
                    }
                }
            });
        }
        {
            let payload = payload.clone();
            exec.spawn(async move {
                let mut at = 0;
                while at < payload.len() {
                    at += client.write_some(&payload[at..]).await.unwrap();
                }
                client.close();
            });
        }
        exec.run();
        assert_eq!(*received.borrow(), payload);
    }

    #[test]
    fn fault_schedules_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let net = SimNet::new(8);
            let mut exec = Executor::new();
            let client = net.connect_with(StreamFaults::lossy(seed)).unwrap();
            let received = Rc::new(RefCell::new(Vec::new()));
            {
                let received = Rc::clone(&received);
                let accept = net.accept();
                exec.spawn(async move {
                    let server = accept.await.unwrap();
                    let mut buf = [0u8; 7];
                    loop {
                        match server.read_some(&mut buf).await {
                            Ok(0) | Err(_) => break,
                            Ok(n) => received.borrow_mut().extend_from_slice(&buf[..n]),
                        }
                    }
                });
            }
            exec.spawn(async move {
                let payload = [0xAB_u8; 256];
                let mut at = 0;
                while at < payload.len() {
                    match client.write_some(&payload[at..]).await {
                        Ok(n) => at += n,
                        Err(_) => break,
                    }
                }
                client.close();
            });
            exec.run();
            let bytes = received.borrow().clone();
            bytes
        };
        assert_eq!(run(7), run(7));
        assert_eq!(run(8), run(8));
    }
}
