//! Gray coding of quantizer bin indices (§IV-C).
//!
//! The paper encodes each bin index with a Gray code so that the most
//! common quantization error — a latent element landing in a bin *adjacent*
//! to the one its counterpart landed in — flips only a single key-seed bit.
//!
//! For power-of-two alphabets we use the standard binary-reflected Gray
//! code. For other alphabet sizes (the paper's optimum is `N_b = 9`) we use
//! a *truncated* binary-reflected code: the first `N_b` codewords of the
//! `2^⌈log₂N_b⌉`-entry table. A prefix of a binary-reflected Gray sequence
//! still has the defining property that consecutive entries differ in
//! exactly one bit, which is all the construction needs (see DESIGN.md,
//! deviation D2).

use serde::{Deserialize, Serialize};

/// Converts a binary number to its binary-reflected Gray code.
///
/// # Examples
///
/// ```
/// assert_eq!(wavekey_dsp::gray_encode(0), 0);
/// assert_eq!(wavekey_dsp::gray_encode(1), 1);
/// assert_eq!(wavekey_dsp::gray_encode(2), 3);
/// assert_eq!(wavekey_dsp::gray_encode(3), 2);
/// ```
pub fn gray_encode(n: u64) -> u64 {
    n ^ (n >> 1)
}

/// Converts a binary-reflected Gray code back to the binary number.
pub fn gray_decode(g: u64) -> u64 {
    let mut n = g;
    let mut shift = 1;
    while (n >> shift) > 0 {
        n ^= n >> shift;
        shift <<= 1;
    }
    n
}

/// Returns the first `n` codewords of the binary-reflected Gray sequence,
/// each `bits_per_symbol()` wide, as bit-vectors (MSB first).
///
/// Consecutive entries differ in exactly one bit.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn truncated_gray_table(n: usize) -> Vec<Vec<bool>> {
    assert!(n > 0, "gray table needs at least one symbol");
    let bits = bits_for(n);
    (0..n as u64)
        .map(|i| {
            let g = gray_encode(i);
            (0..bits).rev().map(|b| (g >> b) & 1 == 1).collect()
        })
        .collect()
}

/// Number of bits needed for an alphabet of `n` symbols: `⌈log₂ n⌉`,
/// minimum 1.
pub fn bits_for(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// A Gray encoder over an `n_symbols` alphabet.
///
/// Encodes bin-index sequences to key-seed bit strings and decodes them
/// back. Decoding of a codeword that is not in the (possibly truncated)
/// table returns the symbol with the nearest codeword in Hamming distance,
/// which mirrors how the scheme degrades gracefully when a bit flips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrayCode {
    n_symbols: usize,
    bits: usize,
}

impl GrayCode {
    /// Builds a Gray code for an alphabet of `n_symbols`.
    ///
    /// # Panics
    ///
    /// Panics if `n_symbols < 2`.
    pub fn new(n_symbols: usize) -> Self {
        assert!(n_symbols >= 2, "gray code needs at least two symbols");
        GrayCode { n_symbols, bits: bits_for(n_symbols) }
    }

    /// Bits per encoded symbol.
    pub fn bits_per_symbol(&self) -> usize {
        self.bits
    }

    /// The alphabet size.
    pub fn n_symbols(&self) -> usize {
        self.n_symbols
    }

    /// Encodes one symbol into `bits_per_symbol()` bits (MSB first).
    ///
    /// # Panics
    ///
    /// Panics if `symbol >= n_symbols`.
    pub fn encode_symbol(&self, symbol: usize) -> Vec<bool> {
        assert!(symbol < self.n_symbols, "symbol out of alphabet");
        let g = gray_encode(symbol as u64);
        (0..self.bits).rev().map(|b| (g >> b) & 1 == 1).collect()
    }

    /// Encodes a symbol sequence into a concatenated bit string.
    pub fn encode(&self, symbols: &[usize]) -> Vec<bool> {
        let mut out = Vec::with_capacity(symbols.len() * self.bits);
        for &s in symbols {
            out.extend(self.encode_symbol(s));
        }
        out
    }

    /// Decodes `bits_per_symbol()` bits back to the nearest symbol.
    ///
    /// Exact codewords decode exactly; invalid codewords (possible only for
    /// truncated alphabets) map to the Hamming-nearest valid symbol, ties
    /// broken toward the smaller symbol.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != bits_per_symbol()`.
    pub fn decode_symbol(&self, bits: &[bool]) -> usize {
        assert_eq!(bits.len(), self.bits, "wrong codeword width");
        let mut g = 0u64;
        for &b in bits {
            g = (g << 1) | b as u64;
        }
        let value = gray_decode(g);
        if (value as usize) < self.n_symbols {
            return value as usize;
        }
        // Out-of-alphabet codeword: pick the Hamming-nearest valid one.
        let mut best = 0usize;
        let mut best_dist = u32::MAX;
        for s in 0..self.n_symbols {
            let dist = (gray_encode(s as u64) ^ g).count_ones();
            if dist < best_dist {
                best = s;
                best_dist = dist;
            }
        }
        best
    }

    /// Decodes a concatenated bit string to a symbol sequence.
    ///
    /// # Panics
    ///
    /// Panics if the bit string length is not a multiple of
    /// `bits_per_symbol()`.
    pub fn decode(&self, bits: &[bool]) -> Vec<usize> {
        assert_eq!(bits.len() % self.bits, 0, "bit string not a whole number of symbols");
        bits.chunks(self.bits).map(|c| self.decode_symbol(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_encode_decode_roundtrip() {
        for n in 0..1000u64 {
            assert_eq!(gray_decode(gray_encode(n)), n);
        }
    }

    #[test]
    fn consecutive_gray_codes_differ_in_one_bit() {
        for n in 0..1000u64 {
            let diff = gray_encode(n) ^ gray_encode(n + 1);
            assert_eq!(diff.count_ones(), 1, "n = {n}");
        }
    }

    #[test]
    fn bits_for_alphabets() {
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(8), 3);
        assert_eq!(bits_for(9), 4);
        assert_eq!(bits_for(15), 4);
        assert_eq!(bits_for(16), 4);
    }

    #[test]
    fn truncated_table_adjacent_rows_differ_in_one_bit() {
        for n in [3, 5, 9, 12, 15] {
            let table = truncated_gray_table(n);
            assert_eq!(table.len(), n);
            for w in table.windows(2) {
                let diff = w[0].iter().zip(&w[1]).filter(|(a, b)| a != b).count();
                assert_eq!(diff, 1, "alphabet {n}");
            }
        }
    }

    #[test]
    fn encode_decode_symbols_roundtrip() {
        let code = GrayCode::new(9);
        assert_eq!(code.bits_per_symbol(), 4);
        for s in 0..9 {
            let bits = code.encode_symbol(s);
            assert_eq!(bits.len(), 4);
            assert_eq!(code.decode_symbol(&bits), s);
        }
    }

    #[test]
    fn encode_sequence_roundtrip() {
        let code = GrayCode::new(9);
        let symbols = vec![0, 3, 8, 5, 2, 7, 1];
        let bits = code.encode(&symbols);
        assert_eq!(bits.len(), symbols.len() * 4);
        assert_eq!(code.decode(&bits), symbols);
    }

    #[test]
    fn adjacent_symbols_differ_in_one_bit() {
        // The whole point of Gray coding in WaveKey: an off-by-one bin error
        // costs exactly one key-seed bit.
        for n_b in [4, 8, 9, 15] {
            let code = GrayCode::new(n_b);
            for s in 0..n_b - 1 {
                let a = code.encode_symbol(s);
                let b = code.encode_symbol(s + 1);
                let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
                assert_eq!(diff, 1, "N_b = {n_b}, symbol {s}");
            }
        }
    }

    #[test]
    fn invalid_codeword_maps_to_nearest() {
        let code = GrayCode::new(9);
        // Symbols 9..15 of the 4-bit table are invalid; their nearest valid
        // neighbor must be at Hamming distance <= 2 (usually 1).
        for raw in 9u64..16 {
            let g = gray_encode(raw);
            let bits: Vec<bool> = (0..4).rev().map(|b| (g >> b) & 1 == 1).collect();
            let s = code.decode_symbol(&bits);
            assert!(s < 9);
            let dist = (gray_encode(s as u64) ^ g).count_ones();
            assert!(dist <= 2, "raw {raw} decoded to {s} at distance {dist}");
        }
    }

    #[test]
    #[should_panic(expected = "symbol out of alphabet")]
    fn encode_out_of_range_panics() {
        GrayCode::new(4).encode_symbol(4);
    }
}
