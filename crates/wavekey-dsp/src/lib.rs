//! Signal-processing substrate for the WaveKey reproduction.
//!
//! Implements the DSP stages of §IV-B and §IV-C of the paper:
//!
//! * [`savgol`] — Savitzky-Golay smoothing used to denoise RFID phase and
//!   magnitude streams while preserving local extrema.
//! * [`unwrap`] — phase unwrapping (RFID phase is reported modulo 2π).
//! * [`quantize`] — equiprobable quantization of standard-normal latent
//!   elements into `N_b` bins (Eq. (1)).
//! * [`gray`] — binary-reflected Gray coding (and its truncation to
//!   non-power-of-two alphabets) for bin-index encoding.
//! * [`window`] — sliding-window variance motion-start detection, the
//!   "pause then move" synchronization trick of §IV-B-1.

pub mod gray;
pub mod quantize;
pub mod savgol;
pub mod unwrap;
pub mod window;

pub use gray::{gray_decode, gray_encode, truncated_gray_table, GrayCode};
pub use quantize::{EquiprobableQuantizer, QuantizeError};
pub use savgol::{
    savgol_coefficients, savgol_second_derivative, savgol_second_derivative_coefficients,
    savgol_second_derivative_into, savgol_smooth, savgol_smooth_into, SavGolError,
};
pub use unwrap::{unwrap_phase, unwrap_phase_into};
pub use window::{detect_motion_start, MotionDetectConfig};
