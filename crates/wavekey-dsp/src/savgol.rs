//! Savitzky-Golay smoothing (§IV-B-2 of the paper).
//!
//! The RFID server denoises both the unwrapped phase stream and the
//! magnitude stream with a Savitzky-Golay filter because, unlike a plain
//! moving average, it preserves local maxima and minima — features that the
//! RF-En autoencoder relies on.
//!
//! The filter is implemented the classical way: for each window position a
//! least-squares polynomial of given order is fit to the window, which for a
//! uniform grid reduces to a fixed convolution kernel. The kernel is derived
//! by solving the small normal-equation system `(JᵀJ) a = Jᵀ e₀` by Gaussian
//! elimination — no external linear-algebra dependency.
//!
//! The kernels depend only on `(window, order)` (the second-derivative
//! kernel additionally carries a pure `1/dt²` scale), so the solve runs
//! once per configuration and the weights are served from a process-wide
//! cache afterwards — the RFID pipeline calls the smoother on every
//! recording with a fixed configuration, and re-deriving the normal
//! equations per call dominated its cost.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Error from Savitzky-Golay configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SavGolError {
    /// Window length must be odd so a center sample exists.
    EvenWindow,
    /// Polynomial order must be strictly smaller than the window length.
    OrderTooHigh,
    /// The input signal is shorter than the window.
    SignalTooShort,
}

impl std::fmt::Display for SavGolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SavGolError::EvenWindow => write!(f, "window length must be odd"),
            SavGolError::OrderTooHigh => {
                write!(f, "polynomial order must be smaller than the window length")
            }
            SavGolError::SignalTooShort => write!(f, "signal shorter than filter window"),
        }
    }
}

impl std::error::Error for SavGolError {}

/// Computes the smoothing (0th-derivative, center-point) Savitzky-Golay
/// convolution coefficients for an odd `window` length and polynomial
/// `order`.
///
/// The returned kernel has length `window` and sums to 1.
///
/// # Errors
///
/// Returns [`SavGolError::EvenWindow`] for even windows and
/// [`SavGolError::OrderTooHigh`] when `order >= window`.
///
/// # Examples
///
/// ```
/// let k = wavekey_dsp::savgol_coefficients(5, 2).unwrap();
/// // The classical 5-point quadratic kernel (−3, 12, 17, 12, −3)/35.
/// assert!((k[2] - 17.0 / 35.0).abs() < 1e-12);
/// ```
pub fn savgol_coefficients(window: usize, order: usize) -> Result<Vec<f64>, SavGolError> {
    if window % 2 == 0 {
        return Err(SavGolError::EvenWindow);
    }
    if order >= window {
        return Err(SavGolError::OrderTooHigh);
    }
    Ok(cached_kernel(window, order, 0).to_vec())
}

/// Derives the center-point kernel for the `basis`-th fitted-polynomial
/// coefficient: solves `G a = e_basis` over the normal matrix
/// `G = JᵀJ` (`J[i][j] = x_i^j`, `x_i ∈ [-half, half]`) and evaluates the
/// solution against the Vandermonde basis — equivalent to one row of
/// `G⁻¹ Jᵀ`. Basis 0 is the smoothing kernel; basis 2 carries the factor
/// 2 of `p''(0) = 2·a₂` (the caller applies the grid scale `1/dt²`).
fn derive_kernel(window: usize, order: usize, basis: usize) -> Vec<f64> {
    let half = (window / 2) as i64;
    let m = order + 1;
    let mut g = vec![vec![0.0; m]; m];
    for (r, row) in g.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            let mut s = 0.0;
            for x in -half..=half {
                s += (x as f64).powi((r + c) as i32);
            }
            *cell = s;
        }
    }
    let a = solve_gaussian(&mut g, unit_vec(m, basis));
    let mut kernel = Vec::with_capacity(window);
    for x in -half..=half {
        let mut w = 0.0;
        for (j, &aj) in a.iter().enumerate() {
            w += aj * (x as f64).powi(j as i32);
        }
        kernel.push(if basis == 2 { 2.0 * w } else { w });
    }
    kernel
}

/// The `(window, order, basis)`-keyed kernel cache. Validation happens in
/// the public entry points, so every key reaching here is solvable.
fn cached_kernel(window: usize, order: usize, basis: usize) -> Arc<Vec<f64>> {
    static CACHE: OnceLock<Mutex<HashMap<(usize, usize, usize), Arc<Vec<f64>>>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    map.entry((window, order, basis))
        .or_insert_with(|| Arc::new(derive_kernel(window, order, basis)))
        .clone()
}

fn unit_vec(n: usize, i: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    v[i] = 1.0;
    v
}

/// Solves `A x = b` in place by Gaussian elimination with partial pivoting.
///
/// `A` is destroyed. Panics if the matrix is singular — which cannot happen
/// for the positive-definite normal matrices produced above.
fn solve_gaussian(a: &mut [Vec<f64>], mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col][col];
        assert!(pivot.abs() > 1e-14, "singular normal matrix in savgol solve");
        for row in (col + 1)..n {
            let factor = a[row][col] / pivot;
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = b[row];
        for col in (row + 1)..n {
            s -= a[row][col] * x[col];
        }
        x[row] = s / a[row][row];
    }
    x
}

/// Computes the second-derivative (center-point) Savitzky-Golay kernel:
/// convolving a signal sampled at spacing `dt` with these weights yields
/// the local-quadratic-fit estimate of its second derivative.
///
/// This is how a competent camera-tracking attacker turns noisy hand
/// positions into acceleration: a least-squares polynomial fit over a
/// window amplifies noise far less than naive double differencing.
///
/// # Errors
///
/// Same configuration errors as [`savgol_coefficients`]; additionally the
/// order must be at least 2 to carry a second derivative.
pub fn savgol_second_derivative_coefficients(
    window: usize,
    order: usize,
    dt: f64,
) -> Result<Vec<f64>, SavGolError> {
    if window % 2 == 0 {
        return Err(SavGolError::EvenWindow);
    }
    if order >= window || order < 2 {
        return Err(SavGolError::OrderTooHigh);
    }
    // The cached weights are `2·w` (dt-independent); dividing by `dt²`
    // here reproduces the original `2·w / (dt·dt)` bit for bit.
    Ok(cached_kernel(window, order, 2).iter().map(|&v| v / (dt * dt)).collect())
}

/// Estimates the second derivative of `signal` (sample spacing `dt`) via
/// local quadratic/cubic least-squares fits (Savitzky-Golay derivative
/// filter), with mirror padding at the boundaries.
///
/// # Errors
///
/// See [`savgol_second_derivative_coefficients`] and
/// [`SavGolError::SignalTooShort`].
pub fn savgol_second_derivative(
    signal: &[f64],
    window: usize,
    order: usize,
    dt: f64,
) -> Result<Vec<f64>, SavGolError> {
    let mut out = Vec::new();
    savgol_second_derivative_into(signal, window, order, dt, &mut out)?;
    Ok(out)
}

/// [`savgol_second_derivative`] writing into a caller-owned buffer
/// (cleared first, capacity reused) so hot pipelines avoid a fresh
/// signal-length allocation per call.
///
/// # Errors
///
/// Same as [`savgol_second_derivative`]; on error `out` is left cleared.
pub fn savgol_second_derivative_into(
    signal: &[f64],
    window: usize,
    order: usize,
    dt: f64,
    out: &mut Vec<f64>,
) -> Result<(), SavGolError> {
    out.clear();
    if signal.len() < window {
        return Err(SavGolError::SignalTooShort);
    }
    let kernel = savgol_second_derivative_coefficients(window, order, dt)?;
    convolve_mirrored_into(signal, &kernel, out);
    Ok(())
}

/// Smooths `signal` with a Savitzky-Golay filter of the given odd `window`
/// length and polynomial `order`.
///
/// Boundaries are handled by mirror-padding, so the output has the same
/// length as the input.
///
/// # Errors
///
/// Returns [`SavGolError::SignalTooShort`] when the signal is shorter than
/// the window, plus the configuration errors of [`savgol_coefficients`].
pub fn savgol_smooth(signal: &[f64], window: usize, order: usize) -> Result<Vec<f64>, SavGolError> {
    let mut out = Vec::new();
    savgol_smooth_into(signal, window, order, &mut out)?;
    Ok(out)
}

/// [`savgol_smooth`] writing into a caller-owned buffer (cleared first,
/// capacity reused). The cached smoothing kernel is applied straight from
/// the cache, so steady-state calls allocate nothing.
///
/// # Errors
///
/// Same as [`savgol_smooth`]; on error `out` is left cleared.
pub fn savgol_smooth_into(
    signal: &[f64],
    window: usize,
    order: usize,
    out: &mut Vec<f64>,
) -> Result<(), SavGolError> {
    out.clear();
    if signal.len() < window {
        return Err(SavGolError::SignalTooShort);
    }
    if window % 2 == 0 {
        return Err(SavGolError::EvenWindow);
    }
    if order >= window {
        return Err(SavGolError::OrderTooHigh);
    }
    let kernel = cached_kernel(window, order, 0);
    convolve_mirrored_into(signal, &kernel, out);
    Ok(())
}

/// Mirror-padded convolution of `signal` with a centered `kernel`,
/// appended to the (already cleared) `out`. Per-sample accumulation
/// order matches the historical inline loops exactly, keeping outputs
/// bit-identical to the pre-refactor code.
fn convolve_mirrored_into(signal: &[f64], kernel: &[f64], out: &mut Vec<f64>) {
    let half = kernel.len() / 2;
    let n = signal.len();
    out.reserve(n);
    for i in 0..n {
        let mut acc = 0.0;
        for (k, &w) in kernel.iter().enumerate() {
            let offset = k as i64 - half as i64;
            let idx = mirror_index(i as i64 + offset, n);
            acc += w * signal[idx];
        }
        out.push(acc);
    }
}

/// Reflects an out-of-range index back into `[0, n)` (mirror padding).
fn mirror_index(i: i64, n: usize) -> usize {
    let n = n as i64;
    let mut i = i;
    // For the window sizes used here a couple of reflections suffice, but
    // loop for robustness.
    loop {
        if i < 0 {
            i = -i;
        } else if i >= n {
            i = 2 * (n - 1) - i;
        } else {
            return i as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_5_point_quadratic_kernel() {
        let k = savgol_coefficients(5, 2).unwrap();
        let expected = [-3.0, 12.0, 17.0, 12.0, -3.0].map(|v| v / 35.0);
        for (a, b) in k.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn classical_7_point_quadratic_kernel() {
        let k = savgol_coefficients(7, 2).unwrap();
        let expected = [-2.0, 3.0, 6.0, 7.0, 6.0, 3.0, -2.0].map(|v| v / 21.0);
        for (a, b) in k.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn kernel_sums_to_one() {
        for (w, o) in [(5, 2), (7, 2), (9, 3), (11, 4), (21, 3)] {
            let k = savgol_coefficients(w, o).unwrap();
            let s: f64 = k.iter().sum();
            assert!((s - 1.0).abs() < 1e-10, "window {w} order {o}: sum {s}");
        }
    }

    #[test]
    fn polynomial_signals_pass_unchanged() {
        // A quadratic is reproduced exactly by an order-2 filter (away from
        // mirror-padded boundaries the fit is exact; with mirror padding the
        // interior must still be exact).
        let signal: Vec<f64> = (0..50).map(|i| {
            let t = i as f64 * 0.1;
            1.5 + 2.0 * t - 0.3 * t * t
        }).collect();
        let out = savgol_smooth(&signal, 7, 2).unwrap();
        for i in 3..47 {
            assert!((out[i] - signal[i]).abs() < 1e-10, "i = {i}");
        }
    }

    #[test]
    fn smoothing_reduces_noise_variance() {
        // Deterministic pseudo-noise on a sine wave.
        let mut state: u64 = 42;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let clean: Vec<f64> = (0..400).map(|i| (i as f64 * 0.05).sin()).collect();
        let noisy: Vec<f64> = clean.iter().map(|c| c + 0.2 * noise()).collect();
        let smoothed = savgol_smooth(&noisy, 11, 2).unwrap();
        let err_noisy: f64 = clean.iter().zip(&noisy).map(|(c, n)| (c - n) * (c - n)).sum();
        let err_smooth: f64 = clean.iter().zip(&smoothed).map(|(c, s)| (c - s) * (c - s)).sum();
        assert!(
            err_smooth < err_noisy / 2.0,
            "smoothing should at least halve the noise energy: {err_smooth} vs {err_noisy}"
        );
    }

    #[test]
    fn preserves_peak_better_than_moving_average() {
        // A narrow Gaussian bump: SavGol should keep the peak closer to 1
        // than a box filter of the same width.
        let signal: Vec<f64> = (0..101)
            .map(|i| {
                let x = (i as f64 - 50.0) / 4.0;
                (-x * x / 2.0).exp()
            })
            .collect();
        let sg = savgol_smooth(&signal, 11, 3).unwrap();
        let box_avg: f64 = signal[45..56].iter().sum::<f64>() / 11.0;
        assert!(sg[50] > box_avg, "savgol {} vs box {}", sg[50], box_avg);
        assert!(sg[50] > 0.97, "peak preserved: {}", sg[50]);
    }

    #[test]
    fn second_derivative_of_parabola() {
        // p(t) = 3t² − t → p'' = 6 everywhere.
        let dt = 0.02;
        let signal: Vec<f64> = (0..200).map(|i| {
            let t = i as f64 * dt;
            3.0 * t * t - t
        }).collect();
        let d2 = savgol_second_derivative(&signal, 11, 2, dt).unwrap();
        for &v in &d2[6..194] {
            assert!((v - 6.0).abs() < 1e-6, "p'' = {v}");
        }
    }

    #[test]
    fn second_derivative_of_sine() {
        // p = sin(ωt) → p'' = −ω² sin(ωt); check the interior.
        let dt = 0.005;
        let omega = 4.0;
        let signal: Vec<f64> = (0..400).map(|i| (omega * i as f64 * dt).sin()).collect();
        let d2 = savgol_second_derivative(&signal, 21, 3, dt).unwrap();
        for i in (50..350).step_by(37) {
            let expected = -omega * omega * (omega * i as f64 * dt).sin();
            assert!((d2[i] - expected).abs() < 0.05, "i = {i}: {} vs {expected}", d2[i]);
        }
    }

    #[test]
    fn second_derivative_noise_gain_far_below_double_difference() {
        // The point of the SG derivative: white noise of σ = 1 maps to
        // far less output noise than the 6/dt⁴ variance of the naive
        // central second difference.
        let dt = 1.0 / 260.0;
        let kernel = savgol_second_derivative_coefficients(53, 3, dt).unwrap();
        let sg_gain: f64 = kernel.iter().map(|w| w * w).sum();
        let naive_gain = 6.0 / dt.powi(4);
        assert!(sg_gain < naive_gain / 100.0, "sg {sg_gain} vs naive {naive_gain}");
    }

    #[test]
    fn second_derivative_rejects_low_order() {
        assert_eq!(
            savgol_second_derivative_coefficients(11, 1, 0.01).unwrap_err(),
            SavGolError::OrderTooHigh
        );
    }

    #[test]
    fn cached_kernels_are_stable_across_calls_and_dt_scales() {
        let a = savgol_coefficients(11, 3).unwrap();
        let b = savgol_coefficients(11, 3).unwrap();
        assert_eq!(a, b, "cache must serve identical weights");
        // The cached part is dt-independent: kernels at different spacings
        // differ by exactly the dt² ratio.
        let fine = savgol_second_derivative_coefficients(21, 3, 0.005).unwrap();
        let coarse = savgol_second_derivative_coefficients(21, 3, 0.01).unwrap();
        for (f, c) in fine.iter().zip(&coarse) {
            assert!((f / 4.0 - c).abs() <= c.abs() * 1e-12 + 1e-18, "{f} vs {c}");
        }
    }

    #[test]
    fn config_errors() {
        assert_eq!(savgol_coefficients(4, 2).unwrap_err(), SavGolError::EvenWindow);
        assert_eq!(savgol_coefficients(5, 5).unwrap_err(), SavGolError::OrderTooHigh);
        assert_eq!(
            savgol_smooth(&[1.0, 2.0], 5, 2).unwrap_err(),
            SavGolError::SignalTooShort
        );
    }

    #[test]
    fn mirror_index_reflects() {
        assert_eq!(mirror_index(-1, 10), 1);
        assert_eq!(mirror_index(-3, 10), 3);
        assert_eq!(mirror_index(10, 10), 8);
        assert_eq!(mirror_index(12, 10), 6);
        assert_eq!(mirror_index(5, 10), 5);
    }
}
