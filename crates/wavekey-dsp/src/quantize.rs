//! Equiprobable quantization of standard-normal latent elements (§IV-C).
//!
//! Both autoencoders end with batch-norm layers, so every element of the
//! latent feature vectors follows (approximately) the standard normal
//! distribution. Eq. (1) of the paper places the bin boundaries so that a
//! standard-normal variable falls into each of the `N_b` bins with equal
//! probability `1/N_b`:
//!
//! ```text
//! Φ(b_i) = i / N_b      for i = 1 .. N_b−1
//! ```
//!
//! Equal occupation probability maximizes the entropy of the resulting
//! symbol stream, which is what makes the key-seed hard to guess.

use serde::{Deserialize, Serialize};
use wavekey_math::{normal_cdf, normal_inverse_cdf};

/// Error from quantizer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantizeError {
    /// `N_b` must be at least 2.
    TooFewBins,
}

impl std::fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantizeError::TooFewBins => write!(f, "quantizer needs at least two bins"),
        }
    }
}

impl std::error::Error for QuantizeError {}

/// An equiprobable quantizer for standard-normal variables.
///
/// # Examples
///
/// ```
/// use wavekey_dsp::EquiprobableQuantizer;
/// let q = EquiprobableQuantizer::new(4).unwrap();
/// // Φ⁻¹(1/2) = 0 separates bins 1 and 2.
/// assert_eq!(q.quantize(-10.0), 0);
/// assert_eq!(q.quantize(-0.1), 1);
/// assert_eq!(q.quantize(0.1), 2);
/// assert_eq!(q.quantize(10.0), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiprobableQuantizer {
    n_bins: usize,
    /// The `N_b − 1` interior boundaries `b_1 .. b_{N_b−1}`, ascending.
    boundaries: Vec<f64>,
}

impl EquiprobableQuantizer {
    /// Builds a quantizer with `n_bins` equiprobable bins (Eq. (1)).
    ///
    /// # Errors
    ///
    /// Returns [`QuantizeError::TooFewBins`] when `n_bins < 2`.
    pub fn new(n_bins: usize) -> Result<Self, QuantizeError> {
        if n_bins < 2 {
            return Err(QuantizeError::TooFewBins);
        }
        let boundaries = (1..n_bins)
            .map(|i| normal_inverse_cdf(i as f64 / n_bins as f64))
            .collect();
        Ok(EquiprobableQuantizer { n_bins, boundaries })
    }

    /// The number of bins `N_b`.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// The interior bin boundaries (ascending).
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Quantizes a value into its bin index in `[0, N_b)`.
    pub fn quantize(&self, x: f64) -> usize {
        // partition_point returns the number of boundaries <= x, which is
        // exactly the bin index.
        self.boundaries.partition_point(|&b| b <= x)
    }

    /// Quantizes a whole feature vector.
    pub fn quantize_all(&self, xs: &[f64]) -> Vec<usize> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }

    /// The probability mass of bin `i` under the standard normal — useful
    /// for verifying equiprobability in tests.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N_b`.
    pub fn bin_probability(&self, i: usize) -> f64 {
        assert!(i < self.n_bins, "bin index out of range");
        let lo = if i == 0 { 0.0 } else { normal_cdf(self.boundaries[i - 1]) };
        let hi = if i == self.n_bins - 1 {
            1.0
        } else {
            normal_cdf(self.boundaries[i])
        };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_single_bin() {
        assert_eq!(EquiprobableQuantizer::new(1).unwrap_err(), QuantizeError::TooFewBins);
    }

    #[test]
    fn boundaries_match_inverse_cdf() {
        let q = EquiprobableQuantizer::new(9).unwrap();
        assert_eq!(q.boundaries().len(), 8);
        for (i, &b) in q.boundaries().iter().enumerate() {
            let expected = normal_inverse_cdf((i + 1) as f64 / 9.0);
            assert!((b - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn bins_are_equiprobable() {
        for n_b in [2, 4, 9, 15] {
            let q = EquiprobableQuantizer::new(n_b).unwrap();
            for i in 0..n_b {
                let p = q.bin_probability(i);
                assert!(
                    (p - 1.0 / n_b as f64).abs() < 1e-7,
                    "N_b = {n_b}, bin {i}: p = {p}"
                );
            }
        }
    }

    #[test]
    fn median_split_for_two_bins() {
        let q = EquiprobableQuantizer::new(2).unwrap();
        // Boundary accuracy is limited by the erfc approximation (~1e-7).
        assert!(q.boundaries()[0].abs() < 1e-6);
        assert_eq!(q.quantize(-0.001), 0);
        assert_eq!(q.quantize(0.001), 1);
    }

    #[test]
    fn quantize_is_monotone() {
        let q = EquiprobableQuantizer::new(9).unwrap();
        let xs: Vec<f64> = (-40..=40).map(|i| i as f64 / 10.0).collect();
        let bins = q.quantize_all(&xs);
        for w in bins.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(bins[0], 0);
        assert_eq!(*bins.last().unwrap(), 8);
    }

    #[test]
    fn empirical_occupancy_is_uniform() {
        // Quantize ~standard-normal variates from a Box-Muller generator and
        // check each bin receives roughly 1/N_b of the mass.
        let n_b = 9;
        let q = EquiprobableQuantizer::new(n_b).unwrap();
        let mut state: u64 = 7;
        let mut uniform = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 + 0.5) / (1u64 << 53) as f64
        };
        let n = 200_000;
        let mut counts = vec![0usize; n_b];
        for _ in 0..n {
            let (u1, u2): (f64, f64) = (uniform(), uniform());
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            counts[q.quantize(z)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (frac - 1.0 / n_b as f64).abs() < 0.01,
                "bin {i} occupancy {frac}"
            );
        }
    }

    #[test]
    fn quantize_boundary_values_go_right() {
        let q = EquiprobableQuantizer::new(4).unwrap();
        let b = q.boundaries()[1]; // = 0.0
        assert_eq!(q.quantize(b), 2);
    }
}
