//! Phase unwrapping (§IV-B-2 of the paper).
//!
//! The RFID reader reports backscatter phase modulo 2π. Because the tag
//! moves continuously during the gesture, the true phase is a continuous
//! function of time; any sample-to-sample jump larger than π is therefore a
//! wrap artifact and is removed by adding the appropriate multiple of ±2π —
//! exactly the "eliminate any phase jumping point" rule of the paper.

use std::f64::consts::PI;

/// Unwraps a phase sequence given in radians.
///
/// Each consecutive difference larger than π in magnitude is reduced by the
/// nearest multiple of 2π. The first sample is kept as-is.
///
/// # Examples
///
/// ```
/// use std::f64::consts::PI;
/// // A phase ramp that wraps once.
/// let wrapped = vec![5.9, 6.1, 0.1, 0.3];
/// let un = wavekey_dsp::unwrap_phase(&wrapped);
/// assert!((un[2] - (0.1 + 2.0 * PI)).abs() < 1e-12);
/// ```
pub fn unwrap_phase(phases: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    unwrap_phase_into(phases, &mut out);
    out
}

/// [`unwrap_phase`] writing into a caller-owned buffer (cleared first,
/// capacity reused) so hot pipelines avoid a fresh recording-length
/// allocation per call.
pub fn unwrap_phase_into(phases: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(phases.len());
    let mut offset = 0.0;
    let mut prev_raw: Option<f64> = None;
    for &p in phases {
        if let Some(prev) = prev_raw {
            let mut diff = p - prev;
            while diff > PI {
                diff -= 2.0 * PI;
                offset -= 2.0 * PI;
            }
            while diff < -PI {
                diff += 2.0 * PI;
                offset += 2.0 * PI;
            }
        }
        out.push(p + offset);
        prev_raw = Some(p);
    }
}

/// Wraps a phase value into `[0, 2π)`.
///
/// The inverse of what the simulated reader reports; used by tests and by
/// the channel simulator.
pub fn wrap_phase(phase: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut p = phase % two_pi;
    if p < 0.0 {
        p += two_pi;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_on_smooth_signal() {
        let phases: Vec<f64> = (0..100).map(|i| (i as f64 * 0.01).sin()).collect();
        let un = unwrap_phase(&phases);
        for (a, b) in phases.iter().zip(&un) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn recovers_linear_ramp() {
        // True phase: steadily increasing ramp 0..8π; reader wraps it.
        let true_phase: Vec<f64> = (0..400).map(|i| i as f64 * 0.063).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_phase(p)).collect();
        let un = unwrap_phase(&wrapped);
        for (t, u) in true_phase.iter().zip(&un) {
            assert!((t - u).abs() < 1e-9, "{t} vs {u}");
        }
    }

    #[test]
    fn recovers_descending_ramp() {
        let true_phase: Vec<f64> = (0..400).map(|i| 10.0 - i as f64 * 0.05).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_phase(p)).collect();
        let un = unwrap_phase(&wrapped);
        for (t, u) in true_phase.iter().zip(&un) {
            // Unwrapping preserves shape up to a constant 2π multiple.
            let delta = t - u;
            let first_delta = true_phase[0] - un[0];
            assert!((delta - first_delta).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_oscillation_across_boundary() {
        // Oscillate around the 0/2π boundary.
        let true_phase: Vec<f64> = (0..200).map(|i| 0.4 * (i as f64 * 0.1).sin()).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_phase(p)).collect();
        let un = unwrap_phase(&wrapped);
        let first_delta = true_phase[0] - un[0];
        for (t, u) in true_phase.iter().zip(&un) {
            assert!((t - u - first_delta).abs() < 1e-9);
        }
    }

    #[test]
    fn wrap_phase_range() {
        for &p in &[-7.0, -0.1, 0.0, 3.0, 6.3, 100.0] {
            let w = wrap_phase(p);
            assert!((0.0..2.0 * PI).contains(&w), "{p} -> {w}");
            // Same angle modulo 2π.
            let diff = (p - w) / (2.0 * PI);
            assert!((diff - diff.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(unwrap_phase(&[]).is_empty());
        assert_eq!(unwrap_phase(&[1.5]), vec![1.5]);
    }
}
