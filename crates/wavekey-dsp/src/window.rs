//! Motion-start detection (§IV-B-1 of the paper).
//!
//! WaveKey avoids clock synchronization between the mobile device and the
//! RFID server by having the user briefly *pause* before the random
//! gesture. Both devices watch their own signal and declare the gesture
//! started at the first sample where a sliding-window variance rises
//! significantly above the quiet-period baseline; data recording begins at
//! that sample on both sides, which aligns the two recordings.

use serde::{Deserialize, Serialize};
use wavekey_math::variance;

/// Configuration for [`detect_motion_start`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionDetectConfig {
    /// Number of samples in the sliding variance window.
    pub window: usize,
    /// Number of leading samples assumed quiet, used to estimate the noise
    /// floor.
    pub baseline_len: usize,
    /// Detection fires when windowed variance exceeds
    /// `threshold_factor × baseline variance` (with an absolute floor so a
    /// perfectly noise-free baseline still works).
    pub threshold_factor: f64,
    /// Absolute variance floor added to the baseline estimate.
    pub variance_floor: f64,
}

impl Default for MotionDetectConfig {
    fn default() -> Self {
        MotionDetectConfig {
            window: 10,
            baseline_len: 30,
            threshold_factor: 8.0,
            variance_floor: 1e-9,
        }
    }
}

/// Finds the index at which motion starts in `signal`, or `None` when the
/// variance never rises above threshold.
///
/// The returned index is the *start of the window* that first triggers, so
/// recordings that begin at this index include the onset itself.
///
/// # Panics
///
/// Panics if `config.window == 0` or `config.baseline_len < config.window`.
pub fn detect_motion_start(signal: &[f64], config: &MotionDetectConfig) -> Option<usize> {
    assert!(config.window > 0, "window must be positive");
    assert!(
        config.baseline_len >= config.window,
        "baseline must cover at least one window"
    );
    if signal.len() < config.baseline_len + config.window {
        return None;
    }
    // Baseline noise level from the assumed-quiet prefix, measured as the
    // largest windowed variance seen there.
    let mut baseline: f64 = 0.0;
    for start in 0..=(config.baseline_len - config.window) {
        baseline = baseline.max(variance(&signal[start..start + config.window]));
    }
    let threshold = (baseline + config.variance_floor) * config.threshold_factor;

    for start in config.baseline_len..=(signal.len() - config.window) {
        if variance(&signal[start..start + config.window]) > threshold {
            return Some(start);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_then_motion(quiet: usize, motion: usize) -> Vec<f64> {
        let mut signal = Vec::with_capacity(quiet + motion);
        let mut state: u64 = 99;
        let mut noise = |scale: f64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            scale * (((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5)
        };
        for _ in 0..quiet {
            signal.push(noise(0.01));
        }
        for i in 0..motion {
            signal.push((i as f64 * 0.2).sin() * 2.0 + noise(0.01));
        }
        signal
    }

    #[test]
    fn detects_onset_near_true_start() {
        let quiet = 100;
        let signal = quiet_then_motion(quiet, 200);
        let start = detect_motion_start(&signal, &MotionDetectConfig::default())
            .expect("motion should be detected");
        assert!(
            (start as i64 - quiet as i64).abs() <= 12,
            "detected at {start}, true onset {quiet}"
        );
    }

    #[test]
    fn no_detection_on_pure_noise() {
        let mut state: u64 = 5;
        let signal: Vec<f64> = (0..300)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                0.01 * (((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5)
            })
            .collect();
        assert_eq!(detect_motion_start(&signal, &MotionDetectConfig::default()), None);
    }

    #[test]
    fn too_short_signal_returns_none() {
        let signal = vec![0.0; 10];
        assert_eq!(detect_motion_start(&signal, &MotionDetectConfig::default()), None);
    }

    #[test]
    fn both_modalities_detect_same_onset() {
        // Simulate the cross-device synchronization property: two different
        // signals driven by the same onset should trigger within a few
        // samples of each other.
        let quiet = 80;
        let imu = quiet_then_motion(quiet, 150);
        // "RFID" signal: different shape, same onset.
        let mut rfid = vec![0.0; quiet];
        for i in 0..150 {
            rfid.push((i as f64 * 0.15).cos() * 1.5);
        }
        let cfg = MotionDetectConfig::default();
        let a = detect_motion_start(&imu, &cfg).unwrap();
        let b = detect_motion_start(&rfid, &cfg).unwrap();
        assert!((a as i64 - b as i64).abs() <= 12, "imu {a} rfid {b}");
    }

    #[test]
    #[should_panic(expected = "baseline must cover")]
    fn invalid_config_panics() {
        let cfg = MotionDetectConfig { window: 50, baseline_len: 10, ..Default::default() };
        detect_motion_start(&[0.0; 100], &cfg);
    }
}
