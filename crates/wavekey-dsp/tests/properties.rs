//! Property-based tests for the DSP substrate.

use proptest::prelude::*;
use std::f64::consts::TAU;
use wavekey_dsp::gray::{bits_for, gray_decode, gray_encode, GrayCode};
use wavekey_dsp::unwrap::{unwrap_phase, wrap_phase};
use wavekey_dsp::{savgol_smooth, EquiprobableQuantizer};

proptest! {
    #[test]
    fn gray_roundtrip(n in any::<u32>()) {
        let n = u64::from(n);
        prop_assert_eq!(gray_decode(gray_encode(n)), n);
    }

    #[test]
    fn gray_adjacent_single_bit(n in 0u64..1_000_000) {
        prop_assert_eq!((gray_encode(n) ^ gray_encode(n + 1)).count_ones(), 1);
    }

    #[test]
    fn gray_code_symbol_roundtrip(n_symbols in 2usize..20, symbol_seed in any::<u64>()) {
        let code = GrayCode::new(n_symbols);
        let symbol = (symbol_seed as usize) % n_symbols;
        let bits = code.encode_symbol(symbol);
        prop_assert_eq!(bits.len(), bits_for(n_symbols));
        prop_assert_eq!(code.decode_symbol(&bits), symbol);
    }

    #[test]
    fn wrap_phase_idempotent_and_in_range(p in -1000.0f64..1000.0) {
        let w = wrap_phase(p);
        prop_assert!((0.0..TAU).contains(&w));
        prop_assert!((wrap_phase(w) - w).abs() < 1e-12);
    }

    #[test]
    fn unwrap_recovers_smooth_signals(
        start in -3.0f64..3.0,
        slope in -2.5f64..2.5,
        len in 10usize..200
    ) {
        // Any phase signal with per-sample steps < π unwraps exactly (up
        // to the initial 2π ambiguity).
        let truth: Vec<f64> = (0..len).map(|i| start + slope * i as f64 * 0.5).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&p| wrap_phase(p)).collect();
        let un = unwrap_phase(&wrapped);
        let offset = truth[0] - un[0];
        for (t, u) in truth.iter().zip(&un) {
            prop_assert!((t - u - offset).abs() < 1e-9);
        }
    }

    #[test]
    fn quantizer_is_monotone_and_total(n_bins in 2usize..16, x in -6.0f64..6.0, y in -6.0f64..6.0) {
        let q = EquiprobableQuantizer::new(n_bins).unwrap();
        let bx = q.quantize(x);
        let by = q.quantize(y);
        prop_assert!(bx < n_bins && by < n_bins);
        if x <= y {
            prop_assert!(bx <= by);
        }
    }

    #[test]
    fn quantizer_bins_equiprobable(n_bins in 2usize..16) {
        let q = EquiprobableQuantizer::new(n_bins).unwrap();
        for i in 0..n_bins {
            let p = q.bin_probability(i);
            prop_assert!((p - 1.0 / n_bins as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn savgol_preserves_constants(c in -100.0f64..100.0, len in 21usize..100) {
        let signal = vec![c; len];
        let out = savgol_smooth(&signal, 11, 3).unwrap();
        for v in out {
            prop_assert!((v - c).abs() < 1e-9);
        }
    }

    #[test]
    fn savgol_is_linear(seed in any::<u64>(), alpha in -3.0f64..3.0) {
        // F(αx + y) = αF(x) + F(y).
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let x: Vec<f64> = (0..50).map(|_| next()).collect();
        let y: Vec<f64> = (0..50).map(|_| next()).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
        let fx = savgol_smooth(&x, 9, 2).unwrap();
        let fy = savgol_smooth(&y, 9, 2).unwrap();
        let fc = savgol_smooth(&combo, 9, 2).unwrap();
        for i in 0..50 {
            prop_assert!((fc[i] - (alpha * fx[i] + fy[i])).abs() < 1e-9);
        }
    }
}
