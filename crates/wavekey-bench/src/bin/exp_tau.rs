//! Reproduces **§VI-C-3**: determining the deadline slack τ.
//!
//! Paper protocol: generate the deadline-critical messages (`M_A`, `M_B`)
//! for many data records on every device and measure preparation time;
//! τ is set just above the worst case (the paper: < 100 ms → τ = 120 ms).
//!
//! Our "devices" are one machine, so the experiment measures this
//! implementation's `M_A`/`M_B` preparation over real seed batches and
//! reports the implied τ.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin exp_tau [runs]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use wavekey_bench::{trained_models, Scale};
use wavekey_core::agreement::{run_agreement, AgreementConfig};
use wavekey_core::channel::PassiveChannel;
use wavekey_core::session::{Session, SessionConfig};
use wavekey_math::percentile;

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let models = trained_models(Scale::Small);

    let mut session = Session::new(SessionConfig::default(), models, 0x7a0);
    let mut seed_pairs = Vec::new();
    while seed_pairs.len() < runs {
        if let Ok(pair) = session.derive_seeds() {
            seed_pairs.push(pair);
        }
    }

    let config = AgreementConfig { tau: 10.0, ..Default::default() };
    let mut ma_times = Vec::new();
    let mut mb_times = Vec::new();
    for (i, (s_m, s_r)) in seed_pairs.iter().enumerate() {
        let mut rng_m = StdRng::seed_from_u64(i as u64);
        let mut rng_s = StdRng::seed_from_u64(1000 + i as u64);
        if let Ok(out) =
            run_agreement(s_m, s_r, &config, &mut rng_m, &mut rng_s, &mut PassiveChannel)
        {
            ma_times.push(out.ma_prep * 1000.0);
            mb_times.push(out.mb_prep * 1000.0);
        }
    }

    println!("\n§VI-C-3: deadline-critical message preparation times (ms)");
    println!("({} successful full-protocol runs, MODP-1024 group)\n", ma_times.len());
    for (label, times) in [("M_A", &ma_times), ("M_B", &mb_times)] {
        println!(
            "{label}: mean {:.1}, p50 {:.1}, p95 {:.1}, max {:.1}",
            times.iter().sum::<f64>() / times.len() as f64,
            percentile(times, 50.0),
            percentile(times, 95.0),
            times.iter().cloned().fold(0.0f64, f64::max),
        );
    }
    let worst_chain = percentile(&ma_times, 95.0) + percentile(&mb_times, 95.0);
    println!(
        "\nimplied τ (p95(M_A) + p95(M_B) + 2 ms channel, rounded up): ~{:.0} ms",
        (worst_chain + 2.0).ceil()
    );
    println!("paper: all devices under 100 ms → τ = 120 ms");
}
