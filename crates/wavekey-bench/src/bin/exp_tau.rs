//! Reproduces **§VI-C-3**: determining the deadline slack τ.
//!
//! Paper protocol: generate the deadline-critical messages (`M_A`, `M_B`)
//! for many data records on every device and measure preparation time;
//! τ is set just above the worst case (the paper: < 100 ms → τ = 120 ms).
//!
//! Our "devices" are one machine, so the experiment measures this
//! implementation's `M_A`/`M_B` preparation over real seed batches and
//! reports the implied τ. Each run becomes a [`wavekey_obs::SessionTrace`]
//! carrying the preparation times as custom stages, so the percentiles and
//! the `results/OBS_tau.json` artifact come from the shared
//! [`wavekey_obs::TraceSet`] aggregation.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin exp_tau [runs]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use wavekey_bench::{trace_from_agreement, trained_models, write_results, Scale};
use wavekey_core::agreement::{run_agreement, AgreementConfig};
use wavekey_core::channel::PassiveChannel;
use wavekey_core::session::{Session, SessionConfig};
use wavekey_obs::TraceSet;

/// Stage names for the raw preparation timings (the canonical
/// `ot_round_a`/`ot_round_b` stages include the modeled channel delay;
/// τ calibration needs the pure compute part).
const MA_PREP: &str = "ma_prep";
const MB_PREP: &str = "mb_prep";

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let models = trained_models(Scale::Small);

    let mut session = Session::new(SessionConfig::default(), models, 0x7a0);
    let mut seed_pairs = Vec::new();
    while seed_pairs.len() < runs {
        if let Ok(pair) = session.derive_seeds() {
            seed_pairs.push(pair);
        }
    }

    let config = AgreementConfig { tau: 10.0, ..Default::default() };
    let mut set = TraceSet::new();
    for (i, (s_m, s_r)) in seed_pairs.iter().enumerate() {
        let mut rng_m = StdRng::seed_from_u64(i as u64);
        let mut rng_s = StdRng::seed_from_u64(1000 + i as u64);
        if let Ok(out) =
            run_agreement(s_m, s_r, &config, &mut rng_m, &mut rng_s, &mut PassiveChannel)
        {
            let mut trace = trace_from_agreement(i as u64 + 1, &out);
            trace.record_stage(MA_PREP, out.ma_prep);
            trace.record_stage(MB_PREP, out.mb_prep);
            set.push(trace);
        }
    }

    println!("\n§VI-C-3: deadline-critical message preparation times (ms)");
    println!("({} successful full-protocol runs, MODP-1024 group)\n", set.len());
    for (label, stage) in [("M_A", MA_PREP), ("M_B", MB_PREP)] {
        let (_, mean, p50, _, _, max) =
            set.field_stats(|t| t.stage_seconds(stage)).expect("at least one run");
        let p95 = set.field_percentile(|t| t.stage_seconds(stage), 0.95).expect("p95");
        println!(
            "{label}: mean {:.1}, p50 {:.1}, p95 {:.1}, max {:.1}",
            mean * 1000.0,
            p50 * 1000.0,
            p95 * 1000.0,
            max * 1000.0,
        );
    }
    let worst_chain = set.field_percentile(|t| t.stage_seconds(MA_PREP), 0.95).unwrap_or(0.0)
        + set.field_percentile(|t| t.stage_seconds(MB_PREP), 0.95).unwrap_or(0.0);
    println!(
        "\nimplied τ (p95(M_A) + p95(M_B) + 2 ms channel, rounded up): ~{:.0} ms",
        (worst_chain * 1000.0 + 2.0).ceil()
    );
    println!("paper: all devices under 100 ms → τ = 120 ms");

    write_results("results/OBS_tau.json", &set.report_json("tau_calibration").to_string_pretty());
}
