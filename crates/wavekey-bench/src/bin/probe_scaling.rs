//! Development probe: does held-out latent agreement improve with
//! dataset scale? Usage: `probe_scaling <gestures_per_combo> <epochs> <wd>`

use wavekey_core::dataset::{generate, Dataset, DatasetConfig};
use wavekey_core::model::WaveKeyModels;
use wavekey_core::training::{train, TrainingConfig};
use wavekey_imu::sensors::DeviceModel;
use wavekey_nn::loss::mse_pair;
use wavekey_nn::tensor::Tensor;

fn eval_latent(models: &mut WaveKeyModels, ds: &Dataset, cap: usize) -> f32 {
    let mut total = 0.0f32;
    let n = ds.len().min(cap);
    for s in &ds.samples[..n] {
        let a = Tensor::stack(std::slice::from_ref(&s.a));
        let r = Tensor::stack(std::slice::from_ref(&s.r));
        let f_m = models.imu_en.forward(&a, false);
        let f_r = models.rf_en.forward(&r, false);
        let (l, _, _) = mse_pair(&f_m, &f_r);
        total += l;
    }
    total / n as f32
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gestures: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    let epochs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(40);
    let wd: f32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1e-4);

    let mut ds_cfg = DatasetConfig::small();
    ds_cfg.gestures_per_combo = gestures;
    ds_cfg.windows_per_gesture = 12;
    ds_cfg.devices = vec![DeviceModel::GalaxyWatch, DeviceModel::Pixel8];
    let t = std::time::Instant::now();
    let ds = generate(&ds_cfg);
    eprintln!("dataset: {} samples in {:.1} s", ds.len(), t.elapsed().as_secs_f64());

    let mut holdout_cfg = ds_cfg.clone();
    holdout_cfg.seed = 0x9999;
    holdout_cfg.gestures_per_combo = 3;
    let holdout = generate(&holdout_cfg);

    let cfg = TrainingConfig { epochs: 1, weight_decay: wd, ..Default::default() };
    let mut models = WaveKeyModels::new(cfg.l_f, 7);
    let t = std::time::Instant::now();
    for e in 0..epochs {
        let rep = train(&mut models, &ds, &cfg, 100 + e as u64).unwrap();
        if e % 5 == 0 || e == epochs - 1 {
            println!(
                "epoch {e:>3}: train latent {:.4} | holdout latent {:.4} ({:.0}s)",
                rep.final_latent_loss,
                eval_latent(&mut models, &holdout, 150),
                t.elapsed().as_secs_f64(),
            );
        }
    }
}
