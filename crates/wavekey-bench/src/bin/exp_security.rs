//! Reproduces **§VI-E**: the device-spoofing security evaluation —
//! gesture mimicking (600 instances), remote camera recovery (200),
//! in-situ camera recovery (200) — plus RFID signal spoofing and the
//! analytic random-guess rate.
//!
//! An attack instance *succeeds* when the attacker-derived key-seed lies
//! within the ECC correction radius η of the victim's seed (the paper's
//! criterion: such a seed would complete device spoofing).
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin exp_security [mimic_n] [camera_n]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey_bench::{experiment_config, trained_models, Scale};
use wavekey_core::attack::{
    camera_recover_accel, mimic_accel, random_guess_probability, spoofing_gesture, CameraConfig,
};
use wavekey_core::bits::mismatch_rate;
use wavekey_core::session::{Session, SessionConfig};
use wavekey_imu::gesture::{GestureGenerator, MimicConfig, VolunteerId};
use wavekey_imu::sensors::DeviceModel;

fn main() {
    let mimic_n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(600);
    let camera_n: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(200);
    let models = trained_models(Scale::Small);
    let config = experiment_config();
    let eta = config.wavekey.eta();
    let gcfg = config.gesture;
    let mut session = Session::new(config.clone(), models, 0x5ec);
    let mut rng = StdRng::seed_from_u64(0xa77ac4);

    println!("\n§VI-E: device-spoofing attack evaluation (η = {eta:.4})\n");

    // --- Gesture mimicking (paper: 6 victims × 20 gestures × 5 mimics) ---
    let mut attempts = 0usize;
    let mut successes = 0usize;
    let mut rates = Vec::new();
    while attempts < mimic_n {
        let victim_id = VolunteerId(rng.gen_range(0..6));
        session.config_mut().volunteer = victim_id;
        let victim_gesture = session.new_gesture();
        let Ok((s_victim, _)) = session.derive_seeds_from_gesture(&victim_gesture) else {
            continue;
        };
        // Five other volunteers mimic this gesture.
        for mimic_v in 0..6u32 {
            if mimic_v == victim_id.0 || attempts >= mimic_n {
                continue;
            }
            let mut attacker = GestureGenerator::new(VolunteerId(mimic_v), rng.gen());
            let Ok(a) = mimic_accel(
                &victim_gesture,
                &mut attacker,
                DeviceModel::Pixel8,
                &gcfg,
                &MimicConfig::default(),
                rng.gen(),
            ) else {
                continue;
            };
            let latent = session.latent_from_accel(&a);
            let s_attacker = session.seed_generator().seed_from_latent(&latent);
            let rate = mismatch_rate(&s_victim, &s_attacker);
            rates.push(rate);
            attempts += 1;
            if rate <= eta {
                successes += 1;
            }
        }
    }
    let mean_rate = rates.iter().sum::<f64>() / rates.len() as f64;
    println!(
        "gesture mimicking: {successes}/{attempts} succeeded ({:.2} %); mean seed mismatch {:.1} %",
        100.0 * successes as f64 / attempts as f64,
        100.0 * mean_rate
    );
    println!("  paper: 0/600 (0 %)\n");

    // --- Camera-aided recovery -------------------------------------------
    for (label, camera, paper) in [
        ("remote recording (260 FPS, 3-D)", CameraConfig::remote(), "1/200 (0.5 %)"),
        ("in-situ recording (30 FPS, 2-D)", CameraConfig::in_situ(), "0/200 (0 %)"),
    ] {
        let mut successes = 0usize;
        let mut attempts = 0usize;
        while attempts < camera_n {
            session.config_mut().volunteer = VolunteerId(0);
            let victim_gesture = session.new_gesture();
            let Ok((s_victim, _)) = session.derive_seeds_from_gesture(&victim_gesture) else {
                continue;
            };
            let a = camera_recover_accel(&victim_gesture, &camera, victim_gesture.pause(), &mut rng);
            let latent = session.latent_from_accel(&a);
            let s_attacker = session.seed_generator().seed_from_latent(&latent);
            attempts += 1;
            if mismatch_rate(&s_victim, &s_attacker) <= eta {
                successes += 1;
            }
        }
        println!(
            "{label}: {successes}/{attempts} succeeded ({:.2} %)",
            100.0 * successes as f64 / attempts as f64
        );
        println!("  paper: {paper}\n");
    }

    // --- RFID signal spoofing ----------------------------------------------
    let mut successes = 0usize;
    let mut attempts = 0usize;
    while attempts < camera_n {
        session.config_mut().volunteer = VolunteerId(0);
        let victim_gesture = session.new_gesture();
        let Ok((s_victim, _)) = session.derive_seeds_from_gesture(&victim_gesture) else {
            continue;
        };
        // The spoofed RFID stream comes from an unrelated attacker gesture.
        let mut attacker = GestureGenerator::new(VolunteerId(5), rng.gen());
        let spoof = spoofing_gesture(&mut attacker, &gcfg);
        let Ok((_, s_spoofed)) = session.derive_seeds_from_gesture(&spoof) else {
            continue;
        };
        attempts += 1;
        if mismatch_rate(&s_victim, &s_spoofed) <= eta {
            successes += 1;
        }
    }
    println!(
        "rfid signal spoofing: {successes}/{attempts} produced a matching seed ({:.2} %)",
        100.0 * successes as f64 / attempts as f64
    );
    println!("  paper: disrupts correlation → key establishment fails\n");

    // --- Random guessing (analytic) -----------------------------------------
    let l_s = config.wavekey.l_s();
    println!(
        "random guessing (Eq. 4): P_g(l_s = {l_s}, η = {eta:.3}) = {:.3e}",
        random_guess_probability(l_s, eta)
    );
}
