//! Chaos soak: many concurrent sessions under the reference
//! [`FaultPlan`] mixture, with and without the recovery layer, plus a
//! fault-free differential control. Writes `results/BENCH_faults.json`
//! (consumed by the ci.sh fault-soak gate).
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin fault_soak [out_path]
//! ```
//!
//! Three arms, all fully deterministic in the baked-in seeds:
//!
//! 1. **no recovery** — the reference fault mixture with retries
//!    disabled. Most sessions die: the gate requires `< 50%` survival,
//!    demonstrating the mixture actually bites.
//! 2. **recovered** — the same mixture with [`RetryPolicy::arq`]:
//!    retransmission, NAK/re-send, duplicate suppression, and reorder
//!    deferral must lift survival to `>= WAVEKEY_FAULT_SOAK_MIN`
//!    (default 0.90). Every surviving session must hold *matching*
//!    mobile/server keys — `divergent_key_successes` must be 0.
//! 3. **fault-free control** — retries enabled but a passive channel:
//!    outcomes must be bit-identical to the lockstep `run_agreement`
//!    driver, proving the recovery layer is inert without faults.
//!
//! A sensing-layer section additionally pushes the reference IMU/RFID
//! fault mixtures through both processing pipelines to confirm the
//! front-end absorbs them without panicking.

use rand::rngs::StdRng;
use wavekey_bench::traffic::soak_config;
use wavekey_core::agreement::{run_agreement, AgreementConfig, RetryPolicy};
use wavekey_core::channel::PassiveChannel;
use wavekey_core::fault::{FaultPlan, FaultProfile};
use wavekey_core::SessionManager;
use wavekey_imu::gesture::{GestureConfig, GestureGenerator, VolunteerId};
use wavekey_imu::pipeline::{process_imu, ImuPipelineConfig};
use wavekey_imu::sensors::{sample_imu, DeviceModel};
use wavekey_imu::{inject_imu_faults, ImuFaultConfig};
use wavekey_rfid::channel::TagModel;
use wavekey_rfid::environment::{Environment, UserPlacement};
use wavekey_rfid::pipeline::{process_rfid, RfidPipelineConfig};
use wavekey_rfid::reader::{record_rfid, ReaderSpec};
use wavekey_rfid::{inject_rfid_faults, RfidFaultConfig};
use wavekey_math::Vec3;

const SESSIONS: u64 = 96;
const SEED_LEN: usize = 24;
const FAULT_SEED: u64 = 0xFA_117;

// One gesture-channel bit error per seed pair: inside the BCH budget,
// so every session agrees when the wire cooperates.
fn seed_pair(base: u64) -> (Vec<bool>, Vec<bool>) {
    wavekey_bench::traffic::seed_pair(0xC0DE, base, SEED_LEN)
}

fn rngs(i: u64) -> (StdRng, StdRng) {
    wavekey_bench::traffic::rng_pair(0xA11CE, 0xB0B, i)
}

fn config(retry: RetryPolicy) -> AgreementConfig {
    soak_config(retry)
}

/// Spawns the soak batch and drives it to completion under `adversary`.
fn run_arm(
    config: &AgreementConfig,
    adversary: &mut dyn wavekey_core::channel::Adversary,
) -> (SessionManager, Vec<u64>) {
    let mut manager = SessionManager::new(12);
    let mut ids = Vec::new();
    for i in 0..SESSIONS {
        let (s_m, s_r) = seed_pair(i);
        let (rng_m, rng_r) = rngs(i);
        ids.push(
            manager
                .spawn(&s_m, &s_r, config, rng_m, rng_r, adversary)
                .expect("spawn session"),
        );
    }
    manager.run_to_completion(adversary);
    (manager, ids)
}

/// Successes whose mobile and server keys disagree — must never happen.
fn divergent(manager: &SessionManager, ids: &[u64]) -> u64 {
    ids.iter()
        .filter(|id| {
            matches!(
                manager.outcome(**id),
                Some(Ok(out)) if out.agreement.key != out.server_key
            )
        })
        .count() as u64
}

/// Sensing-layer soak: reference IMU/RFID fault mixtures through both
/// pipelines. Returns how many of `n` seeds processed cleanly end to end.
fn sensing_soak(n: u64) -> u64 {
    let mut ok = 0;
    for seed in 0..n {
        let mut generator = GestureGenerator::new(VolunteerId((seed % 6) as u32), 0x5E_A5 + seed);
        let gesture = generator.generate(&GestureConfig::default());

        let imu = sample_imu(&gesture, &DeviceModel::GalaxyWatch.spec(), seed);
        let imu = inject_imu_faults(&imu, &ImuFaultConfig::reference(), seed);
        let imu_ok = process_imu(&imu, &ImuPipelineConfig::default()).is_ok();

        let env = Environment::room(1);
        let channel = env.channel(TagModel::Alien9640A, 0, seed);
        let hand = UserPlacement::default().hand_position(&env);
        let rfid = record_rfid(
            &gesture,
            hand,
            Vec3::new(0.03, 0.0, 0.0),
            &channel,
            &ReaderSpec::default(),
            seed,
        );
        let rfid = inject_rfid_faults(&rfid, &RfidFaultConfig::reference(), seed);
        let rfid_ok = process_rfid(&rfid, &RfidPipelineConfig::default()).is_ok();

        ok += (imu_ok && rfid_ok) as u64;
    }
    ok
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_faults.json".to_string());

    // Arm 1: reference faults, no recovery.
    let mut plan = FaultPlan::new(FAULT_SEED, FaultProfile::reference());
    let (bare, bare_ids) = run_arm(&config(RetryPolicy::none()), &mut plan);
    let bare_success = bare.successes() as u64;
    let rate_bare = bare_success as f64 / SESSIONS as f64;
    let divergent_bare = divergent(&bare, &bare_ids);

    // Arm 2: the same fault mixture, recovery on.
    let mut plan = FaultPlan::new(FAULT_SEED, FaultProfile::reference());
    let (recovered, rec_ids) = run_arm(&config(RetryPolicy::arq()), &mut plan);
    let rec_success = recovered.successes() as u64;
    let rate_rec = rec_success as f64 / SESSIONS as f64;
    let divergent_rec = divergent(&recovered, &rec_ids);
    let retransmits = recovered.retransmits_total();

    // Arm 3: fault-free control — retries enabled, passive channel,
    // differential against the lockstep driver.
    let (control, control_ids) = run_arm(&config(RetryPolicy::arq()), &mut PassiveChannel);
    let mut bit_identical = control.successes() as u64 == SESSIONS;
    for (i, id) in control_ids.iter().enumerate() {
        let (s_m, s_r) = seed_pair(i as u64);
        let (mut rng_m, mut rng_r) = rngs(i as u64);
        let reference = run_agreement(
            &s_m,
            &s_r,
            &config(RetryPolicy::arq()),
            &mut rng_m,
            &mut rng_r,
            &mut PassiveChannel,
        )
        .expect("fault-free lockstep agreement succeeds");
        match control.outcome(*id) {
            Some(Ok(out)) => {
                bit_identical &= out.agreement.key == reference.key
                    && out.server_key == reference.key
                    && out.agreement.key_bits == reference.key_bits;
            }
            _ => bit_identical = false,
        }
    }
    bit_identical &= control.retransmits_total() == 0;

    let divergent_total = divergent_bare + divergent_rec;
    let sensing_ok = sensing_soak(16);

    println!("sessions                   {SESSIONS}");
    println!("no recovery                {bare_success}/{SESSIONS}  ({rate_bare:.3})");
    println!("recovered                  {rec_success}/{SESSIONS}  ({rate_rec:.3})");
    println!("retransmits (recovered)    {retransmits}");
    println!("divergent-key successes    {divergent_total}");
    println!("fault-free bit-identical   {bit_identical}");
    println!("sensing pipelines ok       {sensing_ok}/16");

    let json = format!(
        "{{\n  \"sessions\": {SESSIONS},\n  \
         \"success_rate_no_recovery\": {rate_bare:.4},\n  \
         \"success_rate_recovered\": {rate_rec:.4},\n  \
         \"retransmits_total\": {retransmits},\n  \
         \"divergent_key_successes\": {divergent_total},\n  \
         \"fault_free_keys_bit_identical\": {bit_identical},\n  \
         \"sensing_pipelines_ok\": {sensing_ok},\n  \
         \"sensing_pipelines_run\": 16\n}}\n"
    );
    wavekey_bench::write_results(&out_path, &json);
}
