//! Concurrent-session benchmark and equivalence check: runs N key
//! agreements interleaved through [`SessionManager`] (one wire message of
//! one session per scheduler step, round-robin) and the same N sessions
//! sequentially through `run_agreement`, then writes
//! `results/BENCH_concurrent.json`.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin concurrent_sessions [out_path]
//! ```
//!
//! This is the demonstration (and the CI gate's evidence) that the
//! sans-IO refactor made concurrency *free*: because each party's RNG
//! stream and logical clock live inside its machine, interleaving 48
//! sessions through one scheduler produces bit-identical keys and the
//! same success count as running them one at a time. The JSON records
//! both success counts, a `keys_bit_identical` flag, and wall-clock
//! throughput for each mode.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use wavekey_core::agreement::{run_agreement, AgreementConfig};
use wavekey_core::channel::PassiveChannel;
use wavekey_core::SessionManager;

const SESSIONS: u64 = 48;
const SEED_LEN: usize = 24;

fn seed_pair(base: u64) -> (Vec<bool>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(0xC0DE + base);
    let s_m: Vec<bool> = (0..SEED_LEN).map(|_| rng.gen()).collect();
    let mut s_r = s_m.clone();
    // One gesture-channel bit error per session: inside the BCH budget,
    // so reconciliation works for every session and success counts are
    // deterministic.
    s_r[(base as usize) % SEED_LEN] ^= true;
    (s_m, s_r)
}

fn rngs(i: u64) -> (StdRng, StdRng) {
    (StdRng::seed_from_u64(0xA11CE + i), StdRng::seed_from_u64(0xB0B + i))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_concurrent.json".into());
    let config =
        AgreementConfig { use_tiny_group: true, tau: 10.0, bch_t: 5, ..Default::default() };

    // --- Interleaved: all sessions live at once, one frame per step.
    let mut adversary = PassiveChannel;
    let mut manager = SessionManager::new(8);
    let t0 = Instant::now();
    let mut ids = Vec::new();
    for i in 0..SESSIONS {
        let (s_m, s_r) = seed_pair(i);
        let (rng_m, rng_r) = rngs(i);
        ids.push(
            manager
                .spawn(&s_m, &s_r, &config, rng_m, rng_r, &mut adversary)
                .expect("spawn session"),
        );
    }
    let mut steps = 0u64;
    while manager.step(&mut adversary) {
        steps += 1;
    }
    let interleaved_s = t0.elapsed().as_secs_f64();
    let interleaved_success = manager.successes();

    // --- Sequential: identical seeds and RNG streams, one at a time.
    let t1 = Instant::now();
    let mut sequential = Vec::new();
    for i in 0..SESSIONS {
        let (s_m, s_r) = seed_pair(i);
        let (mut rng_m, mut rng_r) = rngs(i);
        sequential.push(run_agreement(&s_m, &s_r, &config, &mut rng_m, &mut rng_r, &mut adversary));
    }
    let sequential_s = t1.elapsed().as_secs_f64();
    let sequential_success = sequential.iter().filter(|r| r.is_ok()).count();

    // --- Equivalence: every interleaved key must equal its sequential twin
    // bit for bit, on both parties.
    let mut keys_bit_identical = true;
    for (i, id) in ids.iter().enumerate() {
        let managed = manager.outcome(*id).expect("completed");
        match (managed, &sequential[i]) {
            (Ok(m), Ok(s)) => {
                if m.agreement.key != s.key || m.server_key != s.key || m.agreement.key_bits != s.key_bits {
                    keys_bit_identical = false;
                }
            }
            (Err(_), Err(_)) => {}
            _ => keys_bit_identical = false,
        }
    }

    println!("sessions               {SESSIONS}");
    println!("scheduler steps        {steps}");
    println!("interleaved successes  {interleaved_success}");
    println!("sequential successes   {sequential_success}");
    println!("interleaved wall       {interleaved_s:.4} s");
    println!("sequential wall        {sequential_s:.4} s");
    println!("keys bit-identical     {keys_bit_identical}");

    let json = format!(
        "{{\n  \"sessions\": {SESSIONS},\n  \"scheduler_steps\": {steps},\n  \
         \"interleaved_success\": {interleaved_success},\n  \
         \"sequential_success\": {sequential_success},\n  \
         \"interleaved_wall_s\": {interleaved_s:.6},\n  \
         \"sequential_wall_s\": {sequential_s:.6},\n  \
         \"keys_bit_identical\": {keys_bit_identical}\n}}\n"
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&out_path, json).expect("write BENCH_concurrent.json");
    println!("\nwrote {out_path}");
}
