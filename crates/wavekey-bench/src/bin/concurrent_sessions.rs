//! Concurrent-session benchmark and equivalence check: runs N key
//! agreements interleaved through [`SessionManager`] (one wire message of
//! one session per scheduler step, round-robin) and the same N sessions
//! sequentially through `run_agreement`, then writes
//! `results/BENCH_concurrent.json`.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin concurrent_sessions [out_path]
//! cargo run --release -p wavekey-bench --bin concurrent_sessions throughput [out_path]
//! ```
//!
//! This is the demonstration (and the CI gate's evidence) that the
//! sans-IO refactor made concurrency *free*: because each party's RNG
//! stream and logical clock live inside its machine, interleaving 48
//! sessions through one scheduler produces bit-identical keys and the
//! same success count as running them one at a time. The JSON records
//! both success counts, a `keys_bit_identical` flag, and wall-clock
//! throughput for each mode.
//!
//! The `throughput` mode instead compares the sequential round-robin
//! scheduler against [`SessionManager::run_to_completion_parallel`] at
//! 1, 2, and 4 worker threads, asserting bit-identical per-session
//! outcomes, and writes sessions/sec for each width to
//! `results/BENCH_throughput.json` (consumed by the CI throughput gate).

use rand::rngs::StdRng;
use std::time::Instant;
use wavekey_core::agreement::{run_agreement, AgreementConfig};
use wavekey_core::channel::{Adversary, PassiveChannel};
use wavekey_core::SessionManager;

const SESSIONS: u64 = 48;
const SEED_LEN: usize = 24;

// One gesture-channel bit error per session: inside the BCH budget,
// so reconciliation works for every session and success counts are
// deterministic.
fn seed_pair(base: u64) -> (Vec<bool>, Vec<bool>) {
    wavekey_bench::traffic::seed_pair(0xC0DE, base, SEED_LEN)
}

fn rngs(i: u64) -> (StdRng, StdRng) {
    wavekey_bench::traffic::rng_pair(0xA11CE, 0xB0B, i)
}

/// Spawns the benchmark's standard batch of sessions into a fresh manager.
fn spawn_batch(config: &AgreementConfig) -> (SessionManager, Vec<u64>) {
    let mut adversary = PassiveChannel;
    let mut manager = SessionManager::new(8);
    let mut ids = Vec::new();
    for i in 0..SESSIONS {
        let (s_m, s_r) = seed_pair(i);
        let (rng_m, rng_r) = rngs(i);
        ids.push(
            manager
                .spawn(&s_m, &s_r, config, rng_m, rng_r, &mut adversary)
                .expect("spawn session"),
        );
    }
    (manager, ids)
}

/// `true` when every session's outcome in `a` matches `b` bit for bit:
/// same success/failure, and on success the same mobile key, server key,
/// and quantized key bits.
fn same_outcomes(a: &SessionManager, b: &SessionManager, ids: &[u64]) -> bool {
    ids.iter().all(|id| match (a.outcome(*id), b.outcome(*id)) {
        (Some(Ok(x)), Some(Ok(y))) => {
            x.agreement.key == y.agreement.key
                && x.server_key == y.server_key
                && x.agreement.key_bits == y.agreement.key_bits
        }
        (Some(Err(_)), Some(Err(_))) => true,
        _ => false,
    })
}

/// The `throughput` mode: sequential round-robin scheduler vs the
/// work-stealing parallel drive at 1/2/4 threads, with bit-identical
/// outcomes asserted between every pair of modes.
fn throughput_mode(out_path: &str, config: &AgreementConfig) {
    // Sequential reference: the round-robin scheduler.
    let (mut seq_manager, ids) = spawn_batch(config);
    let t0 = Instant::now();
    let sequential_success = seq_manager.run_to_completion(&mut PassiveChannel);
    let sequential_s = t0.elapsed().as_secs_f64();
    let sequential_sps = SESSIONS as f64 / sequential_s;

    println!("sessions               {SESSIONS}");
    println!("sequential             {sequential_s:.4} s  ({sequential_sps:.1} sessions/s)");

    let factory: &(dyn Fn() -> Box<dyn Adversary + Send> + Sync) =
        &|| Box::new(PassiveChannel) as Box<dyn Adversary + Send>;
    let available_parallelism =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads_used = [1usize, 2, 4];
    let mut keys_bit_identical = true;
    let mut successes_equal = true;
    let mut rows = Vec::new();
    let mut best_parallel_sps = 0.0f64;
    let mut best_threads = 0usize;
    for threads in threads_used {
        let (mut manager, par_ids) = spawn_batch(config);
        assert_eq!(par_ids, ids, "deterministic spawn order");
        let t = Instant::now();
        let success = manager.run_to_completion_parallel(threads, factory);
        let wall_s = t.elapsed().as_secs_f64();
        let sps = SESSIONS as f64 / wall_s;
        if sps > best_parallel_sps {
            best_parallel_sps = sps;
            best_threads = threads;
        }
        keys_bit_identical &= same_outcomes(&manager, &seq_manager, &ids);
        successes_equal &= success == sequential_success;
        println!(
            "parallel x{threads}            {wall_s:.4} s  ({sps:.1} sessions/s)  successes {success}"
        );
        rows.push(format!(
            "    {{ \"threads\": {threads}, \"wall_s\": {wall_s:.6}, \"sessions_per_sec\": {sps:.3} }}"
        ));
    }
    println!("keys bit-identical     {keys_bit_identical}");
    println!("successes equal        {successes_equal}");
    println!("available parallelism  {available_parallelism}");
    // Surface scaling regressions instead of letting a small host mask
    // them: on a machine with the cores to exploit, the widest tested
    // width should win; anywhere else the reader must know the host
    // could not have shown a scaling win in the first place.
    let max_threads = *threads_used.last().unwrap();
    if best_threads != max_threads {
        if available_parallelism >= max_threads {
            println!(
                "WARNING: best throughput at {best_threads} threads, not the maximum tested \
                 ({max_threads}) — parallel scaling regression on a {available_parallelism}-way host"
            );
        } else {
            println!(
                "WARNING: best throughput at {best_threads} threads (max tested {max_threads}); \
                 host exposes only {available_parallelism} — scaling unverifiable on this machine"
            );
        }
    }

    let json = format!(
        "{{\n  \"sessions\": {SESSIONS},\n  \
         \"sequential_success\": {sequential_success},\n  \
         \"sequential_wall_s\": {sequential_s:.6},\n  \
         \"sequential_sessions_per_sec\": {sequential_sps:.3},\n  \
         \"threads_used\": [{}],\n  \
         \"available_parallelism\": {available_parallelism},\n  \
         \"parallel\": [\n{}\n  ],\n  \
         \"best_threads\": {best_threads},\n  \
         \"best_parallel_sessions_per_sec\": {best_parallel_sps:.3},\n  \
         \"successes_equal\": {successes_equal},\n  \
         \"keys_bit_identical\": {keys_bit_identical}\n}}\n",
        threads_used.map(|t| t.to_string()).join(", "),
        rows.join(",\n")
    );
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(out_path, json).expect("write BENCH_throughput.json");
    println!("\nwrote {out_path}");
}

fn main() {
    let config =
        AgreementConfig { use_tiny_group: true, tau: 10.0, bch_t: 5, ..Default::default() };
    let mut args = std::env::args().skip(1);
    let first = args.next();
    if first.as_deref() == Some("throughput") {
        let out_path =
            args.next().unwrap_or_else(|| "results/BENCH_throughput.json".into());
        throughput_mode(&out_path, &config);
        return;
    }
    let out_path = first.unwrap_or_else(|| "results/BENCH_concurrent.json".into());

    // --- Interleaved: all sessions live at once, one frame per step.
    let mut adversary = PassiveChannel;
    let mut manager = SessionManager::new(8);
    let t0 = Instant::now();
    let mut ids = Vec::new();
    for i in 0..SESSIONS {
        let (s_m, s_r) = seed_pair(i);
        let (rng_m, rng_r) = rngs(i);
        ids.push(
            manager
                .spawn(&s_m, &s_r, &config, rng_m, rng_r, &mut adversary)
                .expect("spawn session"),
        );
    }
    let mut steps = 0u64;
    while manager.step(&mut adversary) {
        steps += 1;
    }
    let interleaved_s = t0.elapsed().as_secs_f64();
    let interleaved_success = manager.successes();

    // --- Sequential: identical seeds and RNG streams, one at a time.
    let t1 = Instant::now();
    let mut sequential = Vec::new();
    for i in 0..SESSIONS {
        let (s_m, s_r) = seed_pair(i);
        let (mut rng_m, mut rng_r) = rngs(i);
        sequential.push(run_agreement(&s_m, &s_r, &config, &mut rng_m, &mut rng_r, &mut adversary));
    }
    let sequential_s = t1.elapsed().as_secs_f64();
    let sequential_success = sequential.iter().filter(|r| r.is_ok()).count();

    // --- Equivalence: every interleaved key must equal its sequential twin
    // bit for bit, on both parties.
    let mut keys_bit_identical = true;
    for (i, id) in ids.iter().enumerate() {
        let managed = manager.outcome(*id).expect("completed");
        match (managed, &sequential[i]) {
            (Ok(m), Ok(s)) => {
                if m.agreement.key != s.key || m.server_key != s.key || m.agreement.key_bits != s.key_bits {
                    keys_bit_identical = false;
                }
            }
            (Err(_), Err(_)) => {}
            _ => keys_bit_identical = false,
        }
    }

    println!("sessions               {SESSIONS}");
    println!("scheduler steps        {steps}");
    println!("interleaved successes  {interleaved_success}");
    println!("sequential successes   {sequential_success}");
    println!("interleaved wall       {interleaved_s:.4} s");
    println!("sequential wall        {sequential_s:.4} s");
    println!("keys bit-identical     {keys_bit_identical}");

    let json = format!(
        "{{\n  \"sessions\": {SESSIONS},\n  \"scheduler_steps\": {steps},\n  \
         \"interleaved_success\": {interleaved_success},\n  \
         \"sequential_success\": {sequential_success},\n  \
         \"interleaved_wall_s\": {interleaved_s:.6},\n  \
         \"sequential_wall_s\": {sequential_s:.6},\n  \
         \"keys_bit_identical\": {keys_bit_identical}\n}}\n"
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&out_path, json).expect("write BENCH_concurrent.json");
    println!("\nwrote {out_path}");
}
