//! Development probe: latent-space diagnostics on dataset samples.

use wavekey_bench::{trained_models, Scale};
use wavekey_core::bits::mismatch_rate;
use wavekey_core::dataset::{generate, DatasetConfig};
use wavekey_core::seed::SeedGenerator;
use wavekey_nn::tensor::Tensor;

fn main() {
    let mut models = trained_models(Scale::Small);
    let ds = generate(&DatasetConfig::tiny());
    let sg = SeedGenerator::new(9).unwrap();

    let mut lat_err = Vec::new();
    let mut seed_mismatch = Vec::new();
    let mut fm_all: Vec<Vec<f32>> = vec![Vec::new(); models.l_f];
    for s in &ds.samples {
        let a = Tensor::stack(std::slice::from_ref(&s.a));
        let r = Tensor::stack(std::slice::from_ref(&s.r));
        let f_m = models.imu_en.forward(&a, false);
        let f_r = models.rf_en.forward(&r, false);
        let err: f32 = f_m
            .data()
            .iter()
            .zip(f_r.data())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            / f_m.len() as f32;
        lat_err.push(err);
        for (i, &v) in f_m.data().iter().enumerate() {
            fm_all[i].push(v);
        }
        let sm = sg.seed_from_latent(f_m.data());
        let sr = sg.seed_from_latent(f_r.data());
        seed_mismatch.push(mismatch_rate(&sm, &sr));
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    println!("dataset samples: {}", ds.len());
    println!("latent MSE (eval mode): mean {:.4}", mean(&lat_err));
    println!(
        "seed mismatch on dataset windows: mean {:.4}",
        seed_mismatch.iter().sum::<f64>() / seed_mismatch.len() as f64
    );
    // Per-element latent stats under running BN stats: want ~N(0,1).
    for i in 0..models.l_f.min(12) {
        let m: f32 = mean(&fm_all[i]);
        let var: f32 =
            fm_all[i].iter().map(|v| (v - m) * (v - m)).sum::<f32>() / fm_all[i].len() as f32;
        println!("f_M[{i}]: mean {m:.3}, var {var:.3}");
    }
}
