//! Development probe: verbose training with per-epoch loss components
//! and a train-mode vs eval-mode batch-norm gap check.

use wavekey_core::dataset::{generate, DatasetConfig};
use wavekey_core::model::WaveKeyModels;
use wavekey_core::training::{train, TrainingConfig};
use wavekey_nn::loss::mse_pair;
use wavekey_nn::tensor::Tensor;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let epochs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let lr: f32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1e-3);

    let mut ds_cfg = DatasetConfig::small();
    ds_cfg.gestures_per_combo = 4;
    ds_cfg.windows_per_gesture = 8;
    let ds = generate(&ds_cfg);
    println!("dataset: {} samples", ds.len());

    let cfg = TrainingConfig { epochs: 1, lr, ..Default::default() };
    let mut models = WaveKeyModels::new(cfg.l_f, 7);
    for e in 0..epochs {
        let rep = train(&mut models, &ds, &cfg, 100 + e as u64).unwrap();
        // Eval-mode latent loss on a subset.
        let mut eval_latent = 0.0f32;
        let n = ds.len().min(64);
        for s in &ds.samples[..n] {
            let a = Tensor::stack(std::slice::from_ref(&s.a));
            let r = Tensor::stack(std::slice::from_ref(&s.r));
            let f_m = models.imu_en.forward(&a, false);
            let f_r = models.rf_en.forward(&r, false);
            let (l, _, _) = mse_pair(&f_m, &f_r);
            eval_latent += l;
        }
        println!(
            "epoch {e:>3}: train latent {:.4} recon {:.4} | eval latent {:.4}",
            rep.final_latent_loss,
            rep.final_recon_loss,
            eval_latent / n as f32
        );
    }
}
