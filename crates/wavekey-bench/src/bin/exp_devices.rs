//! Reproduces **§VI-F-3**: key-establishment success across every
//! mobile-device × RFID-tag combination (the paper reports 99–100 % over
//! its 24 combinations).
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin exp_devices [gestures_per_combo]
//! ```

use wavekey_bench::{experiment_config, print_row, print_sep, trained_models, Scale};
use wavekey_core::session::{Session, SessionConfig};
use wavekey_imu::sensors::DeviceModel;
use wavekey_rfid::channel::TagModel;

fn main() {
    let gestures: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let models = trained_models(Scale::Small);

    println!("\n§VI-F-3: success rates (%) across device × tag combinations");
    println!("(eta = {:.4})", experiment_config().wavekey.eta());
    println!("({gestures} gestures per combination)\n");

    let widths = [13usize, 11, 11, 11, 11, 11, 11];
    let mut header = vec!["device\\tag".to_string()];
    for tag in TagModel::ALL {
        header.push(format!("{tag:?}"));
    }
    print_row(&header, &widths);
    print_sep(&widths);

    let mut min_rate = f64::MAX;
    let mut max_rate: f64 = 0.0;
    for (di, device) in DeviceModel::ALL.into_iter().enumerate() {
        let mut cells = vec![format!("{device:?}")];
        for (ti, tag) in TagModel::ALL.into_iter().enumerate() {
            let config = SessionConfig { device, tag, ..experiment_config() };
            let mut session =
                Session::new(config, models.clone(), 9000 + di as u64 * 100 + ti as u64);
            let mut successes = 0usize;
            for _ in 0..gestures {
                if session.establish_key_fast().is_ok() {
                    successes += 1;
                }
            }
            let rate = 100.0 * successes as f64 / gestures as f64;
            min_rate = min_rate.min(rate);
            max_rate = max_rate.max(rate);
            cells.push(format!("{rate:.1}"));
        }
        print_row(&cells, &widths);
    }
    println!("\nrange: {min_rate:.1}%–{max_rate:.1}% (paper: 99%–100% over its combinations)");
}
