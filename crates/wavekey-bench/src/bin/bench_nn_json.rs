//! Machine-readable NN kernel benchmarks: times forward+backward on every
//! layer shape the WaveKey models actually use, under both the blocked
//! im2col/GEMM kernels and the pinned naive reference loops, then runs a
//! reduced-epoch `train` on production-shaped batches with each backend and
//! writes `results/BENCH_nn.json` so ci.sh can gate the training speedup.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin bench_nn_json [out_path]
//! ```
//!
//! The JSON schema is a flat list. Layer records are
//! `{ "op": str, "reference_ns": float, "gemm_ns": float, "speedup": float }`;
//! the final record is the training comparison with `reference_s`/`gemm_s`/
//! `train_speedup` plus `loss_bit_identical`, which must be `true`: the GEMM
//! lowering preserves accumulation order, so the two backends produce
//! bit-identical loss curves and models.

use std::time::Instant;
use wavekey_core::dataset::{generate, DatasetConfig};
use wavekey_core::model::WaveKeyModels;
use wavekey_core::training::{train, TrainingConfig};
use wavekey_imu::sensors::DeviceModel;
use wavekey_nn::layer::{Conv1d, ConvTranspose1d, Dense, Layer};
use wavekey_nn::tensor::Tensor;
use wavekey_nn::{set_kernel_backend, KernelBackend};

/// Minimum total measurement time per op (seconds); `WAVEKEY_BENCH_WINDOW`
/// overrides it.
fn min_window() -> f64 {
    std::env::var("WAVEKEY_BENCH_WINDOW")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2)
}
/// Iteration cap for very slow ops.
const MAX_ITERS: usize = 4_096;

/// Times `f` adaptively: doubles the iteration count until the run exceeds
/// [`min_window`], then reports the mean in nanoseconds.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    let min_window = min_window();
    f(); // warm-up
    let mut iters = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_window || iters >= MAX_ITERS {
            return elapsed * 1e9 / iters as f64;
        }
        iters = (iters * 2).min(MAX_ITERS);
    }
}

struct LayerRecord {
    op: &'static str,
    reference_ns: f64,
    gemm_ns: f64,
}

/// A deterministic pseudo-random input tensor (no RNG needed: layer seeds
/// already vary the weights; the timing does not depend on values).
fn input(shape: Vec<usize>) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|i| ((i * 2_654_435_761) % 1_000) as f32 / 500.0 - 1.0).collect();
    Tensor::from_vec(data, shape)
}

/// Times one forward+backward pass of `layer` on `x` under each backend.
fn bench_layer(op: &'static str, mut layer: impl Layer, x: Tensor) -> LayerRecord {
    let mut run = |backend| {
        set_kernel_backend(backend);
        time_ns(|| {
            let out = layer.forward(&x, true);
            let grad = layer.backward(&out);
            std::hint::black_box(grad);
            layer.zero_grad();
        })
    };
    let gemm_ns = run(KernelBackend::Gemm);
    let reference_ns = run(KernelBackend::Reference);
    set_kernel_backend(KernelBackend::Gemm);
    println!(
        "{:<34} ref {:>12.0} ns  gemm {:>12.0} ns  speedup {:>5.2}x",
        op,
        reference_ns,
        gemm_ns,
        reference_ns / gemm_ns
    );
    LayerRecord { op, reference_ns, gemm_ns }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_nn.json".into());

    // Every conv/dense shape from model.rs (batch 32, the training batch).
    println!("== layer forward+backward (batch 32, production shapes) ==");
    let layers = vec![
        bench_layer(
            "imu_conv1_3x8k7s2_l200",
            Conv1d::with_stride(3, 8, 7, 2, 0, 11),
            input(vec![32, 3, 200]),
        ),
        bench_layer(
            "imu_conv2_8x16k5s2_l97",
            Conv1d::with_stride(8, 16, 5, 2, 0, 12),
            input(vec![32, 8, 97]),
        ),
        bench_layer(
            "rf_conv1_3x8k9s4_l400",
            Conv1d::with_stride(3, 8, 9, 4, 0, 13),
            input(vec![32, 3, 400]),
        ),
        bench_layer("enc_dense_752x12", Dense::new(752, 12, 14), input(vec![32, 752])),
        bench_layer(
            "de_deconv1_12x16k8s4_l1",
            ConvTranspose1d::new(12, 16, 8, 4, 15),
            input(vec![32, 12, 1]),
        ),
        bench_layer(
            "de_deconv2_8x4k12s3_l32",
            ConvTranspose1d::new(8, 4, 12, 3, 16),
            input(vec![32, 8, 32]),
        ),
        bench_layer("de_dense_420x400", Dense::new(420, 400, 17), input(vec![32, 420])),
    ];

    // Training comparison: production layer shapes and batch size (l_f 12,
    // batch 32), a reduced dataset/epoch count so the run stays in bench
    // territory. Both backends see the identical dataset and seed.
    println!("\n== train (l_f 12, batch 32, 128 samples, 3 epochs) ==");
    let dataset_config = DatasetConfig {
        volunteers: 2,
        devices: vec![DeviceModel::GalaxyWatch],
        gestures_per_combo: 4,
        windows_per_gesture: 16,
        active_duration: 6.0,
        dynamic_fraction: 0.5,
        seed: 0x0da7a,
    };
    let dataset = generate(&dataset_config);
    let config = TrainingConfig { epochs: 3, ..Default::default() };
    let seed = 0x5eed;

    let run_train = |backend| {
        set_kernel_backend(backend);
        let mut models = WaveKeyModels::new(config.l_f, seed);
        let start = Instant::now();
        let report = train(&mut models, &dataset, &config, seed).expect("train");
        (start.elapsed().as_secs_f64(), report.epoch_losses, models.encode())
    };
    let (gemm_s, gemm_losses, gemm_model) = run_train(KernelBackend::Gemm);
    let (reference_s, reference_losses, reference_model) = run_train(KernelBackend::Reference);
    set_kernel_backend(KernelBackend::Gemm);

    let loss_bit_identical =
        gemm_losses == reference_losses && gemm_model == reference_model;
    let train_speedup = reference_s / gemm_s;
    println!(
        "train_autoencoders  ref {reference_s:.3} s  gemm {gemm_s:.3} s  \
         speedup {train_speedup:.2}x  loss_bit_identical {loss_bit_identical}"
    );

    // Flat JSON array, written by hand (no serializer needed here).
    let mut json = String::from("[\n");
    for l in &layers {
        json.push_str(&format!(
            "  {{\"op\": \"{}\", \"reference_ns\": {:.1}, \"gemm_ns\": {:.1}, \"speedup\": {:.3}}},\n",
            l.op,
            l.reference_ns,
            l.gemm_ns,
            l.reference_ns / l.gemm_ns
        ));
    }
    json.push_str(&format!(
        "  {{\"op\": \"train_autoencoders\", \"reference_s\": {:.3}, \"gemm_s\": {:.3}, \
         \"train_speedup\": {:.3}, \"loss_bit_identical\": {}}}\n]\n",
        reference_s, gemm_s, train_speedup, loss_bit_identical
    ));

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&out_path, json).expect("write BENCH_nn.json");
    println!("\nwrote {out_path}");
}
