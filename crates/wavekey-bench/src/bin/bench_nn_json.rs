//! Machine-readable NN kernel benchmarks: times forward+backward on every
//! layer shape the WaveKey models actually use, under both the blocked
//! im2col/GEMM kernels and the pinned naive reference loops, then runs a
//! reduced-epoch `train` on production-shaped batches with each backend and
//! writes `results/BENCH_nn.json` so ci.sh can gate the training speedup.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin bench_nn_json [out_path]
//! ```
//!
//! The JSON schema is a flat list. Layer records are
//! `{ "op": str, "reference_ns": float, "gemm_ns": float, "speedup": float }`;
//! int8 records are `{ "op": str, "f32_ns": float, "int8_ns": float,
//! "int8_speedup": float }` (inference-shaped, batch 1) followed by one
//! `int8_quantization_summary` record carrying the ci.sh int8-gate fields:
//! `encoder_int8_speedup` (the slower of the two encoders' whole-forward
//! speedups), `seeds_bit_identical` (quantized key-seeds equal the f32
//! seeds on every corpus window), `model_bytes_f64`/`model_bytes_int8` and
//! their `int8_size_ratio`, plus `wavekey_threads` (the `WAVEKEY_THREADS`
//! cap in effect, 0 = unset, recorded the way `bench_crypto_json` does).
//! The final record is the training comparison with `reference_s`/`gemm_s`/
//! `train_speedup` plus `loss_bit_identical`, which must be `true`: the GEMM
//! lowering preserves accumulation order, so the two backends produce
//! bit-identical loss curves and models.
//!
//! The run also appends one `nn_int8_*` line to `results/TREND.jsonl`.

use std::time::Instant;
use wavekey_core::dataset::{generate, DatasetConfig};
use wavekey_core::model::WaveKeyModels;
use wavekey_core::quantize::calibrate;
use wavekey_core::seed::SeedGenerator;
use wavekey_core::session::{Session, SessionConfig};
use wavekey_core::training::{train, TrainingConfig};
use wavekey_core::WaveKeyConfig;
use wavekey_imu::sensors::DeviceModel;
use wavekey_nn::layer::{Conv1d, ConvTranspose1d, Dense, Layer};
use wavekey_nn::net::Sequential;
use wavekey_nn::quant::QuantizedSequential;
use wavekey_nn::tensor::Tensor;
use wavekey_nn::{set_kernel_backend, KernelBackend};
use wavekey_obs::Json;

/// Minimum total measurement time per op (seconds); `WAVEKEY_BENCH_WINDOW`
/// overrides it.
fn min_window() -> f64 {
    std::env::var("WAVEKEY_BENCH_WINDOW")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2)
}
/// Iteration cap for very slow ops.
const MAX_ITERS: usize = 4_096;

/// Times `f` adaptively: doubles the iteration count until the run exceeds
/// [`min_window`], then reports the mean in nanoseconds.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    let min_window = min_window();
    f(); // warm-up
    let mut iters = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_window || iters >= MAX_ITERS {
            return elapsed * 1e9 / iters as f64;
        }
        iters = (iters * 2).min(MAX_ITERS);
    }
}

struct LayerRecord {
    op: &'static str,
    reference_ns: f64,
    gemm_ns: f64,
}

struct Int8Record {
    op: &'static str,
    f32_ns: f64,
    int8_ns: f64,
}

impl Int8Record {
    fn speedup(&self) -> f64 {
        self.f32_ns / self.int8_ns
    }
}

/// Dataset samples are un-batched `[C, L]`; the conv stacks want
/// `[1, C, L]`.
fn batched(t: &Tensor) -> Tensor {
    let s = t.shape();
    t.reshaped(vec![1, s[0], s[1]])
}

/// A deterministic int8-range activation vector (timing does not depend
/// on the values, only the geometry).
fn input_q(n: usize) -> Vec<i16> {
    (0..n).map(|i| ((i * 2_654_435_761) % 255) as i16 - 127).collect()
}

/// Prints and records one f32-vs-int8 comparison.
fn int8_record(op: &'static str, f32_ns: f64, int8_ns: f64) -> Int8Record {
    println!(
        "{:<34} f32 {:>12.0} ns  int8 {:>12.0} ns  speedup {:>5.2}x",
        op,
        f32_ns,
        int8_ns,
        f32_ns / int8_ns
    );
    Int8Record { op, f32_ns, int8_ns }
}

/// Appends one int8-inference line to the `results/TREND.jsonl` run
/// ledger (same pattern as `load_gen` / `gateway_soak`).
fn append_trend(encoder_speedup: f64, seeds_identical: bool, size_ratio: f64) -> u64 {
    let prior = std::fs::read_to_string("results/TREND.jsonl").unwrap_or_default();
    let run = prior
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .and_then(Json::parse)
        .as_ref()
        .and_then(|j| j.get("run"))
        .and_then(Json::as_f64)
        .map_or(1, |r| r as u64 + 1);
    let line = Json::obj(vec![
        ("run", Json::Num(run as f64)),
        ("nn_int8_encoder_speedup", Json::Num(encoder_speedup)),
        ("nn_int8_seeds_bit_identical", Json::Bool(seeds_identical)),
        ("nn_int8_size_ratio", Json::Num(size_ratio)),
    ]);
    let appended = format!("{}{}\n", prior, line.to_string_compact());
    wavekey_bench::write_results("results/TREND.jsonl", &appended);
    run
}

/// A deterministic pseudo-random input tensor (no RNG needed: layer seeds
/// already vary the weights; the timing does not depend on values).
fn input(shape: Vec<usize>) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|i| ((i * 2_654_435_761) % 1_000) as f32 / 500.0 - 1.0).collect();
    Tensor::from_vec(data, shape)
}

/// Times one forward+backward pass of `layer` on `x` under each backend.
fn bench_layer(op: &'static str, mut layer: impl Layer, x: Tensor) -> LayerRecord {
    let mut run = |backend| {
        set_kernel_backend(backend);
        time_ns(|| {
            let out = layer.forward(&x, true);
            let grad = layer.backward(&out);
            std::hint::black_box(grad);
            layer.zero_grad();
        })
    };
    let gemm_ns = run(KernelBackend::Gemm);
    let reference_ns = run(KernelBackend::Reference);
    set_kernel_backend(KernelBackend::Gemm);
    println!(
        "{:<34} ref {:>12.0} ns  gemm {:>12.0} ns  speedup {:>5.2}x",
        op,
        reference_ns,
        gemm_ns,
        reference_ns / gemm_ns
    );
    LayerRecord { op, reference_ns, gemm_ns }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_nn.json".into());

    // Every conv/dense shape from model.rs (batch 32, the training batch).
    println!("== layer forward+backward (batch 32, production shapes) ==");
    let layers = vec![
        bench_layer(
            "imu_conv1_3x8k7s2_l200",
            Conv1d::with_stride(3, 8, 7, 2, 0, 11),
            input(vec![32, 3, 200]),
        ),
        bench_layer(
            "imu_conv2_8x16k5s2_l97",
            Conv1d::with_stride(8, 16, 5, 2, 0, 12),
            input(vec![32, 8, 97]),
        ),
        bench_layer(
            "rf_conv1_3x8k9s4_l400",
            Conv1d::with_stride(3, 8, 9, 4, 0, 13),
            input(vec![32, 3, 400]),
        ),
        bench_layer("enc_dense_752x12", Dense::new(752, 12, 14), input(vec![32, 752])),
        bench_layer(
            "de_deconv1_12x16k8s4_l1",
            ConvTranspose1d::new(12, 16, 8, 4, 15),
            input(vec![32, 12, 1]),
        ),
        bench_layer(
            "de_deconv2_8x4k12s3_l32",
            ConvTranspose1d::new(8, 4, 12, 3, 16),
            input(vec![32, 8, 32]),
        ),
        bench_layer("de_dense_420x400", Dense::new(420, 400, 17), input(vec![32, 420])),
    ];

    // Training comparison: production layer shapes and batch size (l_f 12,
    // batch 32), a reduced dataset/epoch count so the run stays in bench
    // territory. Both backends see the identical dataset and seed.
    println!("\n== train (l_f 12, batch 32, 128 samples, 3 epochs) ==");
    let dataset_config = DatasetConfig {
        volunteers: 2,
        devices: vec![DeviceModel::GalaxyWatch],
        gestures_per_combo: 4,
        windows_per_gesture: 16,
        active_duration: 6.0,
        dynamic_fraction: 0.5,
        seed: 0x0da7a,
    };
    let dataset = generate(&dataset_config);
    let config = TrainingConfig { epochs: 3, ..Default::default() };
    let seed = 0x5eed;

    let run_train = |backend| {
        set_kernel_backend(backend);
        let mut models = WaveKeyModels::new(config.l_f, seed);
        let start = Instant::now();
        let report = train(&mut models, &dataset, &config, seed).expect("train");
        (start.elapsed().as_secs_f64(), report.epoch_losses, models.encode())
    };
    let (gemm_s, gemm_losses, gemm_model) = run_train(KernelBackend::Gemm);
    let (reference_s, reference_losses, reference_model) = run_train(KernelBackend::Reference);
    set_kernel_backend(KernelBackend::Gemm);

    let loss_bit_identical =
        gemm_losses == reference_losses && gemm_model == reference_model;
    let train_speedup = reference_s / gemm_s;
    println!(
        "train_autoencoders  ref {reference_s:.3} s  gemm {gemm_s:.3} s  \
         speedup {train_speedup:.2}x  loss_bit_identical {loss_bit_identical}"
    );

    // Quantized inference: calibrate int8 encoders against the training
    // corpus, verify key-seed equivalence end to end, and time the int8
    // path against the f32 GEMM path at inference shapes (batch 1).
    println!("\n== int8 quantized inference (batch 1, inference shapes) ==");
    let mut models = WaveKeyModels::decode(&gemm_model).expect("trained model blob");
    let n_b = WaveKeyConfig::default().n_b;
    let outcome = calibrate(&mut models, &dataset, n_b);
    println!(
        "calibrate: imu_quantized {}  rf_quantized {}  ({} corpus windows)",
        outcome.imu_quantized, outcome.rf_quantized, outcome.samples
    );

    let imu_inputs: Vec<Tensor> = dataset.samples.iter().map(|s| batched(&s.a)).collect();
    let rf_inputs: Vec<Tensor> = dataset.samples.iter().map(|s| batched(&s.r)).collect();

    // Independent re-check of the gated property: quantized key-seeds must
    // equal the f32 seeds on every corpus window, for both encoders.
    let seed_gen = SeedGenerator::new(n_b).expect("valid N_b");
    let mut seeds_bit_identical = outcome.all_quantized();
    if seeds_bit_identical {
        let mut check = |net: &mut Sequential, q: &QuantizedSequential, xs: &[Tensor]| {
            let mut q = q.clone();
            xs.iter().all(|x| {
                seed_gen.seed_from_latent(&net.forward(x, false).into_vec())
                    == seed_gen.seed_from_latent(&q.forward(x).into_vec())
            })
        };
        let imu_q = models.imu_en_q.clone().expect("imu slot");
        let rf_q = models.rf_en_q.clone().expect("rf slot");
        seeds_bit_identical = check(&mut models.imu_en, &imu_q, &imu_inputs)
            && check(&mut models.rf_en, &rf_q, &rf_inputs);
    }

    // Timing copies: the calibrated slots when present, otherwise a plain
    // quantization of the trained encoder (same kernels, so the fallback
    // case still reports honest per-op timings — just not the gate pass).
    let quantized_of = |net: &Sequential, calib: &[Tensor]| {
        let mut tmp = net.clone();
        QuantizedSequential::from_sequential(&mut tmp, calib).expect("encoder-shaped net")
    };
    let mut q_imu = models
        .imu_en_q
        .clone()
        .unwrap_or_else(|| quantized_of(&models.imu_en, &imu_inputs));
    let mut q_rf = models
        .rf_en_q
        .clone()
        .unwrap_or_else(|| quantized_of(&models.rf_en, &rf_inputs));

    let model_bytes_f64 = models.imu_en.encode().len() + models.rf_en.encode().len();
    let model_bytes_int8 = q_imu.encode().len() + q_rf.encode().len();
    let int8_size_ratio = model_bytes_int8 as f64 / model_bytes_f64 as f64;

    // Per-op records: each conv stage and the dense head, f32 GEMM forward
    // vs the int8 kernel path, at the single-window inference shapes.
    let (mut cols, mut acc, mut out) = (Vec::new(), Vec::new(), Vec::new());
    let mut int8_records = Vec::new();
    {
        let mut conv_pair = |op, mut f32_layer: Conv1d, q: &wavekey_nn::quant::QuantizedConv1d, shape: Vec<usize>| {
            let x = input(shape.clone());
            let xq = input_q(shape[1] * shape[2]);
            let f32_ns = time_ns(|| {
                std::hint::black_box(f32_layer.forward(&x, false));
            });
            let int8_ns = time_ns(|| {
                q.forward(&xq, shape[2], &mut cols, &mut acc, &mut out);
                std::hint::black_box(&out);
            });
            int8_record(op, f32_ns, int8_ns)
        };
        int8_records.push(conv_pair(
            "imu_conv1_int8_3x8k7s2_l200",
            Conv1d::with_stride(3, 8, 7, 2, 0, 11),
            &q_imu.convs()[0].clone(),
            vec![1, 3, 200],
        ));
        int8_records.push(conv_pair(
            "imu_conv2_int8_8x16k5s2_l97",
            Conv1d::with_stride(8, 16, 5, 2, 0, 12),
            &q_imu.convs()[1].clone(),
            vec![1, 8, 97],
        ));
        int8_records.push(conv_pair(
            "rf_conv1_int8_3x8k9s4_l400",
            Conv1d::with_stride(3, 8, 9, 4, 0, 13),
            &q_rf.convs()[0].clone(),
            vec![1, 3, 400],
        ));
    }
    {
        let mut f32_dense = Dense::new(752, 12, 14);
        let x = input(vec![1, 752]);
        let xq = input_q(752);
        let q_dense = q_imu.dense().clone();
        let f32_ns = time_ns(|| {
            std::hint::black_box(f32_dense.forward(&x, false));
        });
        let int8_ns = time_ns(|| {
            std::hint::black_box(q_dense.forward(&xq, &mut acc));
        });
        int8_records.push(int8_record("enc_dense_int8_752x12", f32_ns, int8_ns));
    }

    // Whole-encoder forwards: the quantity the ci.sh int8 gate floors.
    let mut encoder_pair = |op, net: &mut Sequential, q: &mut QuantizedSequential, shape: Vec<usize>| {
        let x = input(shape);
        let f32_ns = time_ns(|| {
            std::hint::black_box(net.forward(&x, false));
        });
        let int8_ns = time_ns(|| {
            std::hint::black_box(q.forward(&x));
        });
        int8_record(op, f32_ns, int8_ns)
    };
    let imu_encoder =
        encoder_pair("imu_encoder_int8_3x200", &mut models.imu_en, &mut q_imu, vec![1, 3, 200]);
    let rf_encoder =
        encoder_pair("rf_encoder_int8_3x400", &mut models.rf_en, &mut q_rf, vec![1, 3, 400]);
    let encoder_int8_speedup = imu_encoder.speedup().min(rf_encoder.speedup());
    int8_records.push(imu_encoder);
    int8_records.push(rf_encoder);

    // Stage benchmark: the whole sensing→seed pipeline (gesture synthesis,
    // IMU/RF sensing, encoder forwards, equiprobable quantization, Gray
    // coding) with and without quantized inference.
    let sense_to_seed = {
        let f32_config = SessionConfig::default();
        let mut int8_config = SessionConfig::default();
        int8_config.quantized_inference = true;
        let mut f32_session = Session::new(f32_config, models.clone(), 0x5e55);
        let mut int8_session = Session::new(int8_config, models.clone(), 0x5e55);
        let f32_ns = time_ns(|| {
            std::hint::black_box(f32_session.derive_seeds().expect("sensing pipeline"));
        });
        let int8_ns = time_ns(|| {
            std::hint::black_box(int8_session.derive_seeds().expect("sensing pipeline"));
        });
        int8_record("sense_to_seed_stage", f32_ns, int8_ns)
    };

    let wavekey_threads = std::env::var("WAVEKEY_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    println!(
        "encoder_int8_speedup {encoder_int8_speedup:.2}x  seeds_bit_identical \
         {seeds_bit_identical}  model bytes {model_bytes_f64} -> {model_bytes_int8} \
         ({:.1}%)",
        int8_size_ratio * 100.0
    );
    let trend_run = append_trend(encoder_int8_speedup, seeds_bit_identical, int8_size_ratio);
    println!("trend run {trend_run} appended to results/TREND.jsonl");

    // Flat JSON array, written by hand (no serializer needed here).
    let mut json = String::from("[\n");
    for l in &layers {
        json.push_str(&format!(
            "  {{\"op\": \"{}\", \"reference_ns\": {:.1}, \"gemm_ns\": {:.1}, \"speedup\": {:.3}}},\n",
            l.op,
            l.reference_ns,
            l.gemm_ns,
            l.reference_ns / l.gemm_ns
        ));
    }
    for r in int8_records.iter().chain(std::iter::once(&sense_to_seed)) {
        json.push_str(&format!(
            "  {{\"op\": \"{}\", \"f32_ns\": {:.1}, \"int8_ns\": {:.1}, \"int8_speedup\": {:.3}}},\n",
            r.op,
            r.f32_ns,
            r.int8_ns,
            r.speedup()
        ));
    }
    json.push_str(&format!(
        "  {{\"op\": \"int8_quantization_summary\", \"encoder_int8_speedup\": {:.3}, \
         \"seeds_bit_identical\": {}, \"imu_en_quantized\": {}, \"rf_en_quantized\": {}, \
         \"model_bytes_f64\": {}, \"model_bytes_int8\": {}, \"int8_size_ratio\": {:.4}, \
         \"wavekey_threads\": {}}},\n",
        encoder_int8_speedup,
        seeds_bit_identical,
        outcome.imu_quantized,
        outcome.rf_quantized,
        model_bytes_f64,
        model_bytes_int8,
        int8_size_ratio,
        wavekey_threads
    ));
    json.push_str(&format!(
        "  {{\"op\": \"train_autoencoders\", \"reference_s\": {:.3}, \"gemm_s\": {:.3}, \
         \"train_speedup\": {:.3}, \"loss_bit_identical\": {}}}\n]\n",
        reference_s, gemm_s, train_speedup, loss_bit_identical
    ));

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&out_path, json).expect("write BENCH_nn.json");
    println!("\nwrote {out_path}");
}
