//! Reproduces **Table I**: key-establishment success rates in four
//! emulated environments under static (S) and dynamic (D) conditions.
//!
//! Paper protocol: in each environment × condition cell, all six
//! volunteers perform 50 gestures each (300 instances per cell). Success
//! means the full workflow establishes a key.
//!
//! Every attempt is captured as a [`wavekey_obs::SessionTrace`] through a
//! collector attached to the session, so the success rates, the failure
//! taxonomy, and the `results/OBS_table1.json` artifact all come from the
//! shared [`wavekey_obs::TraceSet`] aggregation rather than hand-rolled
//! counters.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin table1_environments [gestures_per_volunteer]
//! ```

use std::collections::BTreeMap;
use wavekey_bench::{experiment_config, print_row, print_sep, trained_models, write_results, Scale};
use wavekey_core::session::{Session, SessionConfig};
use wavekey_imu::gesture::VolunteerId;
use wavekey_obs::{Json, Obs, TraceSet};

fn main() {
    let per_volunteer: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let models = trained_models(Scale::Small);

    println!("\nTable I: key-establishment success rates (%) in different environments");
    println!("(eta = {:.4})", experiment_config().wavekey.eta());
    println!("({per_volunteer} gestures per volunteer per cell, 6 volunteers)\n");

    let widths = [6usize, 9, 9, 9, 9, 9, 9, 9, 9];
    print_row(
        &[
            "Envr.".into(),
            "1/S".into(),
            "1/D".into(),
            "2/S".into(),
            "2/D".into(),
            "3/S".into(),
            "3/D".into(),
            "4/S".into(),
            "4/D".into(),
        ],
        &widths,
    );
    print_sep(&widths);

    let mut cells = vec!["P_k".to_string()];
    let mut failure_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut cell_reports: Vec<(String, Json)> = Vec::new();
    for env in 1..=4u32 {
        for &walkers in &[0usize, 5] {
            let (obs, collector) = Obs::with_memory();
            for v in 0..6u32 {
                let config = SessionConfig {
                    environment_id: env,
                    walkers,
                    volunteer: VolunteerId(v),
                    ..experiment_config()
                };
                let mut session = Session::new(
                    config,
                    models.clone(),
                    u64::from(env) * 1000 + u64::from(v) + walkers as u64 * 77,
                );
                session.set_obs(obs.clone());
                for _ in 0..per_volunteer {
                    let _ = session.establish_key_fast();
                }
            }
            let mut set = TraceSet::new();
            for trace in collector.sessions() {
                set.push(trace);
            }
            assert_eq!(set.len(), 6 * per_volunteer, "one trace per attempt");
            cells.push(format!("{:.1}", 100.0 * set.success_rate()));

            let cell = format!("env{env}_{}", if walkers == 0 { "static" } else { "dynamic" });
            let mut outcomes: BTreeMap<String, usize> = BTreeMap::new();
            for t in set.traces() {
                if !t.is_success() {
                    *outcomes.entry(t.outcome.clone()).or_default() += 1;
                    *failure_counts.entry(t.outcome.clone()).or_default() += 1;
                }
            }
            let mismatch = set
                .field_stats(|t| t.seed_mismatch_ratio())
                .map(|(_, mean, _, _, _, _)| Json::Num(mean))
                .unwrap_or(Json::Null);
            cell_reports.push((
                cell,
                Json::obj(vec![
                    ("sessions", Json::Num(set.len() as f64)),
                    ("success_rate", Json::Num(set.success_rate())),
                    ("seed_mismatch_mean_ratio", mismatch),
                    (
                        "failures",
                        Json::Obj(
                            outcomes
                                .into_iter()
                                .map(|(k, v)| (k, Json::Num(v as f64)))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
    }
    print_row(&cells, &widths);
    println!("\npaper reference row: 99.7 99.0 | 100 98.6 | 99.7 99.0 | 99.3 99.0");
    if !failure_counts.is_empty() {
        let total: usize = failure_counts.values().sum();
        println!("\nfailure taxonomy across all cells ({total} failures):");
        for (outcome, count) in &failure_counts {
            println!("  {outcome}: {count}");
        }
    }

    write_results("results/OBS_table1.json", &Json::Obj(cell_reports).to_string_pretty());
}
