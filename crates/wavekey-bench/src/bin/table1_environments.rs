//! Reproduces **Table I**: key-establishment success rates in four
//! emulated environments under static (S) and dynamic (D) conditions.
//!
//! Paper protocol: in each environment × condition cell, all six
//! volunteers perform 50 gestures each (300 instances per cell). Success
//! means the full workflow establishes a key.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin table1_environments [gestures_per_volunteer]
//! ```

use wavekey_bench::{experiment_config, print_row, print_sep, trained_models, Scale};
use wavekey_core::session::{Session, SessionConfig};
use wavekey_imu::gesture::VolunteerId;

fn main() {
    let per_volunteer: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let models = trained_models(Scale::Small);

    println!("\nTable I: key-establishment success rates (%) in different environments");
    println!("(eta = {:.4})", experiment_config().wavekey.eta());
    println!("({per_volunteer} gestures per volunteer per cell, 6 volunteers)\n");

    let widths = [6usize, 9, 9, 9, 9, 9, 9, 9, 9];
    print_row(
        &[
            "Envr.".into(),
            "1/S".into(),
            "1/D".into(),
            "2/S".into(),
            "2/D".into(),
            "3/S".into(),
            "3/D".into(),
            "4/S".into(),
            "4/D".into(),
        ],
        &widths,
    );
    print_sep(&widths);

    let mut cells = vec!["P_k".to_string()];
    for env in 1..=4u32 {
        for &walkers in &[0usize, 5] {
            let mut successes = 0usize;
            let mut total = 0usize;
            for v in 0..6u32 {
                let config = SessionConfig {
                    environment_id: env,
                    walkers,
                    volunteer: VolunteerId(v),
                    ..experiment_config()
                };
                let mut session = Session::new(
                    config,
                    models.clone(),
                    u64::from(env) * 1000 + u64::from(v) + walkers as u64 * 77,
                );
                for _ in 0..per_volunteer {
                    total += 1;
                    if session.establish_key_fast().is_ok() {
                        successes += 1;
                    }
                }
            }
            cells.push(format!("{:.1}", 100.0 * successes as f64 / total as f64));
        }
    }
    print_row(&cells, &widths);
    println!("\npaper reference row: 99.7 99.0 | 100 98.6 | 99.7 99.0 | 99.3 99.0");
}
