//! Zipfian tenant/session load generator gated by the `wavekey-obs` SLO
//! engine. Writes `results/BENCH_load.json` (consumed by the ci.sh SLO
//! gate) and appends a trend line to `results/TREND.jsonl`.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin load_gen [out_path]
//! ```
//!
//! Three deterministic traffic mixes, all driven through
//! [`SessionManager`] over the tiny test group (the protocol path, not
//! the group arithmetic, is under test):
//!
//! 1. **enrol-heavy** — 96 key-establishment sessions across 64 tenants
//!    whose popularity follows a Zipf(1.1) law, spawned in waves of 8
//!    and interleaved by the round-robin scheduler; per-session latency
//!    is the wall time from wave start to that session's completion.
//! 2. **auth-heavy** — 600 Zipfian authentication requests: a tenant's
//!    first request enrols it (a full managed session), every later
//!    request is an HMAC-SHA256 sign + constant-time verify against the
//!    established key.
//! 3. **fault-heavy** — 96 sessions under the reference [`FaultPlan`]
//!    mixture with ARQ recovery. The mix runs **twice** with a fresh
//!    causal [`EventLog`] each time: the two JSONL timeline exports
//!    must be byte-identical (`timelines_deterministic`), and no
//!    surviving session may hold divergent mobile/server keys.
//!
//! Each mix is judged by declarative [`SloSpec`]s — a p99 latency
//! objective (`WAVEKEY_SLO_P99_MS`, default 100 ms; the fault mix gets
//! 4× slack for recovery backoff) with a success-rate floor, plus a
//! throughput floor (`WAVEKEY_SLO_MIN_SPS`, default 20 sessions/s on
//! the enrol mix) — calibrated ~15× above the 1-core container's
//! observed numbers so only real regressions trip. The overall
//! `slo_all_pass` verdict is what ci.sh gates on.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;
use wavekey_bench::traffic::{env_f64, percentile, soak_config, Zipf};
use wavekey_core::agreement::{AgreementConfig, RetryPolicy};
use wavekey_core::channel::{Adversary, PassiveChannel};
use wavekey_core::fault::{FaultPlan, FaultProfile};
use wavekey_core::SessionManager;
use wavekey_crypto::hmac::{hmac_sha256, mac_eq};
use wavekey_obs::{
    EventLog, Json, MemoryCollector, MultiCollector, Obs, SloReport, SloSpec,
};

const TENANTS: usize = 64;
const ZIPF_S: f64 = 1.1;
const SEED_LEN: usize = 24;
const ENROL_SESSIONS: u64 = 96;
const ENROL_WAVE: u64 = 8;
const AUTH_OPS: u64 = 600;
const FAULT_SESSIONS: u64 = 96;
const FAULT_SEED: u64 = 0x10AD_F417;
const SEED_BASE: u64 = 0x7E4A_47;
const RNG_BASE_MOBILE: u64 = 0x10AD_A;
const RNG_BASE_SERVER: u64 = 0x10AD_B;

fn seed_pair(tenant: u64) -> (Vec<bool>, Vec<bool>) {
    wavekey_bench::traffic::seed_pair(SEED_BASE, tenant, SEED_LEN)
}

fn rngs(i: u64) -> (StdRng, StdRng) {
    wavekey_bench::traffic::rng_pair(RNG_BASE_MOBILE, RNG_BASE_SERVER, i)
}

fn config(retry: RetryPolicy) -> AgreementConfig {
    soak_config(retry)
}

/// One mix's aggregate: latencies (ms), throughput, and outcome counts.
struct MixStats {
    name: &'static str,
    latencies_ms: Vec<f64>,
    ops: u64,
    successes: u64,
    retransmits: u64,
    elapsed_s: f64,
}

impl MixStats {
    fn success_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.successes as f64 / self.ops as f64
        }
    }

    fn ops_per_s(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.ops as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Evaluates this mix's latency SLO and renders the mix JSON object.
    fn to_json(&self, report: &mut SloReport, p99_ms: f64, floor: f64) -> Json {
        let seconds: Vec<f64> = self.latencies_ms.iter().map(|ms| ms / 1e3).collect();
        let verdict = SloSpec::latency(&format!("{}_p99", self.name), 0.99, p99_ms / 1e3)
            .with_success_floor(floor)
            .evaluate(&seconds, self.success_rate());
        let json = Json::obj(vec![
            ("name", Json::Str(self.name.to_string())),
            ("ops", Json::Num(self.ops as f64)),
            ("successes", Json::Num(self.successes as f64)),
            ("success_rate", Json::Num(self.success_rate())),
            ("p50_ms", Json::Num(percentile(&self.latencies_ms, 0.50))),
            ("p90_ms", Json::Num(percentile(&self.latencies_ms, 0.90))),
            ("p99_ms", Json::Num(percentile(&self.latencies_ms, 0.99))),
            ("ops_per_s", Json::Num(self.ops_per_s())),
            ("retransmits", Json::Num(self.retransmits as f64)),
            ("slo", Json::Arr(vec![verdict.to_json()])),
        ]);
        report.push(verdict);
        json
    }
}

/// Spawns `n` Zipfian-tenant sessions in waves of [`ENROL_WAVE`] and
/// drives each wave to completion, recording per-session latency.
fn enrol_mix(obs: &Obs) -> MixStats {
    let _mix = obs.span("mix_enrol");
    let config = config(RetryPolicy::arq());
    let zipf = Zipf::new(TENANTS, ZIPF_S);
    let mut tenant_rng = StdRng::seed_from_u64(FAULT_SEED ^ 0xE14);
    let mut manager = SessionManager::new(12);
    manager.set_obs(obs.clone());
    let mut adversary = PassiveChannel;
    let mut latencies_ms = Vec::new();
    let t_mix = Instant::now();
    for wave in 0..ENROL_SESSIONS / ENROL_WAVE {
        let _w = obs.span("enrol_wave");
        let t0 = Instant::now();
        for j in 0..ENROL_WAVE {
            let tenant = zipf.sample(&mut tenant_rng) as u64;
            let (s_m, s_r) = seed_pair(tenant);
            let (rng_m, rng_r) = rngs(wave * ENROL_WAVE + j);
            manager
                .spawn(&s_m, &s_r, &config, rng_m, rng_r, &mut adversary)
                .expect("spawn enrol session");
        }
        let mut done = manager.outcomes().len();
        loop {
            let more = manager.step(&mut adversary);
            while manager.outcomes().len() > done {
                latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                done += 1;
            }
            if !more {
                break;
            }
        }
    }
    MixStats {
        name: "enrol_heavy",
        latencies_ms,
        ops: ENROL_SESSIONS,
        successes: manager.successes() as u64,
        retransmits: manager.retransmits_total(),
        elapsed_s: t_mix.elapsed().as_secs_f64(),
    }
}

/// Zipfian authentication traffic: first touch of a tenant enrols it
/// through a managed session; every other op signs and verifies a
/// request against the tenant's established key.
fn auth_mix(obs: &Obs) -> MixStats {
    let _mix = obs.span("mix_auth");
    let config = config(RetryPolicy::arq());
    let zipf = Zipf::new(TENANTS, ZIPF_S);
    let mut op_rng = StdRng::seed_from_u64(FAULT_SEED ^ 0xA07);
    let mut keys: Vec<Option<Vec<u8>>> = vec![None; TENANTS];
    let mut latencies_ms = Vec::new();
    let mut successes = 0u64;
    let mut retransmits = 0u64;
    let t_mix = Instant::now();
    for op in 0..AUTH_OPS {
        let tenant = zipf.sample(&mut op_rng);
        let t0 = Instant::now();
        if keys[tenant].is_none() {
            // Lazy enrolment: one full managed session for this tenant.
            let _e = obs.span("auth_enrol");
            let (s_m, s_r) = seed_pair(tenant as u64);
            let (rng_m, rng_r) = rngs(0x1000 + op);
            let mut manager = SessionManager::new(12);
            manager.set_obs(obs.clone());
            let mut adversary = PassiveChannel;
            let id = manager
                .spawn(&s_m, &s_r, &config, rng_m, rng_r, &mut adversary)
                .expect("spawn auth enrolment");
            manager.run_to_completion(&mut adversary);
            retransmits += manager.retransmits_total();
            if let Some(Ok(out)) = manager.outcome(id) {
                keys[tenant] = Some(out.agreement.key.clone());
            }
        }
        let ok = match &keys[tenant] {
            Some(key) => {
                let _v = obs.span("auth_verify");
                let message = [b"req", &op.to_le_bytes()[..]].concat();
                let mac = hmac_sha256(key, &message);
                mac_eq(&hmac_sha256(key, &message), &mac)
            }
            None => false,
        };
        successes += ok as u64;
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    MixStats {
        name: "auth_heavy",
        latencies_ms,
        ops: AUTH_OPS,
        successes,
        retransmits,
        elapsed_s: t_mix.elapsed().as_secs_f64(),
    }
}

/// One full fault-heavy pass over a dedicated observability handle;
/// returns the stats plus the number of divergent-key successes.
fn fault_mix_run(obs: &Obs) -> (MixStats, u64) {
    let config = config(RetryPolicy::arq());
    let mut plan = FaultPlan::new(FAULT_SEED, FaultProfile::reference());
    let mut manager = SessionManager::new(12);
    manager.set_obs(obs.clone());
    let mut ids = Vec::new();
    let t_mix = Instant::now();
    let t0 = Instant::now();
    for i in 0..FAULT_SESSIONS {
        let (s_m, s_r) = seed_pair(i);
        let (rng_m, rng_r) = rngs(0x2000 + i);
        ids.push(
            manager
                .spawn(&s_m, &s_r, &config, rng_m, rng_r, &mut plan as &mut dyn Adversary)
                .expect("spawn fault session"),
        );
    }
    let mut latencies_ms = Vec::new();
    let mut done = manager.outcomes().len();
    loop {
        let more = manager.step(&mut plan);
        while manager.outcomes().len() > done {
            latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            done += 1;
        }
        if !more {
            break;
        }
    }
    let divergent = ids
        .iter()
        .filter(|id| {
            matches!(
                manager.outcome(**id),
                Some(Ok(out)) if out.agreement.key != out.server_key
            )
        })
        .count() as u64;
    let stats = MixStats {
        name: "fault_heavy",
        latencies_ms,
        ops: FAULT_SESSIONS,
        successes: manager.successes() as u64,
        retransmits: manager.retransmits_total(),
        elapsed_s: t_mix.elapsed().as_secs_f64(),
    };
    (stats, divergent)
}

/// Runs the fault mix twice over fresh event logs; the causal timelines
/// must export byte-identically (events carry no wall-clock fields).
fn fault_mix(obs: &Obs) -> (MixStats, u64, bool, usize) {
    let _mix = obs.span("mix_faults");
    let run = || {
        let log = Arc::new(EventLog::new(512));
        let run_obs = Obs::new(log.clone());
        let (stats, divergent) = fault_mix_run(&run_obs);
        (stats, divergent, log.timelines_jsonl(), log.len())
    };
    let (stats, divergent, first, events) = run();
    let (_, _, second, _) = run();
    (stats, divergent, first == second, events)
}

/// Top profile stacks by total inclusive time, for the report.
fn top_stacks(obs: &Obs, n: usize) -> Json {
    let mut snapshot = obs.profile_snapshot();
    snapshot.sort_by(|a, b| b.1.total_s.partial_cmp(&a.1.total_s).expect("finite totals"));
    Json::Arr(
        snapshot
            .into_iter()
            .take(n)
            .map(|(path, stat)| {
                Json::obj(vec![
                    ("path", Json::Str(path)),
                    ("count", Json::Num(stat.count as f64)),
                    ("total_s", Json::Num(stat.total_s)),
                ])
            })
            .collect(),
    )
}

/// Appends one run line to `results/TREND.jsonl`, comparing against the
/// previous line; returns (run index, regressed flag).
fn append_trend(enrol: &MixStats, auth: &MixStats, faults: &MixStats, all_pass: bool) -> (u64, bool) {
    let path = std::path::Path::new("results/TREND.jsonl");
    let prior = std::fs::read_to_string(path).unwrap_or_default();
    let last = prior.lines().rev().find(|l| !l.trim().is_empty()).and_then(Json::parse);
    let run = last
        .as_ref()
        .and_then(|j| j.get("run"))
        .and_then(Json::as_f64)
        .map_or(1, |r| r as u64 + 1);
    let p99 = percentile(&enrol.latencies_ms, 0.99);
    let sps = enrol.ops_per_s();
    // A regression flags when the enrol mix's p99 or throughput moved
    // more than 25% the wrong way against the previous run. The flag is
    // informational (the SLO gate is the hard line): trend noise on a
    // shared CI box must not fail the build.
    let regressed = last
        .as_ref()
        .map(|j| {
            let prev_p99 = j.get("enrol_p99_ms").and_then(Json::as_f64).unwrap_or(p99);
            let prev_sps = j.get("enrol_sps").and_then(Json::as_f64).unwrap_or(sps);
            p99 > prev_p99 * 1.25 || sps < prev_sps * 0.75
        })
        .unwrap_or(false);
    let line = Json::obj(vec![
        ("run", Json::Num(run as f64)),
        ("enrol_p99_ms", Json::Num(p99)),
        ("enrol_sps", Json::Num(sps)),
        ("auth_p99_ms", Json::Num(percentile(&auth.latencies_ms, 0.99))),
        ("fault_p99_ms", Json::Num(percentile(&faults.latencies_ms, 0.99))),
        ("fault_retransmits", Json::Num(faults.retransmits as f64)),
        ("slo_all_pass", Json::Bool(all_pass)),
        ("regressed_vs_prev", Json::Bool(regressed)),
    ]);
    let appended = format!("{}{}\n", prior, line.to_string_compact());
    wavekey_bench::write_results("results/TREND.jsonl", &appended);
    (run, regressed)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_load.json".to_string());
    let p99_ms = env_f64("WAVEKEY_SLO_P99_MS", 100.0);
    let min_sps = env_f64("WAVEKEY_SLO_MIN_SPS", 20.0);

    let log = Arc::new(EventLog::new(512));
    let memory = Arc::new(MemoryCollector::new());
    let obs = Obs::new(Arc::new(MultiCollector::new(vec![memory, log.clone()])));

    eprintln!("[load_gen] enrol-heavy mix: {ENROL_SESSIONS} sessions, {TENANTS} Zipf tenants…");
    let enrol = enrol_mix(&obs);
    eprintln!("[load_gen] auth-heavy mix: {AUTH_OPS} ops…");
    let auth = auth_mix(&obs);
    eprintln!("[load_gen] fault-heavy mix: {FAULT_SESSIONS} sessions ×2 (determinism check)…");
    let (faults, divergent, deterministic, fault_events) = fault_mix(&obs);

    let mut report = SloReport::new();
    let enrol_json = enrol.to_json(&mut report, p99_ms, 0.99);
    let auth_json = auth.to_json(&mut report, p99_ms, 0.99);
    // The reference fault mixture kills a small tail even with ARQ; the
    // floor asks recovery to save ≥85% (the soak gate's territory).
    let faults_json = faults.to_json(&mut report, p99_ms * 4.0, 0.85);

    let sps = enrol.ops_per_s();
    let sps_pass = sps >= min_sps;
    let all_pass = report.all_pass() && sps_pass && deterministic && divergent == 0;
    let (trend_run, regressed) = append_trend(&enrol, &auth, &faults, all_pass);

    for mix in [&enrol, &auth, &faults] {
        println!(
            "{:<12} ops {:>4}  ok {:>5.3}  p50 {:>8.3} ms  p99 {:>8.3} ms  {:>7.1} ops/s  rtx {}",
            mix.name,
            mix.ops,
            mix.success_rate(),
            percentile(&mix.latencies_ms, 0.50),
            percentile(&mix.latencies_ms, 0.99),
            mix.ops_per_s(),
            mix.retransmits,
        );
    }
    println!("sessions/s (enrol)        {sps:.1}  (floor {min_sps})  pass {sps_pass}");
    println!("timelines deterministic   {deterministic}  ({fault_events} events/run)");
    println!("divergent-key successes   {divergent}");
    println!("slo_all_pass              {all_pass}");
    println!("trend run #{trend_run}, regressed vs prev: {regressed}");

    let json = Json::obj(vec![
        ("mixes", Json::Arr(vec![enrol_json, auth_json, faults_json])),
        ("sessions_per_s", Json::Num(sps)),
        ("min_sessions_per_s", Json::Num(min_sps)),
        ("slo_p99_ms", Json::Num(p99_ms)),
        ("slo_all_pass", Json::Bool(all_pass)),
        ("timelines_deterministic", Json::Bool(deterministic)),
        ("divergent_key_successes", Json::Num(divergent as f64)),
        ("fault_events_per_run", Json::Num(fault_events as f64)),
        ("events_recorded", Json::Num(log.len() as f64)),
        ("events_dropped", Json::Num(log.dropped() as f64)),
        ("trend_run", Json::Num(trend_run as f64)),
        ("regressed_vs_prev", Json::Bool(regressed)),
        ("top_stacks", top_stacks(&obs, 8)),
    ]);
    wavekey_bench::write_results(&out_path, &format!("{}\n", json.to_string_pretty()));
}
