//! The observability flight-record report: runs many full-protocol
//! key-establishment sessions with a live collector attached and writes
//! the aggregated per-stage latency / seed-mismatch / deadline report to
//! `results/OBS_session.json`, the Prometheus text exposition of every
//! derived metric to `results/OBS_metrics.prom`, the per-session causal
//! event timelines to `results/OBS_events.jsonl`, and the hierarchical
//! span profile (flamegraph collapsed-stack text) to
//! `results/OBS_profile.txt`.
//!
//! This is the end-to-end demonstration of the `wavekey-obs` pipeline:
//! `Session` records per-stage spans and a [`wavekey_obs::SessionTrace`]
//! per attempt, the `MemoryCollector` retains them, and
//! [`wavekey_obs::TraceSet::report_json`] turns the set into the stable
//! JSON document downstream dashboards consume.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin obs_report [sessions]
//! ```

use wavekey_bench::{experiment_config, print_row, print_sep, trained_models, write_results, Scale};
use wavekey_core::session::Session;
use wavekey_obs::{Obs, TraceSet};

fn main() {
    let sessions: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
        .max(32); // the report is meaningless on a handful of samples

    let models = trained_models(Scale::Small);
    let mut config = experiment_config();
    // Full MODP-1024 protocol, but with deadline slack so the report
    // reflects compute latency rather than slow-machine timeouts.
    config.wavekey.tau = 10.0;

    let mut session = Session::new(config, models, 0x0b5e_55ed);
    let (obs, collector) = Obs::with_memory();
    session.set_obs(obs.clone());

    eprintln!("[obs_report] running {sessions} full-protocol sessions…");
    let mut successes = 0usize;
    for _ in 0..sessions {
        let _attempt = obs.span("establish_key");
        if session.establish_key().is_ok() {
            successes += 1;
        }
    }

    let mut set = TraceSet::new();
    for trace in collector.sessions() {
        set.push(trace);
    }
    assert_eq!(set.len(), sessions, "every attempt must produce a trace");

    // Human-readable summary of what lands in the JSON.
    println!("\nObservability report: {sessions} sessions, {successes} succeeded");
    let widths = [16usize, 6, 10, 10, 10, 10];
    print_row(
        &[
            "stage".into(),
            "count".into(),
            "mean ms".into(),
            "p50 ms".into(),
            "p90 ms".into(),
            "p99 ms".into(),
        ],
        &widths,
    );
    print_sep(&widths);
    for s in set.stage_stats() {
        print_row(
            &[
                s.name.clone(),
                s.count.to_string(),
                format!("{:.3}", s.mean_s * 1e3),
                format!("{:.3}", s.p50_s * 1e3),
                format!("{:.3}", s.p90_s * 1e3),
                format!("{:.3}", s.p99_s * 1e3),
            ],
            &widths,
        );
    }
    if let Some((count, mean, p50, p90, p99, max)) = set.field_stats(|t| t.seed_mismatch_ratio())
    {
        println!(
            "\nseed mismatch ratio ({count} sessions): mean {mean:.4}, p50 {p50:.4}, \
             p90 {p90:.4}, p99 {p99:.4}, max {max:.4}"
        );
    }
    if let Some((_, mean, _, _, p99, _)) = set.field_stats(|t| t.deadline_consumed_s) {
        let budget = set.traces().iter().find_map(|t| t.deadline_s).unwrap_or(f64::NAN);
        println!(
            "deadline budget {budget:.1} s: consumed mean {mean:.3} s, p99 {p99:.3} s"
        );
    }

    let report = set.report_json("full_protocol_modp1024");
    write_results("results/OBS_session.json", &report.to_string_pretty());
    write_results("results/OBS_metrics.prom", &obs.prometheus_text());

    // Causal timelines: every machine state transition of every session,
    // exported deterministically (sessions by id, events by sequence).
    let events = collector.causal_events();
    println!("\ncausal events: {} across {sessions} sessions", events.len());
    write_results(
        "results/OBS_events.jsonl",
        &wavekey_obs::event::timelines_jsonl(&events),
    );

    // Hierarchical span profile in flamegraph collapsed-stack format
    // (`path;subpath weight`, weight = exclusive microseconds).
    write_results("results/OBS_profile.txt", &obs.profile_collapsed());
}
