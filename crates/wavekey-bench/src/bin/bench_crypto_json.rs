//! Machine-readable crypto micro-benchmarks: times the exponentiation
//! kernels, the batched OT rounds, the WAVEKEY-1024 fleet-group batch
//! executor, and full MODP-1024 / amortized fleet agreements, then
//! writes `results/BENCH_crypto.json` so future PRs can track the perf
//! trajectory without parsing criterion output.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin bench_crypto_json [out_path]
//! cargo run --release -p wavekey-bench --bin bench_crypto_json --equivalence-only [out_path]
//! ```
//!
//! Each op is warmed up once, then timed over enough iterations to fill
//! a minimum measurement window (`WAVEKEY_BENCH_WINDOW` overrides the
//! default 0.25 s; `WAVEKEY_THREADS` caps the executor's parallelism as
//! everywhere else). The JSON schema is a flat list:
//! `{ "op": str, "mean_ns": float, "iters": int, "throughput_per_s": float }`,
//! with `*_amortized` ops reporting per-item cost (total / batch size),
//! plus one trailing equivalence record
//! (`{"op": "fleet_batch48_equivalence", "keys_bit_identical": bool, ...}`)
//! asserting the batched routes reproduce the scalar keys bit for bit.
//!
//! `--equivalence-only` skips all timing and writes just the equivalence
//! record — the CI batch gate runs it once per `WAVEKEY_THREADS` setting
//! (the thread cap is read once per process, so each width needs its own
//! process).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use wavekey_core::agreement::{run_agreement, AgreementConfig};
use wavekey_core::channel::PassiveChannel;
use wavekey_core::SessionManager;
use wavekey_crypto::batch::ModexpBatch;
use wavekey_crypto::bigint::Ubig;
use wavekey_crypto::group::DhGroup;
use wavekey_crypto::ot::{OtReceiver, OtSender};

/// Minimum total measurement time per op (seconds); `WAVEKEY_BENCH_WINDOW`
/// overrides it (the CI overhead gate uses a longer window so the slow
/// full-agreement op averages over enough iterations to be stable).
fn min_window() -> f64 {
    std::env::var("WAVEKEY_BENCH_WINDOW")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25)
}
/// Iteration cap for very slow ops.
const MAX_ITERS: usize = 10_000;

struct Sample {
    op: String,
    mean_ns: f64,
    iters: usize,
}

/// Times `f` adaptively: doubles the iteration count until the run
/// exceeds [`min_window`], then reports the mean.
fn time_op<F: FnMut()>(op: &str, mut f: F) -> Sample {
    let min_window = min_window();
    f(); // warm-up (also warms caches / lazy statics)
    let mut iters = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_window || iters >= MAX_ITERS {
            return Sample { op: op.into(), mean_ns: elapsed * 1e9 / iters as f64, iters };
        }
        iters = (iters * 2).min(MAX_ITERS);
    }
}

/// Like [`time_op`], but reports the amortized per-item mean for a
/// closure that processes `n` items per call.
fn time_op_amortized<F: FnMut()>(op: &str, n: usize, f: F) -> Sample {
    let mut s = time_op(op, f);
    s.mean_ns /= n as f64;
    s
}

/// The standard 48-instance three-round OT workload on `group`, through
/// the scalar or the batched route. Returns the encoded wire messages and
/// decrypted payloads so callers can compare routes bit for bit.
fn ot48(group: &DhGroup, batched: bool) -> (Vec<u8>, Vec<u8>, Vec<u8>, Vec<Vec<u8>>) {
    let secrets: Vec<(Vec<u8>, Vec<u8>)> =
        (0..48).map(|i| (vec![i as u8; 3], vec![!(i as u8); 3])).collect();
    let choices: Vec<bool> = (0..48).map(|i| i % 3 == 0).collect();
    let mut rng_s = StdRng::seed_from_u64(20);
    let mut rng_r = StdRng::seed_from_u64(21);
    if batched {
        let (sender, ma) = OtSender::start_batched(group, secrets, &mut rng_s);
        let (receiver, mb) = OtReceiver::respond_batched(group, &choices, &ma, &mut rng_r).unwrap();
        let me = sender.encrypt_batched(group, &mb).unwrap();
        let payloads = receiver.decrypt_batched(group, &me).unwrap();
        (ma.encode(group), mb.encode(group), me.encode(), payloads)
    } else {
        let (sender, ma) = OtSender::start(group, secrets, &mut rng_s);
        let (receiver, mb) = OtReceiver::respond(group, &choices, &ma, &mut rng_r).unwrap();
        let me = sender.encrypt(group, &mb).unwrap();
        let payloads = receiver.decrypt(group, &me).unwrap();
        (ma.encode(group), mb.encode(group), me.encode(), payloads)
    }
}

/// The fleet deployment config: WAVEKEY-1024 group, batch-routed OT.
fn fleet_config(batched: bool) -> AgreementConfig {
    AgreementConfig { fleet_group: true, batched_crypto: batched, tau: 10.0, ..Default::default() }
}

/// Runs `n` identical-seed agreements through `spawn_many` (pooling the
/// start round across sessions) and returns per-session keys.
fn fleet_spawn_many(n: usize, s: &[bool], batched: bool) -> Vec<Vec<u8>> {
    let config = fleet_config(batched);
    let seeds: Vec<_> = (0..n).map(|_| (s.to_vec(), s.to_vec())).collect();
    let rngs: Vec<_> = (0..n as u64)
        .map(|i| (StdRng::seed_from_u64(31 + i), StdRng::seed_from_u64(1031 + i)))
        .collect();
    let mut manager = SessionManager::new(8);
    let mut adversary = PassiveChannel;
    let ids = manager.spawn_many(&seeds, &config, rngs, &mut adversary).expect("spawn_many");
    let ok = manager.run_to_completion(&mut adversary);
    assert_eq!(ok, n, "fleet agreement batch must fully succeed");
    ids.iter()
        .map(|id| {
            manager.outcome(*id).expect("outcome").as_ref().expect("success").agreement.key.clone()
        })
        .collect()
}

/// The batched routes must reproduce the scalar keys bit for bit: OT wire
/// messages and payloads, full-agreement keys, and `spawn_many`-pooled
/// keys, all on the fleet group where the fold path is live.
fn equivalence_check(s: &[bool]) -> bool {
    let fleet = DhGroup::wavekey_1024_shared();
    let mut ok = ot48(fleet, false) == ot48(fleet, true);

    let run = |config: &AgreementConfig| {
        let mut rng_m = StdRng::seed_from_u64(31);
        let mut rng_s = StdRng::seed_from_u64(32);
        run_agreement(s, s, config, &mut rng_m, &mut rng_s, &mut PassiveChannel)
            .expect("fleet agreement")
            .key
    };
    ok &= run(&fleet_config(true)) == run(&fleet_config(false));
    ok &= fleet_spawn_many(4, s, true) == fleet_spawn_many(4, s, false);
    ok
}

fn equivalence_record(s: &[bool]) -> (bool, String) {
    let identical = equivalence_check(s);
    let threads = std::env::var("WAVEKEY_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let record = format!(
        "{{\"op\": \"fleet_batch48_equivalence\", \"keys_bit_identical\": {identical}, \"wavekey_threads\": {threads}}}"
    );
    (identical, record)
}

fn write_out(out_path: &str, json: &str) {
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(out_path, json).expect("write bench json");
    println!("\nwrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rng = StdRng::seed_from_u64(7);

    if args.first().map(String::as_str) == Some("--equivalence-only") {
        let out_path =
            args.get(1).cloned().unwrap_or_else(|| "results/BENCH_equivalence.json".into());
        let s: Vec<bool> = (0..48).map(|_| rng.gen()).collect();
        let (identical, record) = equivalence_record(&s);
        println!("keys_bit_identical     {identical}");
        write_out(&out_path, &format!("[\n  {record}\n]\n"));
        return;
    }
    let out_path = args.first().cloned().unwrap_or_else(|| "results/BENCH_crypto.json".into());

    let group = DhGroup::modp_1024_shared();
    let x = group.random_exponent(&mut rng);
    let y = group.random_exponent(&mut rng);
    let base = group.pow_g(&x);
    let other = group.pow_g(&y);

    let mut samples = Vec::new();

    samples.push(time_op("modp1024_mod_mul", || {
        std::hint::black_box(group.mul(&base, &other));
    }));
    samples.push(time_op("modp1024_pow_g_fixed_base", || {
        std::hint::black_box(group.pow_g(&x));
    }));
    samples.push(time_op("modp1024_general_modexp", || {
        std::hint::black_box(group.pow(&base, &x));
    }));
    samples.push(time_op("modp1024_inv_pow_g", || {
        std::hint::black_box(group.inv_pow_g(&x));
    }));

    samples.push(time_op("ot_batch48_three_rounds", || {
        std::hint::black_box(ot48(group, false));
    }));

    let s: Vec<bool> = (0..48).map(|_| rng.gen()).collect();
    let config = AgreementConfig { tau: 10.0, ..Default::default() };
    samples.push(time_op("agreement_full_modp1024_seed48_key256", || {
        let mut rng_m = StdRng::seed_from_u64(31);
        let mut rng_s = StdRng::seed_from_u64(32);
        std::hint::black_box(
            run_agreement(&s, &s, &config, &mut rng_m, &mut rng_s, &mut PassiveChannel)
                .unwrap(),
        );
    }));

    // --- WAVEKEY-1024 fleet group: the batch executor's fold path vs the
    // scalar Montgomery route on the same group (the CI batch gate
    // compares the batched mean against `ot_batch48_three_rounds` above —
    // the recorded 93 ms baseline workload).
    let fleet = DhGroup::wavekey_1024_shared();
    samples.push(time_op("ot_batch48_three_rounds_wavekey1024_scalar", || {
        std::hint::black_box(ot48(fleet, false));
    }));
    samples.push(time_op("ot_batch48_three_rounds_wavekey1024_batched", || {
        std::hint::black_box(ot48(fleet, true));
    }));

    // --- Batch-size sweep: amortized per-modexp cost through the batch
    // executor (general jobs, fleet group) at each gathered batch size.
    for n in [1usize, 4, 16, 48, 128] {
        let mut rng_b = StdRng::seed_from_u64(0x5EED + n as u64);
        let jobs: Vec<(Ubig, Ubig)> = (0..n)
            .map(|_| {
                (
                    Ubig::random_below(fleet.modulus(), &mut rng_b),
                    fleet.random_exponent(&mut rng_b),
                )
            })
            .collect();
        samples.push(time_op_amortized(&format!("fleet_modexp_batch{n}_amortized"), n, || {
            let mut batch = ModexpBatch::new();
            for (b, e) in &jobs {
                batch.push_pow(fleet, b.clone(), e.clone());
            }
            std::hint::black_box(batch.execute());
        }));
    }

    // --- Amortized per-agreement cost: n fleet sessions spawned through
    // `spawn_many` (start rounds pooled into one cross-session batch,
    // remaining OT rounds batched within each session).
    for n in [1usize, 4, 16, 48, 128] {
        samples.push(time_op_amortized(&format!("fleet_agreement_batch{n}_amortized"), n, || {
            std::hint::black_box(fleet_spawn_many(n, &s, true));
        }));
    }

    let (identical, equivalence) = equivalence_record(&s);
    println!("keys_bit_identical (fleet batched vs scalar)   {identical}");

    // Flat JSON array, written by hand: the bench harness must not pull
    // in a serializer for a handful of records.
    let mut json = String::from("[\n");
    for s in samples.iter() {
        let throughput = 1e9 / s.mean_ns;
        json.push_str(&format!(
            "  {{\"op\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}, \"throughput_per_s\": {:.3}}},\n",
            s.op, s.mean_ns, s.iters, throughput,
        ));
        println!(
            "{:<46} {:>14.1} ns/iter {:>12.2} op/s ({} iters)",
            s.op, s.mean_ns, throughput, s.iters
        );
    }
    json.push_str(&format!("  {equivalence}\n]\n"));

    write_out(&out_path, &json);
}
