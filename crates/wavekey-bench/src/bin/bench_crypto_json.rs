//! Machine-readable crypto micro-benchmarks: times the exponentiation
//! kernels, the batched OT rounds, and a full MODP-1024 agreement, then
//! writes `results/BENCH_crypto.json` so future PRs can track the perf
//! trajectory without parsing criterion output.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin bench_crypto_json [out_path]
//! ```
//!
//! Each op is warmed up once, then timed over enough iterations to fill
//! a minimum measurement window. The JSON schema is a flat list:
//! `{ "op": str, "mean_ns": float, "iters": int, "throughput_per_s": float }`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use wavekey_core::agreement::{run_agreement, AgreementConfig};
use wavekey_core::channel::PassiveChannel;
use wavekey_crypto::group::DhGroup;
use wavekey_crypto::ot::{OtReceiver, OtSender};

/// Minimum total measurement time per op (seconds); `WAVEKEY_BENCH_WINDOW`
/// overrides it (the CI overhead gate uses a longer window so the slow
/// full-agreement op averages over enough iterations to be stable).
fn min_window() -> f64 {
    std::env::var("WAVEKEY_BENCH_WINDOW")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25)
}
/// Iteration cap for very slow ops.
const MAX_ITERS: usize = 10_000;

struct Sample {
    op: &'static str,
    mean_ns: f64,
    iters: usize,
}

/// Times `f` adaptively: doubles the iteration count until the run
/// exceeds [`min_window`], then reports the mean.
fn time_op<F: FnMut()>(op: &'static str, mut f: F) -> Sample {
    let min_window = min_window();
    f(); // warm-up (also warms caches / lazy statics)
    let mut iters = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_window || iters >= MAX_ITERS {
            return Sample { op, mean_ns: elapsed * 1e9 / iters as f64, iters };
        }
        iters = (iters * 2).min(MAX_ITERS);
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_crypto.json".into());

    let group = DhGroup::modp_1024_shared();
    let mut rng = StdRng::seed_from_u64(7);
    let x = group.random_exponent(&mut rng);
    let y = group.random_exponent(&mut rng);
    let base = group.pow_g(&x);
    let other = group.pow_g(&y);

    let mut samples = Vec::new();

    samples.push(time_op("modp1024_mod_mul", || {
        std::hint::black_box(group.mul(&base, &other));
    }));
    samples.push(time_op("modp1024_pow_g_fixed_base", || {
        std::hint::black_box(group.pow_g(&x));
    }));
    samples.push(time_op("modp1024_general_modexp", || {
        std::hint::black_box(group.pow(&base, &x));
    }));
    samples.push(time_op("modp1024_inv_pow_g", || {
        std::hint::black_box(group.inv_pow_g(&x));
    }));

    let secrets: Vec<(Vec<u8>, Vec<u8>)> =
        (0..48).map(|i| (vec![i as u8; 3], vec![!(i as u8); 3])).collect();
    let choices: Vec<bool> = (0..48).map(|i| i % 3 == 0).collect();
    samples.push(time_op("ot_batch48_three_rounds", || {
        let mut rng_s = StdRng::seed_from_u64(20);
        let mut rng_r = StdRng::seed_from_u64(21);
        let (sender, ma) = OtSender::start(group, secrets.clone(), &mut rng_s);
        let (receiver, mb) = OtReceiver::respond(group, &choices, &ma, &mut rng_r).unwrap();
        let me = sender.encrypt(group, &mb).unwrap();
        std::hint::black_box(receiver.decrypt(group, &me).unwrap());
    }));

    let s: Vec<bool> = (0..48).map(|_| rng.gen()).collect();
    let config = AgreementConfig { tau: 10.0, ..Default::default() };
    samples.push(time_op("agreement_full_modp1024_seed48_key256", || {
        let mut rng_m = StdRng::seed_from_u64(31);
        let mut rng_s = StdRng::seed_from_u64(32);
        std::hint::black_box(
            run_agreement(&s, &s, &config, &mut rng_m, &mut rng_s, &mut PassiveChannel)
                .unwrap(),
        );
    }));

    // Flat JSON array, written by hand: the bench harness must not pull
    // in a serializer for six records.
    let mut json = String::from("[\n");
    for (i, s) in samples.iter().enumerate() {
        let throughput = 1e9 / s.mean_ns;
        json.push_str(&format!(
            "  {{\"op\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}, \"throughput_per_s\": {:.3}}}{}\n",
            s.op,
            s.mean_ns,
            s.iters,
            throughput,
            if i + 1 < samples.len() { "," } else { "" }
        ));
        println!(
            "{:<42} {:>14.1} ns/iter {:>12.2} op/s ({} iters)",
            s.op, s.mean_ns, throughput, s.iters
        );
    }
    json.push_str("]\n");

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&out_path, json).expect("write BENCH_crypto.json");
    println!("\nwrote {out_path}");
}
