//! Development probe 4: cross-modal fidelity of dataset windows as a
//! function of the window offset into the long gesture (drift check).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey_core::dataset::{record_long_gesture, slice_window};
use wavekey_core::model::{IMU_SAMPLES, RFID_SAMPLES};
use wavekey_dsp::savgol_second_derivative;
use wavekey_imu::gesture::{GestureGenerator, VolunteerId};
use wavekey_imu::sensors::DeviceModel;
use wavekey_math::pearson_correlation;
use wavekey_rfid::channel::TagModel;
use wavekey_rfid::environment::{Environment, UserPlacement};

fn best_lag_corr(a: &[f64], b: &[f64], max_lag: i64) -> f64 {
    let mut best = 0.0f64;
    let n0 = a.len().min(b.len());
    for lag in -max_lag..=max_lag {
        let (a0, b0) = if lag >= 0 { (lag as usize, 0usize) } else { (0, (-lag) as usize) };
        let n = n0 - a0.max(b0) - 1;
        best = best.max(pearson_correlation(&a[a0..a0 + n], &b[b0..b0 + n]).abs());
    }
    best
}

fn main() {
    let active: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(15.5);
    let mut rng = StdRng::seed_from_u64(0xd21f7);
    let env = Environment::room(1);
    let placement = UserPlacement::default();

    // offset bucket -> correlations
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); 8];
    for trial in 0..8u32 {
        let mut generator = GestureGenerator::new(VolunteerId(trial % 6), rng.gen());
        let Some(processed) = record_long_gesture(
            &mut generator,
            active,
            DeviceModel::GalaxyWatch,
            TagModel::Alien9640A,
            &env,
            &placement,
            0,
            rng.gen(),
        ) else {
            continue;
        };
        let max_off = (processed.accel.len().saturating_sub(IMU_SAMPLES)) as f64 / 100.0;
        for b in 0..8 {
            let t_off = max_off * b as f64 / 8.0;
            let Some(s) =
                slice_window(&processed, t_off, VolunteerId(0), DeviceModel::GalaxyWatch, false)
            else {
                continue;
            };
            let comp1: Vec<f64> =
                s.a.data()[..IMU_SAMPLES].iter().map(|&x| f64::from(x)).collect();
            let phase: Vec<f64> =
                s.r.data()[..RFID_SAMPLES].iter().map(|&x| f64::from(x)).collect();
            let d2 = savgol_second_derivative(&phase, 41, 3, 1.0 / 200.0).unwrap();
            let d2_100: Vec<f64> = (0..IMU_SAMPLES).map(|i| d2[2 * i]).collect();
            buckets[b].push(best_lag_corr(&comp1, &d2_100, 30));
        }
    }
    println!("cross-modal |corr| by window offset (active = {active} s):");
    for (b, v) in buckets.iter().enumerate() {
        if v.is_empty() {
            continue;
        }
        println!(
            "  offset bucket {b} (~{:.1} s): mean {:.3}, min {:.3} (n = {})",
            (active - 2.8) * b as f64 / 8.0,
            v.iter().sum::<f64>() / v.len() as f64,
            v.iter().cloned().fold(f64::MAX, f64::min),
            v.len()
        );
    }
}
