//! Development probe 3: bisect the cross-modal fidelity loss.
//!
//! For single-session windows, compare each side against the ground
//! truth radial acceleration:
//!   c_rf  = |corr(phase'', u·a_true)|   (RF-side fidelity)
//!   c_imu = |corr(canonical-1, u·a_true)| (IMU-side fidelity incl. PCA)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey_core::model::{imu_to_tensor, IMU_SAMPLES};
use wavekey_dsp::savgol_second_derivative;
use wavekey_imu::gesture::{GestureConfig, GestureGenerator, VolunteerId};
use wavekey_imu::pipeline::{process_imu, ImuPipelineConfig};
use wavekey_imu::sensors::{sample_imu, DeviceModel};
use wavekey_math::{pearson_correlation, Vec3};
use wavekey_rfid::channel::TagModel;
use wavekey_rfid::environment::{Environment, UserPlacement};
use wavekey_rfid::pipeline::{process_rfid, RfidPipelineConfig};
use wavekey_rfid::reader::{record_rfid, ReaderSpec};

fn best_lag_corr(a: &[f64], b: &[f64], max_lag: i64) -> f64 {
    let mut best = 0.0f64;
    let n0 = a.len().min(b.len());
    for lag in -max_lag..=max_lag {
        let (a0, b0) = if lag >= 0 { (lag as usize, 0usize) } else { (0, (-lag) as usize) };
        let n = n0 - a0.max(b0) - 1;
        best = best.max(pearson_correlation(&a[a0..a0 + n], &b[b0..b0 + n]).abs());
    }
    best
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0xb15ec7);
    let env = Environment::room(1);
    let placement = UserPlacement::default();
    let hand = placement.hand_position(&env);
    let dir = env.antenna - hand;
    let yaw = dir.y.atan2(dir.x);

    let mut c_rf_all = Vec::new();
    let mut c_imu_all = Vec::new();
    let mut c_cross_all = Vec::new();
    for trial in 0..24 {
        let mut generator = GestureGenerator::new(VolunteerId(trial % 6), rng.gen());
        let gesture = generator.generate(&GestureConfig::default()).rotated_yaw(yaw);
        let noise_seed: u64 = rng.gen();

        // IMU side.
        let imu_rec = sample_imu(&gesture, &DeviceModel::GalaxyWatch.spec(), noise_seed);
        let Ok(a) = process_imu(&imu_rec, &ImuPipelineConfig::default()) else { continue };
        let tensor = imu_to_tensor(&a);
        let comp1: Vec<f64> =
            tensor.data()[..IMU_SAMPLES].iter().map(|&x| f64::from(x)).collect();

        // RF side.
        let channel = env.channel(TagModel::Alien9640A, 0, noise_seed);
        let rfid_rec = record_rfid(
            &gesture,
            hand,
            Vec3::new(0.03, 0.0, 0.0),
            &channel,
            &ReaderSpec::default(),
            noise_seed,
        );
        let Ok(r) = process_rfid(&rfid_rec, &RfidPipelineConfig::default()) else { continue };
        let d2 = savgol_second_derivative(&r.phase, 41, 3, 1.0 / 200.0).unwrap();
        let phase_dd_100: Vec<f64> = (0..IMU_SAMPLES).map(|i| d2[2 * i]).collect();

        // Ground truth radial acceleration on the IMU window grid.
        let base_shift = hand - gesture.position_at(0.0);
        let truth: Vec<f64> = (0..IMU_SAMPLES)
            .map(|i| {
                let t = a.start_time + i as f64 / 100.0;
                let p = gesture.position_at(t) + base_shift;
                let u = (env.antenna - p).normalized();
                // Phase grows with distance; radial acceleration along u.
                -gesture.acceleration_at(t).dot(u)
            })
            .collect();

        c_imu_all.push(best_lag_corr(&comp1, &truth, 10));
        c_rf_all.push(best_lag_corr(&phase_dd_100, &truth, 30));
        c_cross_all.push(best_lag_corr(&comp1, &phase_dd_100, 30));
    }
    let stats = |v: &mut Vec<f64>| -> (f64, f64, f64) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (v.iter().sum::<f64>() / v.len() as f64, v[0], v[v.len() / 2])
    };
    let (m, lo, med) = stats(&mut c_imu_all);
    println!("IMU side vs truth:  mean {m:.3}, min {lo:.3}, median {med:.3}");
    let (m, lo, med) = stats(&mut c_rf_all);
    println!("RF side vs truth:   mean {m:.3}, min {lo:.3}, median {med:.3}");
    let (m, lo, med) = stats(&mut c_cross_all);
    println!("cross (IMU vs RF):  mean {m:.3}, min {lo:.3}, median {med:.3}");
}
