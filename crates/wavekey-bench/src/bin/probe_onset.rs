//! Development probe 5: distribution of the cross-modal onset
//! disagreement (IMU detector vs RFID detector).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey_imu::gesture::{GestureConfig, GestureGenerator, VolunteerId};
use wavekey_imu::pipeline::{process_imu, ImuPipelineConfig};
use wavekey_imu::sensors::{sample_imu, DeviceModel};
use wavekey_math::Vec3;
use wavekey_rfid::channel::TagModel;
use wavekey_rfid::environment::{Environment, UserPlacement};
use wavekey_rfid::pipeline::{process_rfid, RfidPipelineConfig};
use wavekey_rfid::reader::{record_rfid, ReaderSpec};

fn main() {
    let mut rng = StdRng::seed_from_u64(0x0e5e7);
    let env = Environment::room(1);
    let placement = UserPlacement::default();
    let hand = placement.hand_position(&env);
    let dir = env.antenna - hand;
    let yaw = dir.y.atan2(dir.x);

    let mut deltas = Vec::new();
    for v in 0..48u32 {
        let mut generator = GestureGenerator::new(VolunteerId(v % 6), rng.gen());
        let gesture = generator.generate(&GestureConfig::default()).rotated_yaw(yaw);
        let seed: u64 = rng.gen();
        let imu_rec = sample_imu(&gesture, &DeviceModel::GalaxyWatch.spec(), seed);
        let rfid_rec = record_rfid(
            &gesture,
            hand,
            Vec3::new(0.03, 0.0, 0.0),
            &channel_for(&env, seed),
            &ReaderSpec::default(),
            seed,
        );
        let (Ok(a), Ok(r)) = (
            process_imu(&imu_rec, &ImuPipelineConfig::default()),
            process_rfid(&rfid_rec, &RfidPipelineConfig::default()),
        ) else {
            continue;
        };
        deltas.push((a.start_time - r.start_time) * 1000.0);
    }
    deltas.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    let std = (deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>()
        / deltas.len() as f64)
        .sqrt();
    println!(
        "onset delta (imu − rfid), ms: mean {mean:.1}, std {std:.1}, min {:.1}, max {:.1} (n = {})",
        deltas[0],
        deltas[deltas.len() - 1],
        deltas.len()
    );
}

fn channel_for(env: &Environment, seed: u64) -> wavekey_rfid::channel::BackscatterChannel {
    env.channel(TagModel::Alien9640A, 0, seed)
}
