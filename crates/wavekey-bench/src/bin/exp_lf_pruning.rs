//! Reproduces **§VI-C-1**: determining the latent length `l_f` by
//! variance-based neuron pruning.
//!
//! Paper protocol: train with `l_f = 50`, repeatedly remove the
//! lowest-output-variance latent neuron from both encoders (and the
//! decoder input), retrain, and stop when the Eq. (3) loss rises more
//! than 5 % in one step — landing at `l_f = 12`.
//!
//! This run is expensive; the defaults trade scale for wall-clock time
//! (smaller dataset, shorter retraining). Increase via the CLI.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin exp_lf_pruning [start_lf] [retrain_epochs] [initial_epochs]
//! ```

use wavekey_core::dataset::{generate, DatasetConfig};
use wavekey_core::model::WaveKeyModels;
use wavekey_core::training::{eval_loss, prune_study, train, TrainingConfig};

fn main() {
    let start_lf: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(24);
    let retrain_epochs: usize =
        std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let initial_epochs: usize =
        std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(12);

    let mut ds_cfg = DatasetConfig::small();
    ds_cfg.gestures_per_combo = 6;
    ds_cfg.windows_per_gesture = 8;
    println!("generating dataset ({} samples)…", ds_cfg.total_samples());
    let dataset = generate(&ds_cfg);

    let cfg = TrainingConfig { l_f: start_lf, epochs: initial_epochs, ..Default::default() };
    println!("training initial models at l_f = {start_lf} ({initial_epochs} epochs)…");
    let mut models = WaveKeyModels::new(start_lf, 0x1f);
    train(&mut models, &dataset, &cfg, 0x1f).expect("training");
    let initial = eval_loss(&mut models, &dataset, cfg.lambda);
    println!("initial loss: {initial:.4}\n");

    println!("pruning (retrain {retrain_epochs} epochs per step, stop at +5 % loss):");
    let steps = prune_study(&mut models, &dataset, &cfg, retrain_epochs, 4, 0.05, 0x99)
        .expect("prune study");
    println!("{:>6} {:>12}", "l_f", "loss");
    for s in &steps {
        println!("{:>6} {:>12.4}", s.l_f, s.loss);
    }
    let stopped_at = steps.last().expect("at least one step");
    println!(
        "\nstopped at l_f = {} (loss {:.4}); the operating point is the previous step.",
        stopped_at.l_f, stopped_at.loss
    );
    println!("paper: pruning from 50 halts at l_f = 12");
}
