//! Gateway soak: a 100k-session concurrent fleet through the async
//! `wavekey-gateway` event loop, with lockstep-equivalence, fault, and
//! memory gates. Writes `results/BENCH_gateway.json` (consumed by the
//! ci.sh gateway soak gate) and appends a trend line to
//! `results/TREND.jsonl`.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin gateway_soak [out_path]
//! ```
//!
//! Four deterministic arms over the tiny test group (the gateway and
//! framing path, not group arithmetic, is under test):
//!
//! 1. **soak** — `WAVEKEY_GATEWAY_SESSIONS` (default 100,000) fault-free
//!    sessions, all connected before the executor starts, so every
//!    session is in flight at once: `peak_in_flight` must reach the
//!    fleet size, every session must complete with matching
//!    mobile/gateway keys, and peak RSS (`VmHWM`) must stay under
//!    `WAVEKEY_GATEWAY_MAX_RSS_MB` (default 6144 — the fleet measures
//!    ≈4.1 GiB at 100k, ≈41 KiB per in-flight session).
//! 2. **lockstep mirror** — an evenly-strided subsample (~256 sessions)
//!    of the soak arm is re-run through `drive_lockstep` with mirrored
//!    seeds and RNG streams; keys must be bit-identical, proving byte
//!    chunking and interleaving never reach the machines.
//! 3. **lossless faults** — a smaller fleet under split-read and
//!    stalled-write injection: every key must equal the fault-free run's.
//! 4. **lossy faults** — the same fleet plus truncate-and-close: evicted
//!    sessions are expected, but no surviving session may hold divergent
//!    keys.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wavekey_bench::traffic::{env_f64, env_u64, seed_pair};
use wavekey_core::agreement::{AgreementConfig, AgreementError};
use wavekey_core::proto::{driver, MobileAgreement};
use wavekey_core::PassiveChannel;
use wavekey_gateway::{
    drive_mobile, server_rng, Executor, Gateway, GatewayConfig, SessionOutcome, SimNet,
    StreamFaults,
};
use wavekey_obs::{Json, Obs};

const SEED_BASE: u64 = 0x6A7E_0000;
const MOBILE_RNG_BASE: u64 = 0x6A7E_0B11;
const SEED_LEN: usize = 24;

fn soak_agreement() -> AgreementConfig {
    AgreementConfig { use_tiny_group: true, tau: 10.0, bch_t: 5, ..Default::default() }
}

fn mobile_rng(conn_id: u64) -> StdRng {
    StdRng::seed_from_u64(MOBILE_RNG_BASE + conn_id)
}

/// One fleet run's aggregate.
struct FleetStats {
    /// Client-side results sorted by conn id (1-based, connect order).
    results: Vec<(u64, Result<Vec<u8>, AgreementError>)>,
    completed: u64,
    evicted: u64,
    failed: u64,
    peak_live: u64,
    /// Sessions where the client holds a key the gateway's table
    /// disagrees with (or never recorded) — the zero-tolerance count.
    divergent: u64,
    wall_s: f64,
}

/// Connects `n` clients, then runs the whole fleet on one deterministic
/// executor. All connects land in the listener backlog before the first
/// poll, so the accept loop admits every session before any completes —
/// the fleet genuinely has `n` sessions in flight at once.
fn run_fleet(n: u64, faults: impl Fn(u64) -> StreamFaults) -> FleetStats {
    use std::cell::RefCell;
    use std::rc::Rc;

    let config = GatewayConfig::new(soak_agreement());
    let agreement = config.agreement.clone();
    let idle = config.idle_ticks;
    let gateway = Gateway::new(config, Obs::disabled(), |conn_id| {
        seed_pair(SEED_BASE, conn_id, SEED_LEN).1
    });
    let net = SimNet::new(1 << 16);
    let mut exec = Executor::new();
    gateway.listen(&exec.handle(), &net);
    // The huge timer fires only once everything else has quiesced,
    // closing the listener so the accept loop (and the run) can end.
    {
        let handle = exec.handle();
        let net = net.clone();
        exec.spawn(async move {
            handle.sleep(1_000_000).await;
            net.close();
        });
    }
    let results = Rc::new(RefCell::new(Vec::with_capacity(n as usize)));
    let t0 = Instant::now();
    for i in 0..n {
        let stream = net.connect_with(faults(i)).expect("listener open");
        let conn_id = stream.conn_id();
        let (s_m, _) = seed_pair(SEED_BASE, conn_id, SEED_LEN);
        let mobile =
            MobileAgreement::new(&s_m, &agreement, mobile_rng(conn_id)).expect("mobile machine");
        let handle = exec.handle();
        let results = Rc::clone(&results);
        let delay = agreement.channel_delay;
        exec.spawn(async move {
            let got = drive_mobile(handle, stream, mobile, delay, idle).await;
            results.borrow_mut().push((conn_id, got));
        });
    }
    exec.run();
    let wall_s = t0.elapsed().as_secs_f64();

    let mut results = Rc::try_unwrap(results).expect("all client tasks done").into_inner();
    results.sort_by_key(|(id, _)| *id);
    let divergent = results
        .iter()
        .filter(|(conn_id, got)| match got {
            Ok(key) => !matches!(
                gateway.table().outcome(*conn_id),
                Some(SessionOutcome::Done(server_key)) if server_key == *key
            ),
            Err(_) => false,
        })
        .count() as u64;
    FleetStats {
        results,
        completed: gateway.table().completed(),
        evicted: gateway.table().evicted(),
        failed: gateway.table().failed(),
        peak_live: gateway.table().peak_live(),
        divergent,
        wall_s,
    }
}

/// Peak resident set of this process (`VmHWM`), in MiB.
fn peak_rss_mb() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Re-runs an evenly-strided subsample of the soak fleet through the
/// lockstep driver with mirrored seeds/RNGs; returns
/// `(checked, all bit-identical)`.
fn lockstep_mirror(soak: &FleetStats, server_seed: u64) -> (u64, bool) {
    let n = soak.results.len() as u64;
    let stride = (n / 256).max(1);
    let config = soak_agreement();
    let mut checked = 0u64;
    let mut identical = true;
    for (conn_id, got) in soak.results.iter().filter(|(id, _)| (id - 1) % stride == 0) {
        let Ok(gateway_key) = got else {
            identical = false;
            continue;
        };
        let (s_m, s_r) = seed_pair(SEED_BASE, *conn_id, SEED_LEN);
        let mut rng_m = mobile_rng(*conn_id);
        let mut rng_r = server_rng(server_seed, *conn_id);
        let outcome = driver::drive_lockstep(
            &s_m,
            &s_r,
            &config,
            &mut rng_m,
            &mut rng_r,
            &mut PassiveChannel,
        );
        identical &= matches!(&outcome, Ok(out) if out.key == *gateway_key);
        checked += 1;
    }
    (checked, identical && checked > 0)
}

/// Appends one gateway line to the `results/TREND.jsonl` run ledger.
fn append_trend(sessions: u64, sps: f64, rss_mb: f64, pass: bool) -> u64 {
    let prior = std::fs::read_to_string("results/TREND.jsonl").unwrap_or_default();
    let run = prior
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .and_then(Json::parse)
        .as_ref()
        .and_then(|j| j.get("run"))
        .and_then(Json::as_f64)
        .map_or(1, |r| r as u64 + 1);
    let line = Json::obj(vec![
        ("run", Json::Num(run as f64)),
        ("gateway_sessions", Json::Num(sessions as f64)),
        ("gateway_sps", Json::Num(sps)),
        ("gateway_peak_rss_mb", Json::Num(rss_mb)),
        ("gateway_pass", Json::Bool(pass)),
    ]);
    let appended = format!("{}{}\n", prior, line.to_string_compact());
    wavekey_bench::write_results("results/TREND.jsonl", &appended);
    run
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_gateway.json".to_string());
    let sessions = env_u64("WAVEKEY_GATEWAY_SESSIONS", 100_000);
    let fault_sessions = env_u64("WAVEKEY_GATEWAY_FAULT_SESSIONS", 512);
    let max_rss_mb = env_f64("WAVEKEY_GATEWAY_MAX_RSS_MB", 6144.0);
    let server_seed = GatewayConfig::new(soak_agreement()).server_seed;

    eprintln!("[gateway_soak] soak arm: {sessions} concurrent fault-free sessions…");
    let soak = run_fleet(sessions, |_| StreamFaults::none());
    let sps = if soak.wall_s > 0.0 { sessions as f64 / soak.wall_s } else { 0.0 };
    let rss_mb = peak_rss_mb();
    let rss_pass = rss_mb > 0.0 && rss_mb <= max_rss_mb;

    eprintln!("[gateway_soak] lockstep mirror (stride over the soak fleet)…");
    let (lockstep_checked, lockstep_identical) = lockstep_mirror(&soak, server_seed);

    eprintln!("[gateway_soak] lossless-fault arm: {fault_sessions} sessions…");
    let lossless = run_fleet(fault_sessions, |i| StreamFaults::lossless(0xFA_57 + i));
    // Same conn ids, same seeds: splits and stalls must not change keys.
    let lossless_identical = lossless.results.len() == fault_sessions as usize
        && lossless
            .results
            .iter()
            .zip(soak.results.iter())
            .all(|((id_a, a), (id_b, b))| id_a == id_b && a.as_ref().ok() == b.as_ref().ok());

    eprintln!("[gateway_soak] lossy-fault arm: {fault_sessions} sessions…");
    let lossy = run_fleet(fault_sessions, |i| StreamFaults::lossy(0x10_55 + i));

    let soak_pass = soak.completed == sessions
        && soak.divergent == 0
        && soak.peak_live >= sessions
        && rss_pass
        && lockstep_identical
        && lossless_identical
        && lossy.divergent == 0;
    let trend_run = append_trend(sessions, sps, rss_mb, soak_pass);

    println!("sessions                {sessions}");
    println!("completed               {} (evicted {}, failed {})", soak.completed, soak.evicted, soak.failed);
    println!("peak_in_flight          {}  (floor {sessions})", soak.peak_live);
    println!("divergent keys          {}", soak.divergent);
    println!("wall                    {:.2} s  ({sps:.0} sessions/s)", soak.wall_s);
    println!("peak RSS                {rss_mb:.1} MiB  (ceiling {max_rss_mb:.0})  pass {rss_pass}");
    println!("lockstep mirror         {lockstep_checked} checked, bit_identical {lockstep_identical}");
    println!("lossless faults         keys identical {lossless_identical}");
    println!(
        "lossy faults            {} completed, {} evicted, {} divergent",
        lossy.completed, lossy.evicted, lossy.divergent
    );
    println!("gateway_soak_pass       {soak_pass}");

    let json = Json::obj(vec![
        ("sessions", Json::Num(sessions as f64)),
        ("completed", Json::Num(soak.completed as f64)),
        ("evicted", Json::Num(soak.evicted as f64)),
        ("failed", Json::Num(soak.failed as f64)),
        ("peak_in_flight", Json::Num(soak.peak_live as f64)),
        ("divergent_keys", Json::Num(soak.divergent as f64)),
        ("wall_s", Json::Num(soak.wall_s)),
        ("sessions_per_s", Json::Num(sps)),
        ("peak_rss_mb", Json::Num(rss_mb)),
        ("max_rss_mb", Json::Num(max_rss_mb)),
        ("rss_pass", Json::Bool(rss_pass)),
        ("lockstep_checked", Json::Num(lockstep_checked as f64)),
        ("lockstep_bit_identical", Json::Bool(lockstep_identical)),
        ("lossless_sessions", Json::Num(fault_sessions as f64)),
        ("lossless_keys_identical", Json::Bool(lossless_identical)),
        ("lossy_sessions", Json::Num(fault_sessions as f64)),
        ("lossy_completed", Json::Num(lossy.completed as f64)),
        ("lossy_evicted", Json::Num(lossy.evicted as f64)),
        ("lossy_divergent", Json::Num(lossy.divergent as f64)),
        ("gateway_soak_pass", Json::Bool(soak_pass)),
        ("trend_run", Json::Num(trend_run as f64)),
    ]);
    wavekey_bench::write_results(&out_path, &format!("{}\n", json.to_string_pretty()));
    if !soak_pass {
        std::process::exit(1);
    }
}
