//! Reproduces **Fig. 7**: random-guessing and gesture-mimicking success
//! rates as a function of the quantization bin count `N_b` (4…15).
//!
//! Paper protocol (§VI-C-2): for each `N_b`, the ECC correction rate η is
//! set to cover the 99th-percentile seed mismatch of benign pairs; the
//! random-guess success rate then follows from Eq. (4) and the mimicking
//! success rate from a mimicry experiment judged against η.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin fig7_nb_sweep [benign_pairs] [mimic_instances]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey_bench::{print_row, print_sep, trained_models, Scale};
use wavekey_core::attack::{mimic_accel, random_guess_probability};
use wavekey_core::bits::mismatch_rate;
use wavekey_core::seed::SeedGenerator;
use wavekey_core::session::{Session, SessionConfig};
use wavekey_imu::gesture::{GestureGenerator, MimicConfig, VolunteerId};
use wavekey_imu::sensors::DeviceModel;
use wavekey_math::percentile;

fn main() {
    let benign: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    let mimics: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(150);
    let models = trained_models(Scale::Small);
    let mut rng = StdRng::seed_from_u64(0xf167);

    // Collect latent pairs once (benign) and mimic latent pairs once;
    // re-quantize them at every N_b.
    let mut session = Session::new(SessionConfig::default(), models.clone(), 0xf177);
    let mut benign_latents = Vec::new();
    while benign_latents.len() < benign {
        let gesture = session.new_gesture();
        if let Ok(pair) = session.derive_latents_from_gesture(&gesture) {
            benign_latents.push(pair);
        }
    }

    let mut mimic_latents = Vec::new();
    let gcfg = session.config().gesture;
    while mimic_latents.len() < mimics {
        let victim_gesture = session.new_gesture();
        let Ok((victim_f_m, _)) = session.derive_latents_from_gesture(&victim_gesture) else {
            continue;
        };
        let mut attacker =
            GestureGenerator::new(VolunteerId(rng.gen_range(0..6)), rng.gen());
        let Ok(a) = mimic_accel(
            &victim_gesture,
            &mut attacker,
            DeviceModel::Pixel8,
            &gcfg,
            &MimicConfig::default(),
            rng.gen(),
        ) else {
            continue;
        };
        let attacker_f = session.latent_from_accel(&a);
        mimic_latents.push((victim_f_m, attacker_f));
    }

    println!("\nFig. 7: attack success rates vs N_b");
    println!("({benign} benign pairs for η, {mimics} mimic instances)\n");
    let widths = [5usize, 5, 8, 8, 14, 14];
    print_row(
        &[
            "N_b".into(),
            "l_s".into(),
            "eta99".into(),
            "t/127".into(),
            "P_guess".into(),
            "P_mimic".into(),
        ],
        &widths,
    );
    print_sep(&widths);

    for n_b in 4..=15usize {
        let sg = SeedGenerator::new(n_b).expect("valid N_b");
        let rates: Vec<f64> = benign_latents
            .iter()
            .map(|(f_m, f_r)| {
                mismatch_rate(&sg.seed_from_latent(f_m), &sg.seed_from_latent(f_r))
            })
            .collect();
        let eta = percentile(&rates, 99.0);
        let l_s = sg.seed_len(models.l_f);
        // The deployable η is the BCH correction rate just covering the
        // benign 99th percentile.
        let t = ((eta * 127.0).ceil() as usize).clamp(1, 15);
        let eta_deployed = t as f64 / 127.0;
        let p_guess = random_guess_probability(l_s, eta_deployed);
        let mimic_hits = mimic_latents
            .iter()
            .filter(|(v, a)| {
                mismatch_rate(&sg.seed_from_latent(v), &sg.seed_from_latent(a)) <= eta_deployed
            })
            .count();
        let p_mimic = mimic_hits as f64 / mimic_latents.len() as f64;
        print_row(
            &[
                format!("{n_b}"),
                format!("{l_s}"),
                format!("{eta:.3}"),
                format!("{t}"),
                format!("{p_guess:.2e}"),
                format!("{:.4}", p_mimic),
            ],
            &widths,
        );
    }
    println!("\npaper: N_b = 9 minimizes the combined attack success (both < 0.5 %)");
}
