//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Gray vs natural-binary bin encoding** (§IV-C): Gray coding is
//!    supposed to make the common off-by-one quantization error cost one
//!    seed bit instead of several.
//! 2. **Block interleaving in the reconciliation** (DESIGN.md D3): a
//!    wrong OT selection corrupts `2·l_b` *consecutive* preliminary-key
//!    bits; interleaving spreads them across ECC blocks.
//! 3. **The radial-acceleration input channel** (DESIGN.md D8) is an
//!    architectural ablation that would require retraining; its effect is
//!    documented in the calibration probes instead.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin exp_ablation [sessions]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey_bench::{trained_models, Scale};
use wavekey_core::agreement::{run_agreement_information_layer, AgreementConfig};
use wavekey_core::bits::hamming_distance;
use wavekey_core::session::{Session, SessionConfig};
use wavekey_dsp::{EquiprobableQuantizer, GrayCode};

fn main() {
    let sessions: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let models = trained_models(Scale::Small);
    let mut session = Session::new(SessionConfig::default(), models, 0xab1a);

    // Collect latent pairs once.
    let mut pairs = Vec::new();
    while pairs.len() < sessions {
        let gesture = session.new_gesture();
        if let Ok(p) = session.derive_latents_from_gesture(&gesture) {
            pairs.push(p);
        }
    }

    // --- Ablation 1: Gray vs natural binary --------------------------------
    let quantizer = EquiprobableQuantizer::new(9).expect("9 bins");
    let gray = GrayCode::new(9);
    let natural_bits = |symbols: &[usize]| -> Vec<bool> {
        let mut bits = Vec::with_capacity(symbols.len() * 4);
        for &s in symbols {
            for b in (0..4).rev() {
                bits.push((s >> b) & 1 == 1);
            }
        }
        bits
    };
    let mut gray_mismatch = 0usize;
    let mut natural_mismatch = 0usize;
    let mut total_bits = 0usize;
    for (f_m, f_r) in &pairs {
        let sym_m: Vec<usize> =
            f_m.iter().map(|&x| quantizer.quantize(f64::from(x))).collect();
        let sym_r: Vec<usize> =
            f_r.iter().map(|&x| quantizer.quantize(f64::from(x))).collect();
        gray_mismatch += hamming_distance(&gray.encode(&sym_m), &gray.encode(&sym_r));
        natural_mismatch += hamming_distance(&natural_bits(&sym_m), &natural_bits(&sym_r));
        total_bits += sym_m.len() * 4;
    }
    println!("\nAblation 1: bin-index encoding ({} latent pairs)", pairs.len());
    println!(
        "  Gray coding:    seed mismatch {:.2} %",
        100.0 * gray_mismatch as f64 / total_bits as f64
    );
    println!(
        "  natural binary: seed mismatch {:.2} %",
        100.0 * natural_mismatch as f64 / total_bits as f64
    );
    println!("  (the paper's rationale: adjacent-bin errors must cost one bit)");

    // --- Ablation 2: interleaving in the reconciliation --------------------
    // Synthetic seed pairs with exactly `e` mismatched bits; success rate
    // with the production (interleaved) information layer vs a variant
    // with clustered errors landing in a single block. We emulate
    // "no interleaving" by concentrating the seed mismatch in adjacent
    // seed positions (worst case for a non-interleaved layout) vs spread
    // positions (what interleaving guarantees on average).
    println!("\nAblation 2: reconciliation under clustered vs spread seed errors");
    let config = AgreementConfig { use_tiny_group: true, tau: 10.0, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(0xab1a2);
    for &errors in &[1usize, 2, 3, 4, 5, 6] {
        let mut clustered_ok = 0usize;
        let mut spread_ok = 0usize;
        let trials = 60;
        for t in 0..trials {
            let s_m: Vec<bool> = (0..48).map(|_| rng.gen()).collect();
            // Clustered: consecutive seed bits flipped.
            let mut s_clustered = s_m.clone();
            let start = rng.gen_range(0..48 - errors);
            for i in 0..errors {
                s_clustered[start + i] = !s_clustered[start + i];
            }
            // Spread: evenly spaced flips.
            let mut s_spread = s_m.clone();
            for i in 0..errors {
                let idx = (i * 48 / errors + t) % 48;
                s_spread[idx] = !s_spread[idx];
            }
            let mut rm = StdRng::seed_from_u64(rng.gen());
            let mut rs = StdRng::seed_from_u64(rng.gen());
            if run_agreement_information_layer(&s_m, &s_clustered, &config, &mut rm, &mut rs)
                .is_ok()
            {
                clustered_ok += 1;
            }
            let mut rm = StdRng::seed_from_u64(rng.gen());
            let mut rs = StdRng::seed_from_u64(rng.gen());
            if run_agreement_information_layer(&s_m, &s_spread, &config, &mut rm, &mut rs)
                .is_ok()
            {
                spread_ok += 1;
            }
        }
        println!(
            "  {errors} seed-bit errors: clustered {:>3.0} %, spread {:>3.0} %",
            100.0 * clustered_ok as f64 / trials as f64,
            100.0 * spread_ok as f64 / trials as f64
        );
    }
    println!("  (interleaving makes clustered ≈ spread; both columns similar = working)");
}
