//! Development probe: how strong is the physical cross-modal signal?
//!
//! For held-out windows, correlate the RFID phase's second derivative
//! (≈ radial acceleration) against the canonical-frame IMU dominant
//! component, scanning small lags. This bounds what any encoder pair can
//! agree on.

use wavekey_core::dataset::{generate, DatasetConfig};
use wavekey_core::model::{IMU_SAMPLES, RFID_SAMPLES};
use wavekey_dsp::savgol_second_derivative;
use wavekey_math::pearson_correlation;

fn main() {
    let mut cfg = DatasetConfig::tiny();
    cfg.seed = 0x55;
    cfg.gestures_per_combo = 4;
    cfg.windows_per_gesture = 4;
    let ds = generate(&cfg);
    println!("samples: {}", ds.len());

    let mut best_corrs = Vec::new();
    for s in &ds.samples {
        // Phase channel (standardized), 400 samples at 200 Hz.
        let phase: Vec<f64> = s.r.data()[..RFID_SAMPLES].iter().map(|&x| f64::from(x)).collect();
        // Second derivative then downsample to 100 Hz → 200 samples.
        let d2 = savgol_second_derivative(&phase, 21, 3, 1.0 / 200.0).unwrap();
        let d2_100: Vec<f64> = (0..IMU_SAMPLES).map(|i| d2[2 * i]).collect();
        // Canonical IMU component 1 (tensor channel 0).
        let imu1: Vec<f64> = s.a.data()[..IMU_SAMPLES].iter().map(|&x| f64::from(x)).collect();

        // Scan lags ±0.3 s (±30 samples at 100 Hz).
        let mut best = 0.0f64;
        for lag in -30i64..=30 {
            let (a0, b0) = if lag >= 0 { (lag as usize, 0usize) } else { (0, (-lag) as usize) };
            let n = IMU_SAMPLES - a0.max(b0);
            let x = &imu1[a0..a0 + n];
            let y = &d2_100[b0..b0 + n];
            let c = pearson_correlation(x, y).abs();
            best = best.max(c);
        }
        best_corrs.push(best);
    }
    best_corrs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = best_corrs.iter().sum::<f64>() / best_corrs.len() as f64;
    println!(
        "best-lag |corr(imu canonical-1, phase'')|: mean {:.3}, min {:.3}, median {:.3}, max {:.3}",
        mean,
        best_corrs[0],
        best_corrs[best_corrs.len() / 2],
        best_corrs[best_corrs.len() - 1]
    );

    // Also: raw magnitude channel informativeness.
    let mut mag_corrs = Vec::new();
    for s in &ds.samples {
        let mag: Vec<f64> = s.r.data()[RFID_SAMPLES..].iter().map(|&x| f64::from(x)).collect();
        let phase: Vec<f64> = s.r.data()[..RFID_SAMPLES].iter().map(|&x| f64::from(x)).collect();
        mag_corrs.push(pearson_correlation(&mag, &phase).abs());
    }
    println!(
        "|corr(phase, magnitude)| mean: {:.3}",
        mag_corrs.iter().sum::<f64>() / mag_corrs.len() as f64
    );
}
