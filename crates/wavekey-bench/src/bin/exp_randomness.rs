//! Reproduces **§VI-D**: the NIST runs-test randomness evaluation.
//!
//! Paper protocol: each of the six volunteers performs 200 gestures in a
//! static environment; the 200 resulting 256-bit keys are concatenated
//! into a 51,200-bit *key-chain* per volunteer, and the 200 key-seed
//! pairs into two *key-seed-chains* per volunteer. The NIST SP 800-22
//! runs test is applied to every chain.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin exp_randomness [gestures_per_volunteer]
//! ```

use wavekey_bench::{experiment_config, trained_models, Scale};
use wavekey_core::session::{Session, SessionConfig};
use wavekey_imu::gesture::VolunteerId;
use wavekey_math::nist::{bytes_to_bits, monobit_test, runs_test};
use wavekey_math::{min_entropy_rate, shannon_entropy_rate};

fn main() {
    let gestures: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let models = trained_models(Scale::Small);

    println!("\n§VI-D: NIST randomness tests over per-volunteer chains");
    println!("({gestures} keys per volunteer)\n");

    let mut key_ps = Vec::new();
    let mut seed_m_ps = Vec::new();
    let mut seed_r_ps = Vec::new();

    for v in 0..6u32 {
        let config = SessionConfig { volunteer: VolunteerId(v), ..experiment_config() };
        let mut session = Session::new(config, models.clone(), 4000 + u64::from(v));
        let mut key_chain: Vec<bool> = Vec::new();
        let mut seed_m_chain: Vec<bool> = Vec::new();
        let mut seed_r_chain: Vec<bool> = Vec::new();
        let mut collected = 0usize;
        let mut attempts = 0usize;
        while collected < gestures && attempts < gestures * 3 {
            attempts += 1;
            match session.establish_key_fast() {
                Ok(out) => {
                    key_chain.extend(bytes_to_bits(&out.key));
                    seed_m_chain.extend(out.s_m.iter());
                    seed_r_chain.extend(out.s_r.iter());
                    collected += 1;
                }
                Err(_) => continue,
            }
        }
        let key_entropy = shannon_entropy_rate(&key_chain, 8);
        let seed_entropy = shannon_entropy_rate(&seed_m_chain, 8);
        let seed_min_entropy = min_entropy_rate(&seed_m_chain, 8);
        let key_runs = runs_test(&key_chain);
        let key_freq = monobit_test(&key_chain);
        let sm_runs = runs_test(&seed_m_chain);
        let sr_runs = runs_test(&seed_r_chain);
        println!(
            "volunteer {v}: key-chain {} bits: runs p = {:.3} (monobit p = {:.3}), \
             H = {:.3} b/b; seed-chains runs p = {:.3} / {:.3}, \
             H = {:.3} b/b, H_min = {:.3} b/b",
            key_chain.len(),
            key_runs.p_value,
            key_freq.p_value,
            key_entropy,
            sm_runs.p_value,
            sr_runs.p_value,
            seed_entropy,
            seed_min_entropy,
        );
        key_ps.push(key_runs.p_value);
        seed_m_ps.push(sm_runs.p_value);
        seed_r_ps.push(sr_runs.p_value);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let min = |v: &[f64]| v.iter().cloned().fold(f64::MAX, f64::min);
    let mut all_seed = seed_m_ps.clone();
    all_seed.extend(seed_r_ps.iter());
    println!(
        "\nkey-chains:      mean p = {:.3}, min p = {:.3} (paper: 0.92 / 0.90)",
        mean(&key_ps),
        min(&key_ps)
    );
    println!(
        "key-seed-chains: mean p = {:.3}, min p = {:.3} (paper: 0.78 / 0.72)",
        mean(&all_seed),
        min(&all_seed)
    );
    println!("threshold for randomness: p >= 0.05");
}
