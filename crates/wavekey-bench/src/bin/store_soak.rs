//! Recovery soak for the durable store: kill-and-recover at **every**
//! journal record boundary, under fault-free and faulted arms, asserting
//! the recovered state is bit-identical to a never-crashed twin. Writes
//! `results/BENCH_store.json` (consumed by the ci.sh store soak gate)
//! and appends a trend line to `results/TREND.jsonl`.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin store_soak [out_path]
//! ```
//!
//! Five deterministic arms over a seeded multi-tenant workload
//! (`WAVEKEY_STORE_OPS` operations, default 220, across 4 tenants):
//!
//! 1. **kill at every boundary** — the journal is truncated at every
//!    record boundary (a crash exactly between appends); recovery must
//!    reproduce the twin's digest after exactly that many operations,
//!    and the full-journal recovery must be byte-identical to the twin.
//! 2. **torn tails** — the journal is cut **mid-record** at a
//!    hash-chosen offset inside every record (a crash mid-append);
//!    recovery must repair the tail and land on the preceding boundary.
//! 3. **bit rot** — one hash-chosen bit is flipped at every boundary's
//!    record; salvage recovery must land on some operation prefix and
//!    never surface a key the workload didn't bind ("divergent key").
//! 4. **live faults** — the same workload through a seeded
//!    `FaultedVolume` (reference profile: torn/short appends, silent
//!    rot, snapshot-rename failures); appends are retried after rollback
//!    and the surviving in-memory state must equal the twin's, with the
//!    final faulted media still recovering to an operation prefix.
//! 5. **snapshot equivalence** — the workload with periodic compacting
//!    snapshots must recover to the same bytes as the snapshot-free twin
//!    while replaying strictly fewer records.

use std::collections::HashMap;
use std::time::Instant;

use wavekey_bench::traffic::env_u64;
use wavekey_obs::Json;
use wavekey_store::record::decode_record;
use wavekey_store::{
    DurableStore, FaultedVolume, MemVolume, StorageFaultProfile, StorageFaults, StoreConfig,
    StoreError, TenantQuota, Volume, JOURNAL_FILE,
};

const SOAK_SEED: u64 = 0x57_4A_2024;
const TENANTS: u64 = 4;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One workload operation. Every op appends exactly one journal record.
#[derive(Clone)]
enum Op {
    CreateTenant,
    Issue { tenant: u64, epc: [u8; 12] },
    Bind { tenant: u64, epc: [u8; 12], key: [u8; 32] },
    Rotate { tenant: u64, epc: [u8; 12], key: [u8; 32] },
    ReEnroll { tenant: u64, epc: [u8; 12], key: [u8; 32] },
    Revoke { tenant: u64, epc: [u8; 12] },
}

fn epc_of(tenant: u64, slot: u64) -> [u8; 12] {
    let mut epc = [0u8; 12];
    epc[0] = b'S';
    epc[1] = b'K';
    epc[2] = tenant as u8;
    epc[4..].copy_from_slice(&mix(SOAK_SEED ^ (tenant << 32) ^ slot).to_le_bytes());
    epc
}

fn key_of(nonce: u64) -> [u8; 32] {
    let mut key = [0u8; 32];
    for (i, chunk) in key.chunks_mut(8).enumerate() {
        chunk.copy_from_slice(&mix(SOAK_SEED ^ nonce ^ (i as u64) << 56).to_le_bytes());
    }
    key
}

/// The seeded workload: tenants first, then a mixed stream of issues,
/// binds, rotations, re-enrolments, and revocations. Binds always
/// follow an issue of the same EPC; rotations/re-enrolments only target
/// bound EPCs, so every op applies cleanly.
fn workload(ops: u64) -> Vec<Op> {
    let mut out: Vec<Op> = (0..TENANTS).map(|_| Op::CreateTenant).collect();
    let mut bound: Vec<(u64, [u8; 12])> = Vec::new();
    let mut slot = [0u64; TENANTS as usize];
    let mut i = 0u64;
    while (out.len() as u64) < ops {
        i += 1;
        let tenant = 1 + mix(SOAK_SEED ^ i) % TENANTS;
        match mix(SOAK_SEED ^ i ^ 0xFEED) % 10 {
            // Issue + immediately bind: the common enrolment shape.
            0..=4 => {
                let s = &mut slot[(tenant - 1) as usize];
                let epc = epc_of(tenant, *s);
                *s += 1;
                out.push(Op::Issue { tenant, epc });
                out.push(Op::Bind { tenant, epc, key: key_of(i) });
                bound.push((tenant, epc));
            }
            5..=6 if !bound.is_empty() => {
                let (tenant, epc) = bound[(mix(i ^ 0xA0) % bound.len() as u64) as usize];
                out.push(Op::Rotate { tenant, epc, key: key_of(i ^ 0xB1) });
            }
            7..=8 if !bound.is_empty() => {
                let (tenant, epc) = bound[(mix(i ^ 0xC2) % bound.len() as u64) as usize];
                out.push(Op::ReEnroll { tenant, epc, key: key_of(i ^ 0xD3) });
            }
            9 if bound.len() > 2 => {
                let at = (mix(i ^ 0xE4) % bound.len() as u64) as usize;
                let (tenant, epc) = bound.remove(at);
                out.push(Op::Revoke { tenant, epc });
            }
            _ => continue,
        }
    }
    out.truncate(ops as usize);
    out
}

/// Applies one op, retrying after media faults (the store rolls a failed
/// append back, so a retry is safe). Returns attempts used.
fn apply(store: &mut DurableStore, op: &Op) -> u64 {
    for attempt in 1..=16u64 {
        let outcome: Result<(), StoreError> = match op {
            Op::CreateTenant => store
                .create_tenant(TenantQuota { max_tickets: 1 << 20, enroll_burst: u32::MAX, enroll_refill: 0 })
                .map(|_| ()),
            Op::Issue { tenant, epc } => store.issue(*tenant, *epc, 0).map(|_| ()),
            Op::Bind { tenant, epc, key } => store.bind_key(*tenant, *epc, key).map(|_| ()),
            Op::Rotate { tenant, epc, key } => store.rotate_key(*tenant, *epc, key).map(|_| ()),
            Op::ReEnroll { tenant, epc, key } => store.re_enroll(*tenant, *epc, key).map(|_| ()),
            Op::Revoke { tenant, epc } => store.revoke(*tenant, *epc),
        };
        match outcome {
            Ok(()) => return attempt,
            Err(StoreError::Io(_)) => continue,
            Err(e) => panic!("workload op rejected: {e}"),
        }
    }
    panic!("an append faulted 16 times in a row — fault plan is wrong");
}

/// Key history oracle: every key each `(tenant, epc)` ever held. A
/// recovered key outside this set is a divergent key — state that no
/// prefix of the workload can explain.
fn key_history(ops: &[Op]) -> HashMap<(u64, [u8; 12]), Vec<[u8; 32]>> {
    let mut history: HashMap<(u64, [u8; 12]), Vec<[u8; 32]>> = HashMap::new();
    for op in ops {
        match op {
            Op::Bind { tenant, epc, key }
            | Op::Rotate { tenant, epc, key }
            | Op::ReEnroll { tenant, epc, key } => {
                history.entry((*tenant, *epc)).or_default().push(*key);
            }
            _ => {}
        }
    }
    history
}

fn divergent_keys(
    store: &DurableStore,
    history: &HashMap<(u64, [u8; 12]), Vec<[u8; 32]>>,
) -> u64 {
    let mut divergent = 0;
    for (&(tenant, epc), held) in history {
        if let Some(key) = store.peek_key(tenant, epc) {
            if !held.iter().any(|h| h == key) {
                divergent += 1;
            }
        }
    }
    divergent
}

fn reopen_with(media: &MemVolume, cut: Option<usize>, salvage: bool) -> DurableStore {
    let mut image = media.deep_clone();
    if let Some(cut) = cut {
        let journal = image.read(JOURNAL_FILE).expect("read").unwrap_or_default();
        image
            .write(JOURNAL_FILE, &journal[..cut.min(journal.len())])
            .expect("truncate image");
    }
    let config = StoreConfig { salvage_corruption: salvage, ..StoreConfig::default() };
    DurableStore::open(Box::new(image), config).expect("recovery never fails")
}

/// Appends one store line to the `results/TREND.jsonl` run ledger.
fn append_trend(ops: u64, kill_points: u64, rate: f64, pass: bool) -> u64 {
    let prior = std::fs::read_to_string("results/TREND.jsonl").unwrap_or_default();
    let run = prior
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .and_then(Json::parse)
        .as_ref()
        .and_then(|j| j.get("run"))
        .and_then(Json::as_f64)
        .map_or(1, |r| r as u64 + 1);
    let line = Json::obj(vec![
        ("run", Json::Num(run as f64)),
        ("store_ops", Json::Num(ops as f64)),
        ("store_kill_points", Json::Num(kill_points as f64)),
        ("store_recovered_rate", Json::Num(rate)),
        ("store_pass", Json::Bool(pass)),
    ]);
    let appended = format!("{}{}\n", prior, line.to_string_compact());
    wavekey_bench::write_results("results/TREND.jsonl", &appended);
    run
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_store.json".to_string());
    let op_count = env_u64("WAVEKEY_STORE_OPS", 220);
    let started = Instant::now();

    let ops = workload(op_count);
    let history = key_history(&ops);

    // The never-crashed twin, and its digest after every operation.
    let media = MemVolume::new();
    let mut twin =
        DurableStore::open(Box::new(media.clone()), StoreConfig::default()).expect("open twin");
    let mut digests = vec![twin.full_digest().expect("digest")];
    for op in &ops {
        apply(&mut twin, op);
        digests.push(twin.full_digest().expect("digest"));
    }
    let twin_bytes = twin.full_state_bytes().expect("twin bytes");
    let journal = media.read(JOURNAL_FILE).expect("read").expect("journal exists");

    // Record boundaries of the final journal (one record per op).
    let mut bounds = vec![0usize];
    let mut at = 0usize;
    while at < journal.len() {
        let (_, used) = decode_record(&journal[at..]).expect("twin journal is clean");
        at += used;
        bounds.push(at);
    }
    assert_eq!(bounds.len() as u64, op_count + 1, "one record per op");

    eprintln!("[store_soak] arm 1: kill at every record boundary ({op_count} ops)…");
    let mut kill_points = 0u64;
    let mut recovered_ok = 0u64;
    for (i, &cut) in bounds.iter().enumerate() {
        let mut back = reopen_with(&media, Some(cut), false);
        kill_points += 1;
        if back.full_digest().expect("digest") == digests[i] {
            recovered_ok += 1;
        }
    }
    let mut full = reopen_with(&media, None, false);
    let fault_free_bit_identical = full.full_state_bytes().expect("bytes") == twin_bytes
        && full.full_digest().expect("digest") == *digests.last().unwrap();

    eprintln!("[store_soak] arm 2: torn tail inside every record…");
    let mut torn_prefix_consistent = true;
    for (i, pair) in bounds.windows(2).enumerate() {
        let width = pair[1] - pair[0];
        let cut = pair[0] + 1 + (mix(SOAK_SEED ^ pair[0] as u64) % (width as u64 - 1)) as usize;
        let mut back = reopen_with(&media, Some(cut), false);
        kill_points += 1;
        let ok = back.full_digest().expect("digest") == digests[i]
            && back.stats().torn_tails_repaired == 1;
        recovered_ok += u64::from(ok);
        torn_prefix_consistent &= ok;
    }

    eprintln!("[store_soak] arm 3: bit rot at every record…");
    let mut bitrot_prefix_consistent = true;
    let mut rot_divergent = 0u64;
    for &off in bounds.iter().take(bounds.len() - 1) {
        let mut image = media.deep_clone();
        let mut rotted = journal.clone();
        let bit = mix(SOAK_SEED ^ 0xB17 ^ off as u64) % 8;
        rotted[off + (mix(off as u64) % 24) as usize] ^= 1 << bit;
        image.write(JOURNAL_FILE, &rotted).expect("write rot");
        let config = StoreConfig { salvage_corruption: true, ..StoreConfig::default() };
        let mut back = DurableStore::open(Box::new(image), config).expect("salvage");
        kill_points += 1;
        let ok = digests.contains(&back.full_digest().expect("digest"));
        recovered_ok += u64::from(ok);
        bitrot_prefix_consistent &= ok;
        rot_divergent += divergent_keys(&back, &history);
    }

    eprintln!("[store_soak] arm 4: live faulted media (reference profile)…");
    let faulted_media = MemVolume::new();
    let faulted_volume = FaultedVolume::new(
        faulted_media.clone(),
        StorageFaults::new(SOAK_SEED ^ 0xFA11, StorageFaultProfile::reference()),
    );
    let live_config = StoreConfig { snapshot_every: 64, ..StoreConfig::default() };
    let mut live = DurableStore::open(Box::new(faulted_volume), live_config).expect("open faulted");
    let mut retries = 0u64;
    for op in &ops {
        retries += apply(&mut live, op) - 1;
    }
    let live_final_identical = live.full_state_bytes().expect("live bytes") == twin_bytes;
    let live_stats = *live.stats();
    // The faulted media itself (rot and all) must still recover to an
    // operation prefix of the faulted run's own history. Snapshots
    // compact the journal, so compare against live state, not digests[].
    let rec_config = StoreConfig { salvage_corruption: true, ..StoreConfig::default() };
    let mut faulted_back =
        DurableStore::open(Box::new(faulted_media.deep_clone()), rec_config).expect("recover");
    let live_recovery_divergent = divergent_keys(&faulted_back, &history);
    let live_recovery_prefix = digests.contains(&faulted_back.full_digest().expect("digest"));

    eprintln!("[store_soak] arm 5: snapshot + tail replay equivalence…");
    let snap_media = MemVolume::new();
    let snap_config = StoreConfig { snapshot_every: 0, ..StoreConfig::default() };
    let mut snap = DurableStore::open(Box::new(snap_media.clone()), snap_config).expect("open");
    for (i, op) in ops.iter().enumerate() {
        apply(&mut snap, op);
        if i == ops.len() / 2 {
            snap.snapshot().expect("snapshot");
        }
    }
    let mut snap_back =
        reopen_with(&snap_media, None, false);
    let snapshot_equivalent = snap_back.full_state_bytes().expect("bytes") == twin_bytes
        && snap_back.stats().records_replayed < op_count;

    let recovered_rate = recovered_ok as f64 / kill_points as f64;
    let divergent = rot_divergent + live_recovery_divergent;
    let wall_s = started.elapsed().as_secs_f64();
    let store_soak_pass = fault_free_bit_identical
        && torn_prefix_consistent
        && bitrot_prefix_consistent
        && live_final_identical
        && live_recovery_prefix
        && snapshot_equivalent
        && divergent == 0
        && recovered_rate >= 1.0;
    let trend_run = append_trend(op_count, kill_points, recovered_rate, store_soak_pass);

    println!("ops                        {op_count}  ({} journal bytes)", journal.len());
    println!("kill points                {kill_points}");
    println!("recovered ok               {recovered_ok}  (rate {recovered_rate:.4})");
    println!("divergent keys             {divergent}");
    println!("fault_free_bit_identical   {fault_free_bit_identical}");
    println!("torn_prefix_consistent     {torn_prefix_consistent}");
    println!("bitrot_prefix_consistent   {bitrot_prefix_consistent}");
    println!(
        "live faulted               identical {live_final_identical}, retries {retries}, repairs {}, rename failures {}, snapshots {}",
        live_stats.append_repairs, live_stats.rename_failures, live_stats.snapshots
    );
    println!("snapshot_equivalent        {snapshot_equivalent}");
    println!("wall                       {wall_s:.2} s");
    println!("store_soak_pass            {store_soak_pass}");

    let json = Json::obj(vec![
        ("ops", Json::Num(op_count as f64)),
        ("journal_bytes", Json::Num(journal.len() as f64)),
        ("kill_points", Json::Num(kill_points as f64)),
        ("recovered_ok", Json::Num(recovered_ok as f64)),
        ("recovered_rate", Json::Num(recovered_rate)),
        ("divergent_keys", Json::Num(divergent as f64)),
        ("fault_free_bit_identical", Json::Bool(fault_free_bit_identical)),
        ("torn_prefix_consistent", Json::Bool(torn_prefix_consistent)),
        ("bitrot_prefix_consistent", Json::Bool(bitrot_prefix_consistent)),
        ("live_final_identical", Json::Bool(live_final_identical)),
        ("live_recovery_prefix_consistent", Json::Bool(live_recovery_prefix)),
        ("live_retries", Json::Num(retries as f64)),
        ("live_append_repairs", Json::Num(live_stats.append_repairs as f64)),
        ("live_rename_failures", Json::Num(live_stats.rename_failures as f64)),
        ("live_snapshots", Json::Num(live_stats.snapshots as f64)),
        ("snapshot_equivalent", Json::Bool(snapshot_equivalent)),
        ("wall_s", Json::Num(wall_s)),
        ("store_soak_pass", Json::Bool(store_soak_pass)),
        ("trend_run", Json::Num(trend_run as f64)),
    ]);
    wavekey_bench::write_results(&out_path, &format!("{}\n", json.to_string_pretty()));
    if !store_soak_pass {
        std::process::exit(1);
    }
}
