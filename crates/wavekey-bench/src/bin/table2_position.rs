//! Reproduces **Table II**: key-establishment success rates vs the
//! user's distance (1–9 m at 0° azimuth) and azimuth (−60°…60° at 5 m),
//! each under static and dynamic conditions.
//!
//! Paper protocol: one volunteer, 200 gestures per configuration per
//! condition.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin table2_position [gestures_per_cell]
//! ```

use wavekey_bench::{experiment_config, print_row, print_sep, trained_models, Scale};
use wavekey_core::session::{Session, SessionConfig};
use wavekey_rfid::environment::UserPlacement;

fn success_rate(
    models: &wavekey_core::WaveKeyModels,
    placement: UserPlacement,
    walkers: usize,
    gestures: usize,
    seed: u64,
) -> f64 {
    let config = SessionConfig { placement, walkers, ..experiment_config() };
    let mut session = Session::new(config, models.clone(), seed);
    let mut successes = 0usize;
    for _ in 0..gestures {
        if session.establish_key_fast().is_ok() {
            successes += 1;
        }
    }
    100.0 * successes as f64 / gestures as f64
}

fn main() {
    let gestures: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let models = trained_models(Scale::Small);

    println!("\nTable II: key-establishment success rates (%) vs device placement");
    println!("(eta = {:.4})", experiment_config().wavekey.eta());
    println!("({gestures} gestures per cell)\n");

    let widths = [18usize, 8, 8, 8, 8, 8];

    // Distance sweep at 0° azimuth.
    print_row(
        &["Distance (m)".into(), "1".into(), "3".into(), "5".into(), "7".into(), "9".into()],
        &widths,
    );
    print_sep(&widths);
    for (label, walkers) in [("Static", 0usize), ("Dynamic", 5)] {
        let mut cells = vec![label.to_string()];
        for (i, &d) in [1.0f64, 3.0, 5.0, 7.0, 9.0].iter().enumerate() {
            cells.push(format!(
                "{:.1}",
                success_rate(
                    &models,
                    UserPlacement { distance: d, azimuth_deg: 0.0 },
                    walkers,
                    gestures,
                    7000 + i as u64 + walkers as u64 * 31,
                )
            ));
        }
        print_row(&cells, &widths);
    }
    println!("paper: static 99.5 100 99.5 100 99.5 | dynamic 99.5 99.5 99 99 99\n");

    // Azimuth sweep at 5 m.
    print_row(
        &[
            "Angle (deg)".into(),
            "-60".into(),
            "-30".into(),
            "0".into(),
            "30".into(),
            "60".into(),
        ],
        &widths,
    );
    print_sep(&widths);
    for (label, walkers) in [("Static", 0usize), ("Dynamic", 5)] {
        let mut cells = vec![label.to_string()];
        for (i, &az) in [-60.0f64, -30.0, 0.0, 30.0, 60.0].iter().enumerate() {
            cells.push(format!(
                "{:.1}",
                success_rate(
                    &models,
                    UserPlacement { distance: 5.0, azimuth_deg: az },
                    walkers,
                    gestures,
                    8000 + i as u64 + walkers as u64 * 31,
                )
            ));
        }
        print_row(&cells, &widths);
    }
    println!("paper: static 100 100 99.5 100 99.5 | dynamic 99.5 99 99 98.5 99");
}
