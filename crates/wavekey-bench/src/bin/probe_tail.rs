//! Development probe 6: what separates high-mismatch sessions from good
//! ones? Correlates per-session seed mismatch against onset disagreement
//! and against the latent disagreement pattern.

use wavekey_bench::{trained_models, Scale};
use wavekey_core::bits::mismatch_rate;
use wavekey_core::session::{Session, SessionConfig};
use wavekey_math::pearson_correlation;

fn main() {
    let models = trained_models(Scale::Small);
    let mut session = Session::new(SessionConfig::default(), models, 0x7a11);

    let mut mismatches = Vec::new();
    let mut latent_mses = Vec::new();
    let mut worst_elem = vec![0usize; 12];
    for _ in 0..200 {
        let gesture = session.new_gesture();
        let Ok((f_m, f_r)) = session.derive_latents_from_gesture(&gesture) else { continue };
        let sg = session.seed_generator().clone();
        let s_m = sg.seed_from_latent(&f_m);
        let s_r = sg.seed_from_latent(&f_r);
        let mm = mismatch_rate(&s_m, &s_r);
        mismatches.push(mm);
        let mse: f32 = f_m
            .iter()
            .zip(&f_r)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / 12.0;
        latent_mses.push(f64::from(mse));
        if mm > 0.3 {
            // Which latent elements drive bad sessions?
            let mut diffs: Vec<(usize, f32)> = f_m
                .iter()
                .zip(&f_r)
                .map(|(a, b)| (a - b).abs())
                .enumerate()
                .collect();
            diffs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            for (i, _) in diffs.iter().take(3) {
                worst_elem[*i] += 1;
            }
        }
    }
    let bad = mismatches.iter().filter(|&&m| m > 0.3).count();
    println!(
        "sessions: {}, bad (mismatch > 0.3): {} ({:.0}%)",
        mismatches.len(),
        bad,
        100.0 * bad as f64 / mismatches.len() as f64
    );
    println!(
        "corr(mismatch, latent MSE) = {:.3}",
        pearson_correlation(&mismatches, &latent_mses)
    );
    println!("top-3 offender counts per latent element (bad sessions): {worst_elem:?}");
    let mean_bad_mse: f64 = mismatches
        .iter()
        .zip(&latent_mses)
        .filter(|(m, _)| **m > 0.3)
        .map(|(_, l)| *l)
        .sum::<f64>()
        / bad.max(1) as f64;
    let mean_good_mse: f64 = mismatches
        .iter()
        .zip(&latent_mses)
        .filter(|(m, _)| **m <= 0.3)
        .map(|(_, l)| *l)
        .sum::<f64>()
        / (mismatches.len() - bad).max(1) as f64;
    println!("latent MSE: good sessions {mean_good_mse:.3}, bad sessions {mean_bad_mse:.3}");
}
