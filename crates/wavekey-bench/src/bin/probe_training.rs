//! Development probe: trains the autoencoders and reports the key-seed
//! mismatch statistics that everything else hinges on.
//!
//! Not a paper experiment — a calibration check that prints where the
//! seed mismatch distribution sits relative to the ECC radius η.

use wavekey_bench::{trained_models, Scale};
use wavekey_core::bits::mismatch_rate;
use wavekey_core::session::{Session, SessionConfig};
use wavekey_core::WaveKeyConfig;

fn main() {
    let models = trained_models(Scale::Small);
    let config = SessionConfig::default();
    let eta = config.wavekey.eta();
    let mut session = Session::new(config, models, 0xbeef);

    let trials = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100usize);

    let mut rates = Vec::new();
    let mut failures = 0usize;
    for _ in 0..trials {
        match session.derive_seeds() {
            Ok((s_m, s_r)) => rates.push(mismatch_rate(&s_m, &s_r)),
            Err(_) => failures += 1,
        }
    }
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| rates[(p * (rates.len() - 1) as f64).round() as usize];
    println!("trials: {trials}, pipeline failures: {failures}");
    println!(
        "seed mismatch rate: mean {:.4}, p50 {:.4}, p90 {:.4}, p99 {:.4}, max {:.4}",
        rates.iter().sum::<f64>() / rates.len() as f64,
        pct(0.50),
        pct(0.90),
        pct(0.99),
        rates.last().unwrap(),
    );
    println!("eta (ECC radius): {:.4}", eta);
    let ok = rates.iter().filter(|&&r| r <= eta).count();
    println!(
        "fraction of instances within eta: {:.1}% (paper target: >98%)",
        100.0 * ok as f64 / rates.len() as f64
    );
    let wk = WaveKeyConfig::default();
    println!("l_s = {}, l_b = {}", wk.l_s(), wk.l_b());
}
