//! Development probe 2: displacement-level cross-modal ceiling.
//!
//! Correlates the (detrended) standardized phase against the detrended
//! double integral of the canonical IMU dominant component — the feature
//! family where both sides can agree almost exactly if the simulation
//! supports it.

use wavekey_core::dataset::{generate, DatasetConfig};
use wavekey_core::model::{IMU_SAMPLES, RFID_SAMPLES};
use wavekey_math::pearson_correlation;

/// Removes the best-fit line.
fn detrend(xs: &[f64]) -> Vec<f64> {
    let n = xs.len() as f64;
    let tbar = (n - 1.0) / 2.0;
    let xbar = xs.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        num += (i as f64 - tbar) * (x - xbar);
        den += (i as f64 - tbar) * (i as f64 - tbar);
    }
    let slope = num / den;
    xs.iter()
        .enumerate()
        .map(|(i, &x)| x - xbar - slope * (i as f64 - tbar))
        .collect()
}

fn double_integral(acc: &[f64], dt: f64) -> Vec<f64> {
    let mut v = 0.0;
    let mut p = 0.0;
    let mut out = Vec::with_capacity(acc.len());
    for &a in acc {
        out.push(p);
        v += a * dt;
        p += v * dt;
    }
    out
}

fn main() {
    let mut cfg = DatasetConfig::tiny();
    cfg.seed = 0x55;
    cfg.gestures_per_combo = 4;
    cfg.windows_per_gesture = 4;
    let ds = generate(&cfg);

    let mut best_corrs = Vec::new();
    let mut lsq_corrs: Vec<f64> = Vec::new();
    for s in &ds.samples {
        let phase: Vec<f64> = s.r.data()[..RFID_SAMPLES].iter().map(|&x| f64::from(x)).collect();
        // Downsample phase to 100 Hz and detrend.
        let phase_100: Vec<f64> = (0..IMU_SAMPLES).map(|i| phase[2 * i]).collect();
        let phase_d = detrend(&phase_100);

        let imu1: Vec<f64> = s.a.data()[..IMU_SAMPLES].iter().map(|&x| f64::from(x)).collect();
        let disp = detrend(&double_integral(&imu1, 0.01));

        let mut best = 0.0f64;
        for lag in -20i64..=20 {
            let (a0, b0) = if lag >= 0 { (lag as usize, 0usize) } else { (0, (-lag) as usize) };
            let n = IMU_SAMPLES - a0.max(b0) - 20;
            let c = pearson_correlation(&disp[a0..a0 + n], &phase_d[b0..b0 + n]).abs();
            best = best.max(c);
        }
        best_corrs.push(best);

        // LSQ ceiling: best linear combination of the three
        // double-integrated canonical components (zero lag).
        let comps: Vec<Vec<f64>> = (0..3)
            .map(|k| {
                let ch: Vec<f64> = s.a.data()[k * IMU_SAMPLES..(k + 1) * IMU_SAMPLES]
                    .iter()
                    .map(|&x| f64::from(x))
                    .collect();
                detrend(&double_integral(&ch, 0.01))
            })
            .collect();
        // Solve 3x3 normal equations for phase_d ≈ Σ w_k comps_k.
        let mut g = [[0.0f64; 3]; 3];
        let mut b = [0.0f64; 3];
        for i in 0..IMU_SAMPLES {
            for r in 0..3 {
                b[r] += comps[r][i] * phase_d[i];
                for c in 0..3 {
                    g[r][c] += comps[r][i] * comps[c][i];
                }
            }
        }
        // Cramer's rule.
        let det = |m: &[[f64; 3]; 3]| -> f64 {
            m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
        };
        let d0 = det(&g);
        if d0.abs() > 1e-12 {
            let mut w = [0.0f64; 3];
            for k in 0..3 {
                let mut gk = g;
                for r in 0..3 {
                    gk[r][k] = b[r];
                }
                w[k] = det(&gk) / d0;
            }
            let fit: Vec<f64> = (0..IMU_SAMPLES)
                .map(|i| w[0] * comps[0][i] + w[1] * comps[1][i] + w[2] * comps[2][i])
                .collect();
            lsq_corrs.push(pearson_correlation(&fit, &phase_d).abs());
        }
    }
    best_corrs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "displacement-level ceiling: mean {:.3}, min {:.3}, median {:.3}, max {:.3} (n = {})",
        best_corrs.iter().sum::<f64>() / best_corrs.len() as f64,
        best_corrs[0],
        best_corrs[best_corrs.len() / 2],
        best_corrs[best_corrs.len() - 1],
        best_corrs.len(),
    );
    lsq_corrs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "LSQ-3 ceiling:              mean {:.3}, min {:.3}, median {:.3}",
        lsq_corrs.iter().sum::<f64>() / lsq_corrs.len() as f64,
        lsq_corrs[0],
        lsq_corrs[lsq_corrs.len() / 2],
    );
}
