//! Development probe: latent agreement on training data vs held-out
//! gestures for the cached models.

use wavekey_bench::{trained_models, Scale};
use wavekey_core::dataset::{generate, Dataset, DatasetConfig};
use wavekey_core::model::WaveKeyModels;
use wavekey_nn::loss::mse_pair;
use wavekey_nn::tensor::Tensor;

fn eval(models: &mut WaveKeyModels, ds: &Dataset, label: &str) {
    let mut total = 0.0f32;
    let n = ds.len().min(200);
    for s in &ds.samples[..n] {
        let a = Tensor::stack(std::slice::from_ref(&s.a));
        let r = Tensor::stack(std::slice::from_ref(&s.r));
        let f_m = models.imu_en.forward(&a, false);
        let f_r = models.rf_en.forward(&r, false);
        let (l, _, _) = mse_pair(&f_m, &f_r);
        total += l;
    }
    println!("{label}: latent MSE {:.4} over {n} samples", total / n as f32);
}

fn main() {
    let mut models = trained_models(Scale::Small);
    let train_ds = generate(&DatasetConfig::small());
    eval(&mut models, &train_ds, "training distribution (same seed)");

    let mut holdout_cfg = DatasetConfig::small();
    holdout_cfg.seed = 0x9999;
    holdout_cfg.gestures_per_combo = 2;
    let holdout = generate(&holdout_cfg);
    eval(&mut models, &holdout, "held-out gestures (same volunteers)");
}
