//! Reproduces **Table III**: key-establishment time consumption for
//! different key lengths (128/168/192/256 bits for AES/3DES, 2048 bits
//! for RC4 — the paper uses only the lengths, not the ciphers).
//!
//! This experiment runs the *full* protocol, including the MODP-1024
//! oblivious transfers, and reports the mean logical end-to-end latency:
//! the 2 s gesture plus both parties' measured compute time plus channel
//! delays. Each run is folded into a [`wavekey_obs::SessionTrace`] (via
//! the per-stage timings the agreement already measures), so the table and
//! the `results/OBS_table3.json` artifact come from one aggregation path.
//!
//! ```text
//! cargo run --release -p wavekey-bench --bin table3_latency [runs_per_length]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey_bench::{
    agreement_failure_label, print_row, print_sep, trace_from_agreement, trained_models,
    write_results, Scale,
};
use wavekey_core::agreement::{run_agreement, AgreementConfig};
use wavekey_core::channel::PassiveChannel;
use wavekey_core::session::{Session, SessionConfig};
use wavekey_obs::{Json, SessionTrace, TraceSet};

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let models = trained_models(Scale::Small);

    // Collect real seed pairs from simulated gestures first.
    let mut session = Session::new(SessionConfig::default(), models, 0x7ab1e3);
    let mut seed_pairs = Vec::new();
    while seed_pairs.len() < runs {
        if let Ok((s_m, s_r)) = session.derive_seeds() {
            seed_pairs.push((s_m, s_r));
        }
    }

    println!("\nTable III: time consumption for different key lengths");
    println!("({runs} full MODP-1024 protocol runs per length)\n");
    let widths = [22usize, 8, 8, 8, 8, 8];
    print_row(
        &[
            "Key length (bit)".into(),
            "128".into(),
            "168".into(),
            "192".into(),
            "256".into(),
            "2048".into(),
        ],
        &widths,
    );
    print_sep(&widths);

    let mut cells = vec!["Time (ms)".to_string()];
    let mut proto_cells = vec!["Protocol (ms)".to_string()];
    let mut ok_cells = vec!["success".to_string()];
    let mut reports: Vec<(String, Json)> = Vec::new();
    for &l_k in &[128usize, 168, 192, 256, 2048] {
        let config = AgreementConfig {
            key_len_bits: l_k,
            // The deadline is an attack defense; latency measurement uses
            // a slack value so slow debug machines still finish.
            tau: 10.0,
            ..Default::default()
        };
        let mut set = TraceSet::new();
        let mut rng = StdRng::seed_from_u64(l_k as u64);
        for (i, (s_m, s_r)) in seed_pairs.iter().enumerate() {
            let mut rng_m = StdRng::seed_from_u64(rng.gen());
            let mut rng_s = StdRng::seed_from_u64(rng.gen());
            match run_agreement(s_m, s_r, &config, &mut rng_m, &mut rng_s, &mut PassiveChannel)
            {
                Ok(out) => set.push(trace_from_agreement(i as u64 + 1, &out)),
                Err(e) => {
                    let mut trace = SessionTrace::new(i as u64 + 1);
                    trace.outcome = agreement_failure_label(&e);
                    set.push(trace);
                }
            }
        }
        let count = set.traces().iter().filter(|t| t.is_success()).count();
        match set.field_stats(|t| t.elapsed_s) {
            Some((_, mean, _, _, _, _)) => {
                cells.push(format!("{:.0}", 1000.0 * mean));
                // Post-gesture protocol time: compute + channel, without
                // the fixed 2 s acquisition window that dominates
                // `elapsed`.
                proto_cells.push(format!("{:.0}", 1000.0 * (mean - config.gesture_window)));
                ok_cells.push(format!("{count}/{runs}"));
            }
            None => {
                cells.push("fail".into());
                proto_cells.push("fail".into());
                ok_cells.push("0".into());
            }
        }
        reports.push((format!("key_{l_k}"), set.report_json(&format!("table3_key_{l_k}"))));
    }
    print_row(&cells, &widths);
    print_row(&proto_cells, &widths);
    print_row(&ok_cells, &widths);
    println!("\npaper reference: 2345 2332 2347 2357 2362 ms (flat in key length)");

    let doc = Json::Obj(reports);
    write_results("results/OBS_table3.json", &doc.to_string_pretty());
}
