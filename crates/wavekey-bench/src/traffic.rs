//! Shared deterministic traffic-mix helpers for the bench binaries.
//!
//! `load_gen`, `fault_soak`, `concurrent_sessions`, and `gateway_soak`
//! all drive fleets of scripted sessions: Zipf-popular tenants, a
//! gesture-derived seed pair per tenant with one in-budget bit flip,
//! and per-session RNG streams derived from fixed bases. Those helpers
//! used to be copy-pasted per binary; this module is the single copy.
//! Every function is parameterized by its seed bases so each binary
//! keeps the exact byte streams (and therefore the exact published
//! artifact numbers) it had before the extraction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey_core::agreement::{AgreementConfig, RetryPolicy};

/// Inverse-CDF Zipf sampler over ranks `0..n` (rank 0 hottest).
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    /// Draws one rank (0-based; rank 0 is the most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The tenant's gesture-derived seed pair: `seed_len` mobile bits drawn
/// from `StdRng(base + tenant)`, and a server copy with **one** flipped
/// bit (at `tenant % seed_len`) — inside the BCH budget, so every
/// session agrees whenever the wire allows.
pub fn seed_pair(base: u64, tenant: u64, seed_len: usize) -> (Vec<bool>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(base + tenant);
    let s_m: Vec<bool> = (0..seed_len).map(|_| rng.gen()).collect();
    let mut s_r = s_m.clone();
    s_r[(tenant as usize) % seed_len] ^= true;
    (s_m, s_r)
}

/// Per-session protocol RNG pair (mobile, server) from two stream bases.
pub fn rng_pair(base_mobile: u64, base_server: u64, i: u64) -> (StdRng, StdRng) {
    (StdRng::seed_from_u64(base_mobile + i), StdRng::seed_from_u64(base_server + i))
}

/// The soak benches' standard protocol config: tiny test group and a
/// relaxed `τ = 10 s`, so the *protocol path* (not group arithmetic) is
/// what the numbers measure.
pub fn soak_config(retry: RetryPolicy) -> AgreementConfig {
    AgreementConfig { use_tiny_group: true, tau: 10.0, bch_t: 5, retry, ..Default::default() }
}

/// Linear-interpolation percentile over an unsorted sample set.
/// Mirrors the obs crate's `percentile_sorted` semantics.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// `f64` environment override with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// `u64` environment override with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_prefers_low_ranks_and_stays_in_range() {
        let zipf = Zipf::new(64, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 64];
        for _ in 0..4000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > 0);
        assert!(counts.iter().sum::<u64>() == 4000);
    }

    #[test]
    fn seed_pair_flips_exactly_one_bit() {
        for tenant in 0..50u64 {
            let (s_m, s_r) = seed_pair(0xC0DE, tenant, 24);
            assert_eq!(s_m.len(), 24);
            let diff = s_m.iter().zip(&s_r).filter(|(a, b)| a != b).count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn seed_pair_matches_the_pre_extraction_streams() {
        // The exact helper `fault_soak`/`concurrent_sessions` inlined:
        // base 0xC0DE, 24 bits, flip at `base % len`. Guards the
        // published artifact numbers across the refactor.
        let mut rng = StdRng::seed_from_u64(0xC0DE + 5);
        let want_m: Vec<bool> = (0..24).map(|_| rng.gen()).collect();
        let (s_m, s_r) = seed_pair(0xC0DE, 5, 24);
        assert_eq!(s_m, want_m);
        assert!(s_r[5] != s_m[5]);
    }

    #[test]
    fn percentile_interpolates_linearly() {
        let samples = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 1.0), 4.0);
        assert_eq!(percentile(&samples, 0.5), 2.5);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }
}
