//! Criterion micro-benchmarks for the cryptographic substrate: hashing,
//! the 1024-bit group exponentiations that dominate the OT cost, BCH
//! coding, and a complete single OT instance.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey_crypto::bigint::Ubig;
use wavekey_crypto::ecc::{Bch, CodeOffset};
use wavekey_crypto::group::DhGroup;
use wavekey_crypto::hmac::hmac_sha256;
use wavekey_crypto::ot::{OtReceiver, OtSender};
use wavekey_crypto::sha256::sha256;

fn bench_hashing(c: &mut Criterion) {
    let data = vec![0xa5u8; 1024];
    c.bench_function("sha256_1k", |b| b.iter(|| sha256(black_box(&data))));
    c.bench_function("hmac_sha256_1k", |b| {
        b.iter(|| hmac_sha256(black_box(b"key"), black_box(&data)))
    });
}

fn bench_group(c: &mut Criterion) {
    let group = DhGroup::modp_1024();
    let mut rng = StdRng::seed_from_u64(1);
    let x = group.random_exponent(&mut rng);
    let base = group.pow_g(&x);
    c.bench_function("modp1024_pow_g_fast_path", |b| {
        b.iter(|| group.pow_g(black_box(&x)))
    });
    c.bench_function("modp1024_general_modexp", |b| {
        b.iter(|| group.pow(black_box(&base), black_box(&x)))
    });
    c.bench_function("modp1024_mod_inverse", |b| b.iter(|| group.div(&Ubig::one(), &base)));
}

fn bench_bch(c: &mut Criterion) {
    let bch = Bch::new(5).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let msg: Vec<bool> = (0..bch.k()).map(|_| rng.gen()).collect();
    let cw = bch.encode(&msg).unwrap();
    let mut corrupted = cw.clone();
    for i in 0..5 {
        corrupted[i * 20] = !corrupted[i * 20];
    }
    c.bench_function("bch127_t5_encode", |b| b.iter(|| bch.encode(black_box(&msg)).unwrap()));
    c.bench_function("bch127_t5_decode_5err", |b| {
        b.iter(|| bch.decode(black_box(&corrupted)).unwrap())
    });
    let co = CodeOffset::new(Bch::new(5).unwrap());
    let key: Vec<bool> = (0..288).map(|_| rng.gen()).collect();
    c.bench_function("code_offset_commit_288", |b| {
        let mut r = StdRng::seed_from_u64(3);
        b.iter(|| co.commit(black_box(&key), &mut r))
    });
}

fn bench_ot(c: &mut Criterion) {
    let group = DhGroup::modp_1024_shared();
    let mut group_bench = c.benchmark_group("ot");
    group_bench.sample_size(10);
    group_bench.bench_function("modp1024_single_instance_roundtrip", |b| {
        b.iter(|| {
            let mut rng_s = StdRng::seed_from_u64(10);
            let mut rng_r = StdRng::seed_from_u64(11);
            let (sender, ma) =
                OtSender::start(group, vec![(vec![1u8; 4], vec![2u8; 4])], &mut rng_s);
            let (receiver, mb) =
                OtReceiver::respond(group, &[true], &ma, &mut rng_r).unwrap();
            let me = sender.encrypt(group, &mb).unwrap();
            receiver.decrypt(group, &me).unwrap()
        })
    });
    // The protocol-shaped batch: l_s = 48 instances through all three
    // rounds (M_A, M_B, M_E) plus decryption — one OT direction of a
    // full key agreement.
    group_bench.bench_function("modp1024_batch48_three_rounds", |b| {
        let secrets: Vec<(Vec<u8>, Vec<u8>)> =
            (0..48).map(|i| (vec![i as u8; 3], vec![!(i as u8); 3])).collect();
        let choices: Vec<bool> = (0..48).map(|i| i % 3 == 0).collect();
        b.iter(|| {
            let mut rng_s = StdRng::seed_from_u64(20);
            let mut rng_r = StdRng::seed_from_u64(21);
            let (sender, ma) = OtSender::start(group, secrets.clone(), &mut rng_s);
            let (receiver, mb) =
                OtReceiver::respond(group, &choices, &ma, &mut rng_r).unwrap();
            let me = sender.encrypt(group, &mb).unwrap();
            receiver.decrypt(group, &me).unwrap()
        })
    });
    group_bench.finish();
}

fn bench_agreement(c: &mut Criterion) {
    use wavekey_core::agreement::{run_agreement, AgreementConfig};
    use wavekey_core::channel::PassiveChannel;
    // Warm the shared group so the fixed-base table build is not timed.
    let _ = DhGroup::modp_1024_shared();
    let mut group_bench = c.benchmark_group("agreement");
    group_bench.sample_size(10);
    // The full batched three-round bidirectional agreement over
    // MODP-1024 (48-bit seeds, 256-bit key), reconciliation and
    // confirmation included — the end-to-end protocol hot path.
    group_bench.bench_function("modp1024_full_run_seed48_key256", |b| {
        let mut rng = StdRng::seed_from_u64(30);
        let s_m: Vec<bool> = (0..48).map(|_| rng.gen()).collect();
        let config = AgreementConfig { tau: 10.0, ..Default::default() };
        b.iter(|| {
            let mut rng_m = StdRng::seed_from_u64(31);
            let mut rng_s = StdRng::seed_from_u64(32);
            run_agreement(&s_m, &s_m, &config, &mut rng_m, &mut rng_s, &mut PassiveChannel)
                .unwrap()
        })
    });
    group_bench.finish();
}

criterion_group!(benches, bench_hashing, bench_group, bench_bch, bench_ot, bench_agreement);
criterion_main!(benches);
