//! Criterion benchmarks for the sensing pipelines: gesture simulation,
//! the mobile-side §IV-B processing, and the server-side §IV-B-2
//! processing — the per-key-establishment signal costs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wavekey_imu::gesture::{GestureConfig, GestureGenerator, VolunteerId};
use wavekey_imu::pipeline::{process_imu, ImuPipelineConfig};
use wavekey_imu::sensors::{sample_imu, DeviceModel};
use wavekey_math::Vec3;
use wavekey_rfid::channel::TagModel;
use wavekey_rfid::environment::{Environment, UserPlacement};
use wavekey_rfid::pipeline::{process_rfid, RfidPipelineConfig};
use wavekey_rfid::reader::{record_rfid, ReaderSpec};

fn bench_pipelines(c: &mut Criterion) {
    let gesture = GestureGenerator::new(VolunteerId(0), 1).generate(&GestureConfig::default());
    let imu_rec = sample_imu(&gesture, &DeviceModel::GalaxyWatch.spec(), 2);
    let env = Environment::room(1);
    let channel = env.channel(TagModel::Alien9640A, 0, 3);
    let hand = UserPlacement::default().hand_position(&env);
    let rfid_rec = record_rfid(
        &gesture,
        hand,
        Vec3::new(0.03, 0.0, 0.0),
        &channel,
        &ReaderSpec::default(),
        3,
    );

    c.bench_function("gesture_generate", |b| {
        let mut generator = GestureGenerator::new(VolunteerId(0), 7);
        b.iter(|| generator.generate(black_box(&GestureConfig::default())))
    });
    c.bench_function("imu_sample_recording", |b| {
        b.iter(|| sample_imu(black_box(&gesture), &DeviceModel::GalaxyWatch.spec(), 5))
    });
    c.bench_function("imu_pipeline_process", |b| {
        b.iter(|| process_imu(black_box(&imu_rec), &ImuPipelineConfig::default()).unwrap())
    });
    c.bench_function("rfid_record", |b| {
        b.iter(|| {
            record_rfid(
                black_box(&gesture),
                hand,
                Vec3::new(0.03, 0.0, 0.0),
                &channel,
                &ReaderSpec::default(),
                5,
            )
        })
    });
    c.bench_function("rfid_pipeline_process", |b| {
        b.iter(|| process_rfid(black_box(&rfid_rec), &RfidPipelineConfig::default()).unwrap())
    });
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
