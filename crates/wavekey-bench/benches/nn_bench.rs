//! Criterion micro-benchmarks for the neural substrate: single-window
//! encoder inference (the mobile/server per-gesture cost) and one joint
//! training step.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wavekey_core::model::{build_decoder, build_imu_encoder, build_rf_encoder};
use wavekey_nn::init::uniform;
use wavekey_nn::loss::{mse, mse_pair};
use wavekey_nn::optim::{Adam, Optimizer};

fn bench_inference(c: &mut Criterion) {
    let mut imu_en = build_imu_encoder(12, 1);
    let mut rf_en = build_rf_encoder(12, 2);
    let a = uniform(vec![1, 3, 200], -1.0, 1.0, 3);
    let r = uniform(vec![1, 3, 400], -1.0, 1.0, 4);
    c.bench_function("imu_en_forward_single", |b| {
        b.iter(|| imu_en.forward(black_box(&a), false))
    });
    c.bench_function("rf_en_forward_single", |b| {
        b.iter(|| rf_en.forward(black_box(&r), false))
    });
}

fn bench_training_step(c: &mut Criterion) {
    let mut imu_en = build_imu_encoder(12, 1);
    let mut rf_en = build_rf_encoder(12, 2);
    let mut de = build_decoder(12, 3);
    let a = uniform(vec![16, 3, 200], -1.0, 1.0, 5);
    let r = uniform(vec![16, 3, 400], -1.0, 1.0, 6);
    let mag = uniform(vec![16, 400], -1.0, 1.0, 7);
    let mut opt_imu = Adam::new(1e-3);
    let mut opt_rf = Adam::new(1e-3);
    let mut opt_de = Adam::new(1e-3);
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    g.bench_function("joint_step_batch16", |b| {
        b.iter(|| {
            let f_m = imu_en.forward(&a, true);
            let f_r = rf_en.forward(&r, true);
            let de_out = de.forward(&f_m, true);
            let (_, g_a, g_b) = mse_pair(&f_m, &f_r);
            let (_, g_de) = mse(&de_out, &mag);
            imu_en.zero_grad();
            rf_en.zero_grad();
            de.zero_grad();
            let g_via = de.backward(&g_de.scale(0.4));
            imu_en.backward(&g_a.add(&g_via));
            rf_en.backward(&g_b);
            opt_imu.step(&mut imu_en.params_mut());
            opt_rf.step(&mut rf_en.params_mut());
            opt_de.step(&mut de.params_mut());
        })
    });
    g.finish();
}

criterion_group!(benches, bench_inference, bench_training_step);
criterion_main!(benches);
