//! Criterion micro-benchmarks for the DSP substrate: the per-window
//! server-side processing cost (§IV-B-2) and key-seed quantization cost
//! (§IV-C).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wavekey_dsp::{
    savgol_second_derivative, savgol_smooth, unwrap_phase, EquiprobableQuantizer, GrayCode,
};

fn bench_savgol(c: &mut Criterion) {
    let signal: Vec<f64> = (0..400).map(|i| (i as f64 * 0.05).sin()).collect();
    c.bench_function("savgol_smooth_400", |b| {
        b.iter(|| savgol_smooth(black_box(&signal), 11, 3).unwrap())
    });
    c.bench_function("savgol_second_derivative_400", |b| {
        b.iter(|| savgol_second_derivative(black_box(&signal), 41, 3, 0.005).unwrap())
    });
}

fn bench_unwrap(c: &mut Criterion) {
    let wrapped: Vec<f64> = (0..400)
        .map(|i| (i as f64 * 0.063).rem_euclid(std::f64::consts::TAU))
        .collect();
    c.bench_function("unwrap_phase_400", |b| {
        b.iter(|| unwrap_phase(black_box(&wrapped)))
    });
}

fn bench_quantize(c: &mut Criterion) {
    let q = EquiprobableQuantizer::new(9).unwrap();
    let latent: Vec<f64> = (0..12).map(|i| (i as f64 - 6.0) / 4.0).collect();
    c.bench_function("quantize_latent_12", |b| {
        b.iter(|| q.quantize_all(black_box(&latent)))
    });
    let gray = GrayCode::new(9);
    let symbols: Vec<usize> = (0..12).map(|i| i % 9).collect();
    c.bench_function("gray_encode_12", |b| b.iter(|| gray.encode(black_box(&symbols))));
}

criterion_group!(benches, bench_savgol, bench_unwrap, bench_quantize);
criterion_main!(benches);
