//! Criterion benchmarks for the key agreement: the full bidirectional
//! MODP-1024 OT protocol (the Table III compute component) and the
//! information layer alone (the reconciliation cost).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey_core::agreement::{
    run_agreement, run_agreement_information_layer, AgreementConfig,
};
use wavekey_core::channel::PassiveChannel;

fn seeds(len: usize) -> (Vec<bool>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(9);
    let s: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
    (s.clone(), s)
}

fn bench_agreement(c: &mut Criterion) {
    let (s_m, s_r) = seeds(48);
    let mut g = c.benchmark_group("agreement");
    g.sample_size(10);

    for &l_k in &[128usize, 256, 2048] {
        let config = AgreementConfig { key_len_bits: l_k, tau: 10.0, ..Default::default() };
        g.bench_function(format!("full_modp1024_{l_k}bit"), |b| {
            b.iter(|| {
                let mut rm = StdRng::seed_from_u64(1);
                let mut rs = StdRng::seed_from_u64(2);
                run_agreement(&s_m, &s_r, &config, &mut rm, &mut rs, &mut PassiveChannel)
                    .unwrap()
            })
        });
    }

    let config = AgreementConfig { tau: 10.0, ..Default::default() };
    g.bench_function("information_layer_256bit", |b| {
        b.iter(|| {
            let mut rm = StdRng::seed_from_u64(1);
            let mut rs = StdRng::seed_from_u64(2);
            run_agreement_information_layer(&s_m, &s_r, &config, &mut rm, &mut rs).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_agreement);
criterion_main!(benches);
