//! Bit-vector helpers shared by the key-agreement protocol.
//!
//! Key-seeds, OT payload sequences, and preliminary keys are all bit
//! strings; this module provides packing to bytes (MSB-first), mismatch
//! counting, and the block interleaving that spreads the clustered bit
//! errors of a wrong OT segment across ECC blocks.

/// Packs bits (MSB-first within each byte) into bytes, zero-padding the
/// final byte.
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (7 - i % 8);
        }
    }
    out
}

/// Unpacks `n` bits from bytes (MSB-first).
///
/// # Panics
///
/// Panics if `bytes` holds fewer than `n` bits.
pub fn unpack_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    assert!(bytes.len() * 8 >= n, "not enough bytes for {n} bits");
    (0..n).map(|i| (bytes[i / 8] >> (7 - i % 8)) & 1 == 1).collect()
}

/// Number of positions where the two bit strings disagree.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn hamming_distance(a: &[bool], b: &[bool]) -> usize {
    assert_eq!(a.len(), b.len(), "length mismatch in hamming distance");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Fraction of mismatched bits.
///
/// # Panics
///
/// Panics on length mismatch or empty input.
pub fn mismatch_rate(a: &[bool], b: &[bool]) -> f64 {
    assert!(!a.is_empty(), "mismatch rate of empty strings");
    hamming_distance(a, b) as f64 / a.len() as f64
}

/// Block-interleaves `bits` (padded with `false` to `blocks × block_len`):
/// source position `p` maps to block `p mod blocks`, offset `p / blocks`.
///
/// A wrong OT segment corrupts `2·l_b` *consecutive* bits of the
/// preliminary key; interleaving spreads them evenly over the ECC blocks
/// so each block stays within its correction radius.
pub fn interleave(bits: &[bool], blocks: usize, block_len: usize) -> Vec<bool> {
    assert!(blocks > 0 && block_len > 0, "empty interleaver geometry");
    let total = blocks * block_len;
    assert!(bits.len() <= total, "bits do not fit the interleaver");
    let mut out = vec![false; total];
    for (p, &b) in bits.iter().enumerate() {
        out[(p % blocks) * block_len + p / blocks] = b;
    }
    out
}

/// Inverts [`interleave`], returning the first `n` original bits.
pub fn deinterleave(bits: &[bool], blocks: usize, block_len: usize, n: usize) -> Vec<bool> {
    assert_eq!(bits.len(), blocks * block_len, "wrong interleaved length");
    assert!(n <= bits.len(), "cannot recover more bits than stored");
    (0..n).map(|p| bits[(p % blocks) * block_len + p / blocks]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let bits = vec![true, false, true, true, false, false, false, true, true, false];
        let bytes = pack_bits(&bits);
        assert_eq!(bytes.len(), 2);
        assert_eq!(bytes[0], 0b1011_0001);
        assert_eq!(unpack_bits(&bytes, 10), bits);
    }

    #[test]
    fn pack_empty() {
        assert!(pack_bits(&[]).is_empty());
        assert!(unpack_bits(&[], 0).is_empty());
    }

    #[test]
    fn hamming_and_rate() {
        let a = vec![true, true, false, false];
        let b = vec![true, false, false, true];
        assert_eq!(hamming_distance(&a, &b), 2);
        assert_eq!(mismatch_rate(&a, &b), 0.5);
    }

    #[test]
    fn interleave_roundtrip() {
        let bits: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let inter = interleave(&bits, 3, 40);
        assert_eq!(inter.len(), 120);
        assert_eq!(deinterleave(&inter, 3, 40, 100), bits);
    }

    #[test]
    fn interleave_spreads_bursts() {
        // A burst of 6 consecutive set bits lands at most ⌈6/3⌉ = 2 per
        // block after interleaving over 3 blocks.
        let mut bits = vec![false; 90];
        for b in bits.iter_mut().skip(30).take(6) {
            *b = true;
        }
        let inter = interleave(&bits, 3, 30);
        for blk in 0..3 {
            let count = inter[blk * 30..(blk + 1) * 30].iter().filter(|&&b| b).count();
            assert!(count <= 2, "block {blk} got {count} burst bits");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hamming_length_mismatch_panics() {
        hamming_distance(&[true], &[true, false]);
    }
}
