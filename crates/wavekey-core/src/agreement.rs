//! The bidirectional-OT key agreement of §IV-D / Fig. 4.
//!
//! Both parties hold similar-but-not-identical key-seeds (`S_M`, `S_R`,
//! `l_s` bits each). Each generates `l_s` pairs of random `l_b`-bit
//! sequences and obliviously transfers one sequence per pair to the other
//! side, the *selection* being driven by the other side's key-seed bits.
//! Concatenating own-selected and received sequences gives preliminary
//! keys `K_M`, `K_R` whose mismatch ratio is bounded by the seeds'
//! mismatch ratio. A code-offset challenge (`ECC(K_M) ‖ N`) lets the
//! server snap `K_R` onto `K_M` exactly, and an HMAC over the nonce
//! confirms agreement.
//!
//! All three OT rounds are batched into one message per round per
//! direction (`M_A`, `M_B`, `M_E`), and the two deadline-critical
//! messages (`M_{A,R}` at the mobile, `M_{B,M}` at the server) must
//! arrive within `2 + τ` seconds of the gesture start — the time fence
//! that locks out remote-video key-recovery attacks (§VI-C-3).
//!
//! Timing is modeled logically: real computation times are measured with
//! [`std::time::Instant`](std::time::Instant) and advanced along
//! per-party clocks that start at the end of the two-second gesture
//! window; the channel adds a configurable latency which the adversary
//! may inflate.
//!
//! The protocol logic itself lives in the sans-IO state machines of
//! [`crate::proto`] ([`crate::proto::MobileAgreement`],
//! [`crate::proto::ServerAgreement`]); [`run_agreement`] is the classic
//! in-process lockstep driver over them
//! ([`crate::proto::driver::drive_lockstep`]), with outputs bit-identical
//! to the pre-refactor monolith.

use crate::bits::{deinterleave, hamming_distance, interleave, pack_bits};
use crate::channel::{Adversary, MessageKind};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wavekey_obs::{stage, Obs};
use wavekey_crypto::ecc::{Bch, CodeOffset};
use wavekey_crypto::hmac::{hmac_sha256, mac_eq};

/// Configuration of one key-agreement run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgreementConfig {
    /// Desired key length `l_k` in bits.
    pub key_len_bits: usize,
    /// BCH errors-per-block (`η = t/127`).
    pub bch_t: usize,
    /// Deadline slack `τ` (seconds) for `M_{A,R}` and `M_{B,M}`.
    pub tau: f64,
    /// The data-acquisition window (the paper's 2 s); protocol clocks
    /// start here.
    pub gesture_window: f64,
    /// Nominal one-way channel latency (seconds); short-range WiFi /
    /// Bluetooth is ~1 ms.
    pub channel_delay: f64,
    /// Use the tiny 61-bit test group instead of MODP-1024. Test-only:
    /// provides no security.
    pub use_tiny_group: bool,
    /// Run on the WAVEKEY-1024 fleet group (`2^1024 − 1093337`) instead
    /// of MODP-1024. Same element width and generator convention, but
    /// the Crandall-form modulus unlocks the fold-reduction batch
    /// kernels. Ignored when `use_tiny_group` is set. See the SNFS
    /// trade-off note on `wavekey_crypto::group::WAVEKEY_1024_HEX`.
    #[serde(default)]
    pub fleet_group: bool,
    /// Route the OT rounds through the cross-instance batch executor
    /// (`wavekey_crypto::batch`) instead of the scalar per-instance
    /// calls. Keys are bit-identical either way; this only changes how
    /// the group exponentiations are scheduled.
    #[serde(default)]
    pub batched_crypto: bool,
    /// Post-reconciliation privacy amplification: derive the delivered
    /// key as `HKDF(salt = nonce, ikm = K)` instead of using `K`
    /// directly. The code-offset challenge publicly leaks the ECC parity
    /// structure of `K`; the KDF makes the delivered key computationally
    /// independent of that leakage. Off by default — the paper uses `K`
    /// directly.
    pub privacy_amplification: bool,
    /// Per-message retransmission policy. The default
    /// ([`RetryPolicy::none`]) keeps the pre-recovery semantics: a single
    /// lost or mangled frame is a terminal failure.
    pub retry: RetryPolicy,
}

impl Default for AgreementConfig {
    fn default() -> Self {
        AgreementConfig {
            key_len_bits: 256,
            bch_t: 5,
            tau: 0.12,
            gesture_window: 2.0,
            channel_delay: 0.001,
            use_tiny_group: false,
            fleet_group: false,
            batched_crypto: false,
            privacy_amplification: false,
            retry: RetryPolicy::none(),
        }
    }
}

/// Bounded, deterministic per-message retransmission policy.
///
/// Recovery is charged against the paper's `2 + τ` deadline budget: every
/// retransmission advances the sender's *logical* clock by
/// [`RetryPolicy::backoff`] seconds before the copy departs, so a retried
/// deadline-critical message arrives later and can still trip
/// [`AgreementError::Timeout`] — retries never widen the timing fence.
/// The backoff schedule is a pure function of the attempt number (no RNG),
/// keeping recovered runs fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retransmissions per message; `0` disables recovery.
    pub max_retries: u32,
    /// Logical-clock backoff before the first retransmission (seconds).
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff on every further retransmission.
    pub backoff_factor: f64,
}

impl RetryPolicy {
    /// No retransmission: any channel fault is terminal (the default).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, backoff_base_s: 0.0, backoff_factor: 1.0 }
    }

    /// The reference ARQ preset: 3 retransmissions with 2 ms exponential
    /// backoff (2, 4, 8 ms) — well inside the default `τ = 120 ms` slack,
    /// so a fully retried `M_A`/`M_B` still meets the fence.
    pub fn arq() -> RetryPolicy {
        RetryPolicy { max_retries: 3, backoff_base_s: 0.002, backoff_factor: 2.0 }
    }

    /// Whether any retransmission is allowed.
    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// Backoff charged before retransmission number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        self.backoff_base_s * self.backoff_factor.powi(attempt as i32 - 1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Per-stage compute timings of one agreement run, in seconds.
///
/// The values come from the *same* [`Instant`] measurements that drive the
/// run's logical clocks — observability adds no extra clock reads to the
/// protocol path. Each stage sums both parties' compute:
///
/// * `ot_round_a/b/e` — both sides preparing `M_A`, `M_B`, `M_E`.
/// * `prelim_key` — decrypting the obliviously received sequences and
///   assembling `K_M` / `K_R`.
/// * `ecc_reconcile` — the mobile's code-offset commit plus the server's
///   reconciliation (which includes computing its HMAC response).
/// * `hmac_confirm` — the mobile's key finalization and MAC verification.
///
/// The information-layer fast path records no timings (all zeros).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AgreementStages {
    /// Both parties preparing the batched first OT message `M_A`.
    pub ot_round_a: f64,
    /// Both parties preparing the blinded-choice response `M_B`.
    pub ot_round_b: f64,
    /// Both parties encrypting the ciphertext batch `M_E`.
    pub ot_round_e: f64,
    /// Preliminary key assembly (`K_M`, `K_R`) from the OT outputs.
    pub prelim_key: f64,
    /// Code-offset commit (mobile) + reconciliation & response (server).
    pub ecc_reconcile: f64,
    /// Mobile-side key finalization and HMAC verification.
    pub hmac_confirm: f64,
    /// The `2 + τ` arrival deadline the run enforced, in seconds.
    pub deadline_s: f64,
    /// Arrival time of the slowest deadline-checked message
    /// (`max(M_{A,R}, M_{B,M})`) — how much of the budget was consumed.
    pub deadline_consumed_s: f64,
}

impl AgreementStages {
    /// The timed stages as `(canonical stage name, seconds)` pairs, in
    /// protocol order (deadline fields are not stages).
    pub fn timings(&self) -> [(&'static str, f64); 6] {
        [
            (stage::OT_ROUND_A, self.ot_round_a),
            (stage::OT_ROUND_B, self.ot_round_b),
            (stage::OT_ROUND_E, self.ot_round_e),
            (stage::PRELIM_KEY, self.prelim_key),
            (stage::ECC_RECONCILE, self.ecc_reconcile),
            (stage::HMAC_CONFIRM, self.hmac_confirm),
        ]
    }

    /// Records every stage as a pre-measured span on `obs` (no-op on a
    /// disabled handle).
    pub fn record_to(&self, obs: &Obs) {
        if !obs.is_enabled() {
            return;
        }
        for (name, seconds) in self.timings() {
            obs.record_duration(name, seconds);
        }
        obs.observe("deadline_consumed_seconds", self.deadline_consumed_s);
    }
}

/// Successful agreement result plus diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct AgreementOutcome {
    /// The established key (packed bits, `key_len_bits` long).
    pub key: Vec<u8>,
    /// The key as bits.
    pub key_bits: Vec<bool>,
    /// Seconds the mobile device spent computing.
    pub mobile_compute: f64,
    /// Seconds the server spent computing.
    pub server_compute: f64,
    /// Logical end-to-end latency including the 2 s gesture.
    pub elapsed: f64,
    /// Diagnostic: bits by which `K_M` and `K_R` disagreed before
    /// reconciliation.
    pub preliminary_mismatch_bits: usize,
    /// Preparation time of the mobile's `M_A` (the τ study, §VI-C-3).
    pub ma_prep: f64,
    /// Preparation time of the mobile's `M_B`.
    pub mb_prep: f64,
    /// Per-stage compute timings (see [`AgreementStages`]).
    pub stages: AgreementStages,
}

/// Key-agreement failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum AgreementError {
    /// Seed lengths differ or are empty.
    BadSeeds,
    /// A deadline-critical message arrived after `2 + τ`.
    Timeout(MessageKind),
    /// The adversary dropped a message.
    Dropped(MessageKind),
    /// An OT message failed to parse or batch sizes disagreed.
    Ot(String),
    /// The server could not reconcile its preliminary key (seed mismatch
    /// beyond the ECC radius, or a corrupted challenge).
    ReconciliationFailed,
    /// The final HMAC did not verify.
    ConfirmationFailed,
    /// Invalid configuration.
    Config(String),
    /// A wire frame was malformed, mis-versioned, or arrived in a state
    /// that does not expect its kind.
    Wire(String),
    /// The session manager evicted the session (idle timeout or a peer
    /// that vanished mid-protocol).
    Evicted,
    /// The worker thread driving the session died (panicked adversary or
    /// driver bug); the failure is confined to this session.
    Worker(String),
}

impl AgreementError {
    /// The typed failure taxonomy: `true` for channel-level faults that
    /// bounded retransmission (or simply retrying the enrolment) can
    /// plausibly clear — lost frames, mangled bytes, a starved scheduler.
    /// Deadline violations, crypto failures, and config/worker errors are
    /// terminal: retrying the same exchange cannot fix them.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            AgreementError::Dropped(_) | AgreementError::Wire(_) | AgreementError::Evicted
        )
    }
}

impl std::fmt::Display for AgreementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgreementError::BadSeeds => write!(f, "key seeds missing or mismatched lengths"),
            AgreementError::Timeout(k) => write!(f, "deadline exceeded for {k:?}"),
            AgreementError::Dropped(k) => write!(f, "message {k:?} dropped"),
            AgreementError::Ot(e) => write!(f, "ot failure: {e}"),
            AgreementError::ReconciliationFailed => write!(f, "key reconciliation failed"),
            AgreementError::ConfirmationFailed => write!(f, "key confirmation failed"),
            AgreementError::Config(msg) => write!(f, "bad agreement config: {msg}"),
            AgreementError::Wire(msg) => write!(f, "wire error: {msg}"),
            AgreementError::Evicted => write!(f, "session evicted by manager"),
            AgreementError::Worker(msg) => write!(f, "worker failure: {msg}"),
        }
    }
}

impl std::error::Error for AgreementError {}

/// ECC block length used by the reconciliation (BCH over GF(2⁷)).
pub(crate) const ECC_BLOCK: usize = 127;
/// Nonce length in the challenge (bytes).
pub(crate) const NONCE_LEN: usize = 16;

/// Runs the full key agreement between two seeds.
///
/// `adversary` intercepts every transmission (see [`crate::channel`]).
/// The run is a lockstep drive of the [`crate::proto`] state machines;
/// the established keys, RNG consumption, and failure taxonomy are
/// bit-identical to the pre-refactor monolithic implementation.
///
/// # Errors
///
/// See [`AgreementError`] for the failure taxonomy; benign runs with
/// seed mismatch within the ECC radius always succeed.
pub fn run_agreement(
    s_m: &[bool],
    s_r: &[bool],
    config: &AgreementConfig,
    rng_mobile: &mut StdRng,
    rng_server: &mut StdRng,
    adversary: &mut dyn Adversary,
) -> Result<AgreementOutcome, AgreementError> {
    crate::proto::driver::drive_lockstep(s_m, s_r, config, rng_mobile, rng_server, adversary)
}

/// [`run_agreement`] plus causal timeline emission: when `obs` is
/// enabled, both machines emit state-transition events under
/// `session_id` (actors "mobile" / "server" over one shared sequence)
/// through [`crate::proto::driver::drive_lockstep_observed`]. With a
/// disabled handle this is exactly [`run_agreement`].
///
/// # Errors
///
/// See [`run_agreement`].
#[allow(clippy::too_many_arguments)]
pub fn run_agreement_observed(
    s_m: &[bool],
    s_r: &[bool],
    config: &AgreementConfig,
    rng_mobile: &mut StdRng,
    rng_server: &mut StdRng,
    adversary: &mut dyn Adversary,
    obs: &Obs,
    session_id: u64,
) -> Result<AgreementOutcome, AgreementError> {
    let events = wavekey_obs::EventScope::new(obs, session_id, "driver");
    crate::proto::driver::drive_lockstep_observed(
        s_m, s_r, config, rng_mobile, rng_server, adversary, &events,
    )
}

/// [`run_agreement`] plus observability: on success the per-stage compute
/// timings (already measured for the logical clocks) are recorded as
/// pre-measured spans on `obs`, and success/failure counters are kept.
///
/// With a disabled handle this is exactly [`run_agreement`].
///
/// # Errors
///
/// See [`run_agreement`].
pub fn run_agreement_with_obs(
    s_m: &[bool],
    s_r: &[bool],
    config: &AgreementConfig,
    rng_mobile: &mut StdRng,
    rng_server: &mut StdRng,
    adversary: &mut dyn Adversary,
    obs: &Obs,
) -> Result<AgreementOutcome, AgreementError> {
    let result = run_agreement(s_m, s_r, config, rng_mobile, rng_server, adversary);
    if obs.is_enabled() {
        obs.inc("agreement_runs_total");
        match &result {
            Ok(outcome) => {
                outcome.stages.record_to(obs);
                obs.event("preliminary_mismatch_bits", outcome.preliminary_mismatch_bits as f64);
            }
            Err(_) => obs.inc("agreement_failures_total"),
        }
    }
    result
}

/// Runs only the *information layer* of the agreement — sequence-pair
/// generation, seed-driven selection, code-offset reconciliation, and
/// HMAC confirmation — skipping the OT group arithmetic.
///
/// On a benign channel the OT layer transports the selected sequences
/// with perfect fidelity (its correctness is covered by the
/// `wavekey-crypto` tests), so success/failure and the key distribution
/// are byte-for-byte governed by this layer alone. The large-scale
/// success-rate experiments (Tables I/II, the device study) use this
/// path; latency experiments use the full [`run_agreement`].
///
/// # Errors
///
/// Same failure taxonomy as [`run_agreement`] minus the channel errors.
pub fn run_agreement_information_layer(
    s_m: &[bool],
    s_r: &[bool],
    config: &AgreementConfig,
    rng_mobile: &mut StdRng,
    rng_server: &mut StdRng,
) -> Result<AgreementOutcome, AgreementError> {
    if s_m.is_empty() || s_m.len() != s_r.len() {
        return Err(AgreementError::BadSeeds);
    }
    if config.key_len_bits == 0 {
        return Err(AgreementError::Config("zero key length".into()));
    }
    let l_s = s_m.len();
    let l_b = config.key_len_bits.div_ceil(2 * l_s);
    let x_pairs = random_pairs(l_s, l_b, rng_mobile);
    let y_pairs = random_pairs(l_s, l_b, rng_server);

    let mut k_m: Vec<bool> = Vec::with_capacity(2 * l_s * l_b);
    let mut k_r: Vec<bool> = Vec::with_capacity(2 * l_s * l_b);
    for i in 0..l_s {
        // Mobile: own x selected by S_M, received y (OT-selected by S_M).
        k_m.extend_from_slice(if s_m[i] { &x_pairs[i].1 } else { &x_pairs[i].0 });
        k_m.extend_from_slice(if s_m[i] { &y_pairs[i].1 } else { &y_pairs[i].0 });
        // Server: received x (OT-selected by S_R), own y selected by S_R.
        k_r.extend_from_slice(if s_r[i] { &x_pairs[i].1 } else { &x_pairs[i].0 });
        k_r.extend_from_slice(if s_r[i] { &y_pairs[i].1 } else { &y_pairs[i].0 });
    }
    let preliminary_mismatch_bits = hamming_distance(&k_m, &k_r);

    let k_len = 2 * l_s * l_b;
    let blocks = k_len.div_ceil(ECC_BLOCK);
    let bch = Bch::new(config.bch_t).map_err(|e| AgreementError::Config(e.to_string()))?;
    let co = CodeOffset::new(bch);
    let k_m_inter = interleave(&k_m, blocks, ECC_BLOCK);
    let helper = co.commit(&k_m_inter, rng_mobile);
    let nonce: [u8; NONCE_LEN] = {
        let mut n = [0u8; NONCE_LEN];
        rng_mobile.fill(&mut n);
        n
    };

    let k_r_inter = interleave(&k_r, blocks, ECC_BLOCK);
    let Some(recovered_inter) = co.reconcile(&k_r_inter, &helper, blocks * ECC_BLOCK) else {
        return Err(AgreementError::ReconciliationFailed);
    };
    let k_server = deinterleave(&recovered_inter, blocks, ECC_BLOCK, k_len);
    let server_key = finalize_key(&k_server, config, &nonce);
    let response = hmac_sha256(&server_key, &nonce);

    let key = finalize_key(&k_m, config, &nonce);
    let key_bits = crate::bits::unpack_bits(&key, config.key_len_bits);
    if !mac_eq(&hmac_sha256(&key, &nonce), &response) {
        return Err(AgreementError::ConfirmationFailed);
    }
    Ok(AgreementOutcome {
        key,
        key_bits,
        mobile_compute: 0.0,
        server_compute: 0.0,
        elapsed: config.gesture_window,
        preliminary_mismatch_bits,
        ma_prep: 0.0,
        mb_prep: 0.0,
        stages: AgreementStages::default(),
    })
}

/// Produces the delivered key bytes from the reconciled preliminary key:
/// a plain truncation to `l_k` bits (the paper's construction) or, with
/// privacy amplification enabled, `HKDF(salt = nonce, ikm = K)` over the
/// *entire* preliminary key.
pub(crate) fn finalize_key(k: &[bool], config: &AgreementConfig, nonce: &[u8]) -> Vec<u8> {
    if config.privacy_amplification {
        wavekey_crypto::kdf::hkdf(
            nonce,
            &pack_bits(k),
            b"wavekey-privacy-amplification-v1",
            config.key_len_bits.div_ceil(8),
        )
    } else {
        pack_bits(&k[..config.key_len_bits.min(k.len())])
    }
}

/// `l_s` pairs of fresh random `l_b`-bit sequences.
pub(crate) fn random_pairs(l_s: usize, l_b: usize, rng: &mut StdRng) -> Vec<(Vec<bool>, Vec<bool>)> {
    (0..l_s)
        .map(|_| {
            let a: Vec<bool> = (0..l_b).map(|_| rng.gen()).collect();
            let b: Vec<bool> = (0..l_b).map(|_| rng.gen()).collect();
            (a, b)
        })
        .collect()
}

/// Packs bit-sequence pairs into OT payload byte pairs.
pub(crate) fn payload_pairs(pairs: &[(Vec<bool>, Vec<bool>)]) -> Vec<(Vec<u8>, Vec<u8>)> {
    pairs.iter().map(|(a, b)| (pack_bits(a), pack_bits(b))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{BitFlipMitm, Delayer, Dropper, Eavesdropper, PassiveChannel};
    use rand::SeedableRng;

    fn test_config() -> AgreementConfig {
        AgreementConfig {
            use_tiny_group: true,
            // Generous deadline: debug-build compute times are irrelevant
            // to protocol correctness.
            tau: 10.0,
            // Pin the paper's nominal η = 5/127 so the mismatch thresholds
            // asserted below stay meaningful if the deployed default moves.
            bch_t: 5,
            ..Default::default()
        }
    }

    fn random_seed(len: usize, rng: &mut StdRng) -> Vec<bool> {
        (0..len).map(|_| rng.gen()).collect()
    }

    fn flip_bits(seed: &[bool], n: usize) -> Vec<bool> {
        let mut out = seed.to_vec();
        for i in 0..n {
            let idx = (i * 17 + 3) % out.len();
            out[idx] = !out[idx];
        }
        out
    }

    fn run(
        s_m: &[bool],
        s_r: &[bool],
        config: &AgreementConfig,
        adversary: &mut dyn Adversary,
    ) -> Result<AgreementOutcome, AgreementError> {
        let mut rm = StdRng::seed_from_u64(1);
        let mut rs = StdRng::seed_from_u64(2);
        run_agreement(s_m, s_r, config, &mut rm, &mut rs, adversary)
    }

    #[test]
    fn identical_seeds_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = random_seed(48, &mut rng);
        let out = run(&s, &s, &test_config(), &mut PassiveChannel).unwrap();
        assert_eq!(out.key_bits.len(), 256);
        assert_eq!(out.key.len(), 32);
        assert_eq!(out.preliminary_mismatch_bits, 0);
    }

    #[test]
    fn seeds_with_small_mismatch_agree() {
        let mut rng = StdRng::seed_from_u64(4);
        let s_m = random_seed(48, &mut rng);
        let s_r = flip_bits(&s_m, 2); // within η·l_s ≈ 1.9… borderline ok
        let out = run(&s_m, &s_r, &test_config(), &mut PassiveChannel).unwrap();
        assert!(out.preliminary_mismatch_bits > 0);
        assert_eq!(out.key_bits.len(), 256);
    }

    #[test]
    fn seeds_with_large_mismatch_fail() {
        let mut rng = StdRng::seed_from_u64(5);
        let s_m = random_seed(48, &mut rng);
        let s_r = flip_bits(&s_m, 24);
        let err = run(&s_m, &s_r, &test_config(), &mut PassiveChannel).unwrap_err();
        assert!(
            matches!(err, AgreementError::ReconciliationFailed | AgreementError::ConfirmationFailed),
            "{err:?}"
        );
    }

    #[test]
    fn both_sides_derive_same_key() {
        // The HMAC verification *is* the equality proof: a passing run
        // means the server reconciled to the mobile's key. Also check the
        // diagnostic is consistent.
        let mut rng = StdRng::seed_from_u64(6);
        let s_m = random_seed(48, &mut rng);
        let s_r = flip_bits(&s_m, 1);
        let out = run(&s_m, &s_r, &test_config(), &mut PassiveChannel).unwrap();
        // One seed-bit mismatch corrupts at most 2·l_b = 6 key bits.
        assert!(out.preliminary_mismatch_bits <= 6);
    }

    #[test]
    fn key_lengths_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = random_seed(48, &mut rng);
        for lk in [128usize, 168, 192, 256, 2048] {
            let config = AgreementConfig { key_len_bits: lk, ..test_config() };
            let out = run(&s, &s, &config, &mut PassiveChannel).unwrap();
            assert_eq!(out.key_bits.len(), lk, "l_k = {lk}");
        }
    }

    #[test]
    fn eavesdropper_sees_everything_but_run_succeeds() {
        let mut rng = StdRng::seed_from_u64(8);
        let s = random_seed(48, &mut rng);
        let mut eve = Eavesdropper::default();
        let out = run(&s, &s, &test_config(), &mut eve).unwrap();
        assert_eq!(out.key_bits.len(), 256);
        // 8 transmissions: 2×(M_A, M_B, M_E) + Challenge + Response.
        assert_eq!(eve.transcript.len(), 8);
        // The transcript must not contain the key bytes verbatim.
        for (_, _, payload) in &eve.transcript {
            assert!(
                !payload.windows(out.key.len()).any(|w| w == out.key.as_slice()),
                "key leaked verbatim on the wire"
            );
        }
    }

    #[test]
    fn mitm_on_ot_b_breaks_agreement() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = random_seed(48, &mut rng);
        // Corrupt every tiny-group element (8 bytes each) of M_B.
        let mut mitm = BitFlipMitm::pervasive(MessageKind::OtB, 8);
        let err = run(&s, &s, &test_config(), &mut mitm).unwrap_err();
        assert!(
            matches!(err, AgreementError::ReconciliationFailed | AgreementError::ConfirmationFailed),
            "{err:?}"
        );
        assert!(mitm.corrupted > 0);
    }

    #[test]
    fn single_instance_mitm_is_absorbed_without_gain() {
        // Flipping one element corrupts one OT instance; the ECC repairs
        // the damage and the key is still the mobile's K_M — the attacker
        // changed nothing and learned nothing.
        let mut rng = StdRng::seed_from_u64(90);
        let s = random_seed(48, &mut rng);
        let mut mitm = BitFlipMitm::new(MessageKind::OtB, 0);
        let out = run(&s, &s, &test_config(), &mut mitm).unwrap();
        assert!(out.preliminary_mismatch_bits > 0, "corruption should perturb K_R");
        assert_eq!(out.key_bits.len(), 256);
    }

    #[test]
    fn mitm_on_challenge_fails_confirmation() {
        let mut rng = StdRng::seed_from_u64(10);
        let s = random_seed(48, &mut rng);
        let mut mitm = BitFlipMitm::new(MessageKind::Challenge, 0);
        let err = run(&s, &s, &test_config(), &mut mitm).unwrap_err();
        assert!(
            matches!(err, AgreementError::ReconciliationFailed | AgreementError::ConfirmationFailed),
            "{err:?}"
        );
    }

    #[test]
    fn delayed_ota_times_out() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = random_seed(48, &mut rng);
        let config = AgreementConfig { tau: 0.5, ..test_config() };
        let mut delayer = Delayer { target: Some(MessageKind::OtA), extra: 1.0 };
        let err = run(&s, &s, &config, &mut delayer).unwrap_err();
        assert_eq!(err, AgreementError::Timeout(MessageKind::OtA));
    }

    #[test]
    fn dropped_message_fails() {
        let mut rng = StdRng::seed_from_u64(12);
        let s = random_seed(48, &mut rng);
        let mut dropper = Dropper { target: MessageKind::OtE };
        let err = run(&s, &s, &test_config(), &mut dropper).unwrap_err();
        assert_eq!(err, AgreementError::Dropped(MessageKind::OtE));
    }

    #[test]
    fn rejects_bad_seeds() {
        let err = run(&[], &[], &test_config(), &mut PassiveChannel).unwrap_err();
        assert_eq!(err, AgreementError::BadSeeds);
        let err = run(&[true; 10], &[true; 9], &test_config(), &mut PassiveChannel).unwrap_err();
        assert_eq!(err, AgreementError::BadSeeds);
    }

    #[test]
    fn information_layer_matches_full_protocol_verdicts() {
        // For a spread of seed mismatches, the fast path and the full
        // OT protocol must agree on success/failure.
        let mut rng = StdRng::seed_from_u64(40);
        for flips in [0usize, 1, 2, 4, 8, 16, 32] {
            let s_m = random_seed(48, &mut rng);
            let s_r = flip_bits(&s_m, flips);
            let full = run(&s_m, &s_r, &test_config(), &mut PassiveChannel).is_ok();
            // Repeat the fast path a few times: success depends on random
            // pair draws near the boundary, so compare majorities.
            let mut fast_successes = 0;
            let mut full_successes = 0;
            for t in 0..5 {
                let mut rm = StdRng::seed_from_u64(500 + t);
                let mut rs = StdRng::seed_from_u64(600 + t);
                if run_agreement_information_layer(&s_m, &s_r, &test_config(), &mut rm, &mut rs)
                    .is_ok()
                {
                    fast_successes += 1;
                }
                let mut rm = StdRng::seed_from_u64(500 + t);
                let mut rs = StdRng::seed_from_u64(600 + t);
                if run_agreement(
                    &s_m,
                    &s_r,
                    &test_config(),
                    &mut rm,
                    &mut rs,
                    &mut PassiveChannel,
                )
                .is_ok()
                {
                    full_successes += 1;
                }
            }
            // Extremes must agree exactly.
            if flips == 0 {
                assert_eq!(fast_successes, 5);
                assert!(full);
            }
            if flips >= 16 {
                assert_eq!(fast_successes, 0);
                assert!(!full);
            }
            // And overall the two paths behave alike.
            assert!(
                (fast_successes as i32 - full_successes as i32).abs() <= 1,
                "flips {flips}: fast {fast_successes} vs full {full_successes}"
            );
        }
    }

    #[test]
    fn information_layer_key_is_well_formed() {
        let mut rng = StdRng::seed_from_u64(41);
        let s = random_seed(48, &mut rng);
        let mut rm = StdRng::seed_from_u64(1);
        let mut rs = StdRng::seed_from_u64(2);
        let out =
            run_agreement_information_layer(&s, &s, &test_config(), &mut rm, &mut rs).unwrap();
        assert_eq!(out.key_bits.len(), 256);
        assert_eq!(out.preliminary_mismatch_bits, 0);
    }

    #[test]
    fn privacy_amplification_agrees_and_changes_key() {
        let mut rng = StdRng::seed_from_u64(60);
        let s = random_seed(48, &mut rng);
        let plain_cfg = test_config();
        let pa_cfg = AgreementConfig { privacy_amplification: true, ..test_config() };
        let out_plain = run(&s, &s, &plain_cfg, &mut PassiveChannel).unwrap();
        let out_pa = run(&s, &s, &pa_cfg, &mut PassiveChannel).unwrap();
        assert_eq!(out_pa.key.len(), 32);
        assert_eq!(out_pa.key_bits.len(), 256);
        // Same RNG seeds -> same preliminary key; the KDF must change the
        // delivered bytes.
        assert_ne!(out_plain.key, out_pa.key);
    }

    #[test]
    fn privacy_amplification_fails_cleanly_on_bad_seeds() {
        let mut rng = StdRng::seed_from_u64(61);
        let s_m = random_seed(48, &mut rng);
        let s_r = flip_bits(&s_m, 24);
        let cfg = AgreementConfig { privacy_amplification: true, ..test_config() };
        assert!(run(&s_m, &s_r, &cfg, &mut PassiveChannel).is_err());
    }

    #[test]
    fn elapsed_includes_gesture_window() {
        let mut rng = StdRng::seed_from_u64(13);
        let s = random_seed(48, &mut rng);
        let out = run(&s, &s, &test_config(), &mut PassiveChannel).unwrap();
        assert!(out.elapsed >= 2.0);
        assert!(out.ma_prep >= 0.0 && out.mb_prep >= 0.0);
    }

    #[test]
    fn stage_timings_are_consistent_with_compute_totals() {
        let mut rng = StdRng::seed_from_u64(14);
        let s = random_seed(48, &mut rng);
        let out = run(&s, &s, &test_config(), &mut PassiveChannel).unwrap();
        let stage_sum: f64 = out.stages.timings().iter().map(|(_, s)| s).sum();
        let compute = out.mobile_compute + out.server_compute;
        assert!(
            (stage_sum - compute).abs() < 1e-9,
            "stages {stage_sum} != compute {compute}"
        );
        assert_eq!(out.stages.deadline_s, 12.0); // gesture_window 2 + τ 10
        assert!(out.stages.deadline_consumed_s > 0.0);
        assert!(out.stages.deadline_consumed_s <= out.stages.deadline_s);
    }

    #[test]
    fn with_obs_records_every_stage_span() {
        let mut rng = StdRng::seed_from_u64(15);
        let s = random_seed(48, &mut rng);
        let (obs, mem) = Obs::with_memory();
        let mut rm = StdRng::seed_from_u64(1);
        let mut rs = StdRng::seed_from_u64(2);
        run_agreement_with_obs(&s, &s, &test_config(), &mut rm, &mut rs, &mut PassiveChannel, &obs)
            .unwrap();
        let names: Vec<String> = mem.spans().iter().map(|(n, _)| n.clone()).collect();
        for expected in [
            stage::OT_ROUND_A,
            stage::OT_ROUND_B,
            stage::OT_ROUND_E,
            stage::PRELIM_KEY,
            stage::ECC_RECONCILE,
            stage::HMAC_CONFIRM,
        ] {
            assert!(names.contains(&expected.to_string()), "missing span {expected}");
        }
        let text = obs.prometheus_text();
        assert!(text.contains("agreement_runs_total 1"));
        assert!(!text.contains("agreement_failures_total"));
    }
}
