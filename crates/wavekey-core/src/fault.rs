//! Deterministic wire-layer fault injection.
//!
//! [`FaultPlan`] is an [`Adversary`] that injects drop / corrupt /
//! duplicate / reorder / truncate / delay faults into the frame stream,
//! fully determined by a seed: the decision for the `n`-th transmission
//! of a given `(Direction, MessageKind)` is a pure hash of
//! `(seed, direction, kind, n)`, so the same plan over the same protocol
//! run injects exactly the same faults — chaos runs are replayable and
//! the CI soak gate (`fault_soak` / `WAVEKEY_FAULT_SOAK_MIN`) is stable.
//!
//! Two ways to build a plan:
//!
//! * [`FaultPlan::new`] — rate-based: a [`FaultProfile`] gives per-kind
//!   probabilities; occurrences are sampled via the deterministic hash.
//! * [`FaultPlan::scripted`] — explicit [`ScheduledFault`] entries
//!   (fire fault F on the `n`-th occurrence of kind K in direction D),
//!   for targeted recovery tests.
//!
//! A plan can also wrap another adversary ([`FaultPlan::wrapping`]): the
//! inner adversary intercepts first and its non-`Forward` verdict stands,
//! so faults compose with the §VI-E attack suite.

use crate::channel::{Adversary, AdversaryAction, Direction, MessageKind};
use crate::proto::frame::Frame;
use std::collections::HashMap;

/// One kind of injected wire fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The frame vanishes ([`AdversaryAction::Drop`]).
    Drop,
    /// One payload byte is XOR-flipped; the frame still parses.
    Corrupt,
    /// The frame is delivered twice ([`AdversaryAction::Duplicate`]).
    Duplicate,
    /// The frame is held behind the next one ([`AdversaryAction::Reorder`]).
    Reorder,
    /// The datagram is cut short: the payload loses its tail and the
    /// version byte is mangled, so the receiving codec rejects the bytes
    /// (driving the NAK/retransmit path).
    Truncate,
    /// The frame is delivered late ([`AdversaryAction::Delay`]).
    Delay,
}

/// Per-transmission fault probabilities (each in `[0, 1]`; their sum is
/// the total per-transmission fault rate and must stay ≤ 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability a transmission is dropped.
    pub drop: f64,
    /// Probability one payload byte is flipped.
    pub corrupt: f64,
    /// Probability a transmission is duplicated.
    pub duplicate: f64,
    /// Probability a transmission is reordered behind the next.
    pub reorder: f64,
    /// Probability a transmission is truncated into garbage.
    pub truncate: f64,
    /// Probability a transmission is delayed by `delay_s`.
    pub delay: f64,
    /// Extra latency of a delayed transmission (seconds).
    pub delay_s: f64,
}

impl FaultProfile {
    /// No faults at all.
    pub fn none() -> FaultProfile {
        FaultProfile {
            drop: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            truncate: 0.0,
            delay: 0.0,
            delay_s: 0.0,
        }
    }

    /// The reference chaos mixture used by the `fault_soak` bench and the
    /// CI gate: ~33% of transmissions are faulted. Without recovery most
    /// faults are fatal (a drop desynchronizes the machines, a truncation
    /// or corruption poisons a party), so a no-retry 8-transmission
    /// session rarely survives — the soak measures ≈ 19%. With the
    /// recovery layer every kind is handled (retransmit, NAK, duplicate
    /// suppression, reorder deferral, slack-absorbed delay) and survival
    /// returns to ≈ 100%.
    pub fn reference() -> FaultProfile {
        FaultProfile {
            drop: 0.12,
            corrupt: 0.02,
            duplicate: 0.05,
            reorder: 0.04,
            truncate: 0.06,
            delay: 0.04,
            delay_s: 0.02,
        }
    }

    fn total(&self) -> f64 {
        self.drop + self.corrupt + self.duplicate + self.reorder + self.truncate + self.delay
    }
}

/// A scripted fault: fire `fault` on the `occurrence`-th transmission
/// (0-based) of `kind` in `direction`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Which way the targeted transmission travels.
    pub direction: Direction,
    /// The targeted message kind.
    pub kind: MessageKind,
    /// Which occurrence of `(direction, kind)` to hit (0-based; the
    /// occurrence counter includes retransmissions, so occurrence 1 of a
    /// kind whose occurrence 0 was dropped is its first retry).
    pub occurrence: u64,
    /// The fault to inject.
    pub fault: FaultKind,
}

/// A fault the plan actually injected (diagnostics / assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Direction of the faulted transmission.
    pub direction: Direction,
    /// Kind of the faulted transmission.
    pub kind: MessageKind,
    /// Occurrence index that was hit.
    pub occurrence: u64,
    /// What was injected.
    pub fault: FaultKind,
}

/// Seeded, deterministic fault-injecting adversary. See the module docs.
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
    schedule: Vec<ScheduledFault>,
    counts: HashMap<(Direction, MessageKind), u64>,
    injected: Vec<InjectedFault>,
    inner: Option<Box<dyn Adversary + Send>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("profile", &self.profile)
            .field("scheduled", &self.schedule.len())
            .field("injected", &self.injected.len())
            .field("wraps_inner", &self.inner.is_some())
            .finish()
    }
}

/// SplitMix64 finalizer: the avalanche mixer behind the plan's
/// deterministic decisions.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A rate-based plan: every transmission of every kind is faulted
    /// independently with the profile's probabilities.
    ///
    /// # Panics
    ///
    /// Panics if the profile's rates sum to more than 1.
    pub fn new(seed: u64, profile: FaultProfile) -> FaultPlan {
        assert!(profile.total() <= 1.0 + 1e-12, "fault rates must sum to ≤ 1");
        FaultPlan {
            seed,
            profile,
            schedule: Vec::new(),
            counts: HashMap::new(),
            injected: Vec::new(),
            inner: None,
        }
    }

    /// A purely scripted plan (no rate-based faults).
    pub fn scripted(seed: u64, schedule: Vec<ScheduledFault>) -> FaultPlan {
        let mut plan = FaultPlan::new(seed, FaultProfile::none());
        plan.schedule = schedule;
        plan
    }

    /// Composes this plan over another adversary: `inner` intercepts
    /// first (and may mutate the frame); a non-`Forward` verdict from it
    /// stands and the plan's own decision is skipped for that frame.
    pub fn wrapping(mut self, inner: Box<dyn Adversary + Send>) -> FaultPlan {
        self.inner = Some(inner);
        self
    }

    /// Every fault injected so far, in interception order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.injected
    }

    /// A uniform value in `[0, 1)` that is a pure function of
    /// `(seed, salt, direction, kind, occurrence)`.
    fn unit(&self, salt: u64, direction: Direction, kind: MessageKind, occurrence: u64) -> f64 {
        let dir = match direction {
            Direction::MobileToServer => 1u64,
            Direction::ServerToMobile => 2u64,
        };
        let h = mix(
            self.seed
                ^ mix(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                ^ (dir << 8)
                ^ ((kind.wire_tag() as u64) << 16)
                ^ occurrence.wrapping_mul(0xd1b5_4a32_d192_ed03),
        );
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn decide(
        &self,
        direction: Direction,
        kind: MessageKind,
        occurrence: u64,
    ) -> Option<FaultKind> {
        if let Some(s) = self.schedule.iter().find(|s| {
            s.direction == direction && s.kind == kind && s.occurrence == occurrence
        }) {
            return Some(s.fault);
        }
        let u = self.unit(0, direction, kind, occurrence);
        let p = &self.profile;
        let mut edge = p.drop;
        if u < edge {
            return Some(FaultKind::Drop);
        }
        edge += p.corrupt;
        if u < edge {
            return Some(FaultKind::Corrupt);
        }
        edge += p.duplicate;
        if u < edge {
            return Some(FaultKind::Duplicate);
        }
        edge += p.reorder;
        if u < edge {
            return Some(FaultKind::Reorder);
        }
        edge += p.truncate;
        if u < edge {
            return Some(FaultKind::Truncate);
        }
        edge += p.delay;
        if u < edge {
            return Some(FaultKind::Delay);
        }
        None
    }
}

impl Adversary for FaultPlan {
    fn intercept(&mut self, direction: Direction, frame: &mut Frame) -> AdversaryAction {
        if let Some(inner) = self.inner.as_mut() {
            let verdict = inner.intercept(direction, frame);
            if verdict != AdversaryAction::Forward {
                return verdict;
            }
        }
        let kind = frame.kind;
        let counter = self.counts.entry((direction, kind)).or_insert(0);
        let occurrence = *counter;
        *counter += 1;
        let Some(fault) = self.decide(direction, kind, occurrence) else {
            return AdversaryAction::Forward;
        };
        self.injected.push(InjectedFault { direction, kind, occurrence, fault });
        match fault {
            FaultKind::Drop => AdversaryAction::Drop,
            FaultKind::Duplicate => AdversaryAction::Duplicate,
            FaultKind::Reorder => AdversaryAction::Reorder,
            FaultKind::Delay => AdversaryAction::Delay(self.profile.delay_s),
            FaultKind::Corrupt => {
                if !frame.payload.is_empty() {
                    let idx = (self.unit(1, direction, kind, occurrence)
                        * frame.payload.len() as f64) as usize;
                    let idx = idx.min(frame.payload.len() - 1);
                    frame.payload[idx] ^= 0x01;
                }
                AdversaryAction::Forward
            }
            FaultKind::Truncate => {
                let keep = frame.payload.len() / 2;
                frame.payload.truncate(keep);
                frame.version = 0;
                AdversaryAction::Forward
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: MessageKind) -> Frame {
        Frame::new(kind, vec![0xAAu8; 64])
    }

    fn run_plan(plan: &mut FaultPlan, n: usize) -> Vec<(AdversaryAction, Frame)> {
        let mut out = Vec::new();
        for i in 0..n {
            let kind = MessageKind::ALL[i % MessageKind::ALL.len()];
            let dir = if i % 2 == 0 {
                Direction::MobileToServer
            } else {
                Direction::ServerToMobile
            };
            let mut f = frame(kind);
            let action = plan.intercept(dir, &mut f);
            out.push((action, f));
        }
        out
    }

    #[test]
    fn same_seed_same_faults_different_seed_differs() {
        let mut a = FaultPlan::new(7, FaultProfile::reference());
        let mut b = FaultPlan::new(7, FaultProfile::reference());
        let ra = run_plan(&mut a, 200);
        let rb = run_plan(&mut b, 200);
        assert_eq!(ra, rb);
        assert_eq!(a.injected(), b.injected());
        assert!(!a.injected().is_empty(), "reference profile injects at ~30%/transmission");

        let mut c = FaultPlan::new(8, FaultProfile::reference());
        let rc = run_plan(&mut c, 200);
        assert_ne!(ra, rc, "different seeds give different fault sequences");
    }

    #[test]
    fn reference_rates_are_roughly_respected() {
        let mut plan = FaultPlan::new(42, FaultProfile::reference());
        run_plan(&mut plan, 4000);
        let total = plan.injected().len() as f64 / 4000.0;
        // Reference profile sums to 0.33/transmission.
        assert!((0.28..0.38).contains(&total), "observed fault rate {total}");
        let drops =
            plan.injected().iter().filter(|f| f.fault == FaultKind::Drop).count() as f64 / 4000.0;
        assert!((0.08..0.16).contains(&drops), "observed drop rate {drops}");
    }

    #[test]
    fn scripted_faults_fire_on_the_exact_occurrence() {
        let mut plan = FaultPlan::scripted(
            0,
            vec![ScheduledFault {
                direction: Direction::MobileToServer,
                kind: MessageKind::OtB,
                occurrence: 1,
                fault: FaultKind::Drop,
            }],
        );
        let mut f = frame(MessageKind::OtB);
        assert_eq!(plan.intercept(Direction::MobileToServer, &mut f), AdversaryAction::Forward);
        // Wrong direction does not advance the targeted counter.
        let mut f = frame(MessageKind::OtB);
        assert_eq!(plan.intercept(Direction::ServerToMobile, &mut f), AdversaryAction::Forward);
        let mut f = frame(MessageKind::OtB);
        assert_eq!(plan.intercept(Direction::MobileToServer, &mut f), AdversaryAction::Drop);
        let mut f = frame(MessageKind::OtB);
        assert_eq!(plan.intercept(Direction::MobileToServer, &mut f), AdversaryAction::Forward);
        assert_eq!(
            plan.injected(),
            &[InjectedFault {
                direction: Direction::MobileToServer,
                kind: MessageKind::OtB,
                occurrence: 1,
                fault: FaultKind::Drop,
            }]
        );
    }

    #[test]
    fn corrupt_keeps_the_frame_parsable_truncate_does_not() {
        let mut plan = FaultPlan::scripted(
            3,
            vec![
                ScheduledFault {
                    direction: Direction::MobileToServer,
                    kind: MessageKind::OtE,
                    occurrence: 0,
                    fault: FaultKind::Corrupt,
                },
                ScheduledFault {
                    direction: Direction::MobileToServer,
                    kind: MessageKind::OtE,
                    occurrence: 1,
                    fault: FaultKind::Truncate,
                },
            ],
        );
        let clean = frame(MessageKind::OtE);
        let mut corrupted = clean.clone();
        assert_eq!(
            plan.intercept(Direction::MobileToServer, &mut corrupted),
            AdversaryAction::Forward
        );
        assert_ne!(corrupted.payload, clean.payload, "one byte flipped");
        assert_eq!(
            corrupted.payload.iter().zip(&clean.payload).filter(|(a, b)| a != b).count(),
            1
        );
        assert!(Frame::decode(&corrupted.encode()).is_ok(), "corrupt frames still parse");

        let mut truncated = clean.clone();
        assert_eq!(
            plan.intercept(Direction::MobileToServer, &mut truncated),
            AdversaryAction::Forward
        );
        assert!(truncated.payload.len() < clean.payload.len());
        assert!(Frame::decode(&truncated.encode()).is_err(), "truncated frames are rejected");
    }

    #[test]
    fn wrapping_lets_the_inner_adversary_win() {
        use crate::channel::Dropper;
        let mut plan = FaultPlan::new(1, FaultProfile::none())
            .wrapping(Box::new(Dropper { target: MessageKind::Challenge }));
        let mut f = frame(MessageKind::Challenge);
        assert_eq!(plan.intercept(Direction::MobileToServer, &mut f), AdversaryAction::Drop);
        let mut f = frame(MessageKind::OtA);
        assert_eq!(plan.intercept(Direction::MobileToServer, &mut f), AdversaryAction::Forward);
    }
}
