//! Joint autoencoder training (Eq. (3)) and the §VI-C-1 pruning study.
//!
//! The loss per sample is
//!
//! ```text
//! L = ‖f_M − f_R‖² + λ · ‖De(f_M) − R^Mag‖²
//! ```
//!
//! The first term pulls the two modality embeddings together (so the
//! quantized key-seeds agree); the decoder term forces `f_M` to retain
//! enough gesture information to reconstruct the RFID magnitudes, which
//! prevents the trivial collapse the batch-norm alone would not fully
//! rule out and keeps the key-seeds random across gestures.

use crate::dataset::{generate, Dataset, DatasetConfig, Sample};
use crate::model::WaveKeyModels;
use crate::Error;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use wavekey_obs::Obs;
use wavekey_math::{Quaternion, Vec3};
use wavekey_nn::layer::LayerBox;
use wavekey_nn::loss::{mse, mse_pair};
use wavekey_nn::optim::{Adam, Optimizer};
use wavekey_nn::tensor::Tensor;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Latent length `l_f` to build the models with.
    pub l_f: usize,
    /// Loss weight `λ` (the paper: 0.4).
    pub lambda: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Decoupled weight decay (regularization against the memorization a
    /// small training set invites).
    pub weight_decay: f32,
    /// Randomly yaw-rotate (plus a small tilt) every IMU window each time
    /// it is seen. The RFID phase observes only the radial component of
    /// the motion, so the latent the two encoders can agree on must be
    /// orientation-invariant — the augmentation forces exactly that
    /// instead of letting the encoders memorize absolute directions.
    pub augment_rotations: bool,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            l_f: 12,
            lambda: 0.4,
            epochs: 60,
            batch_size: 32,
            lr: 1e-3,
            weight_decay: 1e-4,
            augment_rotations: false,
        }
    }
}

impl TrainingConfig {
    /// A fast preset for examples and tests.
    pub fn fast() -> TrainingConfig {
        TrainingConfig { epochs: 25, ..Default::default() }
    }
}

/// Per-epoch record of the training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean latent-agreement loss (`‖f_M − f_R‖²`) of the final epoch.
    pub final_latent_loss: f32,
    /// Mean reconstruction loss of the final epoch.
    pub final_recon_loss: f32,
}

/// Trains fresh models on a freshly generated dataset.
///
/// # Errors
///
/// Returns [`Error::Training`] when the dataset is empty or the
/// configuration is degenerate.
pub fn train_autoencoders(
    dataset_config: &DatasetConfig,
    config: &TrainingConfig,
    seed: u64,
) -> Result<WaveKeyModels, Error> {
    let dataset = generate(dataset_config);
    let mut models = WaveKeyModels::new(config.l_f, seed);
    train(&mut models, &dataset, config, seed)?;
    Ok(models)
}

/// Trains `models` in place on `dataset`; returns the loss history.
///
/// # Errors
///
/// Returns [`Error::Training`] on an empty dataset or zero batch size.
pub fn train(
    models: &mut WaveKeyModels,
    dataset: &Dataset,
    config: &TrainingConfig,
    seed: u64,
) -> Result<TrainReport, Error> {
    train_with_obs(models, dataset, config, seed, &Obs::disabled())
}

/// [`train`] with per-epoch observability: each epoch records a
/// `train_epoch` span and `train.epoch_loss` samples; the final losses
/// land in `train.final_latent_loss` / `train.final_recon_loss` gauges.
///
/// # Errors
///
/// See [`train`].
pub fn train_with_obs(
    models: &mut WaveKeyModels,
    dataset: &Dataset,
    config: &TrainingConfig,
    seed: u64,
    obs: &Obs,
) -> Result<TrainReport, Error> {
    if dataset.is_empty() {
        return Err(Error::Training("empty dataset".into()));
    }
    if config.batch_size < 2 {
        return Err(Error::Training("batch size must be >= 2 for batch-norm".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ea1_4e55);
    let mut opt_imu = Adam::with_weight_decay(config.lr, config.weight_decay);
    let mut opt_rf = Adam::with_weight_decay(config.lr, config.weight_decay);
    let mut opt_de = Adam::with_weight_decay(config.lr, config.weight_decay);

    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    let mut report = TrainReport::default();

    for _epoch in 0..config.epochs {
        let epoch_start = Instant::now();
        // Shuffle.
        for i in (1..indices.len()).rev() {
            let j = rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        let mut epoch_loss = 0.0f32;
        let mut epoch_latent = 0.0f32;
        let mut epoch_recon = 0.0f32;
        let mut batches = 0usize;
        for chunk in indices.chunks(config.batch_size) {
            if chunk.len() < 2 {
                continue; // batch-norm needs at least two samples
            }
            let batch: Vec<&Sample> = chunk.iter().map(|&i| &dataset.samples[i]).collect();
            let a_items: Vec<Tensor> = batch
                .iter()
                .map(|s| {
                    if config.augment_rotations {
                        rotate_imu_window(&s.a, &mut rng)
                    } else {
                        s.a.clone()
                    }
                })
                .collect();
            let a = Tensor::stack(&a_items);
            let r = Tensor::stack(&batch.iter().map(|s| s.r.clone()).collect::<Vec<_>>());
            let mag = Tensor::stack(&batch.iter().map(|s| s.mag.clone()).collect::<Vec<_>>());

            let f_m = models.imu_en.forward(&a, true);
            let f_r = models.rf_en.forward(&r, true);
            let de_out = models.de.forward(&f_m, true);

            let (latent_loss, grad_fm_direct, grad_fr) = mse_pair(&f_m, &f_r);
            let (recon_loss, grad_de_out) = mse(&de_out, &mag);

            models.imu_en.zero_grad();
            models.rf_en.zero_grad();
            models.de.zero_grad();

            // Decoder path: λ scaling applies to the reconstruction term.
            let grad_fm_via_de = models.de.backward(&grad_de_out.scale(config.lambda));
            let grad_fm = grad_fm_direct.add(&grad_fm_via_de);
            models.imu_en.backward(&grad_fm);
            models.rf_en.backward(&grad_fr);

            opt_imu.step(&mut models.imu_en.params_mut());
            opt_rf.step(&mut models.rf_en.params_mut());
            opt_de.step(&mut models.de.params_mut());

            epoch_loss += latent_loss + config.lambda * recon_loss;
            epoch_latent += latent_loss;
            epoch_recon += recon_loss;
            batches += 1;
        }
        let batches = batches.max(1) as f32;
        report.epoch_losses.push(epoch_loss / batches);
        report.final_latent_loss = epoch_latent / batches;
        report.final_recon_loss = epoch_recon / batches;
        obs.record_duration("train_epoch", epoch_start.elapsed().as_secs_f64());
        obs.event("train.epoch_loss", f64::from(epoch_loss / batches));
    }
    obs.gauge("train.final_latent_loss", f64::from(report.final_latent_loss));
    obs.gauge("train.final_recon_loss", f64::from(report.final_recon_loss));
    Ok(report)
}

/// Applies a random yaw (uniform) plus small tilt (±15°) rotation to a
/// `[3, samples]` IMU window tensor. The tensor standardization of
/// [`crate::model::imu_to_tensor`] is rotation-equivariant, so rotating
/// the standardized tensor equals standardizing a rotated recording.
fn rotate_imu_window(a: &Tensor, rng: &mut StdRng) -> Tensor {
    let shape = a.shape().to_vec();
    debug_assert_eq!(shape[0], 3, "IMU window must have 3 channels");
    let n = shape[1];
    let yaw = Quaternion::from_axis_angle(Vec3::Z, rng.gen_range(0.0..std::f64::consts::TAU));
    let tilt_axis = Vec3::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0), 0.0);
    let tilt = Quaternion::from_axis_angle(
        if tilt_axis.norm() < 1e-9 { Vec3::X } else { tilt_axis },
        rng.gen_range(-0.26..0.26),
    );
    let q = yaw.mul(tilt);
    let mut out = vec![0.0f32; 3 * n];
    for i in 0..n {
        let v = Vec3::new(
            f64::from(a.data()[i]),
            f64::from(a.data()[n + i]),
            f64::from(a.data()[2 * n + i]),
        );
        let r = q.rotate(v);
        out[i] = r.x as f32;
        out[n + i] = r.y as f32;
        out[2 * n + i] = r.z as f32;
    }
    Tensor::from_vec(out, shape)
}

/// Loads cached trained models from `path`, or trains them (generating
/// the dataset from `dataset_config`) and caches the result.
///
/// This is what examples and the experiment harness share so the
/// expensive training happens once per machine.
///
/// # Errors
///
/// Returns [`Error::Training`] on training failure; cache I/O failures
/// only disable caching.
pub fn train_or_load(
    path: &std::path::Path,
    dataset_config: &DatasetConfig,
    config: &TrainingConfig,
    seed: u64,
) -> Result<WaveKeyModels, Error> {
    if let Ok(models) = WaveKeyModels::load(path) {
        if models.l_f == config.l_f {
            return Ok(models);
        }
    }
    let models = train_autoencoders(dataset_config, config, seed)?;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    models.save(path).ok();
    Ok(models)
}

/// Evaluates the Eq. (3) loss of trained models over a dataset (eval
/// mode — running batch-norm statistics, no parameter updates).
pub fn eval_loss(models: &mut WaveKeyModels, dataset: &Dataset, lambda: f32) -> f32 {
    if dataset.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f32;
    for s in &dataset.samples {
        let a = Tensor::stack(std::slice::from_ref(&s.a));
        let r = Tensor::stack(std::slice::from_ref(&s.r));
        let mag = Tensor::stack(std::slice::from_ref(&s.mag));
        let f_m = models.imu_en.forward(&a, false);
        let f_r = models.rf_en.forward(&r, false);
        let de_out = models.de.forward(&f_m, false);
        let (l1, _, _) = mse_pair(&f_m, &f_r);
        let (l2, _) = mse(&de_out, &mag);
        total += l1 + lambda * l2;
    }
    total / dataset.len() as f32
}

/// Per-neuron output variance of the latent features over a dataset,
/// averaged across the two encoders (the §VI-C-1 pruning criterion).
pub fn latent_variances(models: &mut WaveKeyModels, dataset: &Dataset) -> Vec<f64> {
    let l_f = models.l_f;
    let mut imu_vals: Vec<Vec<f64>> = vec![Vec::with_capacity(dataset.len()); l_f];
    let mut rf_vals: Vec<Vec<f64>> = vec![Vec::with_capacity(dataset.len()); l_f];
    for s in &dataset.samples {
        let a = Tensor::stack(std::slice::from_ref(&s.a));
        let r = Tensor::stack(std::slice::from_ref(&s.r));
        let f_m = models.imu_en.forward(&a, false);
        let f_r = models.rf_en.forward(&r, false);
        for i in 0..l_f {
            imu_vals[i].push(f_m.data()[i] as f64);
            rf_vals[i].push(f_r.data()[i] as f64);
        }
    }
    (0..l_f)
        .map(|i| {
            (wavekey_math::variance(&imu_vals[i]) + wavekey_math::variance(&rf_vals[i])) / 2.0
        })
        .collect()
}

/// Removes latent dimension `idx` from all three networks.
///
/// # Panics
///
/// Panics if the models do not have the expected Fig. 5 layer layout or
/// `idx` is out of range.
pub fn prune_latent_dim(models: &mut WaveKeyModels, idx: usize) {
    assert!(idx < models.l_f, "latent index out of range");
    assert!(models.l_f > 1, "cannot prune the last latent dimension");
    for enc in [&mut models.imu_en, &mut models.rf_en] {
        let layers = enc.layers_mut();
        let n = layers.len();
        match &mut layers[n - 2] {
            LayerBox::Dense(d) => d.remove_output(idx),
            other => panic!("expected Dense before final BatchNorm, got {other:?}"),
        }
        match &mut layers[n - 1] {
            LayerBox::BatchNorm1d(bn) => bn.remove_feature(idx),
            other => panic!("expected final BatchNorm1d, got {other:?}"),
        }
    }
    {
        let layers = models.de.layers_mut();
        match &mut layers[0] {
            LayerBox::Reshape(_) => {
                layers[0] = LayerBox::Reshape(wavekey_nn::layer::Reshape::new(models.l_f - 1, 1));
            }
            other => panic!("expected leading Reshape in decoder, got {other:?}"),
        }
        match &mut layers[1] {
            LayerBox::ConvTranspose1d(d) => d.remove_in_channel(idx),
            other => panic!("expected ConvTranspose1d in decoder, got {other:?}"),
        }
    }
    models.l_f -= 1;
}

/// One step of the §VI-C-1 pruning study record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneStep {
    /// Latent length after this step.
    pub l_f: usize,
    /// Eq. (3) loss after retraining at this length.
    pub loss: f32,
}

/// Runs the §VI-C-1 pruning study: starting from trained models, remove
/// the lowest-variance latent dimension, retrain, record the loss; stop
/// when the loss rises more than `stop_increase` (relative) over the best
/// seen, or when `min_l_f` is reached.
///
/// # Errors
///
/// Propagates training errors.
pub fn prune_study(
    models: &mut WaveKeyModels,
    dataset: &Dataset,
    config: &TrainingConfig,
    retrain_epochs: usize,
    min_l_f: usize,
    stop_increase: f32,
    seed: u64,
) -> Result<Vec<PruneStep>, Error> {
    let retrain_cfg = TrainingConfig { epochs: retrain_epochs, ..*config };
    let mut steps = Vec::new();
    let mut best_loss = eval_loss(models, dataset, config.lambda);
    steps.push(PruneStep { l_f: models.l_f, loss: best_loss });
    while models.l_f > min_l_f {
        let variances = latent_variances(models, dataset);
        let (idx, _) = variances
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite variance"))
            .expect("non-empty latent");
        prune_latent_dim(models, idx);
        train(models, dataset, &retrain_cfg, seed ^ models.l_f as u64)?;
        let loss = eval_loss(models, dataset, config.lambda);
        steps.push(PruneStep { l_f: models.l_f, loss });
        if loss > best_loss * (1.0 + stop_increase) {
            break;
        }
        best_loss = best_loss.min(loss);
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_training() -> (WaveKeyModels, Dataset, TrainingConfig) {
        let ds = generate(&DatasetConfig::tiny());
        let cfg = TrainingConfig { l_f: 4, epochs: 3, batch_size: 8, ..Default::default() };
        let models = WaveKeyModels::new(cfg.l_f, 3);
        (models, ds, cfg)
    }

    #[test]
    fn training_reduces_loss() {
        let (mut models, ds, cfg) = tiny_training();
        let report = train(&mut models, &ds, &cfg, 1).unwrap();
        assert_eq!(report.epoch_losses.len(), 3);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn training_emits_per_epoch_metrics() {
        let (mut models, ds, cfg) = tiny_training();
        let (obs, mem) = Obs::with_memory();
        train_with_obs(&mut models, &ds, &cfg, 1, &obs).unwrap();
        let epoch_spans = mem.spans().iter().filter(|(n, _)| n == "train_epoch").count();
        assert_eq!(epoch_spans, 3);
        assert_eq!(mem.events().len(), 3); // one loss sample per epoch
        let text = obs.prometheus_text();
        assert!(text.contains("train_final_latent_loss"));
        assert!(text.contains("train_final_recon_loss"));
    }

    #[test]
    fn empty_dataset_rejected() {
        let mut models = WaveKeyModels::new(4, 1);
        let err = train(&mut models, &Dataset::default(), &TrainingConfig::default(), 1)
            .unwrap_err();
        assert!(matches!(err, Error::Training(_)));
    }

    #[test]
    fn eval_loss_is_finite() {
        let (mut models, ds, cfg) = tiny_training();
        train(&mut models, &ds, &cfg, 2).unwrap();
        let loss = eval_loss(&mut models, &ds, cfg.lambda);
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    fn latent_variances_shape() {
        let (mut models, ds, _) = tiny_training();
        let v = latent_variances(&mut models, &ds);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    #[test]
    fn prune_removes_dimension_everywhere() {
        let (mut models, ds, cfg) = tiny_training();
        train(&mut models, &ds, &cfg, 3).unwrap();
        prune_latent_dim(&mut models, 1);
        assert_eq!(models.l_f, 3);
        // Forward passes still work at the reduced width.
        let s = &ds.samples[0];
        let a = Tensor::stack(std::slice::from_ref(&s.a));
        let f = models.imu_en.forward(&a, false);
        assert_eq!(f.shape(), &[1, 3]);
        let rec = models.de.forward(&f, false);
        assert_eq!(rec.shape(), &[1, 400]);
    }

    #[test]
    fn prune_study_runs_and_shrinks() {
        let (mut models, ds, cfg) = tiny_training();
        train(&mut models, &ds, &cfg, 4).unwrap();
        let steps = prune_study(&mut models, &ds, &cfg, 1, 2, 10.0, 5).unwrap();
        assert!(steps.len() >= 2);
        assert!(steps.last().unwrap().l_f < steps[0].l_f);
    }
}
