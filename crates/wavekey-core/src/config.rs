//! The WaveKey hyper-parameters (§IV and §VI-C of the paper).

use serde::{Deserialize, Serialize};

/// All scheme-level hyper-parameters in one place.
///
/// Defaults reproduce the paper's chosen operating point — latent length
/// `l_f = 12` (§VI-C-1), `N_b = 9` quantization bins (§VI-C-2, Fig. 7),
/// deadline slack `τ = 120 ms` (§VI-C-3), decoder loss weight `λ = 0.4`
/// (Eq. (3)) — and the paper\'s nominal ECC correction rate
/// `η = t/n = 5/127 ≈ 0.04`. Note the paper *derives* η from its
/// hardware\'s benign seed-mismatch distribution (the 99th percentile);
/// the same procedure on this simulated substrate asks for more
/// correction than the BCH(127) family can give (see EXPERIMENTS.md),
/// so experiments report both this security-first operating point and
/// the procedure-derived `t = 15` point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveKeyConfig {
    /// Latent feature length `l_f` produced by both encoders.
    pub l_f: usize,
    /// Number of equiprobable quantization bins `N_b`.
    pub n_b: usize,
    /// BCH errors-per-block `t`; the correction rate is `η = t/127`.
    pub bch_t: usize,
    /// Deadline slack `τ` in seconds for the critical OT messages.
    pub tau: f64,
    /// Decoder loss weight `λ` in Eq. (3).
    pub lambda: f32,
    /// Desired key length `l_k` in bits.
    pub key_len_bits: usize,
    /// Gesture/data-acquisition window in seconds (the paper's 2 s).
    pub gesture_window: f64,
}

impl Default for WaveKeyConfig {
    fn default() -> Self {
        WaveKeyConfig {
            l_f: 12,
            n_b: 9,
            bch_t: 5,
            tau: 0.12,
            lambda: 0.4,
            key_len_bits: 256,
            gesture_window: 2.0,
        }
    }
}

impl WaveKeyConfig {
    /// Bits per quantized symbol: `⌈log₂ N_b⌉`.
    pub fn bits_per_symbol(&self) -> usize {
        wavekey_dsp::gray::bits_for(self.n_b)
    }

    /// Key-seed length `l_s = l_f · ⌈log₂ N_b⌉` (see DESIGN.md D2 for why
    /// the ceiling replaces the paper's exact `log₂`).
    pub fn l_s(&self) -> usize {
        self.l_f * self.bits_per_symbol()
    }

    /// Per-OT-sequence length `l_b = ⌈l_k / (2·l_s)⌉` (§IV-D-2).
    pub fn l_b(&self) -> usize {
        self.key_len_bits.div_ceil(2 * self.l_s())
    }

    /// The ECC correction rate `η = t / 127`.
    pub fn eta(&self) -> f64 {
        self.bch_t as f64 / 127.0
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.l_f == 0 {
            return Err("l_f must be positive".into());
        }
        if self.n_b < 2 {
            return Err("N_b must be at least 2".into());
        }
        if self.bch_t == 0 || self.bch_t > 15 {
            return Err("bch_t must be in 1..=15".into());
        }
        if self.tau <= 0.0 {
            return Err("tau must be positive".into());
        }
        if self.key_len_bits == 0 {
            return Err("key length must be positive".into());
        }
        if self.gesture_window <= 0.0 {
            return Err("gesture window must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = WaveKeyConfig::default();
        assert_eq!(c.l_f, 12);
        assert_eq!(c.n_b, 9);
        assert_eq!(c.bits_per_symbol(), 4);
        assert_eq!(c.l_s(), 48);
        // 256-bit key: l_b = ⌈256 / 96⌉ = 3.
        assert_eq!(c.l_b(), 3);
        assert!((c.eta() - 5.0 / 127.0).abs() < 1e-9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn l_b_scales_with_key_length() {
        let mut c = WaveKeyConfig::default();
        for (lk, expected) in [(128, 2), (168, 2), (192, 2), (256, 3), (2048, 22)] {
            c.key_len_bits = lk;
            assert_eq!(c.l_b(), expected, "l_k = {lk}");
        }
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = WaveKeyConfig { l_f: 0, ..Default::default() };
        assert!(c.validate().is_err());
        c = WaveKeyConfig { n_b: 1, ..Default::default() };
        assert!(c.validate().is_err());
        c = WaveKeyConfig { bch_t: 0, ..Default::default() };
        assert!(c.validate().is_err());
        c = WaveKeyConfig { tau: 0.0, ..Default::default() };
        assert!(c.validate().is_err());
    }
}
