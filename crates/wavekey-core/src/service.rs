//! A multi-tenant WaveKey access service — the backend of the paper's
//! Context 1 (RFID line-up systems) and Context 2/3 enrolment flows.
//!
//! The service issues RFID tickets (EPCs), discovers which tickets are
//! physically present via Gen2 inventory, runs a key-establishment
//! session against a chosen ticket, and remembers the binding
//! `EPC → session key` so subsequent wireless requests can be
//! authenticated. This is the "downstream adopter" face of the library:
//! everything below it (simulation, training, protocol) is wired up by
//! [`crate::session::Session`].
//!
//! Since the durability rework, every binding lives in a
//! [`wavekey_store::DurableStore`]: ticket issues, key bindings,
//! rotations, re-enrolments and revocations are write-ahead-journaled
//! before they are acknowledged, so a service reopened over the same
//! volume ([`AccessService::open`]) recovers the exact tenant/ticket/key
//! state (see DESIGN.md §16). The single-argument constructor
//! ([`AccessService::new`]) keeps the historical behaviour by running on
//! an in-memory volume with one unlimited default tenant.

use crate::agreement::{AgreementConfig, AgreementError, AgreementOutcome};
use crate::bits::hamming_distance;
use crate::channel::{Adversary, AdversaryAction, Direction};
use crate::model::WaveKeyModels;
use crate::proto::link::{Endpoint, LinkDiscipline};
use crate::proto::{driver, Frame, MobileAgreement, ServerAgreement};
use crate::session::{Session, SessionConfig, SessionOutcome};
use crate::Error;
use rand::rngs::StdRng;
use std::collections::VecDeque;
use std::time::Instant;
use wavekey_store::{
    DurableStore, MemVolume, StoreConfig, StoreStats, TenantQuota, Volume,
};
use wavekey_crypto::batch::ModexpBatch;
use wavekey_obs::{EventScope, Obs, SessionTrace};
use wavekey_imu::gesture::VolunteerId;
use wavekey_rfid::channel::TagModel;
use wavekey_rfid::environment::Environment;
use wavekey_rfid::inventory::{run_inventory, Epc, FieldTag, InventoryConfig, InventoryReport};
use wavekey_math::Vec3;

/// A ticket issued by the service: an RFID tag identity plus a queue slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceTicket {
    /// The ticket's EPC.
    pub epc: Epc,
    /// The physical tag model the dispenser loaded.
    pub model: TagModel,
    /// Position in the service queue (1-based).
    pub queue_position: u32,
}

/// The tenant id [`AccessService::new`] creates and that the historical
/// single-tenant API (`issue_ticket`, `enroll`, `verify_request`, …)
/// operates on. It has an unlimited quota, so the single-tenant surface
/// behaves exactly as it did before the durability rework.
pub const DEFAULT_TENANT: u64 = 1;

/// Tag models are journaled as a single byte (their discriminant).
fn model_to_u8(model: TagModel) -> u8 {
    model as u8
}

fn model_from_u8(byte: u8) -> TagModel {
    match byte {
        0 => TagModel::Alien9640A,
        1 => TagModel::Alien9640B,
        2 => TagModel::Alien9730A,
        3 => TagModel::Alien9730B,
        4 => TagModel::DogBoneA,
        _ => TagModel::DogBoneB,
    }
}

/// Graceful-degradation policy for [`AccessService::enroll`]: what the
/// kiosk tries before telling the visitor their wave failed.
///
/// On a reconciliation / confirmation failure the service first
/// *escalates* the BCH correction capacity `t` (re-running the agreement
/// on the same gesture's seeds, `bch_step` at a time up to `bch_ceiling`,
/// the BCH(127) limit being 15), then falls back to `regesture_attempts`
/// full re-gestures. Disabled by default — the base enrolment path is
/// byte-for-byte what it was without a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Highest BCH `t` escalation may reach (1..=15; 0 disables
    /// escalation).
    pub bch_ceiling: usize,
    /// How much each escalation rung adds to `t` (0 disables escalation).
    pub bch_step: usize,
    /// Full re-gesture attempts after escalation is exhausted.
    pub regesture_attempts: u32,
}

impl DegradePolicy {
    /// No recovery: enrolment failures surface immediately.
    pub fn disabled() -> DegradePolicy {
        DegradePolicy { bch_ceiling: 0, bch_step: 0, regesture_attempts: 0 }
    }

    /// The reference kiosk policy: escalate `t` by 2 up to the BCH(127)
    /// ceiling of 15, then allow one re-gesture.
    pub fn reference() -> DegradePolicy {
        DegradePolicy { bch_ceiling: 15, bch_step: 2, regesture_attempts: 1 }
    }

    /// Whether any recovery rung is configured.
    pub fn enabled(&self) -> bool {
        (self.bch_ceiling > 0 && self.bch_step > 0) || self.regesture_attempts > 0
    }
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy::disabled()
    }
}

/// The line-up / access-control backend.
#[derive(Debug)]
pub struct AccessService {
    models: WaveKeyModels,
    base_config: SessionConfig,
    store: DurableStore,
    session_seed: u64,
    /// Keyed HMAC target for the unknown-EPC arm of `verify_request`, so
    /// rejects burn the same MAC cost as real verifications (no timing
    /// oracle distinguishing enrolled from unknown EPCs).
    dummy_key: [u8; 32],
    degrade: DegradePolicy,
    obs: Obs,
    /// Store stats already forwarded to `obs` (counters are pumped as
    /// deltas after each operation).
    pumped: StoreStats,
}

impl AccessService {
    /// Creates a service with trained models and a base session
    /// configuration (environment, placement defaults), backed by an
    /// in-memory volume: durable across nothing, but journaled and
    /// snapshot-capable all the same (tests and short-lived kiosks).
    pub fn new(models: WaveKeyModels, base_config: SessionConfig, seed: u64) -> AccessService {
        AccessService::open(
            models,
            base_config,
            seed,
            Box::new(MemVolume::new()),
            StoreConfig::default(),
        )
        .expect("a fresh in-memory store cannot fail to open")
    }

    /// Opens a service over an existing (or empty) volume, recovering any
    /// journaled state: snapshot load, tail replay, torn-tail repair. The
    /// default tenant is created if this is a fresh volume.
    pub fn open(
        models: WaveKeyModels,
        base_config: SessionConfig,
        seed: u64,
        volume: Box<dyn Volume>,
        store_config: StoreConfig,
    ) -> Result<AccessService, Error> {
        let mut store = DurableStore::open(volume, store_config)?;
        store.ensure_tenant(DEFAULT_TENANT, TenantQuota::unlimited())?;
        let dummy_key =
            wavekey_crypto::hmac_sha256(&seed.to_le_bytes(), b"wavekey-service-dummy-key");
        Ok(AccessService {
            models,
            base_config,
            store,
            session_seed: seed,
            dummy_key,
            degrade: DegradePolicy::disabled(),
            obs: Obs::disabled(),
            pumped: StoreStats::default(),
        })
    }

    /// Sets the graceful-degradation policy for enrolment (disabled by
    /// default).
    pub fn set_degrade_policy(&mut self, policy: DegradePolicy) {
        self.degrade = policy;
    }

    /// Attaches an observability handle. The service keeps its own
    /// counters (tickets issued, enrolments, request verifications) and
    /// forwards the handle into every enrolment session, so per-session
    /// traces land in the same collector (e.g. a
    /// [`wavekey_obs::FlightRecorder`]).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
        // Recovery may have happened before the handle was attached
        // (`open` → `set_obs`); pump the accumulated store deltas now.
        self.pump_store_counters();
    }

    /// The attached observability handle (disabled by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Read access to the durable store (stats, state inspection).
    pub fn store(&self) -> &DurableStore {
        &self.store
    }

    /// Mutable access to the durable store, for administrative flows the
    /// service does not wrap (manual snapshots, direct quota surgery in
    /// tests and soaks).
    pub fn store_mut(&mut self) -> &mut DurableStore {
        &mut self.store
    }

    /// Forward store-stat deltas into the obs registry as Prometheus-style
    /// counters.
    fn pump_store_counters(&mut self) {
        let stats = *self.store.stats();
        let prev = self.pumped;
        let pumped = self.obs.with_registry(|r| {
            let d = |new: u64, old: u64| new.saturating_sub(old);
            let pairs = [
                ("wavekey_store_replays_total", d(stats.replays, prev.replays)),
                (
                    "wavekey_store_records_replayed_total",
                    d(stats.records_replayed, prev.records_replayed),
                ),
                (
                    "wavekey_store_evictions_total{reason=\"memory\"}",
                    d(stats.evictions_memory, prev.evictions_memory),
                ),
                ("wavekey_store_reloads_total", d(stats.reloads, prev.reloads)),
                (
                    "wavekey_store_torn_tails_repaired_total",
                    d(stats.torn_tails_repaired, prev.torn_tails_repaired),
                ),
                ("wavekey_store_snapshots_total", d(stats.snapshots, prev.snapshots)),
                (
                    "wavekey_store_snapshot_rename_failures_total",
                    d(stats.rename_failures, prev.rename_failures),
                ),
                (
                    "wavekey_store_quota_denials_total",
                    d(stats.quota_denials, prev.quota_denials),
                ),
                (
                    "wavekey_store_rate_denials_total",
                    d(stats.rate_denials, prev.rate_denials),
                ),
            ];
            for (name, delta) in pairs {
                if delta > 0 {
                    r.inc_counter(name, delta);
                }
            }
        });
        // A disabled obs never ran the closure: keep the deltas queued so
        // they land once a real handle is attached.
        if pumped.is_some() {
            self.pumped = stats;
        }
    }

    /// Creates a new tenant with the given quota, returning its id. The
    /// tenant's tickets, keys and quota are journaled like everything
    /// else and survive recovery.
    pub fn create_tenant(&mut self, quota: TenantQuota) -> Result<u64, Error> {
        let id = self.store.create_tenant(quota)?;
        self.obs.inc("service_tenants_created");
        self.pump_store_counters();
        Ok(id)
    }

    /// Issues a fresh ticket for the default tenant (the paper's
    /// automatic dispenser).
    pub fn issue_ticket(&mut self, model: TagModel) -> ServiceTicket {
        self.issue_ticket_for(DEFAULT_TENANT, model)
            .expect("the default tenant always exists and has no quota")
    }

    /// Issues a fresh ticket under `tenant`, enforcing its ticket quota.
    /// Serials (and hence queue positions and EPCs) are per-tenant and
    /// 1-based, exactly as the single-tenant service numbered them.
    pub fn issue_ticket_for(
        &mut self,
        tenant: u64,
        model: TagModel,
    ) -> Result<ServiceTicket, Error> {
        let serial = self.store.peek_serial(tenant)? + 1;
        let epc = Epc::derive(model, serial);
        self.store.issue(tenant, epc.0, model_to_u8(model))?;
        self.obs.inc("service_tickets_issued");
        self.pump_store_counters();
        Ok(ServiceTicket { epc, model, queue_position: serial })
    }

    /// Number of issued tickets for the default tenant.
    pub fn issued(&self) -> usize {
        self.issued_for(DEFAULT_TENANT)
    }

    /// Number of issued tickets for `tenant` (including revoked ones —
    /// the dispenser count, not the live count).
    pub fn issued_for(&self, tenant: u64) -> usize {
        self.store
            .state()
            .tenant(tenant)
            .map(|t| t.ticket_count())
            .unwrap_or(0)
    }

    /// Reconstructs the public ticket view from durable state. `None` for
    /// unknown or revoked tickets.
    fn service_ticket(&self, tenant: u64, epc: Epc) -> Option<ServiceTicket> {
        let t = self.store.state().ticket(tenant, &epc.0)?;
        if t.revoked {
            return None;
        }
        Some(ServiceTicket {
            epc,
            model: model_from_u8(t.model),
            queue_position: t.serial + 1,
        })
    }

    /// Runs a Gen2 inventory over the simulated waiting area and returns
    /// which *known* tickets are present (unknown EPCs are ignored —
    /// visitors' other tags are not our business).
    pub fn discover_present(
        &self,
        in_field: &[FieldTag],
        seed: u64,
    ) -> (Vec<ServiceTicket>, InventoryReport) {
        let env = Environment::room(self.base_config.environment_id);
        let channel = env.channel(self.base_config.tag, self.base_config.walkers, seed);
        let report = run_inventory(in_field, &channel, &InventoryConfig::default(), seed);
        let present = report
            .found
            .iter()
            .filter_map(|epc| self.service_ticket(DEFAULT_TENANT, *epc))
            .collect();
        (present, report)
    }

    /// Builds the field-tag descriptor for a ticket standing at the
    /// service's default user placement (helper for simulations).
    pub fn field_tag(&self, ticket: &ServiceTicket) -> FieldTag {
        let env = Environment::room(self.base_config.environment_id);
        let position = self.base_config.placement.hand_position(&env) + Vec3::new(0.03, 0.0, 0.0);
        FieldTag { epc: ticket.epc, model: ticket.model, position }
    }

    /// Runs one key-establishment attempt for `epc`: the visitor waves
    /// their device (simulated as `volunteer`) together with the ticket.
    /// On success the key is bound to the ticket.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for unknown tickets; otherwise the session's
    /// failure taxonomy (the caller retries, as a kiosk flow would).
    pub fn enroll(
        &mut self,
        epc: Epc,
        volunteer: VolunteerId,
    ) -> Result<SessionOutcome, Error> {
        self.enroll_for(DEFAULT_TENANT, epc, volunteer)
    }

    /// Tenant-scoped [`AccessService::enroll`]. Charges one token from
    /// the tenant's enrolment rate-limit bucket per attempt (the default
    /// tenant's bucket is unlimited); a successful session journals a
    /// `KeyBound` record for first-time enrolments and a `ReEnrolled`
    /// record when the ticket already carried a key.
    pub fn enroll_for(
        &mut self,
        tenant: u64,
        epc: Epc,
        volunteer: VolunteerId,
    ) -> Result<SessionOutcome, Error> {
        let ticket = self
            .service_ticket(tenant, epc)
            .ok_or_else(|| Error::Config(format!("unknown ticket {epc}")))?;
        if let Err(e) = self.store.take_enroll_token(tenant) {
            self.obs.inc("service_enroll_rate_limited");
            self.pump_store_counters();
            return Err(e.into());
        }
        let config = SessionConfig {
            volunteer,
            tag: ticket.model,
            ..self.base_config.clone()
        };
        self.session_seed = self.session_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut session = Session::new(config, self.models.clone(), self.session_seed);
        session.set_obs(self.obs.clone());
        self.obs.inc("service_enroll_attempts");
        let span = self.obs.span("service_enroll");
        let result = session.establish_key_fast();
        span.finish();
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(e) => match self.recover_enroll(&mut session, &e) {
                Some(outcome) => outcome,
                None => {
                    self.obs.inc("service_enroll_failures");
                    return Err(e);
                }
            },
        };
        self.obs.inc("service_enroll_success");
        let re_enrolment = self
            .store
            .state()
            .ticket(tenant, &epc.0)
            .map(|t| t.generation > 0)
            .unwrap_or(false);
        if re_enrolment {
            self.store.re_enroll(tenant, epc.0, &outcome.key)?;
            self.obs.inc("service_re_enrolments");
        } else {
            self.store.bind_key(tenant, epc.0, &outcome.key)?;
        }
        self.pump_store_counters();
        Ok(outcome)
    }

    /// Rotates a ticket's bound key server-side: the new key is derived
    /// from the old one (`HMAC(old_key, "wavekey-rotate" ‖ generation)`),
    /// journaled as a `KeyRotated` record, and returned. Requires an
    /// existing key.
    pub fn rotate_key(&mut self, tenant: u64, epc: Epc) -> Result<Vec<u8>, Error> {
        let (old_key, generation) = {
            let t = self
                .store
                .key_for(tenant, epc.0)?
                .map(|k| k.to_vec())
                .ok_or_else(|| Error::Config(format!("no key bound for {epc}")))?;
            let g = self
                .store
                .state()
                .ticket(tenant, &epc.0)
                .map(|t| t.generation)
                .unwrap_or(0);
            (t, g)
        };
        let mut msg = b"wavekey-rotate".to_vec();
        msg.extend_from_slice(&(generation + 1).to_le_bytes());
        let new_key = wavekey_crypto::hmac_sha256(&old_key, &msg).to_vec();
        self.store.rotate_key(tenant, epc.0, &new_key)?;
        self.obs.inc("service_key_rotations");
        self.pump_store_counters();
        Ok(new_key)
    }

    /// Revokes a ticket: its key material is dropped and the journal
    /// records the revocation (recovery will not resurrect the key).
    pub fn revoke_ticket(&mut self, tenant: u64, epc: Epc) -> Result<(), Error> {
        self.store.revoke(tenant, epc.0)?;
        self.obs.inc("service_tickets_revoked");
        self.pump_store_counters();
        Ok(())
    }

    /// Advances the rate-limit clock: refills every tenant's enrolment
    /// token bucket by its quota's refill rate.
    pub fn tick(&mut self) {
        self.store.tick();
    }

    /// Installs a compacted snapshot and truncates the journal.
    pub fn snapshot(&mut self) -> Result<(), Error> {
        self.store.snapshot()?;
        self.pump_store_counters();
        Ok(())
    }

    /// The graceful-degradation ladder: on a reconciliation or
    /// confirmation failure, first escalate the BCH correction capacity
    /// on the *same* gesture's seeds, then fall back to full re-gestures.
    /// Returns `None` when the ladder is disabled, does not apply to this
    /// failure, or is exhausted.
    fn recover_enroll(&mut self, session: &mut Session, err: &Error) -> Option<SessionOutcome> {
        if !self.degrade.enabled() {
            return None;
        }
        if !matches!(
            err,
            Error::Agreement(
                AgreementError::ReconciliationFailed | AgreementError::ConfirmationFailed
            )
        ) {
            return None;
        }
        if self.degrade.bch_step > 0 {
            if let Some((s_m, s_r)) = session.last_seeds().cloned() {
                let mut t = session.config().wavekey.bch_t + self.degrade.bch_step;
                while t <= self.degrade.bch_ceiling.min(15) {
                    self.obs.inc("service_enroll_escalations");
                    session.config_mut().wavekey.bch_t = t;
                    if let Ok(outcome) = session.agree_fast(&s_m, &s_r) {
                        self.obs.inc("service_enroll_recovered");
                        return Some(outcome);
                    }
                    t += self.degrade.bch_step;
                }
            }
        }
        for _ in 0..self.degrade.regesture_attempts {
            self.obs.inc("service_enroll_regestures");
            if let Ok(outcome) = session.establish_key_fast() {
                self.obs.inc("service_enroll_recovered");
                return Some(outcome);
            }
        }
        None
    }

    /// The key bound to a ticket, if enrolment succeeded.
    ///
    /// Non-mutating peek: under a memory ceiling an *evicted* key reads as
    /// `None` here — [`AccessService::fetch_key`] reloads it from the
    /// journal. Without a ceiling (the default) the two agree always.
    pub fn key_for(&self, epc: Epc) -> Option<&[u8]> {
        self.store.peek_key(DEFAULT_TENANT, epc.0)
    }

    /// The key bound to a ticket under `tenant`, transparently reloading
    /// it from the journal if it was evicted under the memory ceiling.
    pub fn fetch_key(&mut self, tenant: u64, epc: Epc) -> Result<Option<Vec<u8>>, Error> {
        let key = self.store.key_for(tenant, epc.0)?.map(|k| k.to_vec());
        self.pump_store_counters();
        Ok(key)
    }

    /// Authenticates a wireless request: an HMAC over `message` keyed by
    /// the ticket's bound key.
    ///
    /// Returns `false` for unknown or un-enrolled tickets.
    pub fn verify_request(&mut self, epc: Epc, message: &[u8], mac: &[u8]) -> bool {
        self.verify_request_for(DEFAULT_TENANT, epc, message, mac)
    }

    /// Tenant-scoped [`AccessService::verify_request`].
    ///
    /// Constant-cost rejection: the unknown/un-enrolled arm computes an
    /// HMAC against a per-service dummy key before answering, so response
    /// time does not leak whether an EPC is enrolled (the timing oracle
    /// the pre-durability service had).
    pub fn verify_request_for(
        &mut self,
        tenant: u64,
        epc: Epc,
        message: &[u8],
        mac: &[u8],
    ) -> bool {
        self.obs.inc("service_verify_requests");
        let key = match self.store.key_for(tenant, epc.0) {
            Ok(k) => k.map(|k| k.to_vec()),
            Err(_) => {
                self.obs.inc("service_verify_store_errors");
                None
            }
        };
        let accepted = match key {
            Some(key) => {
                wavekey_crypto::hmac::mac_eq(&wavekey_crypto::hmac_sha256(&key, message), mac)
            }
            None => {
                let dummy = wavekey_crypto::hmac_sha256(&self.dummy_key, message);
                let _ = std::hint::black_box(wavekey_crypto::hmac::mac_eq(&dummy, mac));
                false
            }
        };
        if accepted {
            self.obs.inc("service_verify_accepted");
        } else {
            self.obs.inc("service_verify_rejected");
        }
        self.pump_store_counters();
        accepted
    }
}

/// Result of one manager-driven session: the mobile-side view (the
/// protocol's deliverable) plus the server's reconciled key so callers
/// can assert both parties hold the same bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagedOutcome {
    /// Manager-assigned session id.
    pub id: u64,
    /// The combined agreement diagnostics (key, timings, mismatch).
    pub agreement: AgreementOutcome,
    /// The key the *server* reconciled to (equal to `agreement.key` on
    /// every honest run — the HMAC confirmation proves it).
    pub server_key: Vec<u8>,
    /// How many frames the recovery layer put back on the wire for this
    /// session (drop retransmissions + NAK re-sends); 0 on a clean run.
    pub retransmits: u64,
}

/// One in-flight wire message: encoded frame bytes plus logical arrival.
#[derive(Debug)]
struct InFlight {
    to_mobile: bool,
    bytes: Vec<u8>,
    arrival: f64,
    /// Pristine copy of the frame as the sender's machine produced it
    /// (kept only when retries are enabled): the link-layer "checksum"
    /// reference, and the payload a NAK retransmission puts back on the
    /// wire.
    clean: Option<Frame>,
}

/// One live machine pair under management.
///
/// The recovery judgement calls (retransmit budgets, NAK budgets, defer
/// budgets) live in the shared [`LinkDiscipline`] so the async gateway
/// enforces the same semantics; what stays here is the channel model —
/// the in-flight queue, adversary interception, clean-copy checksums,
/// and reorder holds.
#[derive(Debug)]
struct ManagedSession {
    id: u64,
    mobile: Endpoint,
    server: Endpoint,
    channel_delay: f64,
    /// Session-level recovery budgets, shared by both directions.
    disc: LinkDiscipline,
    in_flight: VecDeque<InFlight>,
    idle_passes: u32,
    /// A frame the adversary reordered: held back until the next frame
    /// goes onto the wire (or the queue drains), then delivered behind it.
    reorder_hold: Option<InFlight>,
    /// Manager-actor causal scope: delivery, recovery, and terminal
    /// events for this session's timeline (disabled unless the manager
    /// has an enabled [`Obs`]).
    events: EventScope,
}

impl ManagedSession {
    /// The channel: intercepts the frame (freshly per attempt) and places
    /// the survivor(s) on the wire. `Drop` is retransmitted up to
    /// `retry.max_retries` times, each retry charging the policy's backoff
    /// onto the *sender's* logical clock — so recovered deadline-critical
    /// messages arrive later and the `2 + τ` fence stays honest.
    ///
    /// Without a retry policy a dropped frame simply vanishes — the
    /// session stalls (or desynchronizes) and fails, as a real endpoint
    /// would time out a silent peer.
    fn transmit(&mut self, adversary: &mut dyn Adversary, direction: Direction, frame: Frame) {
        let to_mobile = direction == Direction::ServerToMobile;
        let kind_label = frame.kind.label();
        let clean = if self.disc.enabled() { Some(frame.clone()) } else { None };
        let mut attempt = 0u32;
        loop {
            let send_time = match direction {
                Direction::MobileToServer => self.mobile.clock(),
                Direction::ServerToMobile => self.server.clock(),
            };
            let arrival = send_time + self.channel_delay;
            let mut copy = frame.clone();
            match adversary.intercept(direction, &mut copy) {
                AdversaryAction::Forward => {
                    return self.push(InFlight {
                        to_mobile,
                        bytes: copy.encode(),
                        arrival,
                        clean,
                    });
                }
                AdversaryAction::Delay(extra) => {
                    return self.push(InFlight {
                        to_mobile,
                        bytes: copy.encode(),
                        arrival: arrival + extra,
                        clean,
                    });
                }
                AdversaryAction::Duplicate => {
                    self.events.emit_frame("duplicate", kind_label);
                    let bytes = copy.encode();
                    self.push(InFlight {
                        to_mobile,
                        bytes: bytes.clone(),
                        arrival,
                        clean: clean.clone(),
                    });
                    return self.push(InFlight {
                        to_mobile,
                        bytes,
                        arrival: arrival + self.channel_delay,
                        clean,
                    });
                }
                AdversaryAction::Reorder => {
                    // Hold this frame behind the next transmission; a
                    // second reorder releases the first hold.
                    self.events.emit_frame("reorder_hold", kind_label);
                    if let Some(held) = self.reorder_hold.take() {
                        self.events.emit("reorder_release");
                        self.in_flight.push_back(held);
                    }
                    self.reorder_hold =
                        Some(InFlight { to_mobile, bytes: copy.encode(), arrival, clean });
                    return;
                }
                AdversaryAction::Drop => {
                    let Some(backoff) = self.disc.drop_retry(&mut attempt) else {
                        return; // vanished; eviction will claim the session
                    };
                    self.events.emit_full("retransmit", None, Some(kind_label), Some(attempt as u64));
                    match direction {
                        Direction::MobileToServer => self.mobile.charge(backoff),
                        Direction::ServerToMobile => self.server.charge(backoff),
                    }
                }
            }
        }
    }

    /// Puts a message on the wire, releasing any reorder hold behind it.
    fn push(&mut self, msg: InFlight) {
        self.in_flight.push_back(msg);
        if let Some(held) = self.reorder_hold.take() {
            self.events.emit("reorder_release");
            self.in_flight.push_back(held);
        }
    }

    /// NAK recovery: re-sends the failed delivery's clean copy (decode
    /// failure or in-transit corruption). Returns `false` when the budget
    /// is exhausted or no clean copy rode along (retries disabled).
    fn nak(&mut self, adversary: &mut dyn Adversary, msg: &InFlight) -> bool {
        let Some(clean) = msg.clean.clone() else { return false };
        let Some(backoff) = self.disc.nak_retry() else { return false };
        let direction = if msg.to_mobile {
            Direction::ServerToMobile
        } else {
            Direction::MobileToServer
        };
        self.events.emit_full(
            "nak",
            None,
            Some(clean.kind.label()),
            Some(self.disc.nak_budget_used() as u64),
        );
        match direction {
            Direction::MobileToServer => self.mobile.charge(backoff),
            Direction::ServerToMobile => self.server.charge(backoff),
        }
        self.transmit(adversary, direction, clean);
        true
    }

    /// Delivers the next in-flight message (or ages the idle counter).
    /// Returns `Some` when the session completed, successfully or not.
    fn advance(
        &mut self,
        adversary: &mut dyn Adversary,
        idle_timeout_passes: u32,
    ) -> Option<Result<ManagedOutcome, AgreementError>> {
        let msg = match self.in_flight.pop_front() {
            Some(msg) => msg,
            // Flush a dangling reorder hold before idling: the frame it
            // was waiting behind may have been dropped.
            None => match self.reorder_hold.take() {
                Some(held) => held,
                None => {
                    self.idle_passes += 1;
                    if self.idle_passes > idle_timeout_passes {
                        return Some(Err(AgreementError::Evicted));
                    }
                    return None;
                }
            },
        };
        self.idle_passes = 0;
        let frame = match Frame::decode(&msg.bytes) {
            Ok(frame) => frame,
            Err(e) => {
                // The link layer rejected the datagram (truncation, bad
                // version): NAK the sender for a clean retransmission.
                if self.nak(adversary, &msg) {
                    return None;
                }
                return Some(Err(AgreementError::Wire(e.to_string())));
            }
        };
        if self.disc.enabled() {
            // Link-layer CRC: the manager *is* the channel, so each
            // delivery can be compared against the clean copy that rode
            // along with it; a mismatch models a checksum failure and is
            // NAK'd like a truncated datagram. (A wrapped MitM that
            // rewrites frames is caught here too — and fails once the NAK
            // budget runs out.)
            if let Some(clean) = &msg.clean {
                if *clean != frame {
                    if self.nak(adversary, &msg) {
                        return None;
                    }
                    return Some(Err(AgreementError::Wire("corrupted frame".into())));
                }
            }
            // Reordered future messages (a kind the receiver is not ready
            // for yet) go back to the end of the queue, bounded so a
            // missing prerequisite cannot spin forever.
            let expected =
                if msg.to_mobile { self.mobile.expected_kind() } else { self.server.expected_kind() };
            if self.disc.should_defer(expected, frame.kind) {
                self.events.emit_frame("defer", frame.kind.label());
                self.in_flight.push_back(msg);
                return None;
            }
        }
        self.events.emit_frame("deliver", frame.kind.label());
        let (produced, reply_direction) = if msg.to_mobile {
            (self.mobile.handle(&frame, msg.arrival), Direction::MobileToServer)
        } else {
            (self.server.handle(&frame, msg.arrival), Direction::ServerToMobile)
        };
        let produced = match produced {
            Ok(frames) => frames,
            Err(e) => return Some(Err(e)),
        };
        for out in produced {
            self.transmit(adversary, reply_direction, out);
        }
        if self.mobile.is_done() {
            let mobile = self.mobile.as_mobile().expect("mobile endpoint");
            let server = self.server.as_server().expect("server endpoint");
            let mismatch =
                hamming_distance(mobile.preliminary_key(), server.preliminary_key());
            return Some(Ok(ManagedOutcome {
                id: self.id,
                agreement: driver::combine(mobile, server, mismatch),
                server_key: server.key().to_vec(),
                retransmits: self.disc.retransmits(),
            }));
        }
        None
    }

    /// Stamps the session's terminal causal event ("complete", "evict",
    /// or "fail") at the end of its timeline.
    fn emit_terminal(&self, result: &Result<ManagedOutcome, AgreementError>) {
        match result {
            Ok(_) => self.events.emit("complete"),
            Err(AgreementError::Evicted) => self.events.emit("evict"),
            Err(_) => self.events.emit("fail"),
        }
    }
}

/// Interleaves many concurrent machine-driven key agreements.
///
/// Each spawned session is an independent [`MobileAgreement`] /
/// [`ServerAgreement`] pair exchanging *encoded* wire frames through a
/// per-manager adversary hook. [`SessionManager::step`] delivers exactly
/// one message of one session, cycling round-robin — N gestures being
/// served at once, as the paper's line-up context demands. Because each
/// party's RNG stream and logical clock are private to its machine,
/// interleaving cannot change any session's outcome relative to running
/// it alone (the `concurrent_sessions` bench and CI gate assert this).
///
/// Sessions whose wire goes silent (an adversary swallowed a frame) are
/// evicted with [`AgreementError::Evicted`] after `idle_timeout_passes`
/// consecutive empty-queue visits.
#[derive(Debug)]
pub struct SessionManager {
    sessions: Vec<ManagedSession>,
    completed: Vec<(u64, Result<ManagedOutcome, AgreementError>)>,
    cursor: usize,
    next_id: u64,
    idle_timeout_passes: u32,
    retransmits_total: u64,
    obs: Obs,
}

impl SessionManager {
    /// Creates a manager; `idle_timeout_passes` is how many consecutive
    /// scheduler visits with an empty wire a session survives before
    /// eviction.
    pub fn new(idle_timeout_passes: u32) -> SessionManager {
        SessionManager {
            sessions: Vec::new(),
            completed: Vec::new(),
            cursor: 0,
            next_id: 1,
            idle_timeout_passes,
            retransmits_total: 0,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle: per-session flight records and
    /// manager counters land in its collector.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Spawns one session over the given seeds: builds the machine pair,
    /// emits both `M_A` frames onto the wire, and returns the session id.
    ///
    /// # Errors
    ///
    /// [`AgreementError::BadSeeds`] / [`AgreementError::Config`] for
    /// invalid inputs; nothing is spawned in that case.
    pub fn spawn(
        &mut self,
        s_m: &[bool],
        s_r: &[bool],
        config: &AgreementConfig,
        rng_mobile: StdRng,
        rng_server: StdRng,
        adversary: &mut dyn Adversary,
    ) -> Result<u64, AgreementError> {
        if s_m.is_empty() || s_m.len() != s_r.len() {
            return Err(AgreementError::BadSeeds);
        }
        let mut mobile = MobileAgreement::new(s_m, config, rng_mobile)?;
        let mut server = ServerAgreement::new(s_r, config, rng_server)?;
        // Bind causal scopes before start() so the first transitions land
        // in the timeline; `next_id` only advances once the spawn sticks.
        let id = self.next_id;
        let events = EventScope::new(&self.obs, id, "manager");
        if events.is_enabled() {
            mobile.bind_events(events.with_actor("mobile"));
            server.bind_events(events.with_actor("server"));
        }
        let ma_m = mobile.start()?;
        let ma_r = server.start()?;
        self.next_id += 1;
        let mut session = ManagedSession {
            id,
            mobile: Endpoint::mobile(mobile),
            server: Endpoint::server(server),
            channel_delay: config.channel_delay,
            disc: LinkDiscipline::new(config.retry),
            in_flight: VecDeque::new(),
            idle_passes: 0,
            reorder_hold: None,
            events,
        };
        session.transmit(adversary, Direction::MobileToServer, ma_m);
        session.transmit(adversary, Direction::ServerToMobile, ma_r);
        self.sessions.push(session);
        self.obs.inc("manager_sessions_spawned");
        Ok(id)
    }

    /// Spawns a fleet of sessions at once, pooling every machine's start
    /// exponentiations (`g^{a_i}` for both parties of every session) into
    /// **one** cross-session [`ModexpBatch`] so the executor can sweep
    /// them through shared fixed-base tables four lanes at a time. Each
    /// session's logical clock is billed its amortized share of the batch
    /// execution wall time — `wall / (2 · n)` — on top of its own
    /// enqueue/commit compute, so protocol deadlines see the *amortized*
    /// cost that motivates batching.
    ///
    /// Keys and wire bytes are bit-identical to spawning the same
    /// sessions one at a time with [`spawn`](Self::spawn): the enqueue
    /// halves consume each machine's RNG in exactly the order `start()`
    /// does, and the batch executor's results equal the scalar route
    /// (asserted by the crypto layer's differential tests).
    ///
    /// Falls back to per-session [`spawn`](Self::spawn) when batching
    /// cannot apply — `batched_crypto` off, or the sessions own private
    /// tiny-test groups (cross-session batches need a process-shared
    /// group).
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`spawn`](Self::spawn); nothing is spawned on
    /// error.
    pub fn spawn_many(
        &mut self,
        seeds: &[(Vec<bool>, Vec<bool>)],
        config: &AgreementConfig,
        rngs: Vec<(StdRng, StdRng)>,
        adversary: &mut dyn Adversary,
    ) -> Result<Vec<u64>, AgreementError> {
        if seeds.len() != rngs.len() {
            return Err(AgreementError::Config(format!(
                "spawn_many: {} seed pairs but {} rng pairs",
                seeds.len(),
                rngs.len()
            )));
        }
        if !config.batched_crypto || config.use_tiny_group {
            let mut ids = Vec::with_capacity(seeds.len());
            for ((s_m, s_r), (rng_m, rng_r)) in seeds.iter().zip(rngs) {
                ids.push(self.spawn(s_m, s_r, config, rng_m, rng_r, adversary)?);
            }
            return Ok(ids);
        }
        // Build every machine pair and gather all start jobs before
        // executing anything, so a bad spec spawns nothing.
        let mut machines = Vec::with_capacity(seeds.len());
        let mut batch = ModexpBatch::new();
        for ((s_m, s_r), (rng_m, rng_r)) in seeds.iter().zip(rngs) {
            if s_m.is_empty() || s_m.len() != s_r.len() {
                return Err(AgreementError::BadSeeds);
            }
            let mut mobile = MobileAgreement::new(s_m, config, rng_m)?;
            let mut server = ServerAgreement::new(s_r, config, rng_r)?;
            let pend_m = mobile.start_enqueue(&mut batch)?;
            let pend_r = server.start_enqueue(&mut batch)?;
            machines.push((mobile, server, pend_m, pend_r));
        }
        let t = Instant::now();
        let results = batch.execute();
        let share = t.elapsed().as_secs_f64() / (2.0 * machines.len().max(1) as f64);
        let mut ids = Vec::with_capacity(machines.len());
        for (mut mobile, mut server, pend_m, pend_r) in machines {
            let id = self.next_id;
            let events = EventScope::new(&self.obs, id, "manager");
            if events.is_enabled() {
                mobile.bind_events(events.with_actor("mobile"));
                server.bind_events(events.with_actor("server"));
            }
            let ma_m = mobile.start_commit(pend_m, &results, share)?;
            let ma_r = server.start_commit(pend_r, &results, share)?;
            self.next_id += 1;
            let mut session = ManagedSession {
                id,
                mobile: Endpoint::mobile(mobile),
                server: Endpoint::server(server),
                channel_delay: config.channel_delay,
                disc: LinkDiscipline::new(config.retry),
                in_flight: VecDeque::new(),
                idle_passes: 0,
                reorder_hold: None,
                events,
            };
            session.transmit(adversary, Direction::MobileToServer, ma_m);
            session.transmit(adversary, Direction::ServerToMobile, ma_r);
            self.sessions.push(session);
            self.obs.inc("manager_sessions_spawned");
            ids.push(id);
        }
        Ok(ids)
    }

    /// Advances the manager by one scheduling quantum: one message
    /// delivery (or one idle-age tick) of the session under the
    /// round-robin cursor. Returns `true` while live sessions remain.
    pub fn step(&mut self, adversary: &mut dyn Adversary) -> bool {
        if self.sessions.is_empty() {
            return false;
        }
        if self.cursor >= self.sessions.len() {
            self.cursor = 0;
        }
        match self.sessions[self.cursor].advance(adversary, self.idle_timeout_passes) {
            Some(result) => {
                let session = self.sessions.remove(self.cursor);
                session.emit_terminal(&result);
                self.retransmits_total += session.disc.retransmits();
                self.finish(session.id, result);
            }
            None => self.cursor += 1,
        }
        !self.sessions.is_empty()
    }

    /// Steps until every session has completed; returns the number of
    /// successes among all completed sessions.
    pub fn run_to_completion(&mut self, adversary: &mut dyn Adversary) -> usize {
        let obs = self.obs.clone();
        let _drive = obs.span("manager_drive");
        while self.step(adversary) {}
        self.successes()
    }

    /// Drives all live sessions to completion on a pool of `threads` OS
    /// threads stealing work from a shared queue, then returns the number
    /// of successes — the parallel counterpart of [`run_to_completion`].
    ///
    /// Outcomes are **bit-identical** to the sequential scheduler (the
    /// `concurrent_sessions` bench and CI throughput gate assert this):
    ///
    /// * Each session is an independent machine pair with private RNG
    ///   streams and logical clocks; a worker drives one session
    ///   exclusively, delivering its wire FIFO in the same order the
    ///   round-robin scheduler would.
    /// * `make_adversary` builds a fresh interceptor per *session* (not
    ///   per worker), so interception cannot depend on which worker picks
    ///   a session up or how sessions interleave.
    /// * Eviction counts consecutive empty-wire deliveries against the
    ///   same `idle_timeout_passes` threshold as the sequential pass
    ///   counter, so silent sessions fail with the same
    ///   [`AgreementError::Evicted`].
    ///
    /// Results are merged in spawn order (ascending id), making
    /// [`outcomes`](Self::outcomes) deterministic at any thread count.
    /// `threads == 0` resolves to `WAVEKEY_THREADS` when set, else the
    /// machine's available parallelism.
    ///
    /// [`run_to_completion`]: Self::run_to_completion
    pub fn run_to_completion_parallel(
        &mut self,
        threads: usize,
        make_adversary: &(dyn Fn() -> Box<dyn Adversary + Send> + Sync),
    ) -> usize {
        let threads = if threads == 0 {
            wavekey_nn::configured_threads()
                .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
                .unwrap_or(1)
        } else {
            threads
        };
        let sessions = std::mem::take(&mut self.sessions);
        self.cursor = 0;
        let timeout = self.idle_timeout_passes;
        // A worker failure (a panic while driving one session — e.g. a
        // buggy adversary) must not poison the whole drive: it is caught
        // and surfaced as that session's typed `AgreementError::Worker`,
        // and every other session completes normally.
        let drive = |mut session: ManagedSession| {
            let id = session.id;
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut adversary = make_adversary();
                let result = loop {
                    if let Some(r) = session.advance(adversary.as_mut(), timeout) {
                        break r;
                    }
                };
                session.emit_terminal(&result);
                (session.disc.retransmits(), result)
            }));
            match caught {
                Ok((retransmits, result)) => (id, retransmits, result),
                Err(payload) => (id, 0, Err(AgreementError::Worker(panic_message(payload.as_ref())))),
            }
        };
        let mut results = if threads <= 1 || sessions.len() <= 1 {
            sessions.into_iter().map(drive).collect::<Vec<_>>()
        } else {
            let queue = std::sync::Mutex::new(sessions);
            let done = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let Some(session) = queue.lock().unwrap().pop() else { break };
                        let outcome = drive(session);
                        done.lock().unwrap().push(outcome);
                    });
                }
            });
            done.into_inner().unwrap()
        };
        results.sort_by_key(|&(id, _, _)| id);
        for (id, retransmits, result) in results {
            self.retransmits_total += retransmits;
            self.finish(id, result);
        }
        self.successes()
    }

    /// Number of sessions still live.
    pub fn live(&self) -> usize {
        self.sessions.len()
    }

    /// All completed sessions, in completion order.
    pub fn outcomes(&self) -> &[(u64, Result<ManagedOutcome, AgreementError>)] {
        &self.completed
    }

    /// The result of one completed session.
    pub fn outcome(&self, id: u64) -> Option<&Result<ManagedOutcome, AgreementError>> {
        self.completed.iter().find(|(sid, _)| *sid == id).map(|(_, r)| r)
    }

    /// Number of completed sessions that established a key.
    pub fn successes(&self) -> usize {
        self.completed.iter().filter(|(_, r)| r.is_ok()).count()
    }

    /// Total frames the recovery layer put back on the wire across all
    /// completed sessions (drop retransmissions + NAK re-sends).
    pub fn retransmits_total(&self) -> u64 {
        self.retransmits_total
    }

    /// Records counters and the per-session flight record, then archives
    /// the result.
    fn finish(&mut self, id: u64, result: Result<ManagedOutcome, AgreementError>) {
        self.obs.inc("manager_sessions_completed");
        if matches!(result, Err(AgreementError::Evicted)) {
            self.obs.inc("manager_sessions_evicted");
        }
        if matches!(result, Err(AgreementError::Worker(_))) {
            // The session (and its scope) died with the worker: stamp the
            // post-mortem event on a fresh scope whose sequence starts far
            // past any live timeline, so it sorts last without colliding.
            EventScope::starting_at(&self.obs, id, "manager", 1 << 20).emit("worker_panic");
        }
        if let Err(e) = &result {
            // Per-failure-label counter family plus the recoverable /
            // terminal split of the failure taxonomy.
            let label = crate::session::agreement_outcome_label(e);
            self.obs.with_registry(|r| {
                r.inc_counter(&format!("wavekey_failures_total{{label=\"{label}\"}}"), 1);
            });
            if e.is_recoverable() {
                self.obs.inc("manager_failures_recoverable");
            } else {
                self.obs.inc("manager_failures_terminal");
            }
        }
        if self.obs.is_enabled() {
            let mut trace = SessionTrace::new(id);
            match &result {
                Ok(out) => {
                    trace.outcome = "success".to_string();
                    for (name, seconds) in out.agreement.stages.timings() {
                        trace.record_stage(name, seconds);
                    }
                    trace.key_bits = out.agreement.key_bits.len();
                    trace.preliminary_mismatch_bits =
                        Some(out.agreement.preliminary_mismatch_bits);
                    trace.elapsed_s = Some(out.agreement.elapsed);
                    trace.deadline_s = Some(out.agreement.stages.deadline_s);
                    trace.deadline_consumed_s = Some(out.agreement.stages.deadline_consumed_s);
                }
                Err(e) => trace.outcome = crate::session::agreement_outcome_label(e),
            }
            self.obs.session(&trace);
        }
        self.completed.push((id, result));
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agreement::RetryPolicy;
    use crate::config::WaveKeyConfig;

    fn service() -> AccessService {
        let models = WaveKeyModels::new(12, 5);
        let config = SessionConfig {
            use_tiny_group: true,
            wavekey: WaveKeyConfig { tau: 10.0, ..Default::default() },
            ..Default::default()
        };
        AccessService::new(models, config, 77)
    }

    #[test]
    fn tickets_are_unique_and_ordered() {
        let mut svc = service();
        let a = svc.issue_ticket(TagModel::Alien9640A);
        let b = svc.issue_ticket(TagModel::DogBoneA);
        assert_ne!(a.epc, b.epc);
        assert_eq!(a.queue_position, 1);
        assert_eq!(b.queue_position, 2);
        assert_eq!(svc.issued(), 2);
    }

    #[test]
    fn discovery_reports_only_known_tickets() {
        let mut svc = service();
        let t1 = svc.issue_ticket(TagModel::Alien9640A);
        let t2 = svc.issue_ticket(TagModel::Alien9730A);
        let stranger = FieldTag {
            epc: Epc::derive(TagModel::DogBoneB, 9999),
            model: TagModel::DogBoneB,
            position: svc.field_tag(&t1).position,
        };
        let field = vec![svc.field_tag(&t1), svc.field_tag(&t2), stranger];
        let (present, report) = svc.discover_present(&field, 3);
        // The stranger is singulated by the reader but filtered by the
        // service.
        assert!(report.found.len() >= present.len());
        let epcs: Vec<Epc> = present.iter().map(|t| t.epc).collect();
        assert!(epcs.contains(&t1.epc) || epcs.contains(&t2.epc));
        assert!(!epcs.contains(&Epc::derive(TagModel::DogBoneB, 9999)));
    }

    #[test]
    fn enroll_unknown_ticket_fails_cleanly() {
        let mut svc = service();
        let err = svc
            .enroll(Epc::derive(TagModel::Alien9640A, 424242), VolunteerId(0))
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn counters_and_session_traces_reach_the_flight_recorder() {
        let mut svc = service();
        let recorder = std::sync::Arc::new(wavekey_obs::FlightRecorder::new(8));
        svc.set_obs(Obs::new(recorder.clone()));

        let ticket = svc.issue_ticket(TagModel::Alien9640A);
        let _ = svc.enroll(ticket.epc, VolunteerId(0)); // either outcome traces
        assert_eq!(recorder.len(), 1, "enrolment session should be recorded");
        let trace = recorder.latest().expect("trace");
        assert_eq!(trace.seed_len, 48);

        svc.verify_request(ticket.epc, b"msg", &[0u8; 32]);
        let text = svc.obs().prometheus_text();
        assert!(text.contains("service_tickets_issued 1"));
        assert!(text.contains("service_enroll_attempts 1"));
        assert!(text.contains("service_verify_requests 1"));
        assert!(text.contains("service_verify_rejected 1"));
    }

    #[test]
    fn enrolment_binds_key_and_authenticates() {
        let mut svc = service();
        let ticket = svc.issue_ticket(TagModel::Alien9640A);
        // Untrained models: retry until a (lucky or legitimate) success, or
        // accept failure — both paths exercise the binding logic.
        let mut key = None;
        for _ in 0..20 {
            if let Ok(out) = svc.enroll(ticket.epc, VolunteerId(0)) {
                key = Some(out.key);
                break;
            }
        }
        match key {
            Some(key) => {
                assert_eq!(svc.key_for(ticket.epc), Some(key.as_slice()));
                let mac = wavekey_crypto::hmac_sha256(&key, b"paperwork");
                assert!(svc.verify_request(ticket.epc, b"paperwork", &mac));
                assert!(!svc.verify_request(ticket.epc, b"tampered", &mac));
            }
            None => {
                assert_eq!(svc.key_for(ticket.epc), None);
                assert!(!svc.verify_request(ticket.epc, b"x", &[0u8; 32]));
            }
        }
    }

    // ------------------------------------------------- durability rework

    fn service_on(volume: MemVolume, store_config: StoreConfig) -> AccessService {
        let models = WaveKeyModels::new(12, 5);
        let config = SessionConfig {
            use_tiny_group: true,
            wavekey: WaveKeyConfig { tau: 10.0, ..Default::default() },
            ..Default::default()
        };
        AccessService::open(models, config, 77, Box::new(volume), store_config)
            .expect("open service")
    }

    #[test]
    fn service_recovers_bindings_after_a_kill() {
        let media = MemVolume::new();
        let mut svc = service_on(media.clone(), StoreConfig::default());
        let t1 = svc.issue_ticket(TagModel::Alien9640A);
        let t2 = svc.issue_ticket(TagModel::DogBoneB);
        // Synthetic keys: storage behaviour is under test, not agreement.
        svc.store_mut()
            .bind_key(DEFAULT_TENANT, t1.epc.0, &[0xA1; 32])
            .unwrap();
        svc.store_mut()
            .bind_key(DEFAULT_TENANT, t2.epc.0, &[0xB2; 32])
            .unwrap();

        // Kill the process (drop) and recover from the same media.
        drop(svc);
        let mut back = service_on(media.deep_clone(), StoreConfig::default());
        assert_eq!(back.issued(), 2);
        assert_eq!(back.key_for(t1.epc), Some(&[0xA1; 32][..]));
        let mac = wavekey_crypto::hmac_sha256(&[0xB2; 32], b"after-crash");
        assert!(back.verify_request(t2.epc, b"after-crash", &mac));
        // Recovered tickets keep their model and queue position.
        let (present, _) = back.discover_present(&[back.field_tag(&t2)], 5);
        if let Some(found) = present.first() {
            assert_eq!(found.model, TagModel::DogBoneB);
            assert_eq!(found.queue_position, 2);
        }
        assert_eq!(back.store().stats().replays, 1);
    }

    #[test]
    fn tenants_are_isolated_and_quota_limited() {
        let mut svc = service();
        let small = svc
            .create_tenant(TenantQuota { max_tickets: 2, enroll_burst: 5, enroll_refill: 1 })
            .unwrap();
        assert_ne!(small, DEFAULT_TENANT);
        let a = svc.issue_ticket_for(small, TagModel::Alien9640A).unwrap();
        let _b = svc.issue_ticket_for(small, TagModel::Alien9640A).unwrap();
        // Third ticket trips the quota...
        let err = svc.issue_ticket_for(small, TagModel::Alien9640A).unwrap_err();
        assert!(matches!(
            err,
            Error::Store(wavekey_store::StoreError::QuotaExceeded { .. })
        ));
        // ...but the default tenant is unaffected.
        svc.issue_ticket(TagModel::Alien9640A);
        assert_eq!(svc.issued_for(small), 2);
        assert_eq!(svc.issued(), 1);

        // Keys are per-tenant: binding under `small` is invisible to the
        // default tenant even at the same EPC.
        svc.store_mut().bind_key(small, a.epc.0, &[7; 32]).unwrap();
        let mac = wavekey_crypto::hmac_sha256(&[7; 32], b"msg");
        assert!(svc.verify_request_for(small, a.epc, b"msg", &mac));
        assert!(!svc.verify_request_for(DEFAULT_TENANT, a.epc, b"msg", &mac));
    }

    #[test]
    fn enrolment_rate_limit_denies_before_running_a_session() {
        let mut svc = service();
        let starved = svc
            .create_tenant(TenantQuota { max_tickets: 8, enroll_burst: 1, enroll_refill: 1 })
            .unwrap();
        let t = svc.issue_ticket_for(starved, TagModel::Alien9640A).unwrap();
        // First attempt drains the single token (its outcome depends on
        // the untrained models; either way the token is spent).
        let _ = svc.enroll_for(starved, t.epc, VolunteerId(0));
        let err = svc.enroll_for(starved, t.epc, VolunteerId(0)).unwrap_err();
        assert!(matches!(
            err,
            Error::Store(wavekey_store::StoreError::RateLimited { .. })
        ));
        // A tick refills the bucket; the next attempt at least *runs*.
        svc.tick();
        match svc.enroll_for(starved, t.epc, VolunteerId(1)) {
            Err(Error::Store(wavekey_store::StoreError::RateLimited { .. })) => {
                panic!("token refill did not take")
            }
            _ => {}
        }
    }

    #[test]
    fn rotation_chains_generations_and_survives_recovery() {
        let media = MemVolume::new();
        let mut svc = service_on(media.clone(), StoreConfig::default());
        let t = svc.issue_ticket(TagModel::Alien9730A);
        svc.store_mut()
            .bind_key(DEFAULT_TENANT, t.epc.0, &[0x11; 32])
            .unwrap();
        let k2 = svc.rotate_key(DEFAULT_TENANT, t.epc).unwrap();
        let k3 = svc.rotate_key(DEFAULT_TENANT, t.epc).unwrap();
        assert_ne!(k2, k3);
        assert_eq!(
            svc.store().state().ticket(DEFAULT_TENANT, &t.epc.0).unwrap().generation,
            3
        );
        // Old keys stop verifying, the newest verifies.
        let mac_old = wavekey_crypto::hmac_sha256(&[0x11; 32], b"door");
        let mac_new = wavekey_crypto::hmac_sha256(&k3, b"door");
        assert!(!svc.verify_request(t.epc, b"door", &mac_old));
        assert!(svc.verify_request(t.epc, b"door", &mac_new));
        // Rotation on a never-bound ticket is a config error.
        let unbound = svc.issue_ticket(TagModel::Alien9730A);
        assert!(matches!(
            svc.rotate_key(DEFAULT_TENANT, unbound.epc),
            Err(Error::Config(_))
        ));

        drop(svc);
        let mut back = service_on(media.deep_clone(), StoreConfig::default());
        assert_eq!(back.key_for(t.epc), Some(k3.as_slice()));
        assert_eq!(
            back.store().state().ticket(DEFAULT_TENANT, &t.epc.0).unwrap().generation,
            3
        );
        assert!(back.verify_request(t.epc, b"door", &mac_new));
    }

    #[test]
    fn revocation_kills_the_key_for_good() {
        let media = MemVolume::new();
        let mut svc = service_on(media.clone(), StoreConfig::default());
        let t = svc.issue_ticket(TagModel::DogBoneA);
        svc.store_mut()
            .bind_key(DEFAULT_TENANT, t.epc.0, &[0x42; 32])
            .unwrap();
        let mac = wavekey_crypto::hmac_sha256(&[0x42; 32], b"gate");
        assert!(svc.verify_request(t.epc, b"gate", &mac));
        svc.revoke_ticket(DEFAULT_TENANT, t.epc).unwrap();
        assert!(!svc.verify_request(t.epc, b"gate", &mac));
        assert_eq!(svc.key_for(t.epc), None);
        // Recovery replays the revocation; the key does not resurrect.
        drop(svc);
        let mut back = service_on(media.deep_clone(), StoreConfig::default());
        assert!(!back.verify_request(t.epc, b"gate", &mac));
        assert_eq!(back.key_for(t.epc), None);
    }

    #[test]
    fn eviction_under_ceiling_is_transparent_to_verification() {
        let media = MemVolume::new();
        let config = StoreConfig {
            // Room for two 32-byte keys (64-byte ticket overhead each).
            memory_ceiling_bytes: 2 * (wavekey_store::state::TICKET_OVERHEAD_BYTES + 32),
            ..StoreConfig::default()
        };
        let mut svc = service_on(media, config);
        let tickets: Vec<ServiceTicket> =
            (0..5).map(|_| svc.issue_ticket(TagModel::Alien9640A)).collect();
        for (i, t) in tickets.iter().enumerate() {
            svc.store_mut()
                .bind_key(DEFAULT_TENANT, t.epc.0, &[i as u8; 32])
                .unwrap();
        }
        assert!(svc.store().stats().evictions_memory >= 3);
        // Some key is evicted (peek misses)...
        let victim = tickets
            .iter()
            .enumerate()
            .find(|(_, t)| svc.key_for(t.epc).is_none())
            .map(|(i, t)| (i, t.clone()))
            .expect("at least one evicted key");
        // ...but verification reloads it from the journal on demand.
        let mac = wavekey_crypto::hmac_sha256(&[victim.0 as u8; 32], b"badge");
        assert!(svc.verify_request(victim.1.epc, b"badge", &mac));
        assert!(svc.store().stats().reloads >= 1);
        // And fetch_key sees every key regardless of residency.
        for (i, t) in tickets.iter().enumerate() {
            assert_eq!(
                svc.fetch_key(DEFAULT_TENANT, t.epc).unwrap(),
                Some(vec![i as u8; 32])
            );
        }
    }

    #[test]
    fn store_counters_reach_the_obs_registry() {
        let media = MemVolume::new();
        let mut svc = service_on(media.clone(), StoreConfig::default());
        let t = svc.issue_ticket(TagModel::Alien9640A);
        svc.store_mut()
            .bind_key(DEFAULT_TENANT, t.epc.0, &[9; 32])
            .unwrap();
        drop(svc);

        let mut back = service_on(media.deep_clone(), StoreConfig::default());
        let recorder = std::sync::Arc::new(wavekey_obs::FlightRecorder::new(4));
        back.set_obs(Obs::new(recorder));
        back.snapshot().unwrap();
        let text = back.obs().prometheus_text();
        assert!(
            text.contains("wavekey_store_replays_total 1"),
            "missing replay counter in:\n{text}"
        );
        assert!(text.contains("wavekey_store_records_replayed_total"));
        assert!(text.contains("wavekey_store_snapshots_total 1"));
    }

    // ------------------------------------------------------ SessionManager

    use crate::agreement::run_agreement;
    use crate::channel::{Dropper, MessageKind, PassiveChannel, VersionSpoofer};
    use rand::{Rng, SeedableRng};

    fn manager_config() -> AgreementConfig {
        AgreementConfig { use_tiny_group: true, tau: 10.0, bch_t: 5, ..Default::default() }
    }

    fn seed_pair(base: u64) -> (Vec<bool>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(base);
        let s_m: Vec<bool> = (0..24).map(|_| rng.gen()).collect();
        let mut s_r = s_m.clone();
        // One flipped bit: within BCH correction range, exercises
        // reconciliation without failing it.
        s_r[3] = !s_r[3];
        (s_m, s_r)
    }

    #[test]
    fn interleaved_sessions_match_sequential_runs() {
        let config = manager_config();
        let n = 6u64;
        let mut manager = SessionManager::new(4);
        let mut adversary = PassiveChannel;
        let mut ids = Vec::new();
        for i in 0..n {
            let (s_m, s_r) = seed_pair(100 + i);
            let id = manager
                .spawn(
                    &s_m,
                    &s_r,
                    &config,
                    StdRng::seed_from_u64(9000 + i),
                    StdRng::seed_from_u64(9900 + i),
                    &mut adversary,
                )
                .expect("spawn");
            ids.push(id);
        }
        assert_eq!(manager.live(), n as usize);
        let successes = manager.run_to_completion(&mut adversary);
        assert_eq!(successes, n as usize, "all benign sessions succeed");
        assert_eq!(manager.live(), 0);

        for (i, id) in ids.iter().enumerate() {
            let (s_m, s_r) = seed_pair(100 + i as u64);
            let mut rm = StdRng::seed_from_u64(9000 + i as u64);
            let mut rr = StdRng::seed_from_u64(9900 + i as u64);
            let sequential =
                run_agreement(&s_m, &s_r, &config, &mut rm, &mut rr, &mut PassiveChannel)
                    .expect("sequential agreement");
            let managed = manager.outcome(*id).expect("outcome").as_ref().expect("success");
            assert_eq!(managed.agreement.key, sequential.key, "session {id}");
            assert_eq!(managed.server_key, sequential.key, "both parties agree");
            assert_eq!(
                managed.agreement.preliminary_mismatch_bits,
                sequential.preliminary_mismatch_bits
            );
            assert_eq!(managed.agreement.key_bits, sequential.key_bits);
        }
    }

    /// Drives `n` sessions through `spawn_many` under `config` and
    /// returns their established keys in spawn order.
    fn keys_via_spawn_many(config: &AgreementConfig, n: u64) -> Vec<Vec<u8>> {
        let mut manager = SessionManager::new(4);
        let mut adversary = PassiveChannel;
        let seeds: Vec<_> = (0..n).map(|i| seed_pair(100 + i)).collect();
        let rngs: Vec<_> = (0..n)
            .map(|i| (StdRng::seed_from_u64(9000 + i), StdRng::seed_from_u64(9900 + i)))
            .collect();
        let ids = manager.spawn_many(&seeds, config, rngs, &mut adversary).expect("spawn_many");
        assert_eq!(manager.run_to_completion(&mut adversary), n as usize);
        ids.iter()
            .map(|id| {
                let out = manager.outcome(*id).expect("outcome").as_ref().expect("success");
                assert_eq!(out.agreement.key, out.server_key, "both parties agree");
                out.agreement.key.clone()
            })
            .collect()
    }

    /// Drives the same `n` sessions through per-session `spawn` calls.
    fn keys_via_spawn_loop(config: &AgreementConfig, n: u64) -> Vec<Vec<u8>> {
        let mut manager = SessionManager::new(4);
        let mut adversary = PassiveChannel;
        let ids: Vec<u64> = (0..n)
            .map(|i| {
                let (s_m, s_r) = seed_pair(100 + i);
                manager
                    .spawn(
                        &s_m,
                        &s_r,
                        config,
                        StdRng::seed_from_u64(9000 + i),
                        StdRng::seed_from_u64(9900 + i),
                        &mut adversary,
                    )
                    .expect("spawn")
            })
            .collect();
        assert_eq!(manager.run_to_completion(&mut adversary), n as usize);
        ids.iter()
            .map(|id| {
                manager.outcome(*id).expect("outcome").as_ref().expect("success").agreement.key.clone()
            })
            .collect()
    }

    /// The tentpole's end-to-end equivalence pin: pooling the fleet's
    /// start exponentiations into one cross-session batch (and routing
    /// every OT round through the batch executor) yields keys
    /// bit-identical to per-session scalar spawning — on the WAVEKEY-1024
    /// fleet group where the Crandall fold path is live.
    #[test]
    fn spawn_many_batched_keys_match_scalar_spawn_loop() {
        let n = 3u64;
        let batched = AgreementConfig {
            use_tiny_group: false,
            fleet_group: true,
            batched_crypto: true,
            tau: 10.0,
            bch_t: 5,
            ..Default::default()
        };
        let scalar = AgreementConfig { batched_crypto: false, ..batched };

        let pooled = keys_via_spawn_many(&batched, n);
        let batched_loop = keys_via_spawn_loop(&batched, n);
        let scalar_loop = keys_via_spawn_loop(&scalar, n);
        assert_eq!(pooled, batched_loop, "pooled starts change no key");
        assert_eq!(pooled, scalar_loop, "batched executor matches scalar route bit-for-bit");
        for key in &pooled {
            assert!(!key.is_empty());
        }
    }

    /// `spawn_many` on a tiny owned group (batching inapplicable) falls
    /// back to the plain spawn loop, bit-identically.
    #[test]
    fn spawn_many_falls_back_for_owned_groups() {
        let config = AgreementConfig { batched_crypto: true, ..manager_config() };
        assert_eq!(keys_via_spawn_many(&config, 4), keys_via_spawn_loop(&config, 4));
    }

    /// Spawns `n` deterministic benign sessions into a fresh manager.
    fn spawn_benign(manager: &mut SessionManager, n: u64) -> Vec<u64> {
        let config = manager_config();
        let mut adversary = PassiveChannel;
        (0..n)
            .map(|i| {
                let (s_m, s_r) = seed_pair(100 + i);
                manager
                    .spawn(
                        &s_m,
                        &s_r,
                        &config,
                        StdRng::seed_from_u64(9000 + i),
                        StdRng::seed_from_u64(9900 + i),
                        &mut adversary,
                    )
                    .expect("spawn")
            })
            .collect()
    }

    #[test]
    fn parallel_drive_matches_sequential_outcomes_at_any_width() {
        let n = 6u64;
        let mut sequential = SessionManager::new(4);
        let ids = spawn_benign(&mut sequential, n);
        let seq_successes = sequential.run_to_completion(&mut PassiveChannel);

        for threads in [1usize, 2, 4] {
            let mut parallel = SessionManager::new(4);
            let par_ids = spawn_benign(&mut parallel, n);
            assert_eq!(ids, par_ids, "same spawn order");
            let par_successes =
                parallel.run_to_completion_parallel(threads, &|| Box::new(PassiveChannel));
            assert_eq!(par_successes, seq_successes, "{threads} threads");
            for id in &ids {
                let seq = sequential.outcome(*id).expect("seq").as_ref().expect("ok");
                let par = parallel.outcome(*id).expect("par").as_ref().expect("ok");
                assert_eq!(par.agreement.key, seq.agreement.key, "session {id}");
                assert_eq!(par.server_key, seq.server_key);
                assert_eq!(par.agreement.key_bits, seq.agreement.key_bits);
                assert_eq!(
                    par.agreement.preliminary_mismatch_bits,
                    seq.agreement.preliminary_mismatch_bits
                );
            }
            // Results merge in spawn order regardless of completion order.
            let order: Vec<u64> = parallel.outcomes().iter().map(|(id, _)| *id).collect();
            assert_eq!(order, ids);
        }
    }

    #[test]
    fn parallel_drive_preserves_eviction_semantics() {
        let config = manager_config();
        let mut manager = SessionManager::new(3);
        let ids: Vec<u64> = (0..3u64)
            .map(|i| {
                let (s_m, s_r) = seed_pair(70 + i);
                manager
                    .spawn(
                        &s_m,
                        &s_r,
                        &config,
                        StdRng::seed_from_u64(81 + i),
                        StdRng::seed_from_u64(91 + i),
                        &mut Dropper { target: MessageKind::OtE },
                    )
                    .expect("spawn")
            })
            .collect();
        let successes = manager
            .run_to_completion_parallel(2, &|| Box::new(Dropper { target: MessageKind::OtE }));
        assert_eq!(successes, 0);
        for id in ids {
            assert!(
                matches!(manager.outcome(id), Some(Err(AgreementError::Evicted))),
                "session {id} must be evicted"
            );
        }
    }

    #[test]
    fn silent_sessions_are_evicted() {
        let config = manager_config();
        let (s_m, s_r) = seed_pair(7);
        let mut manager = SessionManager::new(3);
        let mut adversary = Dropper { target: MessageKind::OtE };
        let id = manager
            .spawn(
                &s_m,
                &s_r,
                &config,
                StdRng::seed_from_u64(1),
                StdRng::seed_from_u64(2),
                &mut adversary,
            )
            .expect("spawn");
        manager.run_to_completion(&mut adversary);
        assert!(matches!(manager.outcome(id), Some(Err(AgreementError::Evicted))));
        assert_eq!(manager.successes(), 0);
    }

    #[test]
    fn spoofed_versions_fail_as_wire_errors() {
        let config = manager_config();
        let (s_m, s_r) = seed_pair(8);
        let mut manager = SessionManager::new(3);
        let mut adversary = VersionSpoofer { target: MessageKind::OtB, version: 0x7f };
        let id = manager
            .spawn(
                &s_m,
                &s_r,
                &config,
                StdRng::seed_from_u64(3),
                StdRng::seed_from_u64(4),
                &mut adversary,
            )
            .expect("spawn");
        manager.run_to_completion(&mut adversary);
        assert!(matches!(manager.outcome(id), Some(Err(AgreementError::Wire(_)))));
    }

    #[test]
    fn manager_traces_and_counters_reach_the_collector() {
        let config = manager_config();
        let recorder = std::sync::Arc::new(wavekey_obs::FlightRecorder::new(8));
        let mut manager = SessionManager::new(3);
        manager.set_obs(Obs::new(recorder.clone()));
        let mut adversary = PassiveChannel;
        for i in 0..2 {
            let (s_m, s_r) = seed_pair(40 + i);
            manager
                .spawn(
                    &s_m,
                    &s_r,
                    &config,
                    StdRng::seed_from_u64(50 + i),
                    StdRng::seed_from_u64(60 + i),
                    &mut adversary,
                )
                .expect("spawn");
        }
        manager.run_to_completion(&mut adversary);
        assert_eq!(recorder.len(), 2, "one flight record per session");
        let trace = recorder.latest().expect("trace");
        assert_eq!(trace.outcome, "success");
        assert!(trace.key_bits > 0);
        let text = manager.obs.prometheus_text();
        assert!(text.contains("manager_sessions_spawned 2"));
        assert!(text.contains("manager_sessions_completed 2"));
    }

    // -------------------------------------------------- fault recovery

    use crate::fault::{FaultKind, FaultPlan, ScheduledFault};

    fn arq_config() -> AgreementConfig {
        AgreementConfig { retry: RetryPolicy::arq(), ..manager_config() }
    }

    /// Same seeds, same fault plan → byte-identical causal timelines: the
    /// sharded event log's JSONL export is deterministic, and it carries
    /// both the machines' state transitions and the manager's recovery
    /// events.
    #[test]
    fn causal_timelines_are_deterministic_under_replayed_faults() {
        use crate::fault::FaultProfile;
        use std::sync::Arc;
        use wavekey_obs::EventLog;

        let run = || {
            let log = Arc::new(EventLog::new(256));
            let obs = Obs::new(log.clone());
            let config = arq_config();
            let mut manager = SessionManager::new(8);
            manager.set_obs(obs);
            let mut plan = FaultPlan::new(42, FaultProfile::reference());
            for i in 0..6u64 {
                let (s_m, s_r) = seed_pair(800 + i);
                manager
                    .spawn(
                        &s_m,
                        &s_r,
                        &config,
                        StdRng::seed_from_u64(8100 + i),
                        StdRng::seed_from_u64(8200 + i),
                        &mut plan,
                    )
                    .expect("spawn");
            }
            manager.run_to_completion(&mut plan);
            log.timelines_jsonl()
        };
        let first = run();
        let second = run();
        assert!(!first.is_empty(), "timelines were recorded");
        assert!(first.contains("\"kind\":\"state\""), "machine transitions present");
        assert!(first.contains("\"kind\":\"deliver\""), "manager deliveries present");
        assert_eq!(first, second, "timelines byte-identical under a fixed seed");
    }

    /// Runs one managed session over `adversary` with `config`; returns
    /// the manager for inspection.
    fn run_one(config: &AgreementConfig, adversary: &mut dyn Adversary) -> (u64, SessionManager) {
        let (s_m, s_r) = seed_pair(555);
        let mut manager = SessionManager::new(8);
        let id = manager
            .spawn(
                &s_m,
                &s_r,
                config,
                StdRng::seed_from_u64(7001),
                StdRng::seed_from_u64(7002),
                adversary,
            )
            .expect("spawn");
        manager.run_to_completion(adversary);
        (id, manager)
    }

    /// Every scripted single-fault scenario recovers to the *same key* a
    /// fault-free run establishes: retransmission and replay consume no
    /// RNG, so recovery cannot steer the protocol.
    #[test]
    fn scripted_faults_recover_to_the_fault_free_key() {
        let config = arq_config();
        let (baseline_id, baseline) = run_one(&config, &mut PassiveChannel);
        let baseline_key = baseline
            .outcome(baseline_id)
            .expect("outcome")
            .as_ref()
            .expect("fault-free success")
            .agreement
            .key
            .clone();
        assert_eq!(baseline.retransmits_total(), 0, "no faults, no retransmits");

        let scenarios: Vec<(&str, Direction, MessageKind, FaultKind)> = vec![
            ("drop", Direction::ServerToMobile, MessageKind::OtA, FaultKind::Drop),
            ("duplicate", Direction::MobileToServer, MessageKind::OtB, FaultKind::Duplicate),
            ("reorder", Direction::ServerToMobile, MessageKind::OtA, FaultKind::Reorder),
            ("truncate", Direction::ServerToMobile, MessageKind::OtA, FaultKind::Truncate),
            ("corrupt", Direction::MobileToServer, MessageKind::OtB, FaultKind::Corrupt),
            ("delay", Direction::MobileToServer, MessageKind::OtE, FaultKind::Delay),
        ];
        for (name, direction, kind, fault) in scenarios {
            let mut plan = FaultPlan::scripted(
                1,
                vec![ScheduledFault { direction, kind, occurrence: 0, fault }],
            );
            let (id, manager) = run_one(&config, &mut plan);
            let outcome = manager
                .outcome(id)
                .expect("outcome")
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}: session failed: {e}"));
            assert_eq!(outcome.agreement.key, baseline_key, "{name}: key diverged");
            assert_eq!(outcome.server_key, baseline_key, "{name}: server key diverged");
            let needs_resend = matches!(
                fault,
                FaultKind::Drop | FaultKind::Truncate | FaultKind::Corrupt
            );
            assert_eq!(
                manager.retransmits_total() > 0,
                needs_resend,
                "{name}: retransmits_total = {}",
                manager.retransmits_total()
            );
        }
    }

    /// The same drop that recovery survives is fatal without a retry
    /// policy: the frame vanishes and the session is evicted.
    #[test]
    fn dropped_frame_without_retry_policy_is_fatal() {
        let mut plan = FaultPlan::scripted(
            1,
            vec![ScheduledFault {
                direction: Direction::ServerToMobile,
                kind: MessageKind::OtA,
                occurrence: 0,
                fault: FaultKind::Drop,
            }],
        );
        let (id, manager) = run_one(&manager_config(), &mut plan);
        let outcome = manager.outcome(id).expect("completed");
        assert!(outcome.is_err(), "drop without retry must be fatal, got {outcome:?}");
        assert_eq!(manager.retransmits_total(), 0, "no retry policy, no retransmits");
    }

    /// Retransmission backoff is charged against the paper's `2 + τ`
    /// deadline: a retry whose backoff exceeds the slack arrives too late
    /// and the session fails with the deadline's own error, not silence.
    #[test]
    fn retransmission_backoff_is_charged_against_the_deadline() {
        let config = AgreementConfig {
            retry: RetryPolicy { max_retries: 3, backoff_base_s: 20.0, backoff_factor: 1.0 },
            ..manager_config()
        };
        // M_{A,R} (server -> mobile OtA) is the mobile's budgeted message.
        let mut plan = FaultPlan::scripted(
            1,
            vec![ScheduledFault {
                direction: Direction::ServerToMobile,
                kind: MessageKind::OtA,
                occurrence: 0,
                fault: FaultKind::Drop,
            }],
        );
        let (id, manager) = run_one(&config, &mut plan);
        // tau = 10.0: one 20 s backoff pushes the arrival past the fence.
        assert!(
            matches!(manager.outcome(id), Some(Err(AgreementError::Timeout(MessageKind::OtA)))),
            "expected Timeout(OtA), got {:?}",
            manager.outcome(id)
        );
    }

    /// With no faults on the wire, enabling the retry policy changes
    /// nothing: outcomes are bit-identical to the no-retry manager.
    #[test]
    fn fault_free_runs_are_bit_identical_with_and_without_retry() {
        let (id_a, plain) = run_one(&manager_config(), &mut PassiveChannel);
        let (id_b, arq) = run_one(&arq_config(), &mut PassiveChannel);
        let a = plain.outcome(id_a).expect("a").as_ref().expect("ok");
        let b = arq.outcome(id_b).expect("b").as_ref().expect("ok");
        assert_eq!(a.agreement.key, b.agreement.key);
        assert_eq!(a.agreement.key_bits, b.agreement.key_bits);
        assert_eq!(a.server_key, b.server_key);
        assert_eq!(arq.retransmits_total(), 0);
    }

    /// An adversary whose `intercept` panics mid-protocol must not poison
    /// the parallel drive: the affected sessions complete with the typed
    /// `Worker` error and the manager stays usable.
    #[test]
    fn panicking_adversary_surfaces_as_typed_worker_error() {
        struct PanickingAdversary;
        impl Adversary for PanickingAdversary {
            fn intercept(&mut self, _d: Direction, frame: &mut Frame) -> AdversaryAction {
                if frame.kind == MessageKind::OtE {
                    panic!("adversary exploded");
                }
                AdversaryAction::Forward
            }
        }
        let recorder = std::sync::Arc::new(wavekey_obs::FlightRecorder::new(8));
        let mut manager = SessionManager::new(4);
        manager.set_obs(Obs::new(recorder.clone()));
        let config = manager_config();
        let ids: Vec<u64> = (0..3u64)
            .map(|i| {
                let (s_m, s_r) = seed_pair(300 + i);
                manager
                    .spawn(
                        &s_m,
                        &s_r,
                        &config,
                        StdRng::seed_from_u64(310 + i),
                        StdRng::seed_from_u64(320 + i),
                        &mut PanickingAdversary,
                    )
                    .expect("spawn")
            })
            .collect();
        // Silence the default panic-to-stderr hook for the duration.
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let successes = manager.run_to_completion_parallel(2, &|| Box::new(PanickingAdversary));
        std::panic::set_hook(prior);
        assert_eq!(successes, 0);
        for id in ids {
            match manager.outcome(id) {
                Some(Err(AgreementError::Worker(msg))) => {
                    assert!(msg.contains("adversary exploded"), "message: {msg}");
                }
                other => panic!("session {id}: expected Worker error, got {other:?}"),
            }
        }
        let text = manager.obs.prometheus_text();
        assert!(
            text.contains("wavekey_failures_total{label=\"worker_panic\"} 3"),
            "labeled counter missing:\n{text}"
        );
        assert!(text.contains("manager_failures_terminal 3"));
    }

    /// Eviction (a recoverable failure class) lands in both the labeled
    /// failure-counter family and the recoverable/terminal split.
    #[test]
    fn failure_labels_reach_the_exporter() {
        let recorder = std::sync::Arc::new(wavekey_obs::FlightRecorder::new(8));
        let mut manager = SessionManager::new(3);
        manager.set_obs(Obs::new(recorder.clone()));
        let (s_m, s_r) = seed_pair(9);
        let mut adversary = Dropper { target: MessageKind::OtE };
        manager
            .spawn(
                &s_m,
                &s_r,
                &manager_config(),
                StdRng::seed_from_u64(5),
                StdRng::seed_from_u64(6),
                &mut adversary,
            )
            .expect("spawn");
        manager.run_to_completion(&mut adversary);
        let text = manager.obs.prometheus_text();
        assert!(text.contains("wavekey_failures_total{label=\"evicted\"} 1"), "{text}");
        assert!(text.contains("manager_failures_recoverable 1"));
    }

    /// The enrolment degradation ladder: BCH escalation re-runs the same
    /// seeds at higher correction capacity, and a re-gesture gets one
    /// more wave — recovering enrolments the base path loses. Disabled
    /// policy keeps the base path untouched.
    #[test]
    fn enroll_degradation_ladder_recovers_failures() {
        // Service seed 23 deterministically produces a first gesture whose
        // seed mismatch exceeds the base BCH capacity but sits inside the
        // ladder's reach (escalated `t` or one re-gesture) — found by
        // scanning; any such seed works.
        let mk = |seed: u64| {
            let models = WaveKeyModels::new(12, 5);
            let config = SessionConfig {
                use_tiny_group: true,
                wavekey: WaveKeyConfig { tau: 10.0, ..Default::default() },
                ..Default::default()
            };
            AccessService::new(models, config, seed)
        };

        let mut base = mk(23);
        let ticket = base.issue_ticket(TagModel::Alien9640A);
        let err = base.enroll(ticket.epc, VolunteerId(0)).unwrap_err();
        assert!(matches!(err, Error::Agreement(_)), "{err}");
        assert_eq!(base.key_for(ticket.epc), None);

        let mut ladder = mk(23);
        ladder.set_degrade_policy(DegradePolicy::reference());
        let recorder = std::sync::Arc::new(wavekey_obs::FlightRecorder::new(64));
        ladder.set_obs(Obs::new(recorder.clone()));
        let ticket = ladder.issue_ticket(TagModel::Alien9640A);
        let out = ladder
            .enroll(ticket.epc, VolunteerId(0))
            .expect("ladder recovers the same gesture the base path loses");
        assert_eq!(ladder.key_for(ticket.epc), Some(out.key.as_slice()));
        let text = ladder.obs().prometheus_text();
        assert!(text.contains("service_enroll_escalations"), "{text}");
        assert!(text.contains("service_enroll_recovered 1"), "{text}");
        assert!(text.contains("service_enroll_success 1"), "{text}");
        assert!(!text.contains("service_enroll_failures"), "{text}");
    }

    #[test]
    fn manager_rejects_bad_seeds_without_spawning() {
        let config = manager_config();
        let mut manager = SessionManager::new(3);
        let err = manager
            .spawn(
                &[],
                &[],
                &config,
                StdRng::seed_from_u64(1),
                StdRng::seed_from_u64(2),
                &mut PassiveChannel,
            )
            .unwrap_err();
        assert!(matches!(err, AgreementError::BadSeeds));
        assert_eq!(manager.live(), 0);
    }
}
