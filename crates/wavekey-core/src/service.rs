//! A multi-user WaveKey access service — the backend of the paper's
//! Context 1 (RFID line-up systems) and Context 2/3 enrolment flows.
//!
//! The service issues RFID tickets (EPCs), discovers which tickets are
//! physically present via Gen2 inventory, runs a key-establishment
//! session against a chosen ticket, and remembers the binding
//! `EPC → session key` so subsequent wireless requests can be
//! authenticated. This is the "downstream adopter" face of the library:
//! everything below it (simulation, training, protocol) is wired up by
//! [`crate::session::Session`].

use crate::model::WaveKeyModels;
use crate::session::{Session, SessionConfig, SessionOutcome};
use crate::Error;
use std::collections::HashMap;
use wavekey_obs::Obs;
use wavekey_imu::gesture::VolunteerId;
use wavekey_rfid::channel::TagModel;
use wavekey_rfid::environment::Environment;
use wavekey_rfid::inventory::{run_inventory, Epc, FieldTag, InventoryConfig, InventoryReport};
use wavekey_math::Vec3;

/// A ticket issued by the service: an RFID tag identity plus a queue slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceTicket {
    /// The ticket's EPC.
    pub epc: Epc,
    /// The physical tag model the dispenser loaded.
    pub model: TagModel,
    /// Position in the service queue (1-based).
    pub queue_position: u32,
}

/// What the service knows about one ticket.
#[derive(Debug, Clone)]
struct TicketRecord {
    ticket: ServiceTicket,
    key: Option<Vec<u8>>,
}

/// The line-up / access-control backend.
#[derive(Debug)]
pub struct AccessService {
    models: WaveKeyModels,
    base_config: SessionConfig,
    tickets: HashMap<Epc, TicketRecord>,
    next_serial: u32,
    session_seed: u64,
    obs: Obs,
}

impl AccessService {
    /// Creates a service with trained models and a base session
    /// configuration (environment, placement defaults).
    pub fn new(models: WaveKeyModels, base_config: SessionConfig, seed: u64) -> AccessService {
        AccessService {
            models,
            base_config,
            tickets: HashMap::new(),
            next_serial: 1,
            session_seed: seed,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle. The service keeps its own
    /// counters (tickets issued, enrolments, request verifications) and
    /// forwards the handle into every enrolment session, so per-session
    /// traces land in the same collector (e.g. a
    /// [`wavekey_obs::FlightRecorder`]).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The attached observability handle (disabled by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Issues a fresh ticket (the paper's automatic dispenser).
    pub fn issue_ticket(&mut self, model: TagModel) -> ServiceTicket {
        let serial = self.next_serial;
        self.next_serial += 1;
        let ticket = ServiceTicket {
            epc: Epc::derive(model, serial),
            model,
            queue_position: serial,
        };
        self.tickets.insert(
            ticket.epc,
            TicketRecord { ticket: ticket.clone(), key: None },
        );
        self.obs.inc("service_tickets_issued");
        ticket
    }

    /// Number of issued tickets.
    pub fn issued(&self) -> usize {
        self.tickets.len()
    }

    /// Runs a Gen2 inventory over the simulated waiting area and returns
    /// which *known* tickets are present (unknown EPCs are ignored —
    /// visitors' other tags are not our business).
    pub fn discover_present(
        &self,
        in_field: &[FieldTag],
        seed: u64,
    ) -> (Vec<ServiceTicket>, InventoryReport) {
        let env = Environment::room(self.base_config.environment_id);
        let channel = env.channel(self.base_config.tag, self.base_config.walkers, seed);
        let report = run_inventory(in_field, &channel, &InventoryConfig::default(), seed);
        let present = report
            .found
            .iter()
            .filter_map(|epc| self.tickets.get(epc).map(|r| r.ticket.clone()))
            .collect();
        (present, report)
    }

    /// Builds the field-tag descriptor for a ticket standing at the
    /// service's default user placement (helper for simulations).
    pub fn field_tag(&self, ticket: &ServiceTicket) -> FieldTag {
        let env = Environment::room(self.base_config.environment_id);
        let position = self.base_config.placement.hand_position(&env) + Vec3::new(0.03, 0.0, 0.0);
        FieldTag { epc: ticket.epc, model: ticket.model, position }
    }

    /// Runs one key-establishment attempt for `epc`: the visitor waves
    /// their device (simulated as `volunteer`) together with the ticket.
    /// On success the key is bound to the ticket.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for unknown tickets; otherwise the session's
    /// failure taxonomy (the caller retries, as a kiosk flow would).
    pub fn enroll(
        &mut self,
        epc: Epc,
        volunteer: VolunteerId,
    ) -> Result<SessionOutcome, Error> {
        let record = self
            .tickets
            .get(&epc)
            .ok_or_else(|| Error::Config(format!("unknown ticket {epc}")))?;
        let config = SessionConfig {
            volunteer,
            tag: record.ticket.model,
            ..self.base_config.clone()
        };
        self.session_seed = self.session_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut session = Session::new(config, self.models.clone(), self.session_seed);
        session.set_obs(self.obs.clone());
        self.obs.inc("service_enroll_attempts");
        let span = self.obs.span("service_enroll");
        let result = session.establish_key_fast();
        span.finish();
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(e) => {
                self.obs.inc("service_enroll_failures");
                return Err(e);
            }
        };
        self.obs.inc("service_enroll_success");
        self.tickets
            .get_mut(&epc)
            .expect("checked above")
            .key = Some(outcome.key.clone());
        Ok(outcome)
    }

    /// The key bound to a ticket, if enrolment succeeded.
    pub fn key_for(&self, epc: Epc) -> Option<&[u8]> {
        self.tickets.get(&epc).and_then(|r| r.key.as_deref())
    }

    /// Authenticates a wireless request: an HMAC over `message` keyed by
    /// the ticket's bound key.
    ///
    /// Returns `false` for unknown or un-enrolled tickets.
    pub fn verify_request(&self, epc: Epc, message: &[u8], mac: &[u8]) -> bool {
        self.obs.inc("service_verify_requests");
        let accepted = match self.key_for(epc) {
            Some(key) => wavekey_crypto::hmac::mac_eq(
                &wavekey_crypto::hmac_sha256(key, message),
                mac,
            ),
            None => false,
        };
        if accepted {
            self.obs.inc("service_verify_accepted");
        } else {
            self.obs.inc("service_verify_rejected");
        }
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WaveKeyConfig;

    fn service() -> AccessService {
        let models = WaveKeyModels::new(12, 5);
        let config = SessionConfig {
            use_tiny_group: true,
            wavekey: WaveKeyConfig { tau: 10.0, ..Default::default() },
            ..Default::default()
        };
        AccessService::new(models, config, 77)
    }

    #[test]
    fn tickets_are_unique_and_ordered() {
        let mut svc = service();
        let a = svc.issue_ticket(TagModel::Alien9640A);
        let b = svc.issue_ticket(TagModel::DogBoneA);
        assert_ne!(a.epc, b.epc);
        assert_eq!(a.queue_position, 1);
        assert_eq!(b.queue_position, 2);
        assert_eq!(svc.issued(), 2);
    }

    #[test]
    fn discovery_reports_only_known_tickets() {
        let mut svc = service();
        let t1 = svc.issue_ticket(TagModel::Alien9640A);
        let t2 = svc.issue_ticket(TagModel::Alien9730A);
        let stranger = FieldTag {
            epc: Epc::derive(TagModel::DogBoneB, 9999),
            model: TagModel::DogBoneB,
            position: svc.field_tag(&t1).position,
        };
        let field = vec![svc.field_tag(&t1), svc.field_tag(&t2), stranger];
        let (present, report) = svc.discover_present(&field, 3);
        // The stranger is singulated by the reader but filtered by the
        // service.
        assert!(report.found.len() >= present.len());
        let epcs: Vec<Epc> = present.iter().map(|t| t.epc).collect();
        assert!(epcs.contains(&t1.epc) || epcs.contains(&t2.epc));
        assert!(!epcs.contains(&Epc::derive(TagModel::DogBoneB, 9999)));
    }

    #[test]
    fn enroll_unknown_ticket_fails_cleanly() {
        let mut svc = service();
        let err = svc
            .enroll(Epc::derive(TagModel::Alien9640A, 424242), VolunteerId(0))
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn counters_and_session_traces_reach_the_flight_recorder() {
        let mut svc = service();
        let recorder = std::sync::Arc::new(wavekey_obs::FlightRecorder::new(8));
        svc.set_obs(Obs::new(recorder.clone()));

        let ticket = svc.issue_ticket(TagModel::Alien9640A);
        let _ = svc.enroll(ticket.epc, VolunteerId(0)); // either outcome traces
        assert_eq!(recorder.len(), 1, "enrolment session should be recorded");
        let trace = recorder.latest().expect("trace");
        assert_eq!(trace.seed_len, 48);

        svc.verify_request(ticket.epc, b"msg", &[0u8; 32]);
        let text = svc.obs().prometheus_text();
        assert!(text.contains("service_tickets_issued 1"));
        assert!(text.contains("service_enroll_attempts 1"));
        assert!(text.contains("service_verify_requests 1"));
        assert!(text.contains("service_verify_rejected 1"));
    }

    #[test]
    fn enrolment_binds_key_and_authenticates() {
        let mut svc = service();
        let ticket = svc.issue_ticket(TagModel::Alien9640A);
        // Untrained models: retry until a (lucky or legitimate) success, or
        // accept failure — both paths exercise the binding logic.
        let mut key = None;
        for _ in 0..20 {
            if let Ok(out) = svc.enroll(ticket.epc, VolunteerId(0)) {
                key = Some(out.key);
                break;
            }
        }
        match key {
            Some(key) => {
                assert_eq!(svc.key_for(ticket.epc), Some(key.as_slice()));
                let mac = wavekey_crypto::hmac_sha256(&key, b"paperwork");
                assert!(svc.verify_request(ticket.epc, b"paperwork", &mac));
                assert!(!svc.verify_request(ticket.epc, b"tampered", &mac));
            }
            None => {
                assert_eq!(svc.key_for(ticket.epc), None);
                assert!(!svc.verify_request(ticket.epc, b"x", &[0u8; 32]));
            }
        }
    }
}
