//! Sans-IO protocol state machines for the §IV-D key agreement.
//!
//! The agreement logic lives in two state machines — [`MobileAgreement`]
//! and [`ServerAgreement`] — that never touch a socket, a clock source,
//! or the other party: they consume framed wire messages
//! ([`frame::Frame`]) plus a caller-supplied logical arrival time and
//! produce frames to send. All IO, scheduling, and channel modelling
//! stays with the driver:
//!
//! * [`driver::drive_lockstep`] replays the classic in-process lockstep
//!   exchange (it *is* [`crate::agreement::run_agreement`] now), keeping
//!   protocol outputs bit-identical to the monolithic implementation it
//!   replaced — the per-party RNG draw order is the machines', which is
//!   the monolith's.
//! * [`crate::service::SessionManager`] interleaves many machine pairs
//!   round-robin over byte-encoded frames.
//!
//! Each machine advances through explicit [`State`]s
//! (`Init → OtRound(i) → Reconcile → Confirm → Done/Failed`), and each
//! *expected message kind* can carry its own arrival deadline via
//! [`DeadlineBudgets`] — the paper's single `2 + τ` fence is the special
//! case that budgets `M_{A,R}` at the mobile and `M_{B,M}` at the server.

pub mod driver;
pub mod frame;
pub mod link;
pub mod mobile;
pub mod server;

pub use frame::{Decoder, Frame, FrameError};
pub use link::{Endpoint, LinkDiscipline};
pub use mobile::MobileAgreement;
pub use server::ServerAgreement;

use crate::agreement::{AgreementConfig, AgreementError, AgreementStages};
use crate::channel::MessageKind;
use rand::rngs::StdRng;
use std::time::Instant;
use wavekey_crypto::group::DhGroup;
use wavekey_obs::EventScope;

/// Where a protocol machine currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Constructed; `start()` has not produced `M_A` yet.
    Init,
    /// Inside the batched OT: awaiting `M_A` (0), `M_B` (1), `M_E` (2).
    OtRound(u8),
    /// OT finished, preliminary key assembled; the mobile is about to
    /// commit, the server awaits the `Challenge`.
    Reconcile,
    /// Mobile only: challenge sent, awaiting the HMAC `Response`.
    Confirm,
    /// Key established (mobile: verified; server: response sent).
    Done,
    /// A protocol error occurred; the machine accepts nothing further.
    Failed,
}

impl State {
    /// Stable label for causal event timelines.
    pub fn label(self) -> &'static str {
        match self {
            State::Init => "init",
            State::OtRound(0) => "ot_round_a",
            State::OtRound(1) => "ot_round_b",
            State::OtRound(2) => "ot_round_e",
            State::OtRound(_) => "ot_round",
            State::Reconcile => "reconcile",
            State::Confirm => "confirm",
            State::Done => "done",
            State::Failed => "failed",
        }
    }
}

/// Per-message arrival deadlines, in absolute protocol seconds (the
/// logical clock starts at 0 when the gesture starts).
///
/// `None` means unbudgeted. The paper's model budgets exactly two
/// messages — `M_{A,R}` arriving at the mobile and `M_{B,M}` arriving at
/// the server, both at `gesture_window + τ` — which
/// [`DeadlineBudgets::mobile_paper`] / [`DeadlineBudgets::server_paper`]
/// encode. Drivers with different transports can budget any state's
/// expected message via [`DeadlineBudgets::with`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeadlineBudgets {
    ot_a: Option<f64>,
    ot_b: Option<f64>,
    ot_e: Option<f64>,
    challenge: Option<f64>,
    response: Option<f64>,
}

impl DeadlineBudgets {
    /// No deadlines at all.
    pub fn none() -> DeadlineBudgets {
        DeadlineBudgets::default()
    }

    /// The mobile's paper-model budgets: `M_{A,R}` must arrive by
    /// `gesture_window + τ` (§IV-D).
    pub fn mobile_paper(config: &AgreementConfig) -> DeadlineBudgets {
        DeadlineBudgets::none().with(MessageKind::OtA, config.gesture_window + config.tau)
    }

    /// The server's paper-model budgets: `M_{B,M}` must arrive by
    /// `gesture_window + τ` (§IV-D).
    pub fn server_paper(config: &AgreementConfig) -> DeadlineBudgets {
        DeadlineBudgets::none().with(MessageKind::OtB, config.gesture_window + config.tau)
    }

    /// Returns a copy with `kind` budgeted at `deadline` seconds.
    pub fn with(mut self, kind: MessageKind, deadline: f64) -> DeadlineBudgets {
        match kind {
            MessageKind::OtA => self.ot_a = Some(deadline),
            MessageKind::OtB => self.ot_b = Some(deadline),
            MessageKind::OtE => self.ot_e = Some(deadline),
            MessageKind::Challenge => self.challenge = Some(deadline),
            MessageKind::Response => self.response = Some(deadline),
        }
        self
    }

    /// The budget for `kind`, if any.
    pub fn budget(&self, kind: MessageKind) -> Option<f64> {
        match kind {
            MessageKind::OtA => self.ot_a,
            MessageKind::OtB => self.ot_b,
            MessageKind::OtE => self.ot_e,
            MessageKind::Challenge => self.challenge,
            MessageKind::Response => self.response,
        }
    }
}

/// The machine's group handle: sessions on MODP-1024 share the
/// process-wide instance (its fixed-base tables are expensive), while
/// tiny-group test sessions own a private cheap copy — so the machine is
/// `'static` and self-contained either way.
#[derive(Debug)]
pub(crate) enum GroupSlot {
    /// The shared MODP-1024 group.
    Shared(&'static DhGroup),
    /// A privately owned (tiny test) group.
    Owned(Box<DhGroup>),
}

impl GroupSlot {
    pub(crate) fn from_config(config: &AgreementConfig) -> GroupSlot {
        if config.use_tiny_group {
            GroupSlot::Owned(Box::new(DhGroup::tiny_test_group()))
        } else if config.fleet_group {
            GroupSlot::Shared(DhGroup::wavekey_1024_shared())
        } else {
            GroupSlot::Shared(DhGroup::modp_1024_shared())
        }
    }

    pub(crate) fn get(&self) -> &DhGroup {
        match self {
            GroupSlot::Shared(g) => g,
            GroupSlot::Owned(b) => b,
        }
    }

    /// The `&'static` borrow, when this machine runs on a process-shared
    /// group. Cross-session batches (`ModexpBatch<'static>`) can only
    /// gather jobs over shared groups — an owned tiny group dies with
    /// its machine.
    pub(crate) fn shared(&self) -> Option<&'static DhGroup> {
        match self {
            GroupSlot::Shared(g) => Some(g),
            GroupSlot::Owned(_) => None,
        }
    }
}

/// The party-agnostic half of a protocol machine: configuration, group,
/// RNG, logical clock, compute/stage accounting, and deadline handling.
///
/// The timing model is the monolith's, unchanged: the logical clock
/// starts when the gesture window closes, every piece of real compute is
/// measured with [`Instant`] and added to the clock, and message arrival
/// times (supplied by the driver) advance the clock monotonically.
#[derive(Debug)]
pub(crate) struct PartyCore {
    pub(crate) config: AgreementConfig,
    pub(crate) group: GroupSlot,
    pub(crate) rng: StdRng,
    pub(crate) budgets: DeadlineBudgets,
    pub(crate) state: State,
    /// Logical clock (seconds since gesture start).
    pub(crate) clock: f64,
    /// Total compute seconds this party spent.
    pub(crate) compute: f64,
    /// This party's share of the per-stage timings; the driver sums both
    /// parties' shares into the outcome's [`AgreementStages`].
    pub(crate) stages: AgreementStages,
    /// Latest arrival time of any *budgeted* message (the deadline
    /// consumption diagnostic).
    pub(crate) deadline_consumed: f64,
    /// Causal event emitter for this party (disabled by default: one
    /// pointer test per transition, no allocation).
    pub(crate) events: EventScope,
}

impl PartyCore {
    pub(crate) fn new(
        config: &AgreementConfig,
        budgets: DeadlineBudgets,
        rng: StdRng,
    ) -> Result<PartyCore, AgreementError> {
        if config.key_len_bits == 0 {
            return Err(AgreementError::Config("zero key length".into()));
        }
        Ok(PartyCore {
            config: *config,
            group: GroupSlot::from_config(config),
            rng,
            budgets,
            state: State::Init,
            clock: config.gesture_window,
            compute: 0.0,
            stages: AgreementStages {
                deadline_s: config.gesture_window + config.tau,
                ..AgreementStages::default()
            },
            deadline_consumed: 0.0,
            events: EventScope::disabled(),
        })
    }

    /// Move to `state`, emitting a causal state-transition event when an
    /// [`EventScope`] is bound. Every state assignment in the machines
    /// goes through here so timelines never miss a transition.
    pub(crate) fn transition(&mut self, state: State) {
        self.state = state;
        self.events.emit_state(state.label());
    }

    /// Registers a message arrival: records deadline consumption and
    /// enforces the budget for budgeted kinds, then advances the clock.
    pub(crate) fn arrive(
        &mut self,
        kind: MessageKind,
        arrival: f64,
    ) -> Result<(), AgreementError> {
        if let Some(budget) = self.budgets.budget(kind) {
            self.deadline_consumed = self.deadline_consumed.max(arrival);
            if arrival > budget {
                return Err(AgreementError::Timeout(kind));
            }
        }
        self.clock = self.clock.max(arrival);
        Ok(())
    }

    /// Books the real time elapsed since `t` as compute (advancing the
    /// logical clock) and returns it for stage attribution.
    pub(crate) fn spend(&mut self, t: Instant) -> f64 {
        let d = t.elapsed().as_secs_f64();
        self.clock += d;
        self.compute += d;
        d
    }

    /// Books `seconds` of compute measured *outside* the machine — a
    /// session's amortized share of a cross-session batch execution.
    /// Advances the logical clock like [`PartyCore::spend`].
    pub(crate) fn spend_shared(&mut self, seconds: f64) {
        self.clock += seconds;
        self.compute += seconds;
    }

    /// Advances the logical clock by `seconds` without booking compute —
    /// the drivers bill retransmission backoff here, so a retried
    /// deadline-critical message departs (and therefore arrives) later
    /// and the `2 + τ` fence is charged for every recovery attempt.
    pub(crate) fn charge(&mut self, seconds: f64) {
        self.clock += seconds;
    }

    /// Validates the frame header and that `kind` is what the current
    /// state expects.
    pub(crate) fn expect(
        &self,
        frame: &Frame,
        expected: MessageKind,
    ) -> Result<(), AgreementError> {
        if frame.version != frame::WIRE_VERSION {
            return Err(AgreementError::Wire(
                FrameError::UnknownVersion(frame.version).to_string(),
            ));
        }
        if frame.kind != expected {
            return Err(AgreementError::Wire(format!(
                "unexpected {:?} in state {:?} (expected {:?})",
                frame.kind, self.state, expected
            )));
        }
        Ok(())
    }
}

/// A machine start with its fixed-base jobs in flight on a cross-session
/// batch: redeem with `start_commit` after the batch executes. Both
/// machines start as OT *senders* (the agreement is bidirectional), so
/// one pending shape serves [`MobileAgreement`] and [`ServerAgreement`].
#[derive(Debug)]
pub struct StartPending {
    pub(crate) pending: wavekey_crypto::ot::OtSenderPending,
    /// Seconds spent in the enqueue phase (sampling + job pushes),
    /// carried into the commit-side compute bill.
    pub(crate) enqueue_s: f64,
}

/// Maps an OT-layer error into the agreement taxonomy.
pub(crate) fn ot_err(e: wavekey_crypto::ot::OtError) -> AgreementError {
    AgreementError::Ot(e.to_string())
}

/// Upper bound on duplicate-frame replays per machine: enough for every
/// message kind to be duplicated `max_retries` times, after which further
/// duplicates fall through to the (failing) dispatch path — a flood of
/// duplicates cannot keep a session alive forever.
pub fn replay_cap(retry: &crate::agreement::RetryPolicy) -> u32 {
    retry.max_retries.saturating_mul(MessageKind::ALL.len() as u32)
}
