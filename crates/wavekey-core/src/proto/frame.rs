//! The wire frame: the versioned, length-delimited envelope every
//! protocol message travels in.
//!
//! Layout (little-endian, hand-rolled so the offline rig builds without
//! a serializer):
//!
//! ```text
//! offset  size  field
//! 0       2     magic  0x57 0x4B ("WK")
//! 2       1     version (WIRE_VERSION = 1)
//! 3       1     kind    (MessageKind wire tag, see MessageKind::wire_tag)
//! 4       4     payload length, u32 LE
//! 8       n     payload
//! ```
//!
//! Decoding is total: every malformed input maps to a [`FrameError`],
//! never a panic — the adversary owns the channel, so the decoder is an
//! attack surface.

use crate::channel::MessageKind;

/// The two magic bytes every frame starts with.
pub const MAGIC: [u8; 2] = [0x57, 0x4B];
/// The current wire-format version.
pub const WIRE_VERSION: u8 = 1;
/// Fixed header length in bytes (magic + version + kind + length).
pub const HEADER_LEN: usize = 8;
/// Upper bound on payload length: a MODP-1024 OT batch of a few thousand
/// instances stays far below this; anything larger is hostile.
pub const MAX_PAYLOAD: usize = 1 << 24;

/// One framed protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Wire-format version (always [`WIRE_VERSION`] for frames we build;
    /// adversaries may rewrite it, and handlers must reject mismatches).
    pub version: u8,
    /// Which protocol message the payload carries.
    pub kind: MessageKind,
    /// The message body (an encoded OT round, the challenge, or the
    /// response).
    pub payload: Vec<u8>,
}

/// Frame decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a header, or payload shorter than declared.
    Truncated,
    /// The first two bytes are not [`MAGIC`].
    BadMagic,
    /// Unrecognized version byte.
    UnknownVersion(u8),
    /// Unrecognized kind tag.
    UnknownKind(u8),
    /// The declared length disagrees with the bytes actually present.
    LengthMismatch {
        /// Payload length the header declared.
        declared: usize,
        /// Payload bytes actually present after the header.
        actual: usize,
    },
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::UnknownVersion(v) => write!(f, "unknown wire version {v}"),
            FrameError::UnknownKind(k) => write!(f, "unknown message kind tag {k}"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(f, "frame length mismatch: declared {declared}, got {actual}")
            }
            FrameError::Oversized(n) => write!(f, "frame payload oversized: {n} bytes"),
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// Builds a current-version frame.
    pub fn new(kind: MessageKind, payload: Vec<u8>) -> Frame {
        Frame { version: WIRE_VERSION, kind, payload }
    }

    /// Serializes the frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(self.version);
        out.push(self.kind.wire_tag());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses one frame from `bytes`, which must contain exactly one
    /// frame (trailing bytes are a [`FrameError::LengthMismatch`]).
    ///
    /// # Errors
    ///
    /// See [`FrameError`]; no input panics.
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        if bytes[0..2] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        let version = bytes[2];
        if version != WIRE_VERSION {
            return Err(FrameError::UnknownVersion(version));
        }
        let kind =
            MessageKind::from_wire(bytes[3]).ok_or(FrameError::UnknownKind(bytes[3]))?;
        let declared = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        if declared > MAX_PAYLOAD {
            return Err(FrameError::Oversized(declared));
        }
        let actual = bytes.len() - HEADER_LEN;
        if actual < declared {
            return Err(FrameError::Truncated);
        }
        if actual > declared {
            return Err(FrameError::LengthMismatch { declared, actual });
        }
        Ok(Frame { version, kind, payload: bytes[HEADER_LEN..].to_vec() })
    }

    /// Reads just the kind tag of an encoded frame, without validating
    /// the rest (routing aid for queues and logs).
    pub fn peek_kind(bytes: &[u8]) -> Option<MessageKind> {
        if bytes.len() < 4 || bytes[0..2] != MAGIC {
            return None;
        }
        MessageKind::from_wire(bytes[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_identity_over_random_frames() {
        // StdRng-driven property loop, runnable under the offline rig
        // (the cargo-only proptest variants live in tests/properties.rs).
        let mut rng = StdRng::seed_from_u64(0xF4A3);
        for case in 0..500 {
            let kind = MessageKind::ALL[case % MessageKind::ALL.len()];
            let len = rng.gen_range(0..2048);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let frame = Frame::new(kind, payload);
            let bytes = frame.encode();
            assert_eq!(bytes.len(), HEADER_LEN + frame.payload.len());
            assert_eq!(Frame::decode(&bytes).unwrap(), frame, "case {case}");
            assert_eq!(Frame::peek_kind(&bytes), Some(kind));
        }
    }

    #[test]
    fn random_mutations_never_panic_the_decoder() {
        // Seeded mutation fuzz over valid frames — flip bytes, cut tails,
        // splice junk — runnable under the offline rig (the proptest twin
        // is `frame_decode_survives_random_mutation` in
        // tests/properties.rs). Decoding is total: every mutation yields
        // Ok or a typed error, and an Ok must re-encode byte-identically.
        let mut rng = StdRng::seed_from_u64(0x0F4A_117);
        for case in 0..2000 {
            let kind = MessageKind::ALL[case % MessageKind::ALL.len()];
            let len = rng.gen_range(0..512);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let mut bytes = Frame::new(kind, payload).encode();
            match rng.gen_range(0..3) {
                0 => {
                    for _ in 0..rng.gen_range(1..8) {
                        let idx = rng.gen_range(0..bytes.len());
                        bytes[idx] ^= rng.gen_range(1..=u8::MAX);
                    }
                }
                1 => {
                    let cut = rng.gen_range(0..bytes.len());
                    bytes.truncate(cut);
                }
                _ => {
                    let extra = rng.gen_range(1..32);
                    bytes.extend((0..extra).map(|_| rng.gen::<u8>()));
                }
            }
            if let Ok(frame) = Frame::decode(&bytes) {
                assert_eq!(frame.encode(), bytes, "case {case}");
            }
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_rejected_without_panic() {
        let frame = Frame::new(MessageKind::Challenge, vec![7u8; 40]);
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated | FrameError::BadMagic),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_a_length_mismatch() {
        let mut bytes = Frame::new(MessageKind::OtA, vec![1, 2, 3]).encode();
        bytes.push(0xFF);
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            FrameError::LengthMismatch { declared: 3, actual: 4 }
        );
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let mut bytes = Frame::new(MessageKind::OtE, vec![]).encode();
        bytes[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            FrameError::Oversized(u32::MAX as usize)
        );
    }

    #[test]
    fn unknown_version_and_kind_are_rejected() {
        let mut bytes = Frame::new(MessageKind::OtB, vec![9]).encode();
        bytes[2] = 42;
        assert_eq!(Frame::decode(&bytes).unwrap_err(), FrameError::UnknownVersion(42));
        let mut bytes = Frame::new(MessageKind::OtB, vec![9]).encode();
        bytes[3] = 0;
        assert_eq!(Frame::decode(&bytes).unwrap_err(), FrameError::UnknownKind(0));
        bytes[3] = 200;
        assert_eq!(Frame::decode(&bytes).unwrap_err(), FrameError::UnknownKind(200));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Frame::new(MessageKind::Response, vec![]).encode();
        bytes[0] = b'X';
        assert_eq!(Frame::decode(&bytes).unwrap_err(), FrameError::BadMagic);
        assert_eq!(Frame::peek_kind(&bytes), None);
    }

    #[test]
    fn wire_tags_roundtrip_for_every_kind() {
        for kind in MessageKind::ALL {
            assert_eq!(MessageKind::from_wire(kind.wire_tag()), Some(kind));
        }
        assert_eq!(MessageKind::from_wire(0), None);
        assert_eq!(MessageKind::from_wire(6), None);
    }
}
